"""Property test: recovery equals the acked prefix on every tree kind.

One seeded workload, one crash ordinal, one tree kind — after the crash
and :meth:`DurableTree.recover`, the contents must equal the dict model
of exactly the acked ops (``lsn <= committed_lsn`` at crash time), and
the tree's own invariants must hold.  This is the checker's contract
re-stated as a shrinkable hypothesis property.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DeviceCrashed
from repro.faults import CrashPlan, FaultPlan, FaultyDevice
from repro.recovery import (
    DurableConfig,
    DurableTree,
    RECOVERY_TREES,
    expected_contents,
    generate_workload,
)
from repro.storage.ram import ConstantLatencyDevice

CONFIG = dict(
    node_bytes=4096,
    cache_bytes=16 << 10,
    wal_bytes=1 << 20,
    ckpt_bytes=1 << 20,
)


def _run_to_crash(tree, *, seed, ordinal, group_commit, checkpoint_every):
    load_pairs, ops = generate_workload(
        40, universe=1 << 10, seed=seed, n_load=12
    )
    inner = ConstantLatencyDevice(1e-4, capacity_bytes=1 << 30)
    device = FaultyDevice(inner, FaultPlan())
    durable = DurableTree(
        device,
        DurableConfig(
            tree=tree,
            group_commit=group_commit,
            checkpoint_every=checkpoint_every,
            **CONFIG,
        ),
    )
    durable.load(list(load_pairs))
    device.arm_crash(CrashPlan(seed=seed ^ 0xABCD, at_io=ordinal))
    try:
        for op, key, value in ops:
            if op == "p":
                durable.put(key, value)
            elif op == "d":
                durable.delete(key)
            else:
                durable.get(key)
        durable.sync()
        # The ordinal was past the workload's last IO: disarm so the
        # recovery and probe IOs below cannot trip the stale plan.
        device.arm_crash(None)
    except DeviceCrashed:
        pass
    return durable, load_pairs, ops


@pytest.mark.parametrize("tree", RECOVERY_TREES)
class TestCrashRecoverEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        ordinal=st.integers(0, 40),
        group_commit=st.sampled_from([1, 3, 8]),
        checkpoint_every=st.sampled_from([0, 7]),
    )
    def test_recovered_state_is_the_acked_prefix(
        self, tree, seed, ordinal, group_commit, checkpoint_every
    ):
        durable, load_pairs, ops = _run_to_crash(
            tree,
            seed=seed,
            ordinal=ordinal,
            group_commit=group_commit,
            checkpoint_every=checkpoint_every,
        )
        acked = durable.wal.committed_lsn
        durable.recover()
        durable.check_invariants()
        assert durable.contents() == expected_contents(load_pairs, ops, acked)
        # And the recovered tree still takes durable traffic.
        durable.put(1 << 20, "probe")
        durable.sync()
        assert durable.get(1 << 20) == "probe"
