"""The bench_durability gate table: no config can silently skip a gate.

Gates are declared per config name and every outcome — enforced or
advisory — is returned for the BENCH record.  These tests pin that
contract (and each gate's failure mode) without running a sweep.
"""

import importlib.util
from pathlib import Path

import pytest

_BENCH = Path(__file__).resolve().parents[2] / "benchmarks" / "bench_durability.py"
_spec = importlib.util.spec_from_file_location("bench_durability", _BENCH)
bench_durability = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_durability)


def _metrics(*, dam=4, affine=16, pdam=4, wal_frac=0.1, recovered=True, det=True):
    return {
        "deterministic_across_jobs": det,
        "all_recovered_ok": recovered,
        "argmin_batch": {"dam": dam, "affine": affine, "pdam": pdam},
        "dam_wal_frac_at_k8": wal_frac,
    }


class TestGateTable:
    def test_every_config_declares_its_gates(self):
        assert set(bench_durability.GATES) == {"full", "smoke"}
        for name, gates in bench_durability.GATES.items():
            assert "separation_strict" in gates, name
            assert "wal_frac_strict" in gates, name

    def test_unknown_config_cannot_skip_silently(self):
        with pytest.raises(KeyError):
            bench_durability._check(_metrics(), config_name="nightly")


class TestCheck:
    def test_healthy_metrics_pass_and_report(self):
        outcomes = bench_durability._check(_metrics(), config_name="full")
        assert outcomes["separation_ok"] is True
        assert outcomes["pdam_agrees_with_dam"] is True
        assert outcomes["wal_frac_ok"] is True
        assert outcomes["wal_frac_bound"] == bench_durability.WAL_FRAC_BOUND

    def test_recovery_gate_applies_to_every_config(self):
        for name in bench_durability.GATES:
            with pytest.raises(AssertionError, match="recovery"):
                bench_durability._check(
                    _metrics(recovered=False), config_name=name
                )

    def test_determinism_gate_applies_to_every_config(self):
        for name in bench_durability.GATES:
            with pytest.raises(AssertionError, match="job"):
                bench_durability._check(_metrics(det=False), config_name=name)

    def test_collapsed_optima_fail_the_separation_gate(self):
        with pytest.raises(AssertionError, match="affine"):
            bench_durability._check(_metrics(affine=4), config_name="full")
        with pytest.raises(AssertionError, match="PDAM"):
            bench_durability._check(_metrics(pdam=16), config_name="full")

    def test_wal_overhead_bound_enforced(self):
        with pytest.raises(AssertionError, match="WAL share"):
            bench_durability._check(_metrics(wal_frac=0.9), config_name="full")
