"""DurableTree: logging, checkpointing, and crash recovery over the zoo."""

import pytest

from repro.errors import ConfigurationError, DeviceCrashed, TreeError, WALError
from repro.faults import CrashPlan, FaultPlan, FaultyDevice
from repro.recovery import (
    DurableConfig,
    DurableTree,
    RECOVERY_TREES,
    RecoveryReport,
)
from repro.storage.ram import ConstantLatencyDevice

SMALL = dict(
    node_bytes=4096,
    cache_bytes=32 << 10,
    wal_bytes=1 << 20,
    ckpt_bytes=1 << 20,
    group_commit=2,
)


def build(tree="btree", *, crash=None, **overrides):
    inner = ConstantLatencyDevice(1e-4, capacity_bytes=1 << 30)
    device = FaultyDevice(inner, FaultPlan(), crash=crash)
    cfg = DurableConfig(tree=tree, **{**SMALL, **overrides})
    return device, DurableTree(device, cfg)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DurableConfig(tree="splay")
        with pytest.raises(ConfigurationError):
            DurableConfig(group_commit=0)
        with pytest.raises(ConfigurationError):
            DurableConfig(checkpoint_every=-1)
        with pytest.raises(ConfigurationError):
            DurableConfig(wal_bytes=0)

    def test_reserved_extents_must_leave_tree_room(self):
        device = ConstantLatencyDevice(1e-4, capacity_bytes=1 << 20)
        with pytest.raises(ConfigurationError, match="no room"):
            DurableTree(device, DurableConfig(ckpt_bytes=1 << 20))

    def test_describe_is_jsonable(self):
        d = DurableConfig(**SMALL).describe()
        assert d["tree"] == "btree"
        assert d["group_commit"] == 2


class TestWritePath:
    def test_put_get_delete(self):
        _, durable = build()
        lsn = durable.put(5, "five")
        assert lsn == 1
        assert durable.get(5) == "five"
        durable.put(6, "six")
        assert durable.acked(1)  # group of 2 committed
        durable.delete(5)
        assert durable.get(5) is None
        assert durable.get_many([5, 6]) == [None, "six"]
        assert durable.range(0, 10) == [(6, "six")]

    def test_ack_follows_group_commit(self):
        _, durable = build(group_commit=3)
        lsn = durable.put(1, "a")
        assert not durable.acked(lsn)
        durable.sync()
        assert durable.acked(lsn)

    def test_load_is_unlogged_but_checkpointed(self):
        _, durable = build()
        durable.load([(1, "a"), (2, "b")])
        assert durable.wal.next_lsn == 1  # nothing logged
        assert durable.checkpoints_taken == 1
        assert durable.contents() == {1: "a", 2: "b"}

    def test_cob_delete_of_absent_key_leaves_no_record(self):
        _, durable = build("cob")
        durable.load([(1, "a")])
        with pytest.raises(TreeError):
            durable.delete(99)
        assert durable.wal.next_lsn == 1  # refused delete logged nothing


class TestCheckpoint:
    def test_checkpoint_truncates_the_log(self):
        _, durable = build()
        durable.load([])
        for i in range(6):
            durable.put(i, f"v{i}")
        assert durable.wal.durable_bytes > 0
        durable.checkpoint()
        assert durable.wal.durable_bytes == 0
        assert durable.checkpoint_lsn == 6
        assert durable.checkpoint_seconds > 0.0

    def test_checkpoint_every_triggers_automatically(self):
        _, durable = build(checkpoint_every=4)
        durable.load([])
        for i in range(8):
            durable.put(i, "x")
        assert durable.checkpoints_taken == 1 + 2  # load + two automatic

    def test_snapshot_too_big_for_region_raises(self):
        _, durable = build(ckpt_bytes=512)
        for i in range(64):
            durable.put(i, "x")
        with pytest.raises(WALError, match="exceeds"):
            durable.checkpoint()


@pytest.mark.parametrize("tree", RECOVERY_TREES)
class TestRecovery:
    def test_crash_and_recover_keeps_acked_prefix(self, tree):
        device, durable = build(tree, group_commit=2)
        durable.load([(100, "base")])
        device.arm_crash(CrashPlan(seed=3, at_io=30))
        applied = []
        try:
            for i in range(200):
                durable.put(i, f"v{i}")
                applied.append(i)
            pytest.fail("crash never fired")
        except DeviceCrashed:
            pass
        acked = durable.wal.committed_lsn
        report = durable.recover()
        assert isinstance(report, RecoveryReport)
        assert report.crash is not None
        assert report.recovery_seconds > 0.0
        expected = {100: "base"}
        expected.update((i, f"v{i}") for i in range(acked))
        assert durable.contents() == expected
        durable.check_invariants()
        # Recovered tree accepts new durable writes.
        durable.put(10_000, "after")
        durable.sync()
        assert durable.get(10_000) == "after"

    def test_recover_from_checkpoint_plus_log_suffix(self, tree):
        device, durable = build(tree, group_commit=1)
        durable.load([(1, "a"), (2, "b")])
        durable.put(3, "c")
        durable.checkpoint()
        durable.put(4, "d")
        durable.delete(1)
        report = durable.recover()  # no crash: rebuild from durable state
        assert report.crash is None
        assert report.checkpoint_lsn == 1
        assert report.replayed_records == 2
        assert durable.contents() == {2: "b", 3: "c", 4: "d"}


class TestIOAccounting:
    def test_io_seconds_tracks_the_device(self):
        device, durable = build()
        durable.put(1, "a")
        durable.sync()
        assert durable.io_seconds == device.stats.busy_seconds > 0.0
