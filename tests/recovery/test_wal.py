"""WriteAheadLog: framing, group commit, torn tails, CRC, recovery."""

import struct

import pytest

from repro.errors import ConfigurationError, DeviceCrashed, WALError
from repro.faults import CrashPlan, FaultPlan, FaultyDevice
from repro.recovery.wal import _frame, scan, WAL_OPS, WriteAheadLog
from repro.storage.ram import ConstantLatencyDevice


def make_wal(**kwargs):
    device = ConstantLatencyDevice(1e-4, capacity_bytes=1 << 30)
    defaults = dict(offset=0, capacity_bytes=1 << 20, group_commit=4)
    defaults.update(kwargs)
    return device, WriteAheadLog(device, **defaults)


class TestValidation:
    def test_extent_must_fit_the_device(self):
        device = ConstantLatencyDevice(1e-4, capacity_bytes=1 << 20)
        with pytest.raises(ConfigurationError):
            WriteAheadLog(device, offset=1 << 19, capacity_bytes=1 << 20)
        with pytest.raises(ConfigurationError):
            WriteAheadLog(device, offset=-1, capacity_bytes=1 << 10)
        with pytest.raises(ConfigurationError):
            WriteAheadLog(device, offset=0, capacity_bytes=0)

    def test_group_commit_positive(self):
        device = ConstantLatencyDevice(1e-4, capacity_bytes=1 << 20)
        with pytest.raises(ConfigurationError):
            WriteAheadLog(device, offset=0, capacity_bytes=1 << 10, group_commit=0)

    def test_append_rejects_bad_op(self):
        _, wal = make_wal()
        with pytest.raises(ConfigurationError):
            wal.append("x", 1)
        with pytest.raises(ConfigurationError):
            wal.append("c", 1)  # markers are commit's business


class TestFramingAndScan:
    def test_round_trip_one_group(self):
        blob = (
            _frame(1, "p", 10, "a")
            + _frame(2, "d", 11, None)
            + _frame(2, "c", None, None)
        )
        records, valid = scan(blob)
        assert records == [(1, "p", 10, "a"), (2, "d", 11, None)]
        assert valid == len(blob)

    def test_group_without_marker_is_discarded(self):
        blob = _frame(1, "p", 10, "a") + _frame(2, "p", 11, "b")
        assert scan(blob) == ([], 0)

    @pytest.mark.parametrize("cut", [1, 4, 8, 9])
    def test_torn_tail_cut_anywhere_keeps_committed_prefix(self, cut):
        good = _frame(1, "p", 10, "a") + _frame(1, "c", None, None)
        tail = _frame(2, "p", 11, "b") + _frame(2, "c", None, None)
        records, valid = scan(good + tail[:-cut])
        assert records == [(1, "p", 10, "a")]
        assert valid == len(good)

    def test_crc_flip_detected(self):
        good = _frame(1, "p", 10, "a") + _frame(1, "c", None, None)
        bad = bytearray(good + _frame(2, "p", 11, "b") + _frame(2, "c", None, None))
        flip = len(good) + struct.calcsize("<II")  # first payload byte of rec 2
        bad[flip] ^= 0xFF
        records, valid = scan(bytes(bad))
        assert records == [(1, "p", 10, "a")]
        assert valid == len(good)

    def test_unknown_op_stops_the_scan(self):
        assert "z" not in WAL_OPS
        blob = _frame(1, "z", 10, "a") + _frame(1, "c", None, None)
        assert scan(blob) == ([], 0)

    def test_empty_image(self):
        assert scan(b"") == ([], 0)


class TestGroupCommit:
    def test_auto_commit_at_batch_size(self):
        _, wal = make_wal(group_commit=3)
        assert wal.append("p", 1, "a") == 1
        assert wal.append("p", 2, "b") == 2
        assert wal.committed_lsn == 0
        assert wal.pending_records == 2
        assert wal.append("d", 1) == 3  # third record trips the group
        assert wal.committed_lsn == 3
        assert wal.pending_records == 0
        assert wal.commits == 1

    def test_explicit_commit_flushes_early(self):
        _, wal = make_wal(group_commit=8)
        wal.append("p", 1, "a")
        wal.commit()
        assert wal.committed_lsn == 1
        wal.commit()  # empty flush is a no-op
        assert wal.commits == 1

    def test_commit_charges_one_sequential_write(self):
        device, wal = make_wal(group_commit=2)
        before = device.stats.writes
        wal.append("p", 1, "a")
        wal.append("p", 2, "b")
        assert device.stats.writes == before + 1
        assert wal.write_seconds > 0.0
        assert wal.durable_bytes > 0

    def test_extent_full_raises(self):
        _, wal = make_wal(capacity_bytes=64, group_commit=1)
        with pytest.raises(WALError, match="checkpoint"):
            for i in range(16):
                wal.append("p", i, "x" * 8)

    def test_truncate_resets_the_image(self):
        _, wal = make_wal(group_commit=1)
        wal.append("p", 1, "a")
        wal.truncate()
        assert wal.durable_bytes == 0
        assert wal.checkpoints == 1


class TestCrashAndRecover:
    def _crashing_wal(self, at_io, *, group_commit=2):
        inner = ConstantLatencyDevice(1e-4, capacity_bytes=1 << 30)
        device = FaultyDevice(inner, FaultPlan())
        wal = WriteAheadLog(
            device, offset=0, capacity_bytes=1 << 20, group_commit=group_commit
        )
        device.arm_crash(CrashPlan(seed=9, at_io=at_io, torn=True))
        return device, wal

    def test_torn_commit_appends_only_the_persisted_prefix(self):
        device, wal = self._crashing_wal(at_io=1)
        wal.append("p", 1, "a")
        wal.append("p", 2, "b")  # commit 1 lands
        durable_before = wal.durable_bytes
        wal.append("p", 3, "c")
        with pytest.raises(DeviceCrashed):
            wal.append("p", 4, "d")  # commit 2 tears
        torn = device.crash_state.persisted_bytes
        assert wal.durable_bytes == durable_before + torn
        # The torn group is not acked.
        assert wal.committed_lsn == 2

    def test_recover_returns_committed_prefix_and_resyncs_lsns(self):
        device, wal = self._crashing_wal(at_io=1)
        wal.append("p", 1, "a")
        wal.append("d", 2)
        with pytest.raises(DeviceCrashed):
            wal.append("p", 3, "c")
            wal.append("p", 4, "d")
        device.recover()
        records = wal.recover()
        assert records == [(1, "p", 1, "a"), (2, "d", 2, None)]
        assert wal.committed_lsn == 2
        assert wal.next_lsn == 3
        assert wal.pending_records == 0
        # Debris past the last marker is gone from the image.
        again, valid = scan(bytes(wal._durable))
        assert again == records
        assert valid == wal.durable_bytes

    def test_recover_charges_a_log_read(self):
        device, wal = self._crashing_wal(at_io=1)
        wal.append("p", 1, "a")
        wal.append("p", 2, "b")
        with pytest.raises(DeviceCrashed):
            wal.append("p", 3, "c")
            wal.append("p", 4, "d")
        device.recover()
        reads_before = device.stats.reads
        wal.recover()
        assert device.stats.reads == reads_before + 1

    def test_recover_respects_base_lsn_floor(self):
        _, wal = make_wal()
        assert wal.recover(base_lsn=41) == []
        assert wal.committed_lsn == 41
        assert wal.next_lsn == 42
