"""The crash-consistency checker: coverage, detection power, determinism."""

import pytest

from repro.errors import ConfigurationError
from repro.recovery import expected_contents, generate_workload, run_check
from repro.recovery.wal import WriteAheadLog

FAST = dict(
    n_ops=24,
    n_load=16,
    universe=1 << 10,
    cache_bytes=16 << 10,
    wal_bytes=1 << 20,
    ckpt_bytes=1 << 20,
)


class TestWorkloadGenerator:
    def test_deterministic_in_the_seed(self):
        a = generate_workload(50, seed=7)
        b = generate_workload(50, seed=7)
        assert a == b
        assert a != generate_workload(50, seed=8)

    def test_deletes_always_target_present_keys(self):
        load, ops = generate_workload(200, seed=3, n_load=8, universe=256)
        model = dict(load)
        for op, key, value in ops:
            if op == "p":
                model[key] = value
            elif op == "d":
                assert key in model
                del model[key]
            else:
                assert key in model

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_workload(0)
        with pytest.raises(ConfigurationError):
            generate_workload(10, n_load=-1)
        with pytest.raises(ConfigurationError):
            generate_workload(10, universe=4, n_load=64)


class TestExpectedContents:
    def test_prefix_semantics(self):
        load = [(1, "a")]
        ops = [("p", 2, "b"), ("g", 1, None), ("d", 1, None), ("p", 3, "c")]
        assert expected_contents(load, ops, 0) == {1: "a"}
        assert expected_contents(load, ops, 1) == {1: "a", 2: "b"}
        # The get does not consume an acked-write slot.
        assert expected_contents(load, ops, 2) == {2: "b"}
        assert expected_contents(load, ops, 3) == {2: "b", 3: "c"}


class TestRunCheck:
    def test_btree_exhaustive_passes(self):
        report = run_check("btree", mode="exhaustive", seed=1, **FAST)
        assert report.passed
        assert report.boundaries_tested == report.boundaries_total > 0
        assert report.crashes_fired == report.boundaries_tested
        d = report.describe()
        assert d["passed"] and d["failures"] == []

    def test_sample_mode_subsets_the_boundaries(self):
        report = run_check(
            "btree", mode="sample", samples=5, seed=1, group_commit=1, **FAST
        )
        assert report.passed
        assert report.boundaries_tested == 5
        assert report.boundaries_tested < report.boundaries_total

    def test_sample_mode_is_seeded(self):
        a = run_check("btree", mode="sample", samples=4, seed=2, **FAST)
        b = run_check("btree", mode="sample", samples=4, seed=2, **FAST)
        assert a.describe() == b.describe()

    def test_bad_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            run_check("splay")
        with pytest.raises(ConfigurationError):
            run_check("btree", mode="psychic")
        with pytest.raises(ConfigurationError):
            run_check("btree", mode="sample", samples=0)

    def test_checker_catches_a_lying_wal(self, monkeypatch):
        # A WAL that acks without writing the durable image is exactly the
        # bug class the checker exists for: acked ops vanish on recovery.
        real_commit = WriteAheadLog.commit

        def lying_commit(self):
            if not self._pending:
                return
            self.committed_lsn = self._pending[-1][0]  # ack ...
            self._pending.clear()  # ... but persist nothing
            self.commits += 1

        monkeypatch.setattr(WriteAheadLog, "commit", lying_commit)
        try:
            # A lying commit also writes no device IO, so drive boundaries
            # with checkpoint writes instead of commit writes.
            report = run_check(
                "btree", mode="exhaustive", seed=1, checkpoint_every=6, **FAST
            )
        finally:
            monkeypatch.setattr(WriteAheadLog, "commit", real_commit)
        assert not report.passed
        assert any("lost" in f.reason for f in report.failures)
