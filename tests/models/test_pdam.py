"""PDAM model unit tests."""

import pytest

from repro.errors import ConfigurationError
from repro.models.pdam import PDAMModel


class TestConstruction:
    @pytest.mark.parametrize("kwargs", [
        dict(parallelism=0, block_bytes=4096),
        dict(parallelism=4, block_bytes=0),
        dict(parallelism=4, block_bytes=4096, step_seconds=0),
    ])
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ConfigurationError):
            PDAMModel(**kwargs)

    def test_fractional_parallelism_allowed(self):
        # The paper fits P = 3.3 for the Samsung 860 pro.
        m = PDAMModel(parallelism=3.3, block_bytes=4096)
        assert m.parallelism == 3.3


class TestSteps:
    def test_definition_1(self):
        # Definition 1: up to P block IOs per step.
        m = PDAMModel(parallelism=4, block_bytes=4096)
        assert m.steps(0) == 0
        assert m.steps(4) == 1
        assert m.steps(5) == 2
        assert m.steps(17) == 5

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            PDAMModel(parallelism=4, block_bytes=4096).steps(-1)

    def test_single_large_io_stripes(self):
        m = PDAMModel(parallelism=4, block_bytes=4096)
        assert m.cost(4 * 4096) == 1.0
        assert m.cost(5 * 4096) == 2.0

    def test_sequential_scan_time(self):
        # A scan of N bytes takes N/(P*B) steps (paper Section 2.2).
        m = PDAMModel(parallelism=8, block_bytes=4096)
        n = 8 * 4096 * 100
        assert m.cost(n) == 100.0

    def test_dependent_chain_gets_no_parallelism(self):
        # A root-to-leaf walk cannot use the P slots (Section 8).
        m = PDAMModel(parallelism=64, block_bytes=4096)
        assert m.dependent_chain_steps(5) == 5

    def test_batch_cost_fills_slots(self):
        m = PDAMModel(parallelism=4, block_bytes=4096)
        # 3 IOs of 2 blocks each = 6 blocks = 2 steps.
        assert m.batch_cost([8192, 8192, 8192]) == 2.0

    def test_saturation_throughput(self):
        m = PDAMModel(parallelism=4, block_bytes=4096, step_seconds=0.001)
        assert m.saturation_bytes_per_second == pytest.approx(4 * 4096 / 0.001)

    def test_seconds_scale_with_step(self):
        m = PDAMModel(parallelism=2, block_bytes=4096, step_seconds=0.5)
        assert m.seconds(3 * 4096) == pytest.approx(1.0)
