"""Affine model unit tests."""

import pytest

from repro.errors import ConfigurationError
from repro.models.affine import AffineModel


class TestConstruction:
    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ConfigurationError):
            AffineModel(alpha=0)

    def test_rejects_nonpositive_setup(self):
        with pytest.raises(ConfigurationError):
            AffineModel(alpha=0.1, setup_seconds=-1)

    def test_from_hardware(self):
        # Table 2 style: s = 12 ms, t = 35 us per 4K -> per byte.
        t = 0.000035 / 4096
        m = AffineModel.from_hardware(0.012, t)
        assert m.alpha == pytest.approx(t / 0.012)
        assert m.setup_seconds == 0.012
        assert m.seconds_per_byte == pytest.approx(t)

    def test_from_hardware_validation(self):
        with pytest.raises(ConfigurationError):
            AffineModel.from_hardware(0, 1e-9)


class TestCost:
    def test_definition_2(self):
        # Definition 2: an IO of size x costs 1 + alpha*x.
        m = AffineModel(alpha=0.001)
        assert m.cost(0) == 1.0
        assert m.cost(1000) == pytest.approx(2.0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            AffineModel(alpha=0.001).cost(-5)

    def test_seconds(self):
        m = AffineModel(alpha=0.001, setup_seconds=0.01)
        # s + t*x with t = alpha * s.
        assert m.seconds(1000) == pytest.approx(0.01 + 0.001 * 0.01 * 1000)

    def test_half_bandwidth_point(self):
        m = AffineModel(alpha=0.001)
        assert m.half_bandwidth_bytes == pytest.approx(1000.0)
        # At the half-bandwidth point, setup time equals transfer time.
        assert m.cost(int(m.half_bandwidth_bytes)) == pytest.approx(2.0)

    def test_batch_is_sum(self):
        m = AffineModel(alpha=0.01)
        assert m.batch_cost([100, 200]) == pytest.approx(m.cost(100) + m.cost(200))

    def test_one_big_io_cheaper_than_many_small(self):
        # The affine model's core claim: batching amortizes the setup.
        m = AffineModel(alpha=1e-5)
        assert m.cost(10_000) < m.batch_cost([1000] * 10)
