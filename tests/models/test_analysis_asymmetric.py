"""Tests for the asymmetric-cost analysis extensions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.models.analysis import (
    betree_insert_cost,
    betree_query_cost_optimized,
    mixed_workload_cost,
    optimal_fanout_asymmetric,
)

B, ALPHA, N, M = 10_000, 1e-4, 1e9, 1e6


class TestMixedWorkloadCost:
    def test_pure_query_mix_is_query_cost(self):
        c = mixed_workload_cost(B, 100, ALPHA, N, M, query_fraction=1.0)
        assert c == pytest.approx(betree_query_cost_optimized(B, 100, ALPHA, N, M))

    def test_pure_insert_mix_scales_with_writes(self):
        c1 = mixed_workload_cost(B, 100, ALPHA, N, M, query_fraction=0.0)
        c5 = mixed_workload_cost(
            B, 100, ALPHA, N, M, query_fraction=0.0, write_cost_multiplier=5.0
        )
        assert c5 == pytest.approx(5 * c1)
        assert c1 == pytest.approx(betree_insert_cost(B, 100, ALPHA, N, M))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mixed_workload_cost(B, 100, ALPHA, N, M, query_fraction=1.5)
        with pytest.raises(ConfigurationError):
            mixed_workload_cost(B, 100, ALPHA, N, M, write_cost_multiplier=0)


class TestOptimalFanout:
    def test_is_a_minimum(self):
        f = optimal_fanout_asymmetric(B, ALPHA, N, M)
        c = mixed_workload_cost(B, f, ALPHA, N, M)
        assert c <= mixed_workload_cost(B, f * 0.7, ALPHA, N, M)
        assert c <= mixed_workload_cost(B, min(B, f * 1.4), ALPHA, N, M)

    def test_falls_with_write_cost(self):
        f1 = optimal_fanout_asymmetric(B, ALPHA, N, M, write_cost_multiplier=1.0)
        f10 = optimal_fanout_asymmetric(B, ALPHA, N, M, write_cost_multiplier=10.0)
        assert f10 < f1

    def test_rises_with_query_fraction(self):
        f_writes = optimal_fanout_asymmetric(B, ALPHA, N, M, query_fraction=0.1)
        f_reads = optimal_fanout_asymmetric(B, ALPHA, N, M, query_fraction=0.9)
        assert f_reads > f_writes

    @given(st.floats(min_value=1.0, max_value=50.0))
    @settings(max_examples=30, deadline=None)
    def test_always_in_valid_range(self, w):
        f = optimal_fanout_asymmetric(B, ALPHA, N, M, write_cost_multiplier=w)
        assert 2.0 <= f <= B


class TestAsymmetricDevice:
    def test_write_multiplier_applies_to_writes_only(self):
        from repro.models.affine import AffineModel
        from repro.storage.ideal import AffineDevice

        dev = AffineDevice(
            AffineModel(alpha=1e-6, setup_seconds=0.01), write_multiplier=3.0
        )
        r = dev.read(0, 1000)
        w = dev.write(0, 1000)
        assert w == pytest.approx(3 * r)

    def test_rejects_bad_multiplier(self):
        from repro.errors import ConfigurationError
        from repro.models.affine import AffineModel
        from repro.storage.ideal import AffineDevice

        with pytest.raises(ConfigurationError):
            AffineDevice(AffineModel(alpha=1e-6), write_multiplier=0)
