"""DAM model unit tests."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.models.dam import DAMModel


class TestConstruction:
    def test_rejects_nonpositive_block(self):
        with pytest.raises(ConfigurationError):
            DAMModel(block_bytes=0)

    def test_rejects_nonpositive_setup(self):
        with pytest.raises(ConfigurationError):
            DAMModel(block_bytes=4096, setup_seconds=0)


class TestCost:
    def test_single_block_costs_one(self):
        m = DAMModel(block_bytes=4096)
        assert m.cost(1) == 1.0
        assert m.cost(4096) == 1.0

    def test_multi_block_ceiling(self):
        m = DAMModel(block_bytes=4096)
        assert m.cost(4097) == 2.0
        assert m.cost(3 * 4096) == 3.0

    def test_zero_bytes_is_free(self):
        assert DAMModel(block_bytes=4096).cost(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            DAMModel(block_bytes=4096).cost(-1)

    def test_seconds_scale_with_setup(self):
        m = DAMModel(block_bytes=4096, setup_seconds=0.01)
        assert m.seconds(4096) == pytest.approx(0.01)
        assert m.seconds(2 * 4096) == pytest.approx(0.02)

    def test_batch_cost_sums(self):
        m = DAMModel(block_bytes=4096)
        assert m.batch_cost([4096, 8192, 1]) == 4.0


class TestHalfBandwidthConstruction:
    def test_block_at_half_bandwidth_point(self):
        # s = 10 ms, t = 1 us/byte -> half-bandwidth B = 10000 bytes.
        m = DAMModel.at_half_bandwidth_point(0.01, 1e-6)
        assert m.block_bytes == 10000

    def test_block_seconds_double_setup(self):
        # Each block transfer spends s on setup and s on bandwidth.
        m = DAMModel.at_half_bandwidth_point(0.01, 1e-6)
        assert m.setup_seconds == pytest.approx(0.02)

    def test_rejects_bad_hardware(self):
        with pytest.raises(ConfigurationError):
            DAMModel.at_half_bandwidth_point(0, 1e-6)

    def test_blocks_helper_matches_cost(self):
        m = DAMModel(block_bytes=1000)
        for n in (1, 999, 1000, 1001, 12345):
            assert m.cost(n) == float(m.blocks(n)) == math.ceil(n / 1000)
