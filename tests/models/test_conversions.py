"""Lemma 1 (affine <-> DAM) tests, including the factor-of-2 bound."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models.conversions import (
    affine_cost,
    affine_cost_of_dam_algorithm,
    dam_cost_of_affine_algorithm,
    dam_model_for,
    half_bandwidth_point,
)
from repro.models.affine import AffineModel


class TestHalfBandwidthPoint:
    def test_value(self):
        assert half_bandwidth_point(0.01) == pytest.approx(100.0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            half_bandwidth_point(0)

    def test_dam_model_for(self):
        m = AffineModel(alpha=0.001, setup_seconds=0.02)
        dam = dam_model_for(m)
        assert dam.block_bytes == 1000
        assert dam.setup_seconds == 0.02


class TestLemma1:
    """Lemma 1: affine cost C -> DAM cost <= 2C and vice versa."""

    def test_dam_of_affine_within_factor_2(self):
        alpha = 1e-3
        rng = np.random.default_rng(0)
        ios = [int(x) for x in rng.integers(1, 100_000, size=200)]
        c_affine = affine_cost(ios, alpha)
        c_dam = dam_cost_of_affine_algorithm(ios, alpha)
        assert c_dam <= 2.0 * c_affine + 1e-9

    def test_affine_of_dam_exactly_2(self):
        # Each half-bandwidth block IO costs exactly 2 affine units.
        assert affine_cost_of_dam_algorithm(10, alpha=0.01) == pytest.approx(20.0)

    def test_small_ios_lose_nothing(self):
        # IOs below the half-bandwidth point become one block each.
        alpha = 1e-4
        ios = [10, 20, 30]
        assert dam_cost_of_affine_algorithm(ios, alpha) == 3.0

    def test_factor_2_is_tight_for_tiny_ios(self):
        # Many 1-byte IOs: affine cost ~n, DAM cost n -> ratio ~1.
        # One huge IO: affine ~alpha*x, DAM ~alpha*x -> ratio ~1.
        # Half-bandwidth IOs: affine 2 per IO, DAM 1 per IO -> DAM better;
        # the 2x loss appears converting DAM back to affine.
        alpha = 1e-3
        b = int(half_bandwidth_point(alpha))
        n = 50
        affine_direct = affine_cost([b] * n, alpha)
        via_dam = affine_cost_of_dam_algorithm(n, alpha)
        assert via_dam == pytest.approx(affine_direct)

    def test_negative_io_rejected(self):
        with pytest.raises(ConfigurationError):
            dam_cost_of_affine_algorithm([-1], 0.01)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            affine_cost_of_dam_algorithm(-1, 0.01)
