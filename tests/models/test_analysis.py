"""Tests for the Table 3 cost functions and the optimum corollaries."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.models.analysis import (
    betree_insert_cost,
    betree_query_cost_naive,
    betree_query_cost_optimized,
    betree_range_cost,
    betree_speedup_over_btree,
    betree_write_amplification,
    btree_node_size_closed_form,
    btree_op_cost,
    btree_range_cost,
    btree_write_amplification,
    corollary7_stationarity_residual,
    corollary11_io_overhead,
    optimal_betree_params,
    optimal_btree_node_size,
    table3_row_betree,
    table3_row_betree_sqrtB,
    table3_row_btree,
    uncached_height,
)

N, M = 1e9, 1e6


class TestBasicCosts:
    def test_btree_cost_formula(self):
        # (1 + alpha*B) * log_{B+1}(N/M)
        expected = (1 + 1e-4 * 100) * math.log(N / M) / math.log(101)
        assert btree_op_cost(100, 1e-4, N, M) == pytest.approx(expected)

    def test_uncached_height_floor(self):
        assert uncached_height(10, 100, 2) == 1.0  # never below one level

    def test_btree_range_adds_leaf_scans(self):
        point = btree_op_cost(1000, 1e-4, N, M)
        ranged = btree_range_cost(1000, 1e-4, N, M, ell=5000)
        # 5000 items over 1000-entry leaves: 6 leaf IOs on top of the query.
        assert ranged == pytest.approx(point + 6 * (1 + 1e-4 * 1000))

    def test_betree_insert_faster_than_btree(self):
        # The write-optimization claim, at matched node size.
        B, alpha = 10_000, 1e-4
        assert betree_insert_cost(B, math.sqrt(B), alpha, N, M) < btree_op_cost(B, alpha, N, M)

    def test_betree_query_optimized_beats_naive(self):
        B, F, alpha = 100_000, 100, 1e-4
        assert betree_query_cost_optimized(B, F, alpha, N, M) < betree_query_cost_naive(
            B, F, alpha, N, M
        )

    def test_betree_range_cost_positive_and_monotone(self):
        B, F, alpha = 10_000, 100, 1e-4
        c1 = betree_range_cost(B, F, alpha, N, M, ell=100)
        c2 = betree_range_cost(B, F, alpha, N, M, ell=100_000)
        assert 0 < c1 < c2

    def test_write_amplifications(self):
        assert btree_write_amplification(500) == 500
        # Bε write amp ~ F * height, much smaller than B for big nodes.
        assert betree_write_amplification(10_000, 100, N, M) < 500 * 10

    @pytest.mark.parametrize("bad", [
        lambda: btree_op_cost(1, 1e-4, N, M),        # B too small
        lambda: btree_op_cost(100, -1, N, M),        # bad alpha
        lambda: btree_op_cost(100, 1e-4, 10, 100),   # N <= M
        lambda: betree_insert_cost(100, 1000, 1e-4, N, M),  # F > B
        lambda: btree_range_cost(100, 1e-4, N, M, -1),       # bad ell
    ])
    def test_validation(self, bad):
        with pytest.raises(ConfigurationError):
            bad()


class TestSensitivityShapes:
    """The Table 3 qualitative claims, checked numerically."""

    def test_btree_cost_grows_nearly_linearly_past_optimum(self):
        alpha = 1e-4
        b_star = optimal_btree_node_size(alpha)
        c1 = btree_op_cost(10 * b_star, alpha, N, M)
        c2 = btree_op_cost(100 * b_star, alpha, N, M)
        # Ten times the node size -> nearly ten times the cost.
        assert 5 < c2 / c1 < 11

    def test_betree_insert_grows_like_sqrt(self):
        alpha = 1e-4
        big1, big2 = 1e6, 1e8
        c1 = betree_insert_cost(big1, math.sqrt(big1), alpha, N, M)
        c2 = betree_insert_cost(big2, math.sqrt(big2), alpha, N, M)
        ratio = c2 / c1
        # sqrt(100x) = 10x, modulo the log factor.
        assert 3 < ratio < 12

    def test_betree_less_sensitive_than_btree(self):
        alpha = 1e-4
        grid = [2**k for k in range(6, 21, 2)]
        bt = [btree_op_cost(b, alpha, N, M) for b in grid]
        bq = [
            betree_query_cost_optimized(b, math.sqrt(b), alpha, N, M) for b in grid
        ]
        assert max(bt) / min(bt) > 5 * (max(bq) / min(bq))

    def test_table3_rows(self):
        r1 = table3_row_btree(1000, 1e-4, N, M)
        r2 = table3_row_betree_sqrtB(1000, 1e-4, N, M)
        r3 = table3_row_betree(1000, 10, 1e-4, N, M)
        assert r1.insert_cost == r1.query_cost
        assert r2.insert_cost < r1.insert_cost
        assert r3.node_entries == 1000


class TestCorollaries:
    def test_corollary7_optimum_below_half_bandwidth(self):
        for alpha in (1e-2, 1e-3, 1e-4, 1e-5):
            assert optimal_btree_node_size(alpha) < 1.0 / alpha

    def test_corollary7_closed_form_within_constant(self):
        for alpha in (1e-2, 1e-3, 1e-4, 1e-5):
            numeric = optimal_btree_node_size(alpha)
            closed = btree_node_size_closed_form(alpha)
            assert 0.5 < numeric / closed < 3.0

    def test_corollary7_stationarity_at_optimum(self):
        alpha = 1e-4
        x = optimal_btree_node_size(alpha)
        assert abs(corollary7_stationarity_residual(x, alpha)) < 1e-3

    def test_numeric_optimum_is_a_minimum(self):
        alpha = 1e-3
        x = optimal_btree_node_size(alpha)
        f = lambda b: btree_op_cost(b, alpha, N, M)  # noqa: E731
        assert f(x) <= f(x * 0.8) and f(x) <= f(x * 1.25)

    def test_corollary12_params(self):
        F, B = optimal_betree_params(1e-4)
        assert B == pytest.approx(F * F)
        assert F == pytest.approx(btree_node_size_closed_form(1e-4))

    def test_corollary12_query_matches_btree_to_low_order(self):
        alpha = 1e-5
        x_bt = optimal_btree_node_size(alpha)
        F, B = optimal_betree_params(alpha)
        bt = btree_op_cost(x_bt, alpha, N, M)
        be = betree_query_cost_optimized(B, F, alpha, N, M)
        assert be <= 1.5 * bt  # equal up to low-order terms

    def test_corollary12_insert_speedup_grows_with_1_over_alpha(self):
        s1 = betree_speedup_over_btree(1e-3, N, M)
        s2 = betree_speedup_over_btree(1e-5, N, M)
        assert s2 > s1 > 1.0

    def test_corollary11_overhead_small_in_valid_regime(self):
        # B = F^2 with F = 100, alpha = 1e-4: B/F*a + F*a = 0.01 + 0.01.
        assert corollary11_io_overhead(1e4, 100, 1e-4) == pytest.approx(0.02)

    @given(st.floats(min_value=1e-6, max_value=0.05))
    @settings(max_examples=30, deadline=None)
    def test_optimum_below_half_bandwidth_property(self, alpha):
        assert optimal_btree_node_size(alpha) < 1.0 / alpha

    @given(st.floats(min_value=1e-6, max_value=0.05))
    @settings(max_examples=30, deadline=None)
    def test_speedup_always_exceeds_one(self, alpha):
        assert betree_speedup_over_btree(alpha, N, M) > 1.0
