"""Key-distribution tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.distributions import (
    ClusteredKeys,
    SequentialKeys,
    UniformKeys,
    ZipfKeys,
)


class TestUniform:
    def test_in_range(self):
        keys = UniformKeys(1000, seed=1).sample(500)
        assert keys.min() >= 0 and keys.max() < 1000

    def test_deterministic(self):
        a = UniformKeys(1000, seed=2).sample(100)
        b = UniformKeys(1000, seed=2).sample(100)
        np.testing.assert_array_equal(a, b)

    def test_roughly_uniform(self):
        keys = UniformKeys(10, seed=3).sample(10_000)
        counts = np.bincount(keys, minlength=10)
        assert counts.min() > 800  # each bucket ~1000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UniformKeys(0)


class TestZipf:
    def test_skewed(self):
        keys = ZipfKeys(10**6, seed=1, theta=1.5).sample(20_000)
        _, counts = np.unique(keys, return_counts=True)
        # The hottest key dominates: far above the uniform expectation.
        assert counts.max() > 50 * counts.mean()

    def test_in_range(self):
        keys = ZipfKeys(1000, seed=2).sample(5000)
        assert keys.min() >= 0 and keys.max() < 1000

    def test_theta_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfKeys(1000, theta=1.0)

    @pytest.mark.parametrize("universe", [3, 1000, 100_003, 1 << 16, 1_000_003])
    def test_scatter_bijective(self, universe):
        # Regression: the old golden-ratio multiply-then-mod scatter is only
        # collision-free for power-of-two universes; for e.g. universe=1000
        # distinct hot ranks silently merged onto one key.  The Feistel
        # scatter must be a true permutation of [0, universe).
        z = ZipfKeys(universe, seed=3)
        image = z.scatter(np.arange(universe, dtype=np.uint64))
        assert len(np.unique(image)) == universe
        assert image.min() >= 0 and image.max() < universe

    def test_hot_ranks_stay_distinct(self):
        # The hottest zipf ranks (1, 2, 3, ...) must land on distinct keys
        # even in a non-power-of-two universe.
        z = ZipfKeys(1000, seed=0)
        hot = z.scatter(np.arange(16, dtype=np.uint64))
        assert len(np.unique(hot)) == 16

    def test_scatter_deterministic_per_seed(self):
        a = ZipfKeys(1000, seed=7).scatter(np.arange(1000, dtype=np.uint64))
        b = ZipfKeys(1000, seed=7).scatter(np.arange(1000, dtype=np.uint64))
        c = ZipfKeys(1000, seed=8).scatter(np.arange(1000, dtype=np.uint64))
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_scatter_rejects_out_of_range(self):
        z = ZipfKeys(1000, seed=0)
        with pytest.raises(ConfigurationError):
            z.scatter(np.array([1000], dtype=np.uint64))


class TestSequential:
    def test_strictly_increasing_across_calls(self):
        gen = SequentialKeys(10**6, stride=3)
        a = gen.sample(100)
        b = gen.sample(100)
        full = np.concatenate([a, b])
        assert np.all(np.diff(full) == 3)

    def test_exhaustion_detected(self):
        gen = SequentialKeys(10, stride=5)
        gen.sample(2)
        with pytest.raises(ConfigurationError):
            gen.sample(5)

    def test_stride_validation(self):
        with pytest.raises(ConfigurationError):
            SequentialKeys(100, stride=0)


class TestClustered:
    def test_keys_near_centers(self):
        gen = ClusteredKeys(10**9, seed=4, clusters=4, spread=100)
        keys = gen.sample(2000)
        dists = np.min(np.abs(keys[:, None] - gen.centers[None, :]), axis=1)
        assert dists.max() <= 100

    def test_in_range(self):
        keys = ClusteredKeys(1000, seed=5, spread=5000).sample(1000)
        assert keys.min() >= 0 and keys.max() < 1000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClusteredKeys(1000, clusters=0)
