"""Operation-stream generator tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.generators import (
    OpKind,
    insert_stream,
    mixed_stream,
    point_query_stream,
    random_load_pairs,
    range_query_stream,
    sorted_load_pairs,
)


class TestLoadPairs:
    def test_random_load_sorted_distinct(self):
        pairs = random_load_pairs(1000, 1 << 30, seed=1)
        keys = [k for k, _ in pairs]
        assert len(pairs) == 1000
        assert keys == sorted(set(keys))

    def test_random_load_deterministic(self):
        assert random_load_pairs(100, 10**6, seed=2) == random_load_pairs(100, 10**6, seed=2)

    def test_universe_too_small(self):
        with pytest.raises(ConfigurationError):
            random_load_pairs(100, 150)

    def test_sorted_load(self):
        pairs = sorted_load_pairs(10, stride=5)
        assert [k for k, _ in pairs] == list(range(0, 50, 5))

    def test_values_derived_from_keys(self):
        pairs = random_load_pairs(50, 10**6, seed=3)
        assert all(v == k * 2 + 1 for k, v in pairs)


class TestQueryStreams:
    def test_point_queries_hit_loaded_keys(self):
        loaded = [k for k, _ in random_load_pairs(500, 10**6, seed=4)]
        qs = list(point_query_stream(loaded, 200, seed=5))
        assert len(qs) == 200
        assert all(q in set(loaded) for q in qs)

    def test_miss_fraction(self):
        loaded = [k * 2 for k in range(1000)]  # all even
        qs = list(point_query_stream(loaded, 400, seed=6, hit_fraction=0.0))
        assert all(q % 2 == 1 for q in qs)  # misses are odd

    def test_empty_loaded_rejected(self):
        with pytest.raises(ConfigurationError):
            list(point_query_stream([], 10))

    def test_range_stream_spans(self):
        loaded = sorted(k for k, _ in random_load_pairs(1000, 10**6, seed=7))
        for lo, hi in range_query_stream(loaded, 50, span_keys=10, seed=8):
            assert lo <= hi
            inside = [k for k in loaded if lo <= k <= hi]
            assert len(inside) == 10

    def test_insert_stream(self):
        items = list(insert_stream(10**6, 100, seed=9))
        assert len(items) == 100
        assert all(0 <= k < 10**6 and v == k * 2 + 1 for k, v in items)


class TestMixedStream:
    def test_fraction_composition(self):
        loaded = list(range(0, 10_000, 2))
        ops = list(
            mixed_stream(loaded, 10**6, 4000, seed=10, insert_frac=0.5, delete_frac=0.1)
        )
        kinds = [op.kind for op in ops]
        n = len(kinds)
        assert kinds.count(OpKind.INSERT) / n == pytest.approx(0.5, abs=0.05)
        assert kinds.count(OpKind.DELETE) / n == pytest.approx(0.1, abs=0.03)
        assert kinds.count(OpKind.QUERY) / n == pytest.approx(0.4, abs=0.05)

    def test_range_ops_have_bounds(self):
        loaded = list(range(1000))
        ops = list(mixed_stream(loaded, 10**6, 500, seed=11, insert_frac=0.0,
                                range_frac=1.0, range_span=10))
        assert all(op.kind is OpKind.RANGE and op.hi is not None and op.hi >= op.key
                   for op in ops)

    def test_fractions_over_one_rejected(self):
        with pytest.raises(ConfigurationError):
            list(mixed_stream([1], 100, 10, insert_frac=0.8, delete_frac=0.4))

    def test_deterministic(self):
        loaded = list(range(100))
        a = list(mixed_stream(loaded, 10**6, 100, seed=12))
        b = list(mixed_stream(loaded, 10**6, 100, seed=12))
        assert a == b
