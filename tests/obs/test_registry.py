"""Metrics-registry semantics: counters, gauges, log-scale histograms."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6


class TestGauge:
    def test_tracks_last_min_max(self):
        g = Gauge("x")
        for v in (3.0, 1.0, 7.0):
            g.set(v)
        assert g.value == 7.0
        assert g.vmin == 1.0
        assert g.vmax == 7.0
        assert g.n_sets == 3


class TestHistogram:
    def test_power_of_two_bucketing(self):
        h = Histogram("x")
        # Bucket e covers (2**(e-1), 2**e]: exact powers of two land in
        # their own bucket, values just above spill into the next.
        h.record(4.0)     # (2, 4]   -> bucket 2
        h.record(4.0001)  # (4, 8]   -> bucket 3
        h.record(3.0)     # (2, 4]   -> bucket 2
        assert h.buckets == {2: 2, 3: 1}

    def test_bucket_bounds_contain_recorded_values(self):
        h = Histogram("x")
        values = [1e-9, 0.004, 0.5, 1.0, 3.7, 4096.0, 1.5e6]
        for v in values:
            h.record(v)
        for key, count in h.buckets.items():
            lo, hi = h.bucket_bounds(key)
            covered = [v for v in values if lo < v <= hi]
            assert len(covered) == count

    def test_nonpositive_goes_to_reserved_bucket(self):
        h = Histogram("x")
        h.record(0.0)
        h.record(-1.0)
        assert h.buckets == {None: 2}

    def test_mean_min_max(self):
        h = Histogram("x")
        for v in (1.0, 2.0, 9.0):
            h.record(v)
        assert h.mean == pytest.approx(4.0)
        assert h.vmin == 1.0
        assert h.vmax == 9.0
        assert h.count == 3


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_bad_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("")
        with pytest.raises(ConfigurationError):
            reg.gauge(" padded ")

    def test_reset_zeroes_but_keeps_instruments(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("a").inc(3)
        reg.gauge("b").set(2.0)
        reg.histogram("c").record(1.5)
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 0}
        assert snap["gauges"]["b"]["n_sets"] == 0
        assert snap["gauges"]["b"]["min"] is None
        assert snap["histograms"]["c"]["count"] == 0
        assert snap["histograms"]["c"]["buckets"] == {}

    def test_enable_disable(self):
        reg = MetricsRegistry()
        assert not reg.enabled
        reg.enable()
        assert reg.enabled
        reg.disable()
        assert not reg.enabled

    def test_io_event_updates_family(self):
        reg = MetricsRegistry(enabled=True)
        reg.io_event("Dev", "read", 0, 4096, 1.0, 1.25, 0.05)
        snap = reg.snapshot()
        assert snap["counters"]["device.read.ios"] == 1
        assert snap["counters"]["device.read.bytes"] == 4096
        assert snap["counters"]["device.setup_seconds_x1e9"] == int(0.05 * 1e9)
        assert snap["histograms"]["device.read.seconds"]["count"] == 1
        assert snap["histograms"]["device.read.io_bytes"]["max"] == 4096

    def test_op_event_updates_family(self):
        reg = MetricsRegistry(enabled=True)
        reg.op_event("btree.query", 0.0, 0.5, key=7)
        snap = reg.snapshot()
        assert snap["counters"]["btree.query.count"] == 1
        assert snap["histograms"]["btree.query.io_seconds"]["mean"] == 0.5

    def test_snapshot_is_json_able_and_sorted(self):
        import json

        reg = MetricsRegistry(enabled=True)
        reg.counter("z").inc()
        reg.counter("a").inc()
        snap = reg.snapshot()
        assert snap["schema"] == "repro.obs.metrics/v1"
        assert list(snap["counters"]) == ["a", "z"]
        json.dumps(snap)  # must not raise

    def test_gauge_snapshot_nan_free_when_unset(self):
        reg = MetricsRegistry(enabled=True)
        reg.gauge("g")
        snap = reg.snapshot()
        g = snap["gauges"]["g"]
        assert g["min"] is None and g["max"] is None
        assert not any(
            isinstance(v, float) and math.isnan(v) for v in g.values() if v is not None
        )
