"""Span tracer tests: buffering, bounds, JSONL round-trip."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.tracing import (
    TRACE_SCHEMA,
    SpanRecord,
    Tracer,
    read_jsonl,
    spans_from_jsonl,
)


class TestTracer:
    def test_record_and_duration(self):
        t = Tracer()
        t.record("device.read", 1.0, 1.5, clock="sim", nbytes=4096)
        assert len(t) == 1
        s = t.spans[0]
        assert s.duration == pytest.approx(0.5)
        assert s.attrs == {"nbytes": 4096}

    def test_bad_clock_rejected(self):
        t = Tracer()
        with pytest.raises(ConfigurationError):
            t.record("x", 0.0, 1.0, clock="cpu")

    def test_bounded_buffer_counts_drops(self):
        t = Tracer(max_spans=2)
        for i in range(5):
            t.record("x", float(i), float(i + 1))
        assert len(t) == 2
        assert t.n_dropped == 3

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            Tracer(max_spans=0)

    def test_clear(self):
        t = Tracer(max_spans=1)
        t.record("x", 0.0, 1.0)
        t.record("y", 0.0, 1.0)  # dropped
        t.clear()
        assert len(t) == 0 and t.n_dropped == 0

    def test_wall_span_contextmanager(self):
        t = Tracer()
        with t.span("work", label="w"):
            pass
        (s,) = t.spans
        assert s.clock == "wall"
        assert s.end >= s.start
        assert s.attrs == {"label": "w"}


class TestJSONLRoundTrip:
    def test_round_trip_exact(self):
        t = Tracer()
        t.record("device.read", 0.0, 0.25, clock="sim", offset=0, nbytes=4096)
        t.record("runner.sweep", 1.0, 3.5, clock="wall", jobs=2)
        back = spans_from_jsonl(t.to_jsonl())
        assert back == t.spans

    def test_header_first_line(self):
        import json

        t = Tracer()
        t.record("x", 0.0, 1.0)
        header = json.loads(t.to_jsonl().splitlines()[0])
        assert header == {
            "type": "header",
            "schema": TRACE_SCHEMA,
            "n_spans": 1,
            "n_dropped": 0,
        }

    def test_export_and_read_file(self, tmp_path):
        t = Tracer()
        t.record("x", 0.0, 1.0, clock="sim", k="v")
        path = t.export_jsonl(tmp_path / "sub" / "trace.jsonl")
        assert path.exists()
        assert read_jsonl(path) == t.spans

    def test_empty_trace_round_trips(self):
        assert spans_from_jsonl(Tracer().to_jsonl()) == []

    def test_missing_header_rejected(self):
        with pytest.raises(ConfigurationError):
            spans_from_jsonl('{"type": "span", "name": "x"}\n')

    def test_alien_schema_rejected(self):
        with pytest.raises(ConfigurationError):
            spans_from_jsonl('{"type": "header", "schema": "other/v9"}\n')

    def test_unknown_record_type_rejected(self):
        text = (
            '{"type": "header", "schema": "%s", "n_spans": 0, "n_dropped": 0}\n'
            '{"type": "blob"}\n' % TRACE_SCHEMA
        )
        with pytest.raises(ConfigurationError):
            spans_from_jsonl(text)

    def test_inconsistent_times_rejected(self):
        text = (
            '{"type": "header", "schema": "%s", "n_spans": 1, "n_dropped": 0}\n'
            '{"type": "span", "name": "x", "clock": "sim", "start": 5.0, "end": 1.0, "attrs": {}}\n'
            % TRACE_SCHEMA
        )
        with pytest.raises(ConfigurationError):
            spans_from_jsonl(text)

    def test_span_count_mismatch_rejected(self):
        text = '{"type": "header", "schema": "%s", "n_spans": 3, "n_dropped": 0}\n' % TRACE_SCHEMA
        with pytest.raises(ConfigurationError):
            spans_from_jsonl(text)

    def test_empty_text_rejected(self):
        with pytest.raises(ConfigurationError):
            spans_from_jsonl("")


class TestSpanRecord:
    def test_frozen(self):
        s = SpanRecord("x", "sim", 0.0, 1.0)
        with pytest.raises(AttributeError):
            s.name = "y"
