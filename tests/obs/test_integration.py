"""End-to-end observability: instrumented layers, identity, CLI exposure.

The load-bearing guarantee is *identity*: enabling metrics/tracing must
not move a single simulated clock tick, because instrumentation only
reads what the simulator already computed.
"""

import pytest

from repro import obs
from repro.experiments.devices import default_hdd
from repro.storage.stack import StorageStack
from repro.trees.btree import BTree, BTreeConfig


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with the registry off and empty."""
    obs.disable(detach_tracer=True)
    obs.reset()
    yield
    obs.disable(detach_tracer=True)
    obs.reset()


def run_btree_workload(n_ops: int = 400) -> float:
    """A small mixed workload; returns the simulated device clock."""
    device = default_hdd(seed=3)
    stack = StorageStack(device, cache_bytes=64 << 10)
    tree = BTree(stack, BTreeConfig(node_bytes=4096))
    for k in range(n_ops):
        tree.insert(k * 7 % 1000, k)
    for k in range(0, n_ops, 3):
        tree.get(k * 7 % 1000)
    stack.flush()
    return device.clock


class TestIdentity:
    def test_disabled_run_records_nothing(self):
        run_btree_workload()
        snap = obs.OBS.snapshot()
        assert all(v == 0 for v in snap["counters"].values())
        assert all(h["count"] == 0 for h in snap["histograms"].values())

    def test_simulated_clock_identical_on_off(self):
        clock_off = run_btree_workload()
        obs.enable(trace=True)
        clock_on = run_btree_workload()
        assert clock_on == clock_off  # byte-identical, not approx

    def test_enable_disable_round_trip_is_noop_for_results(self):
        obs.enable()
        obs.disable()
        a = run_btree_workload()
        b = run_btree_workload()
        assert a == b


class TestInstrumentedLayers:
    def test_device_and_cache_and_tree_metrics(self):
        obs.enable(trace=True)
        run_btree_workload()
        snap = obs.OBS.snapshot()
        c = snap["counters"]
        assert c["device.read.ios"] > 0
        assert c["device.write.ios"] > 0
        # HDDs report their seek/bandwidth split per IO.
        assert c["device.setup_seconds_x1e9"] > 0
        assert c["device.transfer_seconds_x1e9"] > 0
        assert c["cache.hits"] > 0 and c["cache.misses"] > 0
        assert c["btree.query.count"] > 0
        assert snap["histograms"]["device.read.io_bytes"]["count"] == c["device.read.ios"]

    def test_cache_counters_match_cachestats(self):
        obs.enable()
        device = default_hdd(seed=3)
        stack = StorageStack(device, cache_bytes=64 << 10)
        tree = BTree(stack, BTreeConfig(node_bytes=4096))
        for k in range(300):
            tree.insert(k, k)
        stack.flush()
        c = obs.OBS.snapshot()["counters"]
        assert c["cache.hits"] == stack.cache.stats.hits
        assert c["cache.misses"] == stack.cache.stats.misses
        assert c["cache.evictions"] == stack.cache.stats.evictions

    def test_tree_spans_have_sim_clock(self):
        obs.enable(trace=True)
        run_btree_workload()
        spans = obs.OBS.tracer.spans
        tree_spans = [s for s in spans if s.name.startswith("btree.")]
        assert tree_spans
        assert all(s.clock == "sim" for s in tree_spans)
        io_spans = [s for s in spans if s.name.startswith("device.")]
        assert io_spans
        assert all(s.end >= s.start for s in io_spans)

    def test_runner_metrics(self, tmp_path):
        from repro.runner import ResultCache, run_sweep
        from repro.runner.spec import SweepPoint, SweepSpec

        obs.enable()
        spec = SweepSpec.make(
            "obs-test",
            [
                SweepPoint.make(
                    "btree_nodesize_point",
                    node_bytes=nb,
                    n_entries=2000,
                    cache_bytes=64 << 10,
                    universe=1 << 20,
                    n_queries=50,
                    n_inserts=50,
                    warmup_queries=10,
                    seed=1,
                )
                for nb in (1 << 14, 1 << 15)
            ],
        )
        cache = ResultCache(tmp_path)
        run_sweep(spec, cache=cache)
        c = obs.OBS.snapshot()["counters"]
        assert c["runner.points"] == 2
        assert c["runner.cache_misses"] == 2
        run_sweep(spec, cache=cache)
        c = obs.OBS.snapshot()["counters"]
        assert c["runner.cache_hits"] == 2
        assert obs.OBS.snapshot()["histograms"]["runner.point_seconds"]["count"] == 2


class TestCLI:
    def test_metrics_flag_renders_block_and_trace(self, tmp_path, capsys):
        from repro.experiments.cli import main
        from repro.obs import read_jsonl

        trace_path = tmp_path / "e3.jsonl"
        rc = main(
            ["table2", "--metrics", "--trace-out", str(trace_path), "--no-cache"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "table2 metrics: counters" in out
        assert "device.read.ios" in out
        assert "runner.point_seconds" in out
        spans = read_jsonl(trace_path)  # validates header + every span
        names = {s.name for s in spans}
        assert "device.read" in names
        assert "runner.sweep" in names

    def test_metrics_off_prints_no_block(self, capsys):
        from repro.experiments.cli import main

        rc = main(["table2", "--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "metrics: counters" not in out
        # And the global registry stayed silent.
        assert all(v == 0 for v in obs.OBS.snapshot()["counters"].values())
