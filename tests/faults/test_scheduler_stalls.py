"""PDAM channel stalls in ReadAheadScheduler, and hedging on spare slots."""

import pytest

from repro.errors import InvalidIOError
from repro.faults import FaultPlan, ResiliencePolicy
from repro.models.pdam import PDAMModel
from repro.storage.ideal import PDAMDevice
from repro.storage.scheduler import ReadAheadScheduler

STALL_PLAN = FaultPlan(seed=3, stall_prob=0.25, stall_steps=4)


def _drive(plan, policy=None, *, parallelism=8, clients=4, rounds=200):
    device = PDAMDevice(
        PDAMModel(parallelism, 4096, step_seconds=1e-3), capacity_bytes=1 << 30
    )
    sched = ReadAheadScheduler(
        device, expand_readahead=False, fault_plan=plan, policy=policy
    )
    for step in range(rounds):
        for c in range(clients):
            sched.submit(c, (step * clients + c) * 37 % 4000)
        sched.step()
    return sched, device


class TestStallInjection:
    def test_stalls_slow_the_device(self):
        _, faulty = _drive(STALL_PLAN)
        _, clean = _drive(None)
        assert faulty.steps_elapsed > clean.steps_elapsed
        assert faulty.clock > clean.clock

    def test_stall_count_deterministic(self):
        a, _ = _drive(STALL_PLAN)
        b, _ = _drive(STALL_PLAN)
        assert a.fault_stats.stalls_injected == b.fault_stats.stalls_injected > 0

    def test_rng_position_independent_of_policy(self):
        # none vs hedge must see the identical stall sequence: the draws
        # depend only on the step count, so policies are comparable.
        none_sched, _ = _drive(STALL_PLAN, ResiliencePolicy.none())
        hedge_sched, _ = _drive(STALL_PLAN, ResiliencePolicy.hedged(1.5e-3))
        assert (
            none_sched.fault_stats.stalls_injected
            == hedge_sched.fault_stats.stalls_injected
        )

    def test_device_stall_accounting(self):
        device = PDAMDevice(PDAMModel(4, 4096, step_seconds=2.0), capacity_bytes=1 << 20)
        clock = device.stall(3)
        assert clock == 6.0
        assert device.steps_elapsed == 3
        assert device.slots_wasted == 12
        assert device.stall(0) == 6.0  # no-op

    def test_negative_stall_rejected(self):
        device = PDAMDevice(PDAMModel(4, 4096), capacity_bytes=1 << 20)
        with pytest.raises(InvalidIOError):
            device.stall(-1)


class TestHedgingRecoversThroughput:
    def test_hedge_strictly_faster_than_none(self):
        _, none_dev = _drive(STALL_PLAN, ResiliencePolicy.none())
        hedge_sched, hedge_dev = _drive(STALL_PLAN, ResiliencePolicy.hedged(1.5e-3))
        assert hedge_dev.steps_elapsed < none_dev.steps_elapsed
        assert hedge_sched.fault_stats.hedges_issued > 0
        assert hedge_sched.fault_stats.hedge_wins > 0

    def test_hedge_recovers_most_of_fault_free_throughput(self):
        _, clean = _drive(None)
        _, hedged = _drive(STALL_PLAN, ResiliencePolicy.hedged(1.5e-3))
        _, unhedged = _drive(STALL_PLAN, ResiliencePolicy.none())
        recovery = clean.steps_elapsed / hedged.steps_elapsed
        baseline = clean.steps_elapsed / unhedged.steps_elapsed
        # This plan is intense (2 expected stalls/step on 8 channels);
        # hedging still at least doubles throughput and lands well above
        # half the fault-free rate.  E18's milder default plan recovers
        # 90%+ (asserted in test_tail_resilience.py).
        assert recovery > 2 * baseline
        assert recovery > 0.65

    def test_no_spare_slots_means_no_hedging(self):
        # clients == P: every slot is a demand, so nothing can hedge.
        sched, _ = _drive(
            STALL_PLAN, ResiliencePolicy.hedged(1.5e-3), parallelism=4, clients=4
        )
        assert sched.fault_stats.hedges_issued == 0

    def test_hedged_duplicates_counted_as_slot_traffic(self):
        _, hedge_dev = _drive(STALL_PLAN, ResiliencePolicy.hedged(1.5e-3))
        _, none_dev = _drive(STALL_PLAN, ResiliencePolicy.none())
        # Duplicates are real reads presented to serve_step.
        assert hedge_dev.stats.reads > none_dev.stats.reads


class TestReadAheadInteraction:
    def test_readahead_uses_slots_hedging_left(self):
        device = PDAMDevice(PDAMModel(8, 4096, step_seconds=1e-3), capacity_bytes=1 << 30)
        sched = ReadAheadScheduler(
            device,
            expand_readahead=True,
            fault_plan=FaultPlan(seed=3, stall_prob=1.0, stall_steps=4),
            policy=ResiliencePolicy.hedged(1.5e-3),
        )
        sched.submit(0, 100)
        sched.submit(1, 500)
        fetched = sched.step()
        # All 8 slots went somewhere: 2 demands + hedges + read-ahead.
        total_fetched = sum(len(b) for b in fetched.values())
        assert total_fetched >= 2
        assert device.slots_used + device.slots_wasted == device.steps_elapsed * 8
