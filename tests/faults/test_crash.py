"""CrashPlan validation/serialization and FaultyDevice crash semantics."""

import pytest

from repro.errors import ConfigurationError, DeviceCrashed
from repro.faults import CRASH_SCHEMA, CrashPlan, CrashState, FaultPlan, FaultyDevice
from repro.storage.ram import ConstantLatencyDevice


def faulty(*, crash=None, plan=None):
    inner = ConstantLatencyDevice(1e-3, capacity_bytes=1 << 30)
    return FaultyDevice(inner, plan if plan is not None else FaultPlan(), crash=crash)


class TestCrashPlanValidation:
    def test_exactly_one_trigger_required(self):
        with pytest.raises(ConfigurationError):
            CrashPlan()
        with pytest.raises(ConfigurationError):
            CrashPlan(at_io=3, at_seconds=1.0)

    def test_negative_triggers_rejected(self):
        with pytest.raises(ConfigurationError):
            CrashPlan(at_io=-1)
        with pytest.raises(ConfigurationError):
            CrashPlan(at_seconds=-0.5)

    def test_fires_at(self):
        plan = CrashPlan(at_io=3)
        assert not plan.fires_at(2, 0.0)
        assert plan.fires_at(3, 0.0)
        assert plan.fires_at(7, 0.0)
        timed = CrashPlan(at_seconds=1.5)
        assert not timed.fires_at(0, 1.49)
        assert timed.fires_at(0, 1.5)


class TestCrashPlanSerialization:
    def test_round_trip(self):
        plan = CrashPlan(seed=9, at_io=42, torn=False)
        assert CrashPlan.from_json(plan.to_json()) == plan
        timed = CrashPlan(at_seconds=0.25)
        assert CrashPlan.from_json(timed.to_json()) == timed

    def test_schema_tag_present_and_checked(self):
        text = CrashPlan(at_io=1).to_json()
        assert CRASH_SCHEMA in text
        with pytest.raises(ConfigurationError, match="bogus/v9"):
            CrashPlan.from_json(text.replace(CRASH_SCHEMA, "bogus/v9"))

    def test_unknown_fields_rejected_by_name(self):
        with pytest.raises(ConfigurationError, match="surprise"):
            CrashPlan.from_json('{"at_io": 1, "surprise": true}')

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError):
            CrashPlan.from_json("{not json")
        with pytest.raises(ConfigurationError):
            CrashPlan.from_json("[1]")

    def test_from_file(self, tmp_path):
        path = tmp_path / "crash.json"
        plan = CrashPlan(seed=4, at_io=7)
        path.write_text(plan.to_json())
        assert CrashPlan.from_file(path) == plan
        with pytest.raises(ConfigurationError):
            CrashPlan.from_file(tmp_path / "missing.json")


class TestCrashLifecycle:
    def test_crash_fires_at_ordinal_and_refuses_io(self):
        dev = faulty(crash=CrashPlan(seed=1, at_io=2))
        dev.write(0, 4096)
        dev.write(4096, 4096)
        with pytest.raises(DeviceCrashed):
            dev.write(8192, 4096)
        assert dev.crashed
        assert isinstance(dev.crash_state, CrashState)
        assert dev.crash_state.ordinal == 2
        with pytest.raises(DeviceCrashed):
            dev.read(0, 4096)

    def test_crashed_io_charges_nothing(self):
        dev = faulty(crash=CrashPlan(seed=1, at_io=1))
        dev.write(0, 4096)
        clock = dev.clock
        with pytest.raises(DeviceCrashed):
            dev.write(4096, 4096)
        assert dev.clock == clock
        assert dev.inner.clock == clock
        assert dev.stats.ios == 1

    def test_recover_spends_the_plan(self):
        dev = faulty(crash=CrashPlan(seed=1, at_io=0))
        with pytest.raises(DeviceCrashed):
            dev.read(0, 4096)
        state = dev.recover()
        assert state.ordinal == 0
        assert dev.recoveries == 1
        assert not dev.crashed
        # Spent: the same ordinal passes now, and every later one too.
        for i in range(5):
            dev.read(i * 4096, 4096)

    def test_recover_without_crash_rejected(self):
        dev = faulty(crash=CrashPlan(seed=1, at_io=99))
        with pytest.raises(ConfigurationError):
            dev.recover()

    def test_timed_crash_fires_on_clock(self):
        dev = faulty(crash=CrashPlan(seed=1, at_seconds=2.5e-3))
        dev.write(0, 4096)
        dev.write(4096, 4096)
        dev.write(8192, 4096)  # clock now 3ms >= 2.5ms at next IO
        with pytest.raises(DeviceCrashed):
            dev.write(0, 4096)
        assert dev.crash_state.kind == "write"

    def test_reset_rearms(self):
        dev = faulty(crash=CrashPlan(seed=1, at_io=0))
        with pytest.raises(DeviceCrashed):
            dev.read(0, 4096)
        dev.recover()
        dev.read(0, 4096)
        dev.reset()
        with pytest.raises(DeviceCrashed):
            dev.read(0, 4096)

    def test_arm_crash_restarts_ordinals(self):
        dev = faulty()
        for i in range(4):
            dev.read(i * 4096, 4096)
        dev.arm_crash(CrashPlan(seed=1, at_io=1))
        dev.read(0, 4096)  # ordinal 0 counted from arming
        with pytest.raises(DeviceCrashed):
            dev.read(4096, 4096)


class TestTornWrites:
    def test_torn_write_persists_a_prefix(self):
        dev = faulty(crash=CrashPlan(seed=5, at_io=0, torn=True))
        with pytest.raises(DeviceCrashed) as info:
            dev.write(0, 4096)
        persisted = info.value.state.persisted_bytes
        assert 0 <= persisted < 4096

    def test_torn_fraction_is_seeded(self):
        def persisted(seed):
            dev = faulty(crash=CrashPlan(seed=seed, at_io=0, torn=True))
            with pytest.raises(DeviceCrashed) as info:
                dev.write(0, 4096)
            return info.value.state.persisted_bytes

        assert persisted(5) == persisted(5)

    def test_untorn_crash_persists_nothing(self):
        dev = faulty(crash=CrashPlan(seed=5, at_io=0, torn=False))
        with pytest.raises(DeviceCrashed) as info:
            dev.write(0, 4096)
        assert info.value.state.persisted_bytes == 0

    def test_crashed_read_persists_nothing(self):
        dev = faulty(crash=CrashPlan(seed=5, at_io=0, torn=True))
        with pytest.raises(DeviceCrashed) as info:
            dev.read(0, 4096)
        assert info.value.state.persisted_bytes == 0
        assert info.value.state.kind == "read"


class TestFaultStreamIsolation:
    def test_crash_does_not_shift_the_fault_rng(self):
        # The torn-fraction draw uses a dedicated RNG: after recovery the
        # plan RNG must sit exactly where a crash-free device's sits
        # after the same number of *completed* IOs.
        plan = FaultPlan(seed=11, spike_prob=0.5, spike_seconds=0.01)
        ref = faulty(plan=plan)
        dev = faulty(plan=plan, crash=CrashPlan(seed=3, at_io=2, torn=True))
        for i in range(2):
            ref.write(i * 4096, 4096)
            dev.write(i * 4096, 4096)
        with pytest.raises(DeviceCrashed):
            dev.write(8192, 4096)
        dev.recover()
        # The retried IO and three more must cost exactly what the
        # crash-free device charges for the same stream.
        for i in range(2, 6):
            assert dev.write(i * 4096, 4096) == ref.write(i * 4096, 4096)

    def test_describe_includes_crash(self):
        dev = faulty(crash=CrashPlan(seed=2, at_io=9))
        assert dev.describe()["crash"]["at_io"] == 9
        assert "crash" not in faulty().describe()
