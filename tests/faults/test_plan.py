"""FaultPlan / DegradedPhase validation, scaling, and serialization."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import PLAN_SCHEMA, DegradedPhase, FaultPlan


class TestDegradedPhase:
    def test_half_open_interval(self):
        p = DegradedPhase(1.0, 2.0, 3.0)
        assert not p.active_at(0.5)
        assert p.active_at(1.0)
        assert p.active_at(1.999)
        assert not p.active_at(2.0)

    def test_bad_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            DegradedPhase(2.0, 1.0, 3.0)
        with pytest.raises(ConfigurationError):
            DegradedPhase(-1.0, 1.0, 3.0)
        with pytest.raises(ConfigurationError):
            DegradedPhase(1.0, 1.0, 3.0)

    def test_speedup_rejected(self):
        with pytest.raises(ConfigurationError):
            DegradedPhase(0.0, 1.0, 0.5)


class TestFaultPlanValidation:
    def test_default_plan_injects_nothing(self):
        assert not FaultPlan().injects_anything

    def test_probabilities_bounded(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(spike_prob=1.5, spike_seconds=1.0)
        with pytest.raises(ConfigurationError):
            FaultPlan(error_prob=-0.1)
        with pytest.raises(ConfigurationError):
            FaultPlan(stall_prob=2.0)

    def test_spike_prob_needs_scale(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(spike_prob=0.1)

    def test_stall_steps_positive(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(stall_steps=0)

    def test_degraded_entries_typed(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(degraded=({"start_seconds": 0, "end_seconds": 1, "slowdown": 2},))


class TestSlowdown:
    def test_phases_multiply(self):
        plan = FaultPlan(
            degraded=(DegradedPhase(0.0, 10.0, 2.0), DegradedPhase(5.0, 15.0, 3.0))
        )
        assert plan.slowdown_at(1.0) == 2.0
        assert plan.slowdown_at(7.0) == 6.0
        assert plan.slowdown_at(12.0) == 3.0
        assert plan.slowdown_at(20.0) == 1.0


class TestScaled:
    def test_zero_intensity_injects_nothing(self):
        plan = FaultPlan(spike_prob=0.5, spike_seconds=1.0, error_prob=0.2, stall_prob=0.3)
        assert not plan.scaled(0.0).injects_anything

    def test_probabilities_scale_and_clamp(self):
        plan = FaultPlan(spike_prob=0.4, spike_seconds=1.0, error_prob=0.6)
        doubled = plan.scaled(2.0)
        assert doubled.spike_prob == pytest.approx(0.8)
        assert doubled.error_prob == 1.0  # clamped

    def test_negative_intensity_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan().scaled(-1.0)

    def test_seed_and_shape_preserved(self):
        plan = FaultPlan(seed=9, spike_prob=0.1, spike_seconds=2.0, spike_alpha=1.1)
        half = plan.scaled(0.5)
        assert half.seed == 9
        assert half.spike_seconds == 2.0
        assert half.spike_alpha == 1.1


class TestSerialization:
    def test_round_trip(self):
        plan = FaultPlan(
            seed=3,
            spike_prob=0.05,
            spike_seconds=0.02,
            error_prob=0.01,
            degraded=(DegradedPhase(1.0, 2.0, 4.0),),
            stall_prob=0.1,
            stall_steps=5,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_schema_tag_present_and_checked(self):
        text = FaultPlan().to_json()
        assert PLAN_SCHEMA in text
        with pytest.raises(ConfigurationError):
            FaultPlan.from_json(text.replace(PLAN_SCHEMA, "bogus/v9"))

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_json('{"seed": 1, "surprise": true}')

    def test_unknown_fields_named_in_the_error(self):
        with pytest.raises(ConfigurationError, match="surprise"):
            FaultPlan.from_json('{"seed": 1, "surprise": true}')

    def test_degraded_phase_unknown_fields_named(self):
        text = (
            '{"degraded": [{"start_seconds": 0, "end_seconds": 1,'
            ' "slowdown": 2, "oops": 1}]}'
        )
        with pytest.raises(ConfigurationError, match=r"degraded\[0\].*oops"):
            FaultPlan.from_json(text)

    def test_degraded_phase_must_be_an_object(self):
        text = (
            '{"degraded": [{"start_seconds": 0, "end_seconds": 1,'
            ' "slowdown": 2}, 5]}'
        )
        with pytest.raises(ConfigurationError, match=r"degraded\[1\]"):
            FaultPlan.from_json(text)

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_json("{not json")
        with pytest.raises(ConfigurationError):
            FaultPlan.from_json("[1, 2]")

    def test_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        plan = FaultPlan(seed=7, error_prob=0.5)
        path.write_text(plan.to_json())
        assert FaultPlan.from_file(path) == plan
        with pytest.raises(ConfigurationError):
            FaultPlan.from_file(tmp_path / "missing.json")
