"""The no-fault identity invariant (ISSUE acceptance criterion).

Wrapping a device in a zero :class:`FaultPlan` — or attaching a no-op
policy, or constructing the scheduler/engine with no plan — must leave
every simulated timing byte-identical to the unwrapped code path.  These
tests pin exact float equality, not approx: the fault layer is only
allowed to *exist* for free.
"""

from repro.experiments.common import build_load, measure_tree_ops
from repro.experiments.devices import default_hdd
from repro.faults import FaultPlan, FaultyDevice, ResiliencePolicy
from repro.models.pdam import PDAMModel
from repro.storage.engine import ClosedLoopRunner, Resource
from repro.storage.ideal import PDAMDevice
from repro.storage.scheduler import ReadAheadScheduler
from repro.storage.stack import StorageStack
from repro.trees.btree import BTree, BTreeConfig


def _measure_btree(device):
    pairs, keys = build_load(20_000, 1 << 30, seed=3)
    storage = StorageStack(device, 1 << 20)
    tree = BTree(storage, BTreeConfig())
    tree.bulk_load(pairs)
    return measure_tree_ops(
        tree, keys, 1 << 30, n_queries=60, n_inserts=60, warmup_queries=30, seed=3
    )


class TestTreeByteIdentity:
    def test_zero_plan_wrapper_is_invisible(self):
        bare = _measure_btree(default_hdd(seed=3))
        wrapped = _measure_btree(
            FaultyDevice(default_hdd(seed=3), FaultPlan(seed=99))
        )
        assert wrapped == bare  # exact float equality, every field

    def test_none_policy_via_stack_is_invisible(self):
        bare = _measure_btree(default_hdd(seed=3))
        pairs, keys = build_load(20_000, 1 << 30, seed=3)
        storage = StorageStack(
            default_hdd(seed=3), 1 << 20, resilience=ResiliencePolicy.none()
        )
        tree = BTree(storage, BTreeConfig())
        tree.bulk_load(pairs)
        wrapped = measure_tree_ops(
            tree, keys, 1 << 30, n_queries=60, n_inserts=60, warmup_queries=30, seed=3
        )
        assert wrapped == bare

    def test_intensity_zero_scaling_is_invisible(self):
        plan = FaultPlan(seed=7, spike_prob=0.5, spike_seconds=0.1, error_prob=0.2)
        bare = _measure_btree(default_hdd(seed=3))
        wrapped = _measure_btree(
            FaultyDevice(default_hdd(seed=3), plan.scaled(0.0))
        )
        assert wrapped == bare


class TestSchedulerByteIdentity:
    def _drive(self, fault_plan, policy=None):
        device = PDAMDevice(PDAMModel(8, 4096, step_seconds=1e-3), capacity_bytes=1 << 30)
        sched = ReadAheadScheduler(device, fault_plan=fault_plan, policy=policy)
        fetched = []
        for step in range(40):
            for c in range(4):
                sched.submit(c, (step * 4 + c) * 13 % 1000)
            fetched.append(sched.step())
        return fetched, device.clock, device.steps_elapsed

    def test_no_plan_equals_zero_stall_plan(self):
        assert self._drive(None) == self._drive(FaultPlan(seed=5))

    def test_none_policy_changes_nothing(self):
        assert self._drive(None) == self._drive(None, ResiliencePolicy.none())


class TestEngineByteIdentity:
    def _run(self, policy):
        r = Resource()
        runner = ClosedLoopRunner(lambda req, at: r.acquire(at, req), policy=policy)
        return runner.run([[0.5, 1.0, 0.25] * 10, [1.0] * 20])

    def test_none_policy_equals_no_policy(self):
        assert self._run(None) == self._run(ResiliencePolicy.none())
