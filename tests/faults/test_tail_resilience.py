"""E18 tail-resilience experiment: structure plus the acceptance criteria.

The ISSUE pins two behaviors: hedging must achieve *strictly lower p99*
than no policy on a PDAM-SSD-like configuration, and the experiment's
intensity-zero rows must be identical across policies (a no-op policy on
no faults is the fault-free baseline).
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import exp_tail_resilience as e18
from repro.faults import FaultPlan, FaultyDevice, ResiliencePolicy
from repro.models.pdam import PDAMModel
from repro.storage.ideal import PDAMDevice

QUICK = dict(
    n_entries=12_000,
    cache_bytes=256 << 10,
    n_queries=80,
    warmup_queries=30,
    n_rounds=400,
)


def _run_quick(**overrides):
    spec = e18.sweep_spec(
        intensities=(0.0, 1.0), policies=("none", "hedge"), trees=("btree",), **QUICK
    )
    from repro.runner import run_sweep

    result = e18.TailResilienceResult(
        intensities=(0.0, 1.0),
        policies=("none", "hedge"),
        trees=("btree",),
        plan=e18.DEFAULT_PLAN.describe(),
    )
    for row in run_sweep(spec, **overrides):
        (result.tree_rows if "tree" in row else result.pdam_rows).append(row)
    return result


class TestHedgeP99Acceptance:
    def test_hedge_strictly_lower_p99_on_pdam_ssd(self):
        """Hedged reads beat no-policy p99 on a PDAM SSD config (ISSUE)."""
        plan = FaultPlan(
            seed=17, spike_prob=0.08, spike_seconds=4e-3, spike_alpha=1.2
        )
        model = PDAMModel(8, 4096, step_seconds=1e-3)

        def latencies(policy):
            dev = FaultyDevice(
                PDAMDevice(model, capacity_bytes=1 << 30), plan, policy=policy
            )
            return np.array([dev.read(i * 4096, 4096) for i in range(2000)])

        t_none = latencies(ResiliencePolicy.none())
        t_hedge = latencies(ResiliencePolicy.hedged(2.5e-3))
        assert np.percentile(t_hedge, 99) < np.percentile(t_none, 99)
        assert t_hedge.mean() < t_none.mean()


class TestExperiment:
    def test_quick_run_structure(self):
        result = _run_quick()
        assert len(result.tree_rows) == 1 * 2 * 2  # trees x intensities x policies
        assert len(result.pdam_rows) == 2 * 2
        rendered = result.render()
        assert "E18a" in rendered and "E18b" in rendered

    def test_intensity_zero_identical_across_policies(self):
        result = _run_quick()
        base = [r for r in result.tree_rows if r["intensity"] == 0.0]
        assert len(base) == 2
        for key in ("mean_ms", "p50_ms", "p99_ms", "max_ms"):
            assert base[0][key] == base[1][key]  # exact: no faults, no policy effect
        assert all(r["failed"] == 0 for r in base)
        pdam_base = [r for r in result.pdam_rows if r["intensity"] == 0.0]
        assert all(r["recovered"] == 1.0 for r in pdam_base)

    def test_pdam_hedge_recovers_throughput(self):
        result = _run_quick()
        by_policy = {
            r["policy"]: r for r in result.pdam_rows if r["intensity"] == 1.0
        }
        assert by_policy["hedge"]["throughput"] > by_policy["none"]["throughput"]
        assert by_policy["hedge"]["recovered"] > 0.85

    def test_cached_rerun_identical(self, tmp_path):
        from repro.runner import ResultCache

        cache = ResultCache(tmp_path)
        first = _run_quick(cache=cache)
        second = _run_quick(cache=cache)
        assert second.tree_rows == first.tree_rows
        assert second.pdam_rows == first.pdam_rows
        assert cache.hits > 0

    def test_run_quick_flag(self):
        result = e18.run(
            quick=True, intensities=(1.0,), policies=("retry",), trees=("btree",)
        )
        assert len(result.tree_rows) == 1 and len(result.pdam_rows) == 1
        assert result.tree_rows[0]["failed"] == 0  # retry recovers every op

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            e18.policy_for("shrug", hedge_deadline_seconds=1.0)

    def test_unknown_tree_rejected(self):
        with pytest.raises(ConfigurationError):
            e18.measure_tree(
                "splay",
                plan_json=FaultPlan().to_json(),
                intensity=0.0,
                policy="none",
                n_entries=100,
                cache_bytes=1 << 16,
                universe=1 << 20,
                n_queries=1,
                warmup_queries=0,
                seed=0,
            )
