"""FaultyDevice: deterministic injection, retry, hedging, accounting."""

import pytest

from repro.errors import ConfigurationError, TransientIOError
from repro.faults import DegradedPhase, FaultPlan, FaultyDevice, ResiliencePolicy
from repro.models.affine import AffineModel
from repro.storage.ideal import AffineDevice

_MODEL = AffineModel(alpha=1e-6, setup_seconds=0.01)

#: Base read time of _make()'s inner device for a 4 KiB IO.
BASE_4K = _MODEL.setup_seconds + _MODEL.seconds_per_byte * 4096


def _make(plan, policy=None):
    inner = AffineDevice(_MODEL, capacity_bytes=1 << 30)
    return FaultyDevice(inner, plan, policy=policy)


def _read_times(dev, n, nbytes=4096):
    return [dev.read(i * nbytes, nbytes) for i in range(n)]


class TestZeroPlanIdentity:
    def test_timings_match_bare_device(self):
        bare = AffineDevice(AffineModel(alpha=1e-6, setup_seconds=0.01), capacity_bytes=1 << 30)
        wrapped = _make(FaultPlan(seed=123))
        for i in range(50):
            assert wrapped.read(i * 4096, 4096) == bare.read(i * 4096, 4096)
            assert wrapped.write(i * 4096, 4096) == bare.write(i * 4096, 4096)
        assert wrapped.clock == bare.clock
        assert wrapped.stats.reads == bare.stats.reads

    def test_noop_policy_on_zero_plan_changes_nothing(self):
        bare = AffineDevice(AffineModel(alpha=1e-6, setup_seconds=0.01), capacity_bytes=1 << 30)
        wrapped = _make(FaultPlan(), policy=ResiliencePolicy.hedged(1.0))
        # Deadline far above any service time: the hedge branch never fires.
        for i in range(20):
            assert wrapped.read(i * 4096, 4096) == bare.read(i * 4096, 4096)
        assert wrapped.fault_stats.hedges_issued == 0


class TestDeterminism:
    PLAN = FaultPlan(seed=5, spike_prob=0.3, spike_seconds=0.05, error_prob=0.1)

    def test_same_plan_same_faults(self):
        pol = ResiliencePolicy.retry(max_retries=8, backoff_seconds=1e-4)
        a, b = _make(self.PLAN, pol), _make(self.PLAN, pol)
        assert _read_times(a, 100) == _read_times(b, 100)
        assert a.fault_stats == b.fault_stats

    def test_reset_replays_identically(self):
        pol = ResiliencePolicy.retry(max_retries=8, backoff_seconds=1e-4)
        dev = _make(self.PLAN, pol)
        first = _read_times(dev, 100)
        spikes = dev.fault_stats.spikes_injected
        dev.reset()
        assert dev.clock == 0.0 and dev.inner.clock == 0.0
        assert _read_times(dev, 100) == first
        assert dev.fault_stats.spikes_injected == spikes

    def test_different_seed_different_faults(self):
        a = _make(FaultPlan(seed=5, spike_prob=0.3, spike_seconds=0.05))
        b = _make(FaultPlan(seed=6, spike_prob=0.3, spike_seconds=0.05))
        ta = [a.read(i * 4096, 4096) for i in range(100)]
        tb = [b.read(i * 4096, 4096) for i in range(100)]
        assert ta != tb


class TestSpikes:
    def test_certain_spike_adds_at_least_scale(self):
        dev = _make(FaultPlan(spike_prob=1.0, spike_seconds=0.02))
        times = _read_times(dev, 20)
        assert all(t >= BASE_4K + 0.02 for t in times)
        assert dev.fault_stats.spikes_injected == 20

    def test_spikes_hit_writes_too(self):
        dev = _make(FaultPlan(spike_prob=1.0, spike_seconds=0.02))
        assert dev.write(0, 4096) >= BASE_4K + 0.02


class TestTransientErrors:
    def test_no_policy_raises_and_wrapper_clock_holds(self):
        dev = _make(FaultPlan(error_prob=1.0))
        with pytest.raises(TransientIOError):
            dev.read(0, 4096)
        # The op failed: the wrapper charged nothing, the inner attempt ran.
        assert dev.clock == 0.0 and dev.stats.reads == 0
        assert dev.inner.stats.reads == 1
        assert dev.fault_stats.retry_giveups == 1

    def test_retry_budget_exhaustion_counts_attempts(self):
        pol = ResiliencePolicy.retry(max_retries=2, backoff_seconds=1e-3)
        dev = _make(FaultPlan(error_prob=1.0), pol)
        with pytest.raises(TransientIOError):
            dev.read(0, 4096)
        assert dev.inner.stats.reads == 3  # initial + 2 retries
        assert dev.fault_stats.retries == 2
        assert dev.fault_stats.retry_giveups == 1

    def test_retry_recovers_intermittent_errors(self):
        plan = FaultPlan(seed=1, error_prob=0.4)
        pol = ResiliencePolicy.retry(max_retries=10, backoff_seconds=1e-4)
        dev = _make(plan, pol)
        times = _read_times(dev, 200)
        assert len(times) == 200  # nothing raised
        assert dev.fault_stats.retries > 0
        assert dev.fault_stats.retry_giveups == 0
        # Backoff waits are charged as simulated time.
        assert dev.clock > dev.inner.clock - 1e-12
        assert dev.stats.reads == 200
        assert dev.inner.stats.reads == 200 + dev.fault_stats.retries

    def test_timeout_budget_caps_the_ladder(self):
        pol = ResiliencePolicy.retry(
            max_retries=50, backoff_seconds=1.0, timeout_seconds=1.5
        )
        dev = _make(FaultPlan(error_prob=1.0), pol)
        with pytest.raises(TransientIOError):
            dev.read(0, 4096)
        assert dev.inner.stats.reads < 5  # budget stopped it, not max_retries

    def test_errors_hit_writes_too(self):
        dev = _make(FaultPlan(error_prob=1.0))
        with pytest.raises(TransientIOError):
            dev.write(0, 4096)


class TestHedging:
    PLAN = FaultPlan(seed=2, spike_prob=0.3, spike_seconds=0.2, spike_alpha=1.1)

    def test_hedge_caps_heavy_tail(self):
        none_dev = _make(self.PLAN)
        hedge_dev = _make(self.PLAN, ResiliencePolicy.hedged(BASE_4K * 1.5))
        t_none = sum(_read_times(none_dev, 300))
        t_hedge = sum(_read_times(hedge_dev, 300))
        assert hedge_dev.fault_stats.hedges_issued > 0
        assert hedge_dev.fault_stats.hedge_wins > 0
        assert t_hedge < t_none

    def test_hedge_never_slower_than_deadline_plus_dup(self):
        dev = _make(self.PLAN, ResiliencePolicy.hedged(BASE_4K * 1.5))
        for t in _read_times(dev, 100):
            # min(primary, deadline + duplicate): a win is bounded by the
            # duplicate's own completion.
            assert t <= BASE_4K * 1.5 + 0.2 * 1000 + BASE_4K  # sanity ceiling

    def test_writes_are_never_hedged(self):
        dev = _make(self.PLAN, ResiliencePolicy.hedged(BASE_4K * 1.5))
        for i in range(100):
            dev.write(i * 4096, 4096)
        assert dev.fault_stats.hedges_issued == 0


class TestDegradedPhases:
    def test_slowdown_multiplies_service_exactly(self):
        plan = FaultPlan(degraded=(DegradedPhase(0.0, 1e9, 2.0),))
        dev = _make(plan)
        assert dev.read(0, 4096) == pytest.approx(2.0 * BASE_4K)

    def test_phase_ends(self):
        plan = FaultPlan(degraded=(DegradedPhase(0.0, BASE_4K * 1.5, 2.0),))
        dev = _make(plan)
        first = dev.read(0, 4096)
        second = dev.read(4096, 4096)  # issued after the phase closed
        assert first == pytest.approx(2.0 * BASE_4K)
        assert second == pytest.approx(BASE_4K)


class TestWrapperHygiene:
    def test_nesting_rejected(self):
        dev = _make(FaultPlan())
        with pytest.raises(ConfigurationError):
            FaultyDevice(dev, FaultPlan())

    def test_describe_includes_layers(self):
        dev = _make(FaultPlan(seed=4), ResiliencePolicy.retry())
        d = dev.describe()
        assert d["plan"]["seed"] == 4
        assert d["policy"]["name"] == "retry"
        assert "inner" in d
