"""ResiliencePolicy validation and the stock policy constructors."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.faults import POLICY_NAMES, FaultStats, ResiliencePolicy


class TestStockPolicies:
    def test_names_cover_cli(self):
        assert POLICY_NAMES == ("none", "retry", "hedge")

    def test_none_is_noop(self):
        p = ResiliencePolicy.none()
        assert p.is_noop
        assert not p.retries_enabled and not p.hedge_enabled

    def test_retry_enables_retries_only(self):
        p = ResiliencePolicy.retry(max_retries=3, backoff_seconds=1e-3)
        assert p.retries_enabled and not p.hedge_enabled
        assert not p.is_noop

    def test_hedged_keeps_retries_on(self):
        p = ResiliencePolicy.hedged(5e-3)
        assert p.hedge_enabled and p.retries_enabled
        assert p.hedge_deadline_seconds == 5e-3


class TestValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(max_retries=-1)

    def test_retries_need_backoff(self):
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(max_retries=1, backoff_seconds=0.0)

    def test_multiplier_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(backoff_multiplier=0.5)

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(hedge_deadline_seconds=0.0)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(timeout_seconds=0.0)


class TestDescribe:
    def test_infinities_become_none(self):
        d = ResiliencePolicy.none().describe()
        assert d["timeout_seconds"] is None
        assert d["hedge_deadline_seconds"] is None

    def test_finite_values_pass_through(self):
        d = ResiliencePolicy.hedged(4e-3, timeout_seconds=1.0).describe()
        assert d["hedge_deadline_seconds"] == 4e-3
        assert d["timeout_seconds"] == 1.0
        assert math.isfinite(d["hedge_deadline_seconds"])


class TestFaultStats:
    def test_totals_and_reset(self):
        fs = FaultStats()
        fs.spikes_injected = 2
        fs.errors_injected = 3
        fs.stalls_injected = 4
        assert fs.faults_injected == 9
        fs.reset()
        assert fs.faults_injected == 0 and fs.retries == 0
