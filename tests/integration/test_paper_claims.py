"""The paper's abstract, as executable assertions.

One test per headline claim, each citing the sentence it checks.  These
intentionally re-derive results from small scales rather than reusing the
benchmark fixtures — the point is that every claim holds from a cold start
in a few seconds.
"""

import math

import numpy as np
import pytest


class TestClaim1HalfBandwidthFactor2:
    """'if B is set to the half-bandwidth point ... the DAM approximates
    the IO cost on any hardware to within a factor of 2.'"""

    def test_lemma1_bound_on_random_io_mix(self):
        from repro.models.conversions import (
            affine_cost,
            dam_cost_of_affine_algorithm,
        )

        rng = np.random.default_rng(0)
        for alpha in (1e-2, 1e-4):
            ios = [int(x) for x in rng.integers(1, int(10 / alpha), size=300)]
            dam = dam_cost_of_affine_algorithm(ios, alpha)
            affine = affine_cost(ios, alpha)
            assert dam <= 2 * affine + 1e-9


class TestClaim2ModelsFitHardware:
    """'the affine and PDAM models give good approximations of the
    performance characteristics of hard drives and SSDs.'"""

    def test_affine_fits_hdd_with_high_r2(self):
        from repro.analysis.fitting import fit_affine_model
        from repro.experiments.devices import make_hdd

        hdd = make_hdd("hitachi-1tb-2009-sim", seed=1)
        rng = np.random.default_rng(2)
        sizes, times = [], []
        for io in [4096 * 4**k for k in range(6)]:
            samples = [
                hdd.read(int(rng.integers(0, (hdd.capacity_bytes - io) // 512)) * 512, io)
                for _ in range(24)
            ]
            sizes.append(io)
            times.append(float(np.mean(samples)))
        assert fit_affine_model(sizes, times).r2 > 0.99

    def test_pdam_fits_ssd_with_high_r2(self):
        from repro.analysis.fitting import fit_pdam_model
        from repro.experiments.devices import make_ssd
        from repro.storage.device import ReadRequest

        per_thread = 2 << 20
        threads = (1, 2, 4, 8, 16, 32)
        times = []
        for p in threads:
            ssd = make_ssd("silicon-power-s55-sim")
            rng = np.random.default_rng(p)
            stripes = ssd.capacity_bytes // 65536
            streams = [
                [
                    ReadRequest(int(o) * 65536, 65536)
                    for o in rng.integers(0, stripes, size=per_thread // 65536)
                ]
                for _ in range(p)
            ]
            times.append(ssd.run_closed_loop(streams))
        fit = fit_pdam_model(list(threads), times, bytes_per_thread=per_thread)
        assert fit.r2 > 0.98
        assert 1.5 < fit.parallelism < 6


class TestClaim3NodeSizeExplanations:
    """'the affine model explains node-size choices in B-trees and
    Bε-trees' — small B-tree nodes, large Bε-tree nodes."""

    def test_btree_optimum_below_half_bandwidth(self):
        from repro.models.analysis import optimal_btree_node_size

        for alpha in (1e-3, 1e-5):
            assert optimal_btree_node_size(alpha) < 1 / alpha

    def test_betree_optimal_node_nearly_square_of_btrees(self):
        """'an optimized Bε-tree node size can be nearly the square of the
        optimal node size for a B-tree.'"""
        from repro.models.analysis import (
            optimal_betree_params,
            optimal_btree_node_size,
        )

        alpha = 1e-4
        b_bt = optimal_btree_node_size(alpha)
        _, b_be = optimal_betree_params(alpha)
        assert 0.2 * b_bt**2 < b_be < 5 * b_bt**2


class TestClaim4Sensitivity:
    """'the B-tree is highly sensitive to variations in the node size
    whereas Bε-trees are much less sensitive.'"""

    def test_analytic_sensitivity_gap(self):
        from repro.models.analysis import (
            betree_query_cost_optimized,
            btree_op_cost,
        )

        alpha, N, M = 1e-4, 1e9, 1e6
        grid = [2**k for k in range(6, 20, 2)]
        bt = [btree_op_cost(b, alpha, N, M) for b in grid]
        be = [betree_query_cost_optimized(b, math.sqrt(b), alpha, N, M) for b in grid]
        assert (max(bt) / min(bt)) > 5 * (max(be) / min(be))


class TestClaim5SimultaneousOptimality:
    """'Bε-trees can be optimized so that all operations are simultaneously
    optimal, even up to lower order terms.'"""

    def test_corollary12_queries_match_btree_inserts_beat_it(self):
        from repro.models.analysis import (
            betree_insert_cost,
            betree_query_cost_optimized,
            btree_op_cost,
            optimal_betree_params,
            optimal_btree_node_size,
        )

        alpha, N, M = 1e-5, 1e9, 1e6
        x = optimal_btree_node_size(alpha)
        F, B = optimal_betree_params(alpha)
        assert betree_query_cost_optimized(B, F, alpha, N, M) <= 1.5 * btree_op_cost(
            x, alpha, N, M
        )
        assert betree_insert_cost(B, F, alpha, N, M) < btree_op_cost(x, alpha, N, M) / 5


class TestClaim6PDAMObliviousDesign:
    """'B-trees can be organized so that both sequential and concurrent
    workloads are handled efficiently' (Lemma 13)."""

    def test_veb_layout_dominates_both_extremes(self):
        from repro.models.pdam import PDAMModel
        from repro.storage.ideal import PDAMDevice
        from repro.trees.btree.veb import PDAMQuerySimulator, StaticSearchTree

        tree = StaticSearchTree(np.arange(1, 2**11 + 1) * 3)

        def throughput(mode, k):
            dev = PDAMDevice(PDAMModel(parallelism=8, block_bytes=4096))
            return PDAMQuerySimulator(dev, tree, mode=mode).run(k, 15, seed=0).throughput

        for k in (1, 8):
            best_fixed = max(throughput("flat_b", k), throughput("flat_pb", k))
            assert throughput("veb_pb", k) >= 0.9 * best_fixed


class TestClaim7DAMOverestimatesByP:
    """'The DAM ... overestimates the completion time for large numbers of
    threads by roughly P.'"""

    def test_overestimate_factor(self):
        from repro.experiments import exp_pdam_validation

        result = exp_pdam_validation.run(
            threads=(1, 2, 4, 8, 16, 32),
            bytes_per_thread=2 << 20,
            devices=("samsung-970-pro-sim",),
        )
        factor = result.dam_overestimate_factor("samsung-970-pro-sim")
        # "roughly P": compare against the device's true saturation ratio
        # (the knee fit systematically lands below it).
        true_p = result.expected_parallelism["samsung-970-pro-sim"]
        assert factor == pytest.approx(true_p, rel=0.3)
