"""Model-vs-simulator validation: the Section 4 claims as tests.

These are integration tests of the whole measurement pipeline: simulated
device -> microbenchmark -> regression -> recovered model parameters.
"""

import numpy as np
import pytest

from repro.analysis.fitting import fit_affine_model, fit_pdam_model
from repro.analysis.metrics import max_relative_error
from repro.experiments.devices import hdd_geometry_for, make_ssd
from repro.models.affine import AffineModel
from repro.storage.device import ReadRequest
from repro.storage.hdd import SimulatedHDD
from repro.storage.ideal import AffineDevice


class TestAffinePipeline:
    def _measure(self, hdd, io_sizes, reads_per_size=48, seed=0):
        rng = np.random.default_rng(seed)
        sizes, times = [], []
        for io in io_sizes:
            samples = []
            for _ in range(reads_per_size):
                off = int(rng.integers(0, (hdd.capacity_bytes - io) // 512)) * 512
                samples.append(hdd.read(off, io))
            sizes.append(io)
            times.append(float(np.mean(samples)))
        return sizes, times

    def test_recovers_configured_hardware(self):
        g = hdd_geometry_for(0.012, 0.000035)
        hdd = SimulatedHDD(g, seed=1)
        sizes, times = self._measure(hdd, [4096 * 4**k for k in range(7)])
        fit = fit_affine_model(sizes, times)
        assert fit.setup_seconds == pytest.approx(0.012, rel=0.15)
        assert fit.seconds_per_byte * 4096 == pytest.approx(0.000035, rel=0.05)
        assert fit.r2 > 0.995

    def test_prediction_error_within_25_percent(self):
        # Paper: "the affine model predicts the time for IOs of varying
        # sizes to within a 25% error."
        g = hdd_geometry_for(0.015, 0.000033)
        hdd = SimulatedHDD(g, seed=2)
        sizes, times = self._measure(hdd, [4096 * 4**k for k in range(7)])
        fit = fit_affine_model(sizes, times)
        pred = fit.predict_seconds(sizes)
        assert max_relative_error(times, pred) < 0.25

    def test_ideal_device_fits_perfectly(self):
        dev = AffineDevice(AffineModel(alpha=1e-6, setup_seconds=0.01),
                           capacity_bytes=1 << 30)
        sizes = [4096 * 4**k for k in range(6)]
        times = [dev.read(0, s) for s in sizes]
        fit = fit_affine_model(sizes, times)
        assert fit.r2 == pytest.approx(1.0, abs=1e-9)
        assert fit.setup_seconds == pytest.approx(0.01, rel=1e-6)


class TestPDAMPipeline:
    def _thread_sweep(self, name, threads, bytes_per_thread=4 << 20, seed=0):
        times = []
        for p in threads:
            ssd = make_ssd(name)
            rng = np.random.default_rng(seed + p)
            n_req = bytes_per_thread // 65536
            stripes = ssd.capacity_bytes // 65536
            streams = [
                [
                    ReadRequest(int(o) * 65536, 65536)
                    for o in rng.integers(0, stripes, size=n_req)
                ]
                for _ in range(p)
            ]
            times.append(ssd.run_closed_loop(streams))
        return times

    def test_recovers_saturation_throughput(self):
        threads = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32)
        times = self._thread_sweep("samsung-860-pro-sim", threads)
        fit = fit_pdam_model(list(threads), times, bytes_per_thread=4 << 20)
        from repro.experiments.devices import SSD_ZOO

        target = SSD_ZOO["samsung-860-pro-sim"].saturated_read_bytes_per_second
        assert fit.saturation_bytes_per_second == pytest.approx(target, rel=0.1)

    def test_prediction_error_reasonable(self):
        # Paper: PDAM predicts run-time "within an error of never more than
        # 14%"; our simulator's soft knee keeps us in the same ballpark.
        threads = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48)
        times = self._thread_sweep("silicon-power-s55-sim", threads)
        fit = fit_pdam_model(list(threads), times, bytes_per_thread=4 << 20)
        pred = fit.predict_seconds(list(threads))
        assert max_relative_error(times, pred) < 0.25

    def test_flat_region_is_flat(self):
        times = self._thread_sweep("samsung-970-pro-sim", (1, 2))
        assert times[1] < 1.3 * times[0]

    def test_saturated_region_linear(self):
        times = self._thread_sweep("silicon-power-s55-sim", (24, 48))
        assert times[1] == pytest.approx(2 * times[0], rel=0.15)
