"""Differential testing: every dictionary implementation must agree.

The same operation stream is applied to the B-tree, both Bε-trees, the
LSM-tree, the COLA, and a plain dict oracle; all six must end with
identical contents and answer identical point/range queries.  This is the
strongest cross-implementation correctness check in the suite — any
divergence in message resolution, tombstone handling, split logic or merge
precedence shows up here.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.ram import NullDevice
from repro.storage.stack import StorageStack
from repro.trees.betree import BeTree, BeTreeConfig, OptimizedBeTree
from repro.trees.btree import BTree, BTreeConfig
from repro.trees.cola import COLA, COLAConfig
from repro.trees.lsm import LSMConfig, LSMTree
from repro.trees.sizing import EntryFormat

FMT = EntryFormat(value_bytes=8)


def build_all():
    """One instance of every dictionary, small nodes to force structure."""
    trees = {}
    trees["btree"] = BTree(
        StorageStack(NullDevice(), 1 << 20), BTreeConfig(node_bytes=1024, fmt=FMT)
    )
    be_cfg = BeTreeConfig(node_bytes=2048, fanout=3, fmt=FMT)
    trees["betree"] = BeTree(StorageStack(NullDevice(), 1 << 20), be_cfg)
    trees["optimized"] = OptimizedBeTree(StorageStack(NullDevice(), 1 << 20), be_cfg)
    trees["lsm"] = LSMTree(
        NullDevice(capacity_bytes=1 << 30),
        LSMConfig(sstable_bytes=2048, memtable_bytes=2048, level1_bytes=8192, fmt=FMT),
    )
    trees["cola"] = COLA(NullDevice(capacity_bytes=1 << 30), COLAConfig(fmt=FMT))
    return trees


class TestDifferentialRandom:
    @pytest.mark.parametrize("seed", range(5))
    def test_long_random_stream(self, seed):
        rng = np.random.default_rng(seed)
        trees = build_all()
        ref: dict[int, int] = {}
        for _ in range(3000):
            k = int(rng.integers(0, 600))
            op = "insert" if rng.random() < 0.65 else "delete"
            v = int(rng.integers(0, 10**6))
            for tree in trees.values():
                if op == "insert":
                    tree.insert(k, v)
                else:
                    tree.delete(k)
            if op == "insert":
                ref[k] = v
            else:
                ref.pop(k, None)
        for name, tree in trees.items():
            assert dict(tree.items()) == ref, f"{name} diverged"
            tree.check_invariants()

    def test_point_queries_agree(self):
        rng = np.random.default_rng(42)
        trees = build_all()
        ref: dict[int, int] = {}
        for _ in range(2000):
            k = int(rng.integers(0, 400))
            if rng.random() < 0.7:
                v = int(rng.integers(0, 10**6))
                for tree in trees.values():
                    tree.insert(k, v)
                ref[k] = v
            else:
                for tree in trees.values():
                    tree.delete(k)
                ref.pop(k, None)
        for probe in range(0, 400, 7):
            expected = ref.get(probe)
            for name, tree in trees.items():
                assert tree.get(probe) == expected, (name, probe)

    def test_range_queries_agree(self):
        rng = np.random.default_rng(7)
        trees = build_all()
        ref: dict[int, int] = {}
        for _ in range(2500):
            k = int(rng.integers(0, 1000))
            v = int(rng.integers(0, 10**6))
            for tree in trees.values():
                tree.insert(k, v)
            ref[k] = v
        for lo in (0, 123, 500, 999):
            hi = lo + 200
            expected = sorted((k, v) for k, v in ref.items() if lo <= k <= hi)
            for name, tree in trees.items():
                assert tree.range(lo, hi) == expected, (name, lo, hi)


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete"]),
        st.integers(0, 120),
        st.integers(0, 999),
    ),
    max_size=150,
)


@given(ops=ops_strategy)
@settings(max_examples=25, deadline=None)
def test_differential_property(ops):
    trees = build_all()
    ref: dict[int, int] = {}
    for op, key, value in ops:
        for tree in trees.values():
            if op == "insert":
                tree.insert(key, value)
            else:
                tree.delete(key)
        if op == "insert":
            ref[key] = value
        else:
            ref.pop(key, None)
    contents = {name: dict(tree.items()) for name, tree in trees.items()}
    for name, got in contents.items():
        assert got == ref, f"{name} diverged"
