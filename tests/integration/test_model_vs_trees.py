"""Model-vs-data-structure validation: measured tree costs track Table 3.

The trees run on an ideal :class:`AffineDevice` (no mechanical noise), so
measured per-op simulated time can be compared against the closed-form
affine cost functions directly.
"""

import numpy as np
import pytest

from repro.models.affine import AffineModel
from repro.models.analysis import (
    betree_insert_cost,
    btree_op_cost,
)
from repro.storage.ideal import AffineDevice
from repro.storage.stack import StorageStack
from repro.trees.betree import BeTreeConfig, OptimizedBeTree
from repro.trees.btree import BTree, BTreeConfig
from repro.trees.sizing import EntryFormat
from repro.workloads.generators import (
    insert_stream,
    point_query_stream,
    random_load_pairs,
)

ALPHA_PER_BYTE = 2e-6
SETUP = 0.01
FMT = EntryFormat(value_bytes=20)  # 28-byte entries
N_ENTRIES = 120_000
UNIVERSE = 1 << 30


def affine_stack(cache_bytes):
    dev = AffineDevice(AffineModel(alpha=ALPHA_PER_BYTE, setup_seconds=SETUP),
                       capacity_bytes=1 << 31)
    return StorageStack(dev, cache_bytes)


def measure_queries(tree, keys, n=150, seed=3):
    tree.storage.drop_cache()
    for k in point_query_stream(keys, 100, seed=seed):  # warm internals
        tree.get(k)
    t0 = tree.storage.io_seconds
    for k in point_query_stream(keys, n, seed=seed + 1):
        tree.get(k)
    return (tree.storage.io_seconds - t0) / n


class TestBTreeTracksModel:
    def _measured_query_cost(self, node_bytes, cache_bytes=1 << 20):
        stack = affine_stack(cache_bytes)
        tree = BTree(stack, BTreeConfig(node_bytes=node_bytes, fmt=FMT))
        pairs = random_load_pairs(N_ENTRIES, UNIVERSE, seed=1)
        tree.bulk_load(pairs)
        return measure_queries(tree, [k for k, _ in pairs])

    def test_query_cost_ratio_matches_model(self):
        """Measured cost ratio across node sizes tracks (1+aB)/log(B+1)."""
        small, big = 8 << 10, 512 << 10
        measured_ratio = self._measured_query_cost(big) / self._measured_query_cost(small)

        def model_cost(node_bytes):
            entries = FMT.leaf_capacity(node_bytes)
            alpha_entry = ALPHA_PER_BYTE * FMT.entry_bytes
            m = N_ENTRIES * (1 << 20) / (N_ENTRIES * FMT.entry_bytes)  # cache in entries
            return btree_op_cost(entries, alpha_entry, N_ENTRIES, m)

        model_ratio = model_cost(big) / model_cost(small)
        assert measured_ratio == pytest.approx(model_ratio, rel=0.6)
        assert measured_ratio > 1.5  # big nodes clearly cost more

    def test_absolute_query_cost_near_one_io_per_uncached_level(self):
        # With a 1 MiB cache over ~3.3 MiB of data, a point query should
        # miss on roughly one level (the leaf).
        cost = self._measured_query_cost(16 << 10)
        one_io = SETUP + ALPHA_PER_BYTE * SETUP * 0 + (16 << 10) * ALPHA_PER_BYTE * SETUP
        # one_io = s * (1 + alpha*B) in seconds:
        one_io = SETUP * (1 + ALPHA_PER_BYTE * (16 << 10))
        assert 0.3 * one_io < cost < 2.5 * one_io


class TestBeTreeTracksModel:
    def _measured_insert_cost(self, node_bytes, fanout=8, cache_bytes=1 << 20):
        stack = affine_stack(cache_bytes)
        cfg = BeTreeConfig(node_bytes=node_bytes, fanout=fanout, fmt=FMT)
        tree = OptimizedBeTree(stack, cfg)
        pairs = random_load_pairs(N_ENTRIES, UNIVERSE, seed=2)
        tree.bulk_load(pairs)
        # Prefill the root buffer, then measure amortized inserts.
        buffer_msgs = cfg.buffer_budget_bytes // cfg.fmt.message_bytes
        for k, v in insert_stream(UNIVERSE, buffer_msgs, seed=7):
            tree.insert(k, v)
        n = 3 * buffer_msgs
        t0 = stack.io_seconds
        for k, v in insert_stream(UNIVERSE, n, seed=8):
            tree.insert(k, v)
        stack.flush()
        return (stack.io_seconds - t0) / n

    def test_insert_far_cheaper_than_btree_query(self):
        """The WOD property with concrete affine numbers."""
        be_insert = self._measured_insert_cost(256 << 10)
        stack = affine_stack(1 << 20)
        bt = BTree(stack, BTreeConfig(node_bytes=64 << 10, fmt=FMT))
        pairs = random_load_pairs(N_ENTRIES, UNIVERSE, seed=2)
        bt.bulk_load(pairs)
        stack.drop_cache()
        t0 = stack.io_seconds
        n = 300
        for k, v in insert_stream(UNIVERSE, n, seed=9):
            bt.insert(k, v)
        stack.flush()
        bt_insert = (stack.io_seconds - t0) / n
        assert be_insert < bt_insert / 5

    def test_insert_cost_scales_like_model(self):
        """Doubling F at fixed B roughly doubles flush cost per element."""
        c8 = self._measured_insert_cost(256 << 10, fanout=8)
        c16 = self._measured_insert_cost(256 << 10, fanout=16)
        alpha_entry = ALPHA_PER_BYTE * FMT.entry_bytes
        entries = FMT.leaf_capacity(256 << 10)
        m_entries = (1 << 20) // FMT.entry_bytes
        model_ratio = betree_insert_cost(entries, 16, alpha_entry, N_ENTRIES, m_entries) / (
            betree_insert_cost(entries, 8, alpha_entry, N_ENTRIES, m_entries)
        )
        measured_ratio = c16 / c8
        # Both should show "more fanout -> costlier flushes" with similar scale.
        assert measured_ratio == pytest.approx(model_ratio, rel=0.75)


class TestQueryInsertTradeoffDirection:
    def test_bigger_nodes_help_betree_inserts_hurt_btree_queries(self):
        sizes = (64 << 10, 1 << 20)
        be_costs = []
        bt_costs = []
        for nb in sizes:
            stack = affine_stack(1 << 20)
            be = OptimizedBeTree(stack, BeTreeConfig(node_bytes=nb, fanout=8, fmt=FMT))
            pairs = random_load_pairs(N_ENTRIES, UNIVERSE, seed=4)
            be.bulk_load(pairs)
            cfg = be.config
            buffer_msgs = cfg.buffer_budget_bytes // cfg.fmt.message_bytes
            n = 2 * buffer_msgs
            for k, v in insert_stream(UNIVERSE, buffer_msgs, seed=5):
                be.insert(k, v)
            t0 = stack.io_seconds
            for k, v in insert_stream(UNIVERSE, n, seed=6):
                be.insert(k, v)
            stack.flush()
            be_costs.append((stack.io_seconds - t0) / n)

            stack2 = affine_stack(1 << 20)
            bt = BTree(stack2, BTreeConfig(node_bytes=nb, fmt=FMT))
            bt.bulk_load(pairs)
            bt_costs.append(measure_queries(bt, [k for k, _ in pairs], n=100))
        assert be_costs[1] < be_costs[0]      # Bε inserts improve with B
        assert bt_costs[1] > bt_costs[0]      # B-tree queries degrade with B
