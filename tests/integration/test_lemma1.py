"""Lemma 1 measured on real tree workloads.

    "An affine algorithm with cost C can be transformed into a DAM
    algorithm with cost 2C, where blocks have size B = 1/alpha. ...
    Thus, if losing a factor of 2 on all operations is satisfactory,
    then the DAM is good enough."

These tests run a B-tree workload on an exact affine device with the node
size at the half-bandwidth point and compare the measured affine time
against the DAM's prediction (IO count x half-bandwidth block time):
the two must agree within the factor of 2 in both directions.
"""

import pytest

from repro.models.affine import AffineModel
from repro.models.dam import DAMModel
from repro.storage.ideal import AffineDevice
from repro.storage.stack import StorageStack
from repro.trees.btree import BTree, BTreeConfig
from repro.trees.sizing import EntryFormat
from repro.workloads.generators import (
    insert_stream,
    point_query_stream,
    random_load_pairs,
)

ALPHA = 1e-5          # per byte
SETUP = 0.01          # seconds
HALF_BW = round(1 / ALPHA)  # 100 KB block (int() would truncate to 99999)


@pytest.fixture(scope="module")
def workload_measurement():
    model = AffineModel(alpha=ALPHA, setup_seconds=SETUP)
    device = AffineDevice(model, capacity_bytes=1 << 31)
    stack = StorageStack(device, cache_bytes=2 << 20)
    tree = BTree(
        stack, BTreeConfig(node_bytes=HALF_BW, fmt=EntryFormat(value_bytes=20))
    )
    pairs = random_load_pairs(200_000, 1 << 30, seed=0)
    tree.bulk_load(pairs)
    stack.drop_cache()
    keys = [k for k, _ in pairs]
    io0 = device.stats.ios
    t0 = stack.io_seconds
    for k in point_query_stream(keys, 300, seed=1):
        tree.get(k)
    for k, v in insert_stream(1 << 30, 300, seed=2):
        tree.insert(k, v)
    stack.flush()
    ios = device.stats.ios - io0
    affine_seconds = stack.io_seconds - t0
    return ios, affine_seconds


class TestLemma1OnTrees:
    def test_dam_prediction_within_factor_2(self, workload_measurement):
        ios, affine_seconds = workload_measurement
        # DAM at the half-bandwidth point: each block IO takes 2s seconds.
        dam = DAMModel.at_half_bandwidth_point(SETUP, ALPHA * SETUP)
        dam_seconds = ios * dam.setup_seconds
        ratio = dam_seconds / affine_seconds
        assert 0.5 <= ratio <= 2.0, f"DAM/affine ratio {ratio}"

    def test_half_bandwidth_ios_cost_exactly_two_setups(self, workload_measurement):
        ios, affine_seconds = workload_measurement
        # Every IO moves exactly one half-bandwidth node, costing s + s.
        assert affine_seconds == pytest.approx(ios * 2 * SETUP, rel=1e-6)

    def test_smaller_nodes_break_the_dam_estimate(self):
        """With nodes far below 1/alpha, the DAM (still counting the same
        node IOs at half-bandwidth pricing) overestimates grossly — the
        imprecision Section 2 says makes the DAM blind to node-size tuning."""
        model = AffineModel(alpha=ALPHA, setup_seconds=SETUP)
        device = AffineDevice(model, capacity_bytes=1 << 31)
        stack = StorageStack(device, cache_bytes=2 << 20)
        tree = BTree(
            stack, BTreeConfig(node_bytes=HALF_BW // 16, fmt=EntryFormat(value_bytes=20))
        )
        tree.bulk_load(random_load_pairs(100_000, 1 << 30, seed=3))
        stack.drop_cache()
        keys = list(range(0, 100))
        io0, t0 = device.stats.ios, stack.io_seconds
        for k in point_query_stream([k for k, _ in random_load_pairs(1000, 1 << 30, seed=3)], 200, seed=4):
            tree.get(k)
        ios = device.stats.ios - io0
        affine_seconds = stack.io_seconds - t0
        dam = DAMModel.at_half_bandwidth_point(SETUP, ALPHA * SETUP)
        ratio = ios * dam.setup_seconds / affine_seconds
        assert ratio > 1.5  # small IOs cost ~s, DAM charges 2s each
        del keys
