"""Long-run stress tests: adversarial interactions under memory pressure.

Each scenario combines the features most likely to interact badly — tiny
caches (eviction mid-operation), random extent placement (allocator
churn), segment-granular IO (component bookkeeping), periodic weight
rebuilds (wholesale structure replacement) — and checks full invariants
plus dict-equivalence at checkpoints throughout the run.
"""

import numpy as np
import pytest

from repro.storage.ram import NullDevice
from repro.storage.stack import StorageStack
from repro.trees.betree import (
    BeTreeConfig,
    OptimizedBeTree,
    check_weight_balance,
    rebuild_weight_balance,
)
from repro.trees.btree import BTree, BTreeConfig
from repro.trees.cola import COLA, COLAConfig
from repro.trees.lsm import LSMConfig, LSMTree
from repro.trees.sizing import EntryFormat

FMT = EntryFormat(value_bytes=12)


class TestOptimizedBeTreeUnderPressure:
    def test_tiny_cache_random_allocator(self):
        """Every access misses; extents are scattered; nothing may break."""
        stack = StorageStack(
            NullDevice(), cache_bytes=2048, allocator_policy="random", allocator_seed=3
        )
        tree = OptimizedBeTree(
            stack, BeTreeConfig(node_bytes=4096, fanout=4, fmt=FMT)
        )
        rng = np.random.default_rng(0)
        ref = {}
        for step in range(12_000):
            k = int(rng.integers(0, 2500))
            r = rng.random()
            if r < 0.55:
                tree.insert(k, k)
                ref[k] = k
            elif r < 0.8:
                tree.delete(k)
                ref.pop(k, None)
            else:
                assert tree.get(k) == ref.get(k)
            if step % 4000 == 3999:
                tree.check_invariants()
                stack.cache.check_invariants()
                stack.allocator.check_invariants()
        assert dict(tree.items()) == ref

    def test_periodic_weight_rebuilds_interleaved(self):
        """Rebuilds in the middle of a mutation stream stay consistent."""
        stack = StorageStack(NullDevice(), cache_bytes=1 << 16)
        tree = OptimizedBeTree(
            stack, BeTreeConfig(node_bytes=4096, fanout=4, fmt=FMT)
        )
        rng = np.random.default_rng(1)
        ref = {}
        for phase in range(5):
            for _ in range(3000):
                k = int(rng.integers(0, 5000))
                if rng.random() < 0.7:
                    tree.insert(k, k * 2)
                    ref[k] = k * 2
                else:
                    tree.delete(k)
                    ref.pop(k, None)
            rebuild_weight_balance(tree, max_rebuilds=512)
            check_weight_balance(tree)
            tree.check_invariants()
            assert dict(tree.items()) == ref

    def test_hot_key_hammering(self):
        """Thousands of operations on a handful of keys (message pileup)."""
        stack = StorageStack(NullDevice(), cache_bytes=1 << 16)
        tree = OptimizedBeTree(
            stack, BeTreeConfig(node_bytes=4096, fanout=4, fmt=FMT)
        )
        rng = np.random.default_rng(2)
        ref = {}
        # Background fill so the hot keys travel through a real tree.
        for k in range(0, 20_000, 10):
            tree.insert(k, k)
            ref[k] = k
        hot = [3, 7, 11]
        for _ in range(5000):
            k = hot[int(rng.integers(0, len(hot)))]
            r = rng.random()
            if r < 0.4:
                v = int(rng.integers(0, 100))
                tree.insert(k, v)
                ref[k] = v
            elif r < 0.7:
                tree.upsert(k, 1)
                ref[k] = (ref.get(k) or 0) + 1
            else:
                tree.delete(k)
                ref.pop(k, None)
            assert tree.get(k) == ref.get(k)
        tree.check_invariants()


class TestBTreeUnderPressure:
    def test_minimum_cache(self):
        """Cache below one node: every touch is an IO, logic must hold."""
        stack = StorageStack(NullDevice(), cache_bytes=512)
        tree = BTree(stack, BTreeConfig(node_bytes=2048, fmt=FMT))
        rng = np.random.default_rng(3)
        ref = {}
        for _ in range(6000):
            k = int(rng.integers(0, 1500))
            if rng.random() < 0.6:
                tree.insert(k, k)
                ref[k] = k
            else:
                assert tree.delete(k) == (k in ref)
                ref.pop(k, None)
        tree.check_invariants()
        assert dict(tree.items()) == ref

    def test_ascending_then_descending_then_random(self):
        tree = BTree(StorageStack(NullDevice(), 1 << 20),
                     BTreeConfig(node_bytes=1024, fmt=FMT))
        ref = {}
        for k in range(4000):
            tree.insert(k, k)
            ref[k] = k
        for k in range(7999, 3999, -1):
            tree.insert(k, k)
            ref[k] = k
        rng = np.random.default_rng(4)
        for k in rng.integers(0, 8000, size=4000):
            tree.delete(int(k))
            ref.pop(int(k), None)
        tree.check_invariants()
        assert len(tree) == len(ref)


class TestLogStructuresLongRun:
    def test_lsm_many_compaction_generations(self):
        dev = NullDevice(capacity_bytes=1 << 30)
        lsm = LSMTree(dev, LSMConfig(
            sstable_bytes=2048, memtable_bytes=2048, level1_bytes=8192,
            l0_trigger=2, fmt=FMT,
        ))
        rng = np.random.default_rng(5)
        ref = {}
        for step in range(25_000):
            k = int(rng.integers(0, 4000))
            if rng.random() < 0.7:
                lsm.insert(k, k)
                ref[k] = k
            else:
                lsm.delete(k)
                ref.pop(k, None)
            if step % 10_000 == 9999:
                lsm.check_invariants()
        assert dict(lsm.items()) == ref
        assert lsm.compactions > 20  # the run really exercised compaction

    def test_cola_deep_merge_cascades(self):
        cola = COLA(NullDevice(capacity_bytes=1 << 30),
                    COLAConfig(fmt=FMT, ram_bytes=4096))
        ref = {}
        rng = np.random.default_rng(6)
        for _ in range(20_000):
            k = int(rng.integers(0, 3000))
            if rng.random() < 0.7:
                cola.insert(k, k)
                ref[k] = k
            else:
                cola.delete(k)
                ref.pop(k, None)
        cola.check_invariants()
        assert dict(cola.items()) == ref
        assert len(cola.levels) >= 12  # 2^12+ logical slots were in play


class TestAllocatorExhaustion:
    def test_out_of_space_surfaces_cleanly(self):
        from repro.errors import OutOfSpaceError

        stack = StorageStack(NullDevice(capacity_bytes=1 << 16), cache_bytes=1 << 20)
        tree = BTree(stack, BTreeConfig(node_bytes=4096, fmt=FMT))
        with pytest.raises(OutOfSpaceError):
            for k in range(100_000):
                tree.insert(k, k)
