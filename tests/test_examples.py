"""Smoke tests: the shipped examples must actually run.

Each example is executed in a subprocess (as a user would run it) and its
output spot-checked.  Only the quick ones run here; the full set is
exercised by ``make examples``.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "all invariants hold" in out
        assert "Write amplification" in out

    def test_ssd_concurrency(self):
        out = run_example("ssd_concurrency.py")
        assert "P =" in out
        assert "veb_pb" in out

    def test_aging(self):
        out = run_example("aging_range_queries.py")
        assert "aging slowdown" in out

    @pytest.mark.slow
    def test_node_size_tuning(self):
        out = run_example("node_size_tuning.py")
        assert "B-tree optimum" in out

    @pytest.mark.slow
    def test_io_trace_analysis(self):
        out = run_example("io_trace_analysis.py")
        assert "fewer IOs" in out
