"""Calibration probes: correct observations, correct cost accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.models.affine import AffineModel
from repro.models.pdam import PDAMModel
from repro.storage.ideal import AffineDevice, PDAMDevice
from repro.tuning import probe_affine, probe_parallel, supports_parallel_probe


def affine_device(s=0.004, t=4e-9, **kw):
    return AffineDevice(AffineModel.from_hardware(s, t), **kw)


class TestAffineProbe:
    def test_observations_match_model_exactly(self):
        dev = affine_device()
        probe = probe_affine(dev, io_sizes=(4096, 65536), reads_per_size=3)
        assert probe.io_sizes == (4096,) * 3 + (65536,) * 3
        for size, sec in zip(probe.io_sizes, probe.seconds):
            assert sec == pytest.approx(0.004 + 4e-9 * size)

    def test_probe_cost_accounted(self):
        dev = affine_device()
        before = dev.clock
        probe = probe_affine(dev, io_sizes=(4096,), reads_per_size=5)
        assert probe.probe_ios == 5
        assert probe.probe_seconds == pytest.approx(dev.clock - before)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            probe_affine(affine_device(), io_sizes=())
        with pytest.raises(ConfigurationError):
            probe_affine(affine_device(), io_sizes=(4096,), reads_per_size=0)
        small = AffineDevice(AffineModel.from_hardware(0.004, 4e-9), capacity_bytes=2048)
        with pytest.raises(ConfigurationError):
            probe_affine(small, io_sizes=(4096,))

    def test_deterministic_under_seed(self):
        a = probe_affine(affine_device(), io_sizes=(4096, 8192), reads_per_size=4, seed=7)
        b = probe_affine(affine_device(), io_sizes=(4096, 8192), reads_per_size=4, seed=7)
        assert a.seconds == b.seconds


class TestParallelProbe:
    def test_serial_device_returns_none(self):
        dev = affine_device()
        if not supports_parallel_probe(dev):
            assert probe_parallel(dev) is None

    def test_pdam_ramp_flat_then_linear(self):
        dev = PDAMDevice(PDAMModel(parallelism=4, block_bytes=4096, step_seconds=1e-4))
        probe = probe_parallel(
            dev, threads=(1, 2, 4, 8, 16), bytes_per_thread=64 * 4096
        )
        assert probe is not None
        t = dict(zip(probe.threads, probe.completion_seconds))
        # Below saturation each client's 64 blocks fit in the free slots:
        # completion time stays one step per block.
        assert t[1] == pytest.approx(t[4])
        # Beyond saturation time grows linearly with the thread count.
        assert t[8] == pytest.approx(2 * t[4])
        assert t[16] == pytest.approx(4 * t[4])

    def test_pdam_request_bytes_is_device_block(self):
        dev = PDAMDevice(PDAMModel(parallelism=2, block_bytes=8192, step_seconds=1e-4))
        probe = probe_parallel(dev, threads=(1, 2), bytes_per_thread=16 * 8192)
        assert probe.request_bytes == 8192

    def test_live_device_probed_by_clock_delta(self):
        dev = PDAMDevice(PDAMModel(parallelism=2, block_bytes=4096, step_seconds=1e-4))
        dev.read(0, 4096)  # prior traffic advances the clock
        probe = probe_parallel(dev, threads=(1,), bytes_per_thread=8 * 4096)
        # 8 blocks, one client: exactly 8 steps, prior busy time excluded.
        assert probe.completion_seconds[0] == pytest.approx(8e-4)

    def test_bytes_per_thread_must_cover_a_request(self):
        dev = PDAMDevice(PDAMModel(parallelism=2, block_bytes=4096, step_seconds=1e-4))
        with pytest.raises(ConfigurationError):
            probe_parallel(dev, bytes_per_thread=1024)
