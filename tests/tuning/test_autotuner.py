"""AutoTuner: the full loop, payback gating, passive refits."""

import pytest

from repro.errors import ConfigurationError
from repro.models.affine import AffineModel
from repro.storage.ideal import AffineDevice
from repro.storage.stack import StorageStack
from repro.trees.btree import BTree, BTreeConfig
from repro.tuning import AutoTuner
from repro.tuning.autotuner import estimate_migration_seconds

UNIVERSE = 1 << 20
CACHE = 1 << 20


def device(s=0.004, t=4e-9):
    return AffineDevice(AffineModel.from_hardware(s, t))


def loaded_tree(dev, node_bytes, n=2000, seed=0):
    import random

    rng = random.Random(seed)
    pairs = sorted((k, f"v{k}") for k in rng.sample(range(UNIVERSE), n))
    tree = BTree(StorageStack(dev, CACHE), BTreeConfig(node_bytes=node_bytes))
    tree.bulk_load(pairs)
    return tree, dict(pairs)


class TestLifecycle:
    def test_recommend_before_calibrate_rejected(self):
        tuner = AutoTuner(device())
        with pytest.raises(ConfigurationError):
            tuner.recommend(n_entries=10**6, cache_bytes=CACHE)

    def test_calibrate_then_recommend(self):
        tuner = AutoTuner(device())
        profile = tuner.calibrate()
        assert profile.confident()
        rec = tuner.recommend(n_entries=10**7, cache_bytes=CACHE)
        assert rec.node_bytes > 0
        assert tuner.profile is profile

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AutoTuner(device(), min_r2=0.0)
        with pytest.raises(ConfigurationError):
            AutoTuner(device(), max_probe_rounds=0)


class TestApply:
    def setup_tuner(self, dev):
        tuner = AutoTuner(dev)
        tuner.calibrate()
        return tuner

    def test_bulk_migration_preserves_tree(self):
        dev = device()
        tree, reference = loaded_tree(dev, node_bytes=4096)
        tuner = self.setup_tuner(dev)
        rec = tuner.recommend(n_entries=len(tree), cache_bytes=64 << 10)
        outcome = tuner.apply(
            tree,
            rec,
            lambda: BTree(
                StorageStack(dev, CACHE), BTreeConfig(node_bytes=rec.node_bytes)
            ),
            current_node_bytes=4096,
        )
        assert outcome.migrated
        assert outcome.report is not None and outcome.report.mode == "bulk"
        assert len(outcome.tree) == len(reference)
        for key in list(reference)[::131]:
            assert outcome.tree.get(key) == reference[key]

    def test_incremental_migration_mode(self):
        dev = device()
        tree, reference = loaded_tree(dev, node_bytes=4096, n=800)
        tuner = self.setup_tuner(dev)
        rec = tuner.recommend(n_entries=len(tree), cache_bytes=64 << 10)
        outcome = tuner.apply(
            tree,
            rec,
            lambda: BTree(
                StorageStack(dev, CACHE), BTreeConfig(node_bytes=rec.node_bytes)
            ),
            current_node_bytes=4096,
            mode="incremental",
            universe=UNIVERSE,
        )
        assert outcome.migrated
        assert outcome.report.mode == "incremental"
        assert outcome.report.entries_moved == len(reference)

    def test_incremental_needs_universe(self):
        dev = device()
        tree, _ = loaded_tree(dev, node_bytes=4096, n=100)
        tuner = self.setup_tuner(dev)
        rec = tuner.recommend(n_entries=10**6, cache_bytes=CACHE)
        with pytest.raises(ConfigurationError):
            tuner.apply(tree, rec, lambda: None, current_node_bytes=4096,
                        mode="incremental")

    def test_short_horizon_skips_migration(self):
        dev = device()
        tree, _ = loaded_tree(dev, node_bytes=4096)
        tuner = self.setup_tuner(dev)
        rec = tuner.recommend(n_entries=len(tree), cache_bytes=64 << 10)
        outcome = tuner.apply(
            tree, rec, lambda: None,
            current_node_bytes=4096,
            current_per_op_seconds=rec.predicted_per_op_seconds * 2,
            horizon_ops=1,  # nothing pays back within one op
        )
        assert not outcome.migrated
        assert outcome.tree is tree
        assert outcome.report is None
        assert outcome.predicted_payback_ops > 1

    def test_no_saving_never_migrates_under_horizon(self):
        dev = device()
        tree, _ = loaded_tree(dev, node_bytes=4096)
        tuner = self.setup_tuner(dev)
        rec = tuner.recommend(n_entries=len(tree), cache_bytes=64 << 10)
        outcome = tuner.apply(
            tree, rec, lambda: None,
            current_node_bytes=4096,
            current_per_op_seconds=rec.predicted_per_op_seconds / 2,  # already faster
            horizon_ops=10**12,
        )
        assert not outcome.migrated

    def test_unknown_mode_rejected(self):
        dev = device()
        tree, _ = loaded_tree(dev, node_bytes=4096, n=100)
        tuner = self.setup_tuner(dev)
        rec = tuner.recommend(n_entries=10**6, cache_bytes=CACHE)
        with pytest.raises(ConfigurationError):
            tuner.apply(tree, rec, lambda: None, current_node_bytes=4096, mode="magic")


class TestRefit:
    def test_refit_updates_profile_from_sampler(self):
        dev = device()
        tuner = AutoTuner(dev)
        tuner.calibrate()
        dev.enable_sampling(capacity=1024)
        for size in (4096, 16384, 65536, 262144) * 8:
            dev.read(0, size)
        updated = tuner.refit()
        assert updated is not None
        assert tuner.profile.source == "trace"

    def test_refit_without_sampler_keeps_profile(self):
        dev = device()
        tuner = AutoTuner(dev)
        profile = tuner.calibrate()
        assert tuner.refit() is None
        assert tuner.profile is profile

    def test_refit_before_calibrate_is_none(self):
        assert AutoTuner(device()).refit() is None


class TestMigrationEstimate:
    def test_scales_with_entries(self):
        tuner = AutoTuner(device())
        profile = tuner.calibrate()
        small = estimate_migration_seconds(profile, 10**4, 4096, 65536)
        large = estimate_migration_seconds(profile, 10**6, 4096, 65536)
        assert large > small * 50
        with pytest.raises(ConfigurationError):
            estimate_migration_seconds(profile, -1, 4096, 65536)


class TestCalibrationCache:
    def _tuner(self, cache):
        return AutoTuner(device(), cache=cache)

    def test_second_calibration_is_a_cache_hit(self, tmp_path):
        from repro.runner import ResultCache

        cache = ResultCache(tmp_path)
        first = self._tuner(cache).calibrate()
        assert (cache.hits, cache.misses) == (0, 1)
        second = self._tuner(cache).calibrate()
        assert (cache.hits, cache.misses) == (1, 1)
        assert second.affine.seconds_per_byte == first.affine.seconds_per_byte
        assert second.setup_seconds == first.setup_seconds

    def test_cache_hit_leaves_device_untouched(self, tmp_path):
        from repro.runner import ResultCache

        cache = ResultCache(tmp_path)
        self._tuner(cache).calibrate()
        tuner = self._tuner(cache)
        tuner.calibrate()
        assert tuner.device.clock == 0.0
        assert tuner.device.stats.reads == 0

    def test_different_device_misses(self, tmp_path):
        from repro.runner import ResultCache

        cache = ResultCache(tmp_path)
        self._tuner(cache).calibrate()
        other = AutoTuner(device(s=0.008), cache=cache)
        other.calibrate()
        assert cache.misses == 2

    def test_probe_params_enter_fingerprint(self, tmp_path):
        from repro.runner import ResultCache

        cache = ResultCache(tmp_path)
        self._tuner(cache).calibrate(reads_per_size=32)
        self._tuner(cache).calibrate(reads_per_size=16)
        assert cache.misses == 2
