"""Property tests: the solver matches brute-force argmin of the models.

The acceptance contract of :mod:`repro.tuning.solve`: across the alpha
range [1e-4, 1e-1] (per entry) and workload mix weights {0, 0.5, 1}, the
configuration the solver returns achieves a model cost within a whisker of
the best cost a dense brute-force grid over the same domain finds.  Cost
match (not argmin-position match) is the right property: the cost curves
are flat near their optima, so two far-apart configurations can tie.
"""

import math

import pytest

from repro.analysis.fitting import AffineFit, PDAMFit
from repro.analysis.regression import LinearFit, SegmentedFit
from repro.errors import ConfigurationError
from repro.models.analysis import (
    btree_op_cost,
    mixed_workload_cost,
    optimal_mixed_betree_params,
)
from repro.tuning import DeviceProfile, solve
from repro.tuning.solve import solve_btree_node_entries

# N/M large enough that the uncached-height clamp never binds over the
# tested alpha range (the solver is the interior Corollary 7/12 optimum;
# its docstring scopes out trees that nearly fit in cache).
N, M = 1e9, 1e3
ALPHAS = [1e-4, 1e-3, 1e-2, 1e-1]
WEIGHTS = [0.0, 0.5, 1.0]


def _log_grid(lo, hi, n=400):
    step = (math.log(hi) - math.log(lo)) / (n - 1)
    return [math.exp(math.log(lo) + i * step) for i in range(n)]


def profile_for(alpha_per_entry, *, entry_bytes=108, s=0.004, pdam=None, block=None):
    """A synthetic DeviceProfile whose per-entry alpha is exact."""
    alpha_per_byte = alpha_per_entry / entry_bytes
    affine = AffineFit(
        setup_seconds=s,
        seconds_per_byte=alpha_per_byte * s,
        alpha=alpha_per_byte,
        alpha_unit_bytes=1,
        r2=1.0,
    )
    return DeviceProfile(
        affine=affine, pdam=pdam, probe_seconds=0.0, probe_ios=0,
        source="probe", parallel_block_bytes=block,
    )


class TestBTreeSolveMatchesBruteForce:
    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_cost_at_solver_argmin_is_grid_minimum(self, alpha):
        best_entries = solve_btree_node_entries(alpha, N, M)
        solver_cost = btree_op_cost(best_entries, alpha, N, M)
        grid_cost = min(
            btree_op_cost(b, alpha, N, M) for b in _log_grid(2.0, 10.0 / alpha)
        )
        assert solver_cost <= grid_cost * 1.001

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_optimum_below_half_bandwidth(self, alpha):
        assert solve_btree_node_entries(alpha, N, M) < 1.0 / alpha


class TestBeTreeSolveMatchesBruteForce:
    @pytest.mark.parametrize("alpha", ALPHAS)
    @pytest.mark.parametrize("w", WEIGHTS)
    def test_cost_at_solver_argmin_is_grid_minimum(self, alpha, w):
        F, B = optimal_mixed_betree_params(alpha, N, M, query_fraction=w)
        solver_cost = mixed_workload_cost(B, F, alpha, N, M, query_fraction=w)
        cap = 10.0 / alpha
        grid_cost = min(
            mixed_workload_cost(b, f, alpha, N, M, query_fraction=w)
            for f in _log_grid(2.0, max(4.0, math.sqrt(cap)), n=60)
            for b in _log_grid(f * 1.01, cap, n=60)
        )
        # The solver refines past the grid, so it may be slightly better;
        # it must never be more than 2% worse.
        assert solver_cost <= grid_cost * 1.02

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_fanout_within_node(self, alpha):
        for w in WEIGHTS:
            F, B = optimal_mixed_betree_params(alpha, N, M, query_fraction=w)
            assert 2.0 <= F < B

    def test_query_only_mix_prefers_larger_fanout_than_insert_only(self):
        alpha = 1e-3
        F_query, _ = optimal_mixed_betree_params(alpha, N, M, query_fraction=1.0)
        F_insert, _ = optimal_mixed_betree_params(alpha, N, M, query_fraction=0.0)
        assert F_query > F_insert


class TestRecommendations:
    def test_btree_serial_recommendation_matches_solver(self):
        alpha = 1e-2
        profile = profile_for(alpha)
        rec = solve(profile, n_entries=int(N), cache_bytes=int(M) * 108)
        entries = solve_btree_node_entries(alpha, N, M)
        assert rec.tree == "btree" and rec.layout == "flat"
        assert rec.node_bytes == pytest.approx(entries * 108, rel=0.05)
        assert rec.cost_curve  # predicted curve ships with the decision
        assert "Corollar" in rec.paper_anchor

    def test_btree_parallel_device_gets_pb_veb_nodes(self):
        pdam = PDAMFit(
            parallelism=4.0,
            saturation_bytes_per_second=1e9,
            r2=1.0,
            segmented=SegmentedFit(
                breakpoint=4.0,
                left=LinearFit(slope=0.0, intercept=1.0, r2=1.0),
                right=LinearFit(slope=0.25, intercept=0.0, r2=1.0),
                r2=1.0,
            ),
        )
        profile = profile_for(1e-2, pdam=pdam, block=65536)
        rec = solve(profile, n_entries=int(N), cache_bytes=int(M) * 108)
        assert rec.layout == "veb"
        assert rec.node_bytes == 4 * 65536
        assert "Lemma 13" in rec.paper_anchor

    def test_parallel_layout_can_be_disabled(self):
        pdam = PDAMFit(
            parallelism=4.0,
            saturation_bytes_per_second=1e9,
            r2=1.0,
            segmented=SegmentedFit(
                breakpoint=4.0,
                left=LinearFit(slope=0.0, intercept=1.0, r2=1.0),
                right=LinearFit(slope=0.25, intercept=0.0, r2=1.0),
                r2=1.0,
            ),
        )
        profile = profile_for(1e-2, pdam=pdam, block=65536)
        rec = solve(
            profile, n_entries=int(N), cache_bytes=int(M) * 108,
            prefer_parallel_layout=False,
        )
        assert rec.layout == "flat"

    def test_betree_recommendation_carries_epsilon(self):
        profile = profile_for(1e-3)
        rec = solve(
            profile, n_entries=int(N), cache_bytes=int(M) * 108,
            tree="betree", query_fraction=0.5,
        )
        assert rec.tree == "betree"
        assert rec.fanout is not None and rec.fanout >= 2
        assert 0.0 < rec.epsilon <= 1.0

    def test_predicted_at_reads_cost_curve(self):
        profile = profile_for(1e-2)
        rec = solve(profile, n_entries=int(N), cache_bytes=int(M) * 108)
        node_bytes, cost = rec.cost_curve[3]
        assert rec.predicted_at(node_bytes) == pytest.approx(cost)

    def test_in_cache_tree_rejected(self):
        profile = profile_for(1e-2)
        with pytest.raises(ConfigurationError):
            solve(profile, n_entries=100, cache_bytes=10**9)

    def test_unknown_tree_rejected(self):
        profile = profile_for(1e-2)
        with pytest.raises(ConfigurationError):
            solve(profile, n_entries=int(N), cache_bytes=int(M) * 108, tree="lsm")
