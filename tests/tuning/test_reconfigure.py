"""Migration: bulk rebuild, incremental slab migration, payback rule."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.models.affine import AffineModel
from repro.storage.ideal import AffineDevice
from repro.storage.stack import StorageStack
from repro.trees.btree import BTree, BTreeConfig
from repro.tuning import (
    IncrementalMigrator,
    MigrationReport,
    migration_pays_off,
    rebuild_tree,
)

UNIVERSE = 1 << 20


def make_tree(device=None, node_bytes=4096, cache_bytes=1 << 20):
    if device is None:
        device = AffineDevice(AffineModel.from_hardware(0.004, 4e-9))
    return BTree(StorageStack(device, cache_bytes), BTreeConfig(node_bytes=node_bytes))


def loaded_tree(n=2000, node_bytes=4096, seed=0, device=None):
    import random

    rng = random.Random(seed)
    keys = rng.sample(range(UNIVERSE), n)
    pairs = sorted((k, f"v{k}") for k in keys)
    tree = make_tree(device=device, node_bytes=node_bytes)
    tree.bulk_load(pairs)
    return tree, dict(pairs)


class TestPaybackRule:
    def test_payback_point(self):
        report = MigrationReport(
            migration_seconds=10.0, entries_moved=0, mode="bulk",
            old_per_op_seconds=3e-3, new_per_op_seconds=1e-3,
        )
        assert report.payback_ops() == pytest.approx(5000.0)
        assert report.pays_off_within(5001)
        assert not report.pays_off_within(4999)

    def test_no_saving_never_pays(self):
        report = MigrationReport(
            migration_seconds=10.0, entries_moved=0, mode="bulk",
            old_per_op_seconds=1e-3, new_per_op_seconds=1e-3,
        )
        assert report.payback_ops() == math.inf

    def test_missing_estimates_never_pay(self):
        report = MigrationReport(migration_seconds=10.0, entries_moved=0, mode="bulk")
        assert report.payback_ops() == math.inf

    def test_standalone_rule(self):
        assert migration_pays_off(10.0, 3e-3, 1e-3, 10_000)
        assert not migration_pays_off(10.0, 3e-3, 1e-3, 100)

    def test_bad_horizon_rejected(self):
        report = MigrationReport(migration_seconds=1.0, entries_moved=0, mode="bulk")
        with pytest.raises(ConfigurationError):
            report.pays_off_within(0)


class TestBulkRebuild:
    def test_contents_preserved(self):
        old, reference = loaded_tree()
        new, report = rebuild_tree(old, lambda: make_tree(node_bytes=65536))
        assert len(new) == len(reference)
        for key, value in list(reference.items())[::97]:
            assert new.get(key) == value
        assert report.mode == "bulk"
        assert report.entries_moved == len(reference)

    def test_migration_io_is_charged(self):
        old, _ = loaded_tree()
        device = old.storage.device
        before = device.stats.busy_seconds
        _, report = rebuild_tree(
            old,
            lambda: BTree(
                StorageStack(device, 1 << 20), BTreeConfig(node_bytes=65536)
            ),
        )
        assert report.migration_seconds > 0
        assert report.migration_seconds == pytest.approx(
            device.stats.busy_seconds - before
        )

    def test_separate_devices_both_charged(self):
        old, _ = loaded_tree()
        other = AffineDevice(AffineModel.from_hardware(0.004, 4e-9))
        _, report = rebuild_tree(old, lambda: make_tree(device=other, node_bytes=65536))
        assert report.migration_seconds > 0

    def test_nonempty_target_rejected(self):
        old, _ = loaded_tree(n=100)
        full = make_tree()
        full.insert(1, "x")
        with pytest.raises(ConfigurationError):
            rebuild_tree(old, lambda: full)


class TestIncrementalMigrator:
    def make(self, n=1500, n_slabs=8, writes_per_step=16):
        old, reference = loaded_tree(n=n)
        new = make_tree(device=old.storage.device, node_bytes=65536)
        mig = IncrementalMigrator(
            old, new, universe=UNIVERSE, n_slabs=n_slabs,
            writes_per_step=writes_per_step,
        )
        return mig, reference

    def test_run_to_completion_moves_everything(self):
        mig, reference = self.make()
        report = mig.run_to_completion()
        assert mig.done
        assert report.entries_moved == len(reference)
        assert report.migration_seconds > 0
        assert len(mig.new) == len(reference)

    def test_reads_routed_correctly_mid_migration(self):
        mig, reference = self.make()
        keys = sorted(reference)
        mig.migrate_next_slab()
        mig.migrate_next_slab()
        frontier = mig.frontier
        assert frontier is not None
        # Spot-check keys on both sides of the frontier.
        below = [k for k in keys if k <= frontier][::53]
        above = [k for k in keys if k > frontier][::53]
        for k in below + above:
            assert mig.get(k) == reference[k]

    def test_range_stitched_at_frontier(self):
        mig, reference = self.make()
        mig.migrate_next_slab()
        frontier = mig.frontier
        lo, hi = frontier - 5000, frontier + 5000
        expected = sorted((k, v) for k, v in reference.items() if lo <= k <= hi)
        assert mig.range(lo, hi) == expected
        assert mig.range(10, 5) == []

    def test_writes_drive_migration_steps(self):
        mig, _ = self.make(writes_per_step=4)
        assert mig.frontier is None
        for i in range(8):
            mig.insert(UNIVERSE - 1 - i, "w")
        # 8 routed writes at 4 per step -> two slabs migrated.
        assert mig._next_slab == 2

    def test_inserts_above_frontier_picked_up_later(self):
        mig, reference = self.make(writes_per_step=10**9)  # no auto-steps
        mig.migrate_next_slab()
        key = UNIVERSE - 7  # far above the frontier -> routed to old tree
        mig.insert(key, "late")
        report = mig.run_to_completion()
        assert mig.new.get(key) == "late"
        assert report.entries_moved == len(reference) + 1

    def test_len_counts_each_entry_once(self):
        mig, reference = self.make()
        assert len(mig) == len(reference)
        mig.migrate_next_slab()
        assert len(mig) == len(reference)

    def test_validation(self):
        old, _ = loaded_tree(n=50)
        new = make_tree(device=old.storage.device)
        with pytest.raises(ConfigurationError):
            IncrementalMigrator(old, new, universe=0)
        with pytest.raises(ConfigurationError):
            IncrementalMigrator(old, new, universe=10, n_slabs=0)
        new.insert(1, "x")
        with pytest.raises(ConfigurationError):
            IncrementalMigrator(old, new, universe=10)
