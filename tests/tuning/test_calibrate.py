"""Fitting: round-trips on ideal devices, gating, passive refits."""

import pytest

from repro.errors import ConfigurationError
from repro.models.affine import AffineModel
from repro.models.pdam import PDAMModel
from repro.storage.device import IOSample
from repro.storage.ideal import AffineDevice, PDAMDevice
from repro.tuning import (
    DeviceProfile,
    calibrate_device,
    refit_from_samples,
    refit_profile,
)


def affine_device(s=0.004, t=4e-9):
    return AffineDevice(AffineModel.from_hardware(s, t))


class TestRoundTrip:
    """Acceptance criterion: planted parameters recovered within 5%."""

    @pytest.mark.parametrize("s,t", [(0.004, 4e-9), (0.05, 9.26e-10), (2e-5, 9.26e-9)])
    def test_affine_alpha_within_5pct(self, s, t):
        profile = calibrate_device(affine_device(s, t))
        true_alpha = t / s
        assert abs(profile.alpha_per_byte - true_alpha) / true_alpha < 0.05
        assert abs(profile.setup_seconds - s) / s < 0.05
        assert profile.affine.r2 >= 0.98
        assert profile.confident()

    @pytest.mark.parametrize("P", [2, 4, 8])
    def test_pdam_parallelism_within_5pct(self, P):
        dev = PDAMDevice(PDAMModel(parallelism=P, block_bytes=4096, step_seconds=1e-4))
        profile = calibrate_device(dev)
        assert profile.pdam is not None
        assert abs(profile.pdam.parallelism - P) / P < 0.05
        assert profile.pdam.r2 >= 0.98
        assert profile.is_parallel
        assert profile.parallel_block_bytes == 4096

    def test_serial_device_has_no_pdam_half(self):
        profile = calibrate_device(affine_device())
        assert not profile.is_parallel

    def test_profile_charges_probe_cost(self):
        dev = affine_device()
        profile = calibrate_device(dev)
        assert profile.probe_ios > 0
        assert profile.probe_seconds == pytest.approx(dev.clock)
        assert profile.source == "probe"


class TestProfileUnits:
    def test_alpha_per_entry_scales_by_entry_bytes(self):
        profile = calibrate_device(affine_device())
        assert profile.alpha_per_entry(108) == pytest.approx(108 * profile.alpha_per_byte)
        with pytest.raises(ConfigurationError):
            profile.alpha_per_entry(0)


def _samples(sizes, s=0.004, t=4e-9, kind="read"):
    return [IOSample(nbytes=n, seconds=s + t * n, kind=kind) for n in sizes]


class TestRefitFromSamples:
    def test_recovers_planted_line(self):
        sizes = [4096, 16384, 65536, 262144] * 8
        fit = refit_from_samples(_samples(sizes))
        assert fit is not None
        assert fit.setup_seconds == pytest.approx(0.004, rel=1e-6)
        assert fit.seconds_per_byte == pytest.approx(4e-9, rel=1e-6)

    def test_too_few_samples_rejected(self):
        assert refit_from_samples(_samples([4096, 65536] * 3)) is None

    def test_narrow_size_spread_rejected(self):
        # 16 samples but sizes within a factor of 2: no slope information.
        assert refit_from_samples(_samples([4096, 6144, 8192] * 6)) is None

    def test_too_few_distinct_sizes_rejected(self):
        # Wide spread, plenty of samples, but only two rungs.
        assert refit_from_samples(_samples([4096, 262144] * 10)) is None

    def test_wrong_kind_rejected(self):
        samples = _samples([4096, 16384, 65536, 262144] * 8, kind="write")
        assert refit_from_samples(samples) is None
        assert refit_from_samples(samples, kind="write") is not None


class TestRefitProfile:
    def test_updates_affine_keeps_pdam(self):
        dev = affine_device()
        profile = calibrate_device(dev)
        dev.enable_sampling(capacity=1024)
        for size in [4096, 16384, 65536, 262144] * 8:
            dev.read(0, size)
        updated = refit_profile(profile, dev)
        assert updated is not None
        assert updated.source == "trace"
        assert updated.pdam is profile.pdam
        assert updated.setup_seconds == pytest.approx(0.004, rel=1e-3)

    def test_sampler_off_returns_none(self):
        dev = affine_device()
        profile = calibrate_device(dev)
        assert refit_profile(profile, dev) is None
