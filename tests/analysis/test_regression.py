"""Linear and segmented regression tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.regression import linear_fit, segmented_linear_fit
from repro.errors import FitError


class TestLinearFit:
    def test_exact_line(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        fit = linear_fit(x, 2 * x + 5)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(5.0)
        assert fit.r2 == pytest.approx(1.0)

    def test_noisy_line_recovers_params(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 100, 200)
        y = 3 * x + 10 + rng.normal(0, 1, size=x.size)
        fit = linear_fit(x, y)
        assert fit.slope == pytest.approx(3.0, rel=0.02)
        assert fit.intercept == pytest.approx(10.0, abs=1.0)
        assert fit.r2 > 0.99

    def test_predict(self):
        fit = linear_fit([0, 1], [1, 3])
        assert fit.predict(2.0) == pytest.approx(5.0)
        np.testing.assert_allclose(fit.predict([0, 1, 2]), [1, 3, 5])

    def test_constant_x_rejected(self):
        with pytest.raises(FitError):
            linear_fit([1.0, 1.0], [1.0, 2.0])

    def test_too_few_points(self):
        with pytest.raises(FitError):
            linear_fit([1.0], [1.0])

    @given(
        st.floats(-100, 100), st.floats(-100, 100),
        st.lists(st.floats(-1000, 1000), min_size=3, max_size=20, unique=True),
    )
    @settings(max_examples=50, deadline=None)
    def test_recovers_any_exact_line(self, slope, intercept, xs):
        xs = np.asarray(xs)
        fit = linear_fit(xs, slope * xs + intercept)
        np.testing.assert_allclose(
            fit.predict(xs), slope * xs + intercept, atol=1e-6 * (1 + abs(slope) + abs(intercept))
        )


class TestSegmentedFit:
    def _knee_data(self, breakpoint=8.0, level=10.0, slope=2.0, n=30, noise=0.0, seed=0):
        rng = np.random.default_rng(seed)
        x = np.linspace(1, 32, n)
        y = np.where(x <= breakpoint, level, level + slope * (x - breakpoint))
        return x, y + rng.normal(0, noise, size=n)

    def test_exact_knee(self):
        x, y = self._knee_data()
        fit = segmented_linear_fit(x, y)
        assert abs(fit.breakpoint - 8.0) < 2.0
        assert fit.right.slope == pytest.approx(2.0, rel=0.05)
        assert fit.r2 > 0.999

    def test_noisy_knee(self):
        x, y = self._knee_data(noise=0.3, seed=3)
        fit = segmented_linear_fit(x, y)
        assert abs(fit.breakpoint - 8.0) < 3.0
        assert fit.r2 > 0.98

    def test_flat_left_constrains_slope(self):
        x, y = self._knee_data(noise=0.1, seed=4)
        fit = segmented_linear_fit(x, y, flat_left=True)
        assert fit.left.slope == 0.0
        assert fit.left.intercept == pytest.approx(10.0, abs=0.5)

    def test_predict_piecewise(self):
        x, y = self._knee_data()
        fit = segmented_linear_fit(x, y)
        left_pred = float(fit.predict(2.0))
        right_pred = float(fit.predict(30.0))
        assert left_pred == pytest.approx(10.0, abs=0.5)
        assert right_pred == pytest.approx(10 + 2 * 22, rel=0.05)

    def test_needs_enough_points(self):
        with pytest.raises(FitError):
            segmented_linear_fit([1, 2, 3], [1, 2, 3])

    def test_all_equal_x_degenerate_flat_fit(self):
        # No candidate breakpoint splits constant x, so the fit falls back
        # to one flat segment on both sides and flags itself degenerate.
        fit = segmented_linear_fit([1, 1, 1, 1], [1, 2, 3, 4])
        assert fit.degenerate
        assert fit.left is fit.right
        assert fit.left.slope == pytest.approx(0.0)
        assert fit.left.intercept == pytest.approx(2.5)
        assert fit.breakpoint == pytest.approx(1.0)

    def test_one_sided_breakpoints_degenerate_not_raise(self):
        # The only candidate split falls between equal x-values, so every
        # breakpoint is ambiguous.  Must return a flagged fit, not raise.
        fit = segmented_linear_fit([1, 1, 1, 2], [1, 1, 1, 2])
        assert fit.degenerate

    def test_knee_data_not_degenerate(self):
        x, y = self._knee_data()
        assert not segmented_linear_fit(x, y).degenerate

    def test_unsorted_input_handled(self):
        x, y = self._knee_data()
        order = np.random.default_rng(1).permutation(x.size)
        fit = segmented_linear_fit(x[order], y[order])
        assert abs(fit.breakpoint - 8.0) < 2.0

    def test_pure_line_still_fits_well(self):
        # Degenerate input (no knee): overall R^2 should still be ~1.
        x = np.linspace(1, 10, 20)
        fit = segmented_linear_fit(x, 3 * x + 1)
        assert fit.r2 == pytest.approx(1.0)
