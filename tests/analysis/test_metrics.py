"""Goodness-of-fit metric tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis.metrics import max_relative_error, r_squared, rms_error
from repro.errors import FitError


class TestRSquared:
    def test_perfect_fit(self):
        y = [1.0, 2.0, 3.0]
        assert r_squared(y, y) == 1.0

    def test_mean_prediction_is_zero(self):
        y = [1.0, 2.0, 3.0]
        assert r_squared(y, [2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_worse_than_mean_is_negative(self):
        assert r_squared([1.0, 2.0, 3.0], [3.0, 2.0, 1.0]) < 0

    def test_constant_observed_perfect(self):
        assert r_squared([5.0, 5.0], [5.0, 5.0]) == 1.0

    def test_constant_observed_imperfect_raises(self):
        with pytest.raises(FitError):
            r_squared([5.0, 5.0], [5.0, 6.0])

    def test_shape_mismatch(self):
        with pytest.raises(FitError):
            r_squared([1.0], [1.0, 2.0])

    def test_2d_rejected(self):
        with pytest.raises(FitError):
            r_squared(np.ones((2, 2)), np.ones((2, 2)))

    @given(
        hnp.arrays(np.float64, st.integers(3, 30),
                   elements=st.floats(-1e6, 1e6)),
    )
    @settings(max_examples=50, deadline=None)
    def test_never_exceeds_one(self, y):
        pred = y + 1.0  # any fixed offset
        try:
            r2 = r_squared(y, pred)
        except FitError:
            return  # constant-observed case
        assert r2 <= 1.0 + 1e-12


class TestRMS:
    def test_zero_for_perfect(self):
        assert rms_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        assert rms_error([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_empty_rejected(self):
        with pytest.raises(FitError):
            rms_error([], [])


class TestMaxRelativeError:
    def test_known_value(self):
        # Paper: "never more than 14%" — the metric itself.
        assert max_relative_error([100.0, 200.0], [114.0, 200.0]) == pytest.approx(0.14)

    def test_zero_observation_rejected(self):
        # A zero observation with a nonzero prediction has no finite
        # relative error: still a hard failure.
        with pytest.raises(FitError):
            max_relative_error([0.0], [1.0])

    def test_matched_zero_is_skipped(self):
        # Regression: a single (0, 0) point used to poison the whole
        # series; it carries no relative-error information and is skipped.
        assert max_relative_error(
            [0.0, 100.0, 200.0], [0.0, 114.0, 200.0]
        ) == pytest.approx(0.14)

    def test_all_zero_rejected(self):
        with pytest.raises(FitError):
            max_relative_error([0.0, 0.0], [0.0, 0.0])
