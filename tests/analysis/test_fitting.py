"""Device-parameter fit tests (the Table 1 / Table 2 machinery)."""

import numpy as np
import pytest

from repro.analysis.fitting import (
    fit_affine_model,
    fit_affine_overlay,
    fit_pdam_model,
)
from repro.errors import FitError


class TestAffineFit:
    def test_recovers_exact_hardware(self):
        s, t = 0.012, 1e-8
        sizes = np.array([4096.0 * 4**k for k in range(7)])
        times = s + t * sizes
        fit = fit_affine_model(sizes, times)
        assert fit.setup_seconds == pytest.approx(s, rel=1e-6)
        assert fit.seconds_per_byte == pytest.approx(t, rel=1e-6)
        assert fit.alpha == pytest.approx(t * 4096 / s, rel=1e-6)
        assert fit.r2 == pytest.approx(1.0)

    def test_alpha_unit(self):
        s, t = 0.01, 1e-8
        sizes = np.array([1e3, 1e5, 1e7])
        fit = fit_affine_model(sizes, s + t * sizes, alpha_unit_bytes=1)
        assert fit.alpha == pytest.approx(t / s, rel=1e-6)

    def test_predict(self):
        sizes = np.array([1e3, 1e5, 1e7])
        fit = fit_affine_model(sizes, 0.01 + 1e-8 * sizes)
        assert fit.predict_seconds(2e5) == pytest.approx(0.01 + 2e-3)

    def test_non_affine_data_rejected(self):
        sizes = np.array([1e3, 1e5, 1e7])
        with pytest.raises(FitError):
            fit_affine_model(sizes, 1.0 - 1e-8 * sizes)  # negative slope

    def test_negative_intercept_rejected(self):
        sizes = np.array([1e3, 1e5, 1e7])
        with pytest.raises(FitError):
            fit_affine_model(sizes, -0.01 + 1e-8 * sizes)  # negative setup cost


class TestPDAMFit:
    def _threads_curve(self, P=4.0, flat=10.0, n_max=64):
        threads = np.array([1, 2, 3, 4, 5, 6, 8, 12, 16, 24, 32, 48, 64], dtype=float)
        threads = threads[threads <= n_max]
        times = np.maximum(flat, flat * threads / P)
        return threads, times

    def test_recovers_parallelism(self):
        threads, times = self._threads_curve(P=4.0)
        fit = fit_pdam_model(threads, times, bytes_per_thread=1e9)
        assert fit.parallelism == pytest.approx(4.0, rel=0.15)
        assert fit.r2 > 0.99

    def test_recovers_saturation(self):
        # Above the knee, time = threads * bytes / saturation.
        threads, times = self._threads_curve(P=4.0, flat=10.0)
        fit = fit_pdam_model(threads, times, bytes_per_thread=1e9)
        # slope = flat/P = 2.5 s/thread -> saturation = 1e9/2.5 = 4e8.
        assert fit.saturation_bytes_per_second == pytest.approx(4e8, rel=0.05)

    def test_never_saturated_rejected(self):
        threads = np.array([1.0, 2, 3, 4, 5, 6])
        times = np.full_like(threads, 7.0)
        with pytest.raises(FitError):
            fit_pdam_model(threads, times, bytes_per_thread=1e9)

    def test_bad_bytes_rejected(self):
        threads, times = self._threads_curve()
        with pytest.raises(FitError):
            fit_pdam_model(threads, times, bytes_per_thread=0)


class TestOverlayFit:
    def test_btree_overlay_recovers_alpha(self):
        alpha, scale = 1e-6, 2.0
        B = np.array([4096.0 * 4**k for k in range(6)])
        y = scale * (1 + alpha * B) / np.log(B + 1)
        fit = fit_affine_overlay(B, y, kind="btree")
        assert fit.alpha == pytest.approx(alpha, rel=0.05)
        assert fit.scale == pytest.approx(scale, rel=0.05)
        assert fit.rms < 1e-6 * y.max()

    def test_betree_kinds_fit_their_own_shape(self):
        alpha, scale = 1e-6, 0.5
        B = np.array([65536.0 * 4**k for k in range(5)])
        for kind, shape in [
            ("betree_insert", lambda b: (np.sqrt(b) / b + alpha * np.sqrt(b)) / np.log(np.sqrt(b))),
            ("betree_query", lambda b: (1 + alpha * np.sqrt(b) * 2) / np.log(np.sqrt(b))),
        ]:
            y = scale * shape(B)
            fit = fit_affine_overlay(B, y, kind=kind)
            assert fit.r2 > 0.98, kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(FitError):
            fit_affine_overlay([10, 100, 1000], [1, 2, 3], kind="nope")

    def test_too_few_points_rejected(self):
        with pytest.raises(FitError):
            fit_affine_overlay([10, 100], [1, 2], kind="btree")

    def test_noisy_overlay_still_reasonable(self):
        rng = np.random.default_rng(5)
        alpha = 5e-7
        B = np.array([4096.0 * 4**k for k in range(6)])
        y = (1 + alpha * B) / np.log(B + 1)
        y *= rng.uniform(0.9, 1.1, size=y.size)
        fit = fit_affine_overlay(B, y, kind="btree")
        assert 0.1 * alpha < fit.alpha < 10 * alpha
