"""IO-trace analysis tests."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.analysis.traces import (
    io_size_histogram,
    summarize_trace,
    trace_from_csv,
    trace_to_csv,
)
from repro.storage.device import IORecord
from repro.storage.ram import ConstantLatencyDevice


def rec(kind, offset, nbytes, start=0.0, dur=1.0):
    return IORecord(kind, offset, nbytes, start, start + dur)


class TestSummarize:
    def test_basic_counts(self):
        trace = [rec("read", 0, 100), rec("write", 100, 200, start=1.0)]
        s = summarize_trace(trace)
        assert s.n_ios == 2 and s.n_reads == 1 and s.n_writes == 1
        assert s.total_bytes == 300
        assert s.mean_io_bytes == 150
        assert s.max_io_bytes == 200
        assert s.busy_seconds == pytest.approx(2.0)
        assert s.read_fraction == 0.5

    def test_sequentiality(self):
        trace = [rec("read", 0, 100), rec("read", 100, 100), rec("read", 500, 100)]
        s = summarize_trace(trace)
        assert s.sequential_fraction == pytest.approx(0.5)
        assert s.mean_seek_bytes == pytest.approx(150.0)  # gaps: 0 and 300

    def test_effective_bandwidth(self):
        trace = [rec("read", 0, 1000, dur=2.0)]
        assert summarize_trace(trace).effective_bandwidth == pytest.approx(500.0)

    def test_single_io_gap_stats_undefined(self):
        # Regression: a single IO has no inter-IO gaps, so the gap stats
        # used to report a measured-looking 0.0 ("fully random, zero seek").
        # They are undefined and must say so.
        s = summarize_trace([rec("read", 0, 1000)])
        assert math.isnan(s.sequential_fraction)
        assert math.isnan(s.mean_seek_bytes)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_trace([])

    def test_from_live_device(self):
        dev = ConstantLatencyDevice(0.5, trace=True)
        dev.read(0, 4096)
        dev.read(4096, 4096)
        dev.write(0, 512)
        s = summarize_trace(dev.trace)
        assert s.n_ios == 3
        assert s.busy_seconds == pytest.approx(1.5)


class TestHistogram:
    def test_bins(self):
        trace = [rec("read", 0, 512), rec("read", 0, 4096), rec("read", 0, 4096)]
        hist = io_size_histogram(trace, bins=[512, 4096])
        assert hist == [("(0, 512]", 1), ("(512, 4096]", 2)]

    def test_overflow_bin(self):
        trace = [rec("read", 0, 10**6)]
        hist = io_size_histogram(trace, bins=[512])
        assert hist == [("(512, inf)", 1)]

    def test_default_bins_cover_everything(self):
        trace = [rec("read", 0, n) for n in (100, 5000, 1 << 20)]
        hist = io_size_histogram(trace)
        assert sum(c for _, c in hist) == 3

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            io_size_histogram([])


class TestCSVRoundtrip:
    def test_roundtrip_exact(self):
        trace = [rec("read", 0, 100), rec("write", 4096, 8192, start=1.25, dur=0.125)]
        back = trace_from_csv(trace_to_csv(trace))
        assert back == trace

    def test_bad_header_rejected(self):
        with pytest.raises(ConfigurationError):
            trace_from_csv("a,b,c\n1,2,3\n")

    def test_bad_kind_rejected(self):
        text = "kind,offset,nbytes,start,end\nerase,0,100,0.0,1.0\n"
        with pytest.raises(ConfigurationError):
            trace_from_csv(text)

    def test_inconsistent_times_rejected(self):
        text = "kind,offset,nbytes,start,end\nread,0,100,5.0,1.0\n"
        with pytest.raises(ConfigurationError):
            trace_from_csv(text)

    def test_row_width_rejected(self):
        text = "kind,offset,nbytes,start,end\nread,0,100\n"
        with pytest.raises(ConfigurationError):
            trace_from_csv(text)

    def test_float_precision_preserved(self):
        trace = [rec("read", 0, 1, start=0.1 + 0.2)]  # 0.30000000000000004
        back = trace_from_csv(trace_to_csv(trace))
        assert back[0].start == trace[0].start


class TestOnRealWorkload:
    def test_btree_trace_mostly_node_sized(self):
        from repro.storage.ram import NullDevice
        from repro.storage.stack import StorageStack
        from repro.trees.btree import BTree, BTreeConfig
        from repro.trees.sizing import EntryFormat

        dev = NullDevice(capacity_bytes=1 << 30, trace=True)
        stack = StorageStack(dev, cache_bytes=8192)
        tree = BTree(stack, BTreeConfig(node_bytes=4096, fmt=EntryFormat(value_bytes=20)))
        for k in range(3000):
            tree.insert(k, k)
        s = summarize_trace(dev.trace)
        assert s.mean_io_bytes == 4096
        assert s.n_writes > 0

    def test_fresh_bulk_load_is_sequential(self):
        from repro.experiments.devices import default_hdd
        from repro.storage.stack import StorageStack
        from repro.trees.btree import BTree, BTreeConfig

        dev = default_hdd(trace=True)
        stack = StorageStack(dev, cache_bytes=1 << 20)
        tree = BTree(stack, BTreeConfig(node_bytes=16 << 10))
        tree.bulk_load([(i, i) for i in range(50_000)])
        stack.flush()
        writes = [r for r in dev.trace if r.kind == "write"]
        s = summarize_trace(writes)
        # First-fit allocation in creation order: the leaf stream is
        # overwhelmingly sequential.
        assert s.sequential_fraction > 0.6
