"""CLI smoke tests."""

import pytest

from repro.experiments.cli import EXPERIMENTS, main


class TestCLI:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "fig1", "table2", "table3", "fig2", "fig3",
            "lemma13", "writeamp", "theorem9", "optima", "lsm",
            "epsilon", "aging", "asymmetry", "ycsb", "modelerr",
            "autotune", "tailres", "serve", "cob", "durability",
        }

    def test_list_prints_names_and_exits_zero(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert out == sorted(EXPERIMENTS)

    def test_no_experiment_and_no_list_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_runs_cheap_experiment(self, capsys):
        assert main(["optima"]) == 0
        out = capsys.readouterr().out
        assert "Corollaries" in out
        assert "wall]" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_help_exits_zero(self):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0


class TestRunnerFlags:
    def test_jobs_and_no_cache_smoke(self, capsys):
        assert main(["table2", "--jobs", "2", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_cache_dir_env_is_honored(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["table2"]) == 0
        first = capsys.readouterr().out
        assert any((tmp_path / "cache").iterdir())
        assert main(["table2"]) == 0  # warm rerun, same table
        second = capsys.readouterr().out
        table = lambda s: s[: s.index("[table2")]
        assert table(first) == table(second)

    def test_profile_prints_cumulative_stats(self, capsys):
        assert main(["optima", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out
        assert "Corollaries" in out


class TestFaultFlags:
    def test_tailres_quick_smoke(self, capsys):
        assert main(["tailres", "--quick", "--no-cache", "--policy", "hedge"]) == 0
        out = capsys.readouterr().out
        assert "E18a" in out and "E18b" in out
        # --policy hedge restricted the sweep: no data row runs "retry".
        rows = [l for l in out.splitlines() if l.startswith(("btree", "betree"))]
        assert rows and all("retry" not in l for l in rows)

    def test_tailres_custom_plan_file(self, capsys, tmp_path):
        from repro.faults import FaultPlan

        plan = tmp_path / "plan.json"
        plan.write_text(FaultPlan(seed=1, stall_prob=0.2, stall_steps=3).to_json())
        assert main(
            ["tailres", "--quick", "--no-cache", "--policy", "none",
             "--faults", str(plan)]
        ) == 0
        out = capsys.readouterr().out
        # Spike/error-free plan: the tree table reports clean latencies.
        assert "E18b" in out

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["tailres", "--policy", "yolo"])


class TestServeFlags:
    def test_serve_quick_smoke(self, capsys):
        assert main(["serve", "--quick", "--no-cache", "--policy", "hedge"]) == 0
        out = capsys.readouterr().out
        assert "E19" in out
        rows = [l for l in out.splitlines() if l.startswith("btree")]
        assert rows and all(" admit" not in l for l in rows)

    def test_serve_quick_full_policy_sweep_deterministic(self, capsys):
        assert main(["serve", "--quick", "--no-cache"]) == 0
        first = capsys.readouterr().out
        assert main(["serve", "--quick", "--no-cache", "--jobs", "2"]) == 0
        second = capsys.readouterr().out
        table = lambda s: s[: s.index("[serve")]
        assert table(first) == table(second)  # bit-identical at any job count


class TestCobFlags:
    def test_cob_quick_smoke(self, capsys):
        assert main(["cob", "--quick", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "E20" in out
        assert "Lemma 13 panel" in out
        assert "Best B-tree node size per model" in out

    def test_cob_quick_deterministic_across_jobs(self, capsys):
        assert main(["cob", "--quick", "--no-cache"]) == 0
        first = capsys.readouterr().out
        assert main(["cob", "--quick", "--no-cache", "--jobs", "2"]) == 0
        second = capsys.readouterr().out
        table = lambda s: s[: s.index("[cob")]
        assert table(first) == table(second)  # bit-identical at any job count
