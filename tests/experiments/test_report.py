"""Report rendering tests."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.report import (
    format_bytes,
    format_seconds,
    render_series,
    render_table,
)


class TestFormatters:
    @pytest.mark.parametrize(
        "nbytes,expected",
        [(512, "512B"), (4096, "4KiB"), (1 << 20, "1MiB"), (4 << 20, "4MiB"),
         (1 << 30, "1GiB"), (1536, "1.5KiB")],
    )
    def test_format_bytes(self, nbytes, expected):
        assert format_bytes(nbytes) == expected

    @pytest.mark.parametrize(
        "seconds,expected",
        [(2.5, "2.5s"), (0.012, "12ms"), (4e-5, "40us")],
    )
    def test_format_seconds(self, seconds, expected):
        assert format_seconds(seconds) == expected


class TestRenderTable:
    def test_alignment_and_content(self):
        out = render_table("T", ["a", "bb"], [[1, "x"], [22, "yy"]])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert "22" in lines[-1]

    def test_note_appended(self):
        out = render_table("T", ["a"], [[1]], note="hello")
        assert out.endswith("hello")

    def test_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table("T", ["a", "b"], [[1]])

    def test_no_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table("T", [], [])

    def test_float_formatting(self):
        out = render_table("T", ["x"], [[0.123456789]])
        assert "0.1235" in out


class TestRenderSeries:
    def test_one_column_per_series(self):
        out = render_series("F", "x", [1, 2], {"s1": [10.0, 20.0], "s2": [1.0, 2.0]})
        header = out.splitlines()[2]
        assert "s1" in header and "s2" in header and header.startswith("x")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            render_series("F", "x", [1, 2], {"s": [1.0]})

    def test_empty_series_rejected(self):
        with pytest.raises(ConfigurationError):
            render_series("F", "x", [1], {})
