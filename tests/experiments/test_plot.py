"""ASCII plot tests."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.plot import ascii_plot


class TestAsciiPlot:
    def test_markers_and_legend(self):
        out = ascii_plot("T", [1, 2, 3], {"a": [1, 2, 3], "b": [3, 2, 1]})
        assert "o = a" in out and "x = b" in out
        assert "o" in out and "x" in out

    def test_extremes_land_on_borders(self):
        out = ascii_plot("T", [1, 10], {"s": [5.0, 50.0]}, height=6)
        lines = out.splitlines()
        # Max value labels the top row, min the bottom data row.
        assert lines[2].startswith("50")
        assert any(line.startswith(" 5 ") or line.startswith("5 ") for line in lines)

    def test_log_scales(self):
        out = ascii_plot(
            "T", [1, 10, 100], {"s": [1.0, 10.0, 100.0]}, log_x=True, log_y=True
        )
        assert "[log x, log y]" in out
        # On log-log a power law is a straight diagonal: three distinct
        # columns and rows.
        marker_rows = [
            i for i, line in enumerate(out.splitlines()) if "|" in line and "o" in line
        ]
        assert len(marker_rows) == 3

    def test_log_requires_positive(self):
        with pytest.raises(ConfigurationError):
            ascii_plot("T", [0, 1], {"s": [1.0, 2.0]}, log_x=True)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_plot("T", [1, 2], {})
        with pytest.raises(ConfigurationError):
            ascii_plot("T", [1, 2], {"s": [1.0]})
        with pytest.raises(ConfigurationError):
            ascii_plot("T", [1], {"s": [1.0]})
        with pytest.raises(ConfigurationError):
            ascii_plot("T", [1, 2], {"s": [1.0, 2.0]}, width=4)

    def test_constant_series_handled(self):
        out = ascii_plot("T", [1, 2, 3], {"s": [5.0, 5.0, 5.0]})
        assert out.count("o") >= 3 + 1  # 3 markers + legend

    def test_result_render_plot_methods(self):
        from repro.experiments import exp_pdam_concurrency

        result = exp_pdam_concurrency.run(
            n_keys=1 << 10, clients=(1, 2, 4), queries_per_client=5
        )
        out = result.render_plot()
        assert "Lemma 13" in out
        assert "veb_pb" in out

    def test_cli_plot_flag(self, capsys):
        from repro.experiments.cli import main

        assert main(["lemma13", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "queries/step" in out  # the plot's axis label
