"""Scaled-down end-to-end runs of every experiment, checking paper shapes.

Each test calls the experiment's ``run()`` with reduced parameters (smaller
loads, fewer ops) so the whole file runs in seconds, then asserts the
qualitative claim the paper makes for that table/figure.
"""

import pytest

from repro.experiments import (
    exp_affine_validation,
    exp_betree_nodesize,
    exp_btree_nodesize,
    exp_cob_compare,
    exp_lsm_nodesize,
    exp_optima,
    exp_optimizations,
    exp_pdam_concurrency,
    exp_pdam_validation,
    exp_sensitivity,
    exp_write_amp,
)


class TestPDAMValidation:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_pdam_validation.run(
            threads=(1, 2, 3, 4, 6, 8, 12, 16, 24, 32),
            bytes_per_thread=4 << 20,
            devices=("samsung-860-pro-sim", "silicon-power-s55-sim"),
        )

    def test_r2_near_one(self, result):
        for name, fit in result.fits.items():
            assert fit.r2 > 0.98, name

    def test_fitted_p_in_paper_range(self, result):
        for name, fit in result.fits.items():
            assert 1.5 < fit.parallelism < 10, name

    def test_saturation_close_to_geometry(self, result):
        from repro.experiments.devices import SSD_ZOO

        for name, fit in result.fits.items():
            target = SSD_ZOO[name].saturated_read_bytes_per_second
            assert fit.saturation_bytes_per_second == pytest.approx(target, rel=0.15)

    def test_dam_overestimates_by_about_p(self, result):
        # Paper: "The DAM ... overestimates the completion time for large
        # numbers of threads by roughly P."
        for name, fit in result.fits.items():
            factor = result.dam_overestimate_factor(name)
            assert factor > 0.5 * fit.parallelism, name

    def test_render(self, result):
        out = result.render()
        assert "Table 1" in out and "Figure 1" in out


class TestAffineValidation:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_affine_validation.run(reads_per_size=32)

    def test_r2_near_one(self, result):
        for name, fit in result.fits.items():
            assert fit.r2 > 0.995, name

    def test_bandwidth_recovered_exactly(self, result):
        for name, fit in result.fits.items():
            _, t4k = result.truth[name]
            assert fit.seconds_per_byte * 4096 == pytest.approx(t4k, rel=0.05), name

    def test_setup_within_25_percent(self, result):
        # Paper: "the affine model predicts the time for IOs of varying
        # sizes to within a 25% error."
        for name, fit in result.fits.items():
            s_true, _ = result.truth[name]
            assert fit.setup_seconds == pytest.approx(s_true, rel=0.25), name

    def test_alpha_ordering_matches_truth(self, result):
        names = sorted(result.fits)
        fitted = [result.fits[n].alpha for n in names]
        true = [result.truth[n][1] / result.truth[n][0] for n in names]
        import numpy as np

        assert list(np.argsort(fitted)) == list(np.argsort(true))

    def test_render(self, result):
        assert "Table 2" in result.render()


class TestSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_sensitivity.run()

    def test_btree_much_more_sensitive(self, result):
        assert result.sensitivity(result.btree) > 3 * result.sensitivity(result.betree_query)

    def test_betree_optimum_larger_than_btree(self, result):
        # Bε-trees tolerate (and want) much larger nodes.
        assert result.optimum_entries(result.betree_query) >= result.optimum_entries(
            result.btree
        )

    def test_render(self, result):
        assert "Table 3" in result.render()


class TestBTreeNodeSize:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_btree_nodesize.run(
            n_entries=60_000, cache_bytes=2 << 20, n_queries=150, n_inserts=150
        )

    def test_large_nodes_hurt(self, result):
        # Figure 2: past the optimum, cost grows roughly linearly.
        assert result.query_ms[-1] > 1.5 * min(result.query_ms)
        assert result.insert_ms[-1] > 1.5 * min(result.insert_ms)

    def test_optimum_below_half_bandwidth(self, result):
        from repro.experiments.devices import default_hdd

        half_bw = default_hdd().geometry.half_bandwidth_bytes
        assert result.best_query_node < half_bw

    def test_overlay_fit_exists(self, result):
        assert result.query_fit is not None and result.query_fit.alpha > 0

    def test_render(self, result):
        assert "Figure 2" in result.render()


class TestBeTreeNodeSize:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_betree_nodesize.run(
            node_sizes=(64 << 10, 256 << 10, 1 << 20),
            n_entries=60_000,
            cache_bytes=2 << 20,
            n_queries=150,
            max_inserts=20_000,
        )

    def test_flatter_than_btree(self, result):
        # The headline Figure 3 claim.
        assert result.sensitivity("query") < 3.0

    def test_insert_cost_way_below_query_cost(self, result):
        assert max(result.insert_ms) < min(result.query_ms)

    def test_render(self, result):
        assert "Figure 3" in result.render()


class TestPDAMConcurrency:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_pdam_concurrency.run(
            n_keys=1 << 12, clients=(1, 2, 4, 8, 16), queries_per_client=20
        )

    def test_lemma13_dominance(self, result):
        assert result.veb_dominates(slack=0.85)

    def test_flat_b_saturates(self, result):
        thr = result.throughput["flat_b"]
        assert thr[-1] == pytest.approx(thr[-2], rel=0.2)

    def test_flat_pb_flat(self, result):
        thr = result.throughput["flat_pb"]
        assert max(thr) < 2.5 * min(thr)

    def test_render(self, result):
        assert "Lemma 13" in result.render()


class TestWriteAmp:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_write_amp.run(n_loaded=40_000, n_inserts=2_500)

    def test_btree_linear_in_node_size(self, result):
        # 16 KiB -> 1 MiB is 64x; expect at least ~20x more write amp.
        assert result.btree[-1] > 20 * result.btree[0]

    def test_betree_much_lower_at_large_nodes(self, result):
        assert result.betree[-1] < result.btree[-1] / 50

    def test_render(self, result):
        assert "Write amplification" in result.render()


class TestTheorem9Ablation:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_optimizations.run(
            n_entries=60_000, n_queries=120, n_inserts=8_000
        )

    def test_each_step_improves_queries(self, result):
        assert result.query_ms["segments"] < result.query_ms["naive"]
        assert result.query_ms["theorem9"] <= result.query_ms["segments"]

    def test_speedup_material(self, result):
        assert result.query_speedup > 1.5

    def test_render(self, result):
        assert "ablation" in result.render()


class TestOptima:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_optima.run()

    def test_optimum_fraction_shrinks_with_alpha(self, result):
        fracs = [b * a for b, a in zip(result.numeric_btree, result.alphas)]
        assert fracs == sorted(fracs, reverse=True)

    def test_speedup_grows(self, result):
        assert result.insert_speedup == sorted(result.insert_speedup)

    def test_render(self, result):
        assert "Corollaries" in result.render()


class TestLSM:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_lsm_nodesize.run(
            sstable_sizes=(256 << 10, 1 << 20),
            n_loaded=30_000,
            min_inserts=8_000,
            max_inserts=20_000,
            n_queries=100,
        )

    def test_queries_flat(self, result):
        assert max(result.query_ms) < 1.5 * min(result.query_ms)

    def test_insert_cheap(self, result):
        assert max(result.insert_ms) < min(result.query_ms)

    def test_render(self, result):
        assert "LSM" in result.render()


class TestPDAMWriteMix:
    def test_writes_lower_saturation_same_shape(self):
        from repro.experiments import exp_pdam_validation

        kwargs = dict(
            threads=(1, 2, 4, 8, 16, 32),
            bytes_per_thread=2 << 20,
            devices=("samsung-860-pro-sim",),
        )
        reads = exp_pdam_validation.run(**kwargs)
        mixed = exp_pdam_validation.run(write_fraction=0.5, **kwargs)
        name = "samsung-860-pro-sim"
        # Writes are slower: lower saturation throughput, same knee shape.
        assert (
            mixed.fits[name].saturation_bytes_per_second
            < reads.fits[name].saturation_bytes_per_second
        )
        assert mixed.fits[name].r2 > 0.97
        t = mixed.times[name]
        assert t[-1] > 2 * t[0]  # still saturates and grows linearly

    def test_bad_fraction_rejected(self):
        from repro.experiments import exp_pdam_validation

        with pytest.raises(ValueError):
            exp_pdam_validation.run(write_fraction=1.5)


class TestDurability:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import exp_durability

        return exp_durability.run(quick=True, jobs=1, cache=None)

    def test_every_point_recovers_correctly(self, result):
        # The sweep doubles as a crash-consistency gate: each point
        # crashes mid-stream and must match the acked-prefix model.
        assert all(r["recovered_ok"] for r in result.rows)

    def test_affine_wants_a_larger_commit_batch(self, result):
        # Corollary 6/7 applied to the write path: the affine setup cost
        # amortizes over the group, the DAM's does not.
        ckpt = result.checkpoints[0]
        dam = result.argmin_batch("dam", checkpoint_every=ckpt)
        affine = result.argmin_batch("affine", checkpoint_every=ckpt)
        pdam = result.argmin_batch("pdam", checkpoint_every=ckpt)
        assert affine > dam
        assert pdam == dam  # one commit blob fits one parallel step

    def test_exposure_grows_with_the_batch(self, result):
        for device in result.devices:
            rows = sorted(
                (r for r in result.rows if r["device"] == device),
                key=lambda r: r["group_commit"],
            )
            exposures = [r["exposure"] for r in rows]
            assert exposures == sorted(exposures)
            assert exposures[0] < exposures[-1]

    def test_unknown_device_rejected(self, result):
        from repro.errors import ConfigurationError
        from repro.experiments import exp_durability

        with pytest.raises(ConfigurationError):
            exp_durability.make_durability_device("tape", node_bytes=4096)
        with pytest.raises(ConfigurationError):
            result.argmin_batch("tape")

    def test_render(self, result):
        out = result.render()
        assert "E21" in out
        assert "k*=" in out
        assert "Corollary 6/7" in out


class TestCOBCompare:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_cob_compare.run(quick=True, jobs=1, cache=None)

    def test_knobless_trees_flat_by_construction(self, result):
        for model in result.models:
            for tree in ("cola", "cob", "cob-buffered"):
                assert result.sensitivity(model, tree) == 1.0
                assert result.sensitivity(model, tree, "insert") == 1.0

    def test_btree_sensitive_to_its_knob(self, result):
        # The knob matters: mis-sizing the B-tree costs real factors under
        # every model, which is the re-tuning burden cob avoids.
        for model in result.models:
            assert result.sensitivity(model, "btree") > 1.5

    def test_btree_optimum_moves_across_models(self, result):
        # The paper's core point: the *same* tree wants a different node
        # size under DAM vs affine vs PDAM pricing.
        best = {m: result.best_node(m, "btree") for m in result.models}
        assert len(set(best.values())) >= 2
        assert best["affine"] > best["dam"]  # affine rewards larger IOs

    def test_buffered_cob_insert_within_betree_band(self, result):
        # Theorem 9: the buffered cob variant matches the best-tuned
        # Bε-tree's amortized insert cost under the affine model.
        assert result.insert_vs_best_tuned_betree("affine", "cob-buffered") < 2.0

    def test_veb_layout_dominates_thread_panel(self, result):
        assert result.veb_dominates_threads(slack=0.85)

    def test_every_cell_pays_io(self, result):
        # Regression guard for the scale parameters: a zero cell means the
        # cache swallowed the workload and the comparison is vacuous.
        for values in list(result.query_ms.values()) + list(
            result.insert_ms.values()
        ):
            assert min(values) > 0

    def test_render(self, result):
        out = result.render()
        assert "E20" in out and "Lemma 13 panel" in out
        assert "no knob" in out
