"""Device-zoo tests: the simulated stand-ins hit their paper targets."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.devices import (
    HDD_ZOO,
    SSD_ZOO,
    default_hdd,
    default_ssd,
    hdd_geometry_for,
    make_hdd,
    make_ssd,
)


class TestHDDZoo:
    def test_all_rows_instantiate(self):
        for name in HDD_ZOO:
            assert make_hdd(name).capacity_bytes > 0

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_hdd("floppy-drive")

    def test_geometry_inversion(self):
        # hdd_geometry_for must invert mean_setup_seconds exactly.
        for name, (_, s, t4k) in HDD_ZOO.items():
            g = hdd_geometry_for(s, t4k)
            assert g.mean_setup_seconds == pytest.approx(s, rel=1e-9), name
            assert 4096 / g.bandwidth_bytes_per_second == pytest.approx(t4k, rel=1e-9)

    def test_impossible_setup_rejected(self):
        with pytest.raises(ConfigurationError):
            hdd_geometry_for(0.001, 1e-5)  # below half rotation

    def test_default_hdd(self):
        assert default_hdd().geometry.mean_setup_seconds == pytest.approx(0.012)


class TestSSDZoo:
    def test_all_rows_instantiate(self):
        for name in SSD_ZOO:
            assert make_ssd(name).geometry.total_dies >= 8

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_ssd("optane")

    def test_saturation_targets(self):
        # The zoo targets the paper's Table 1 "∝PB" column (MB/s).
        targets = {
            "samsung-860-pro-sim": 530,
            "samsung-970-pro-sim": 2500,
            "silicon-power-s55-sim": 260,
            "sandisk-ultra-ii-sim": 520,
        }
        for name, mbps in targets.items():
            sat = SSD_ZOO[name].saturated_read_bytes_per_second / 1e6
            assert sat == pytest.approx(mbps, rel=0.05), name

    def test_parallelism_ordering_matches_paper(self):
        # Paper Table 1 ordering: S55 < 860 pro < Ultra II < 970 pro.
        p = {n: g.expected_pdam_parallelism for n, g in SSD_ZOO.items()}
        assert (
            p["silicon-power-s55-sim"]
            < p["samsung-860-pro-sim"]
            < p["sandisk-ultra-ii-sim"]
            < p["samsung-970-pro-sim"]
        )

    def test_default_ssd(self):
        assert default_ssd().geometry.channels == 2

    def test_dies_exceed_effective_parallelism(self):
        # The design rule that keeps the knee flat: many more dies than P.
        for name, g in SSD_ZOO.items():
            assert g.total_dies > 1.5 * g.expected_pdam_parallelism, name
