"""Scaled-down runs of the extension experiments (E12-E14)."""

import pytest

from repro.experiments import exp_aging, exp_asymmetry, exp_epsilon_tradeoff


class TestEpsilonTradeoff:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_epsilon_tradeoff.run(
            node_bytes=128 << 10,
            fanouts=(2, 8, 64),
            n_entries=50_000,
            cache_bytes=1 << 20,
            n_queries=100,
        )

    def test_insert_cost_rises_with_fanout(self, result):
        inserts = [p.insert_ms for p in result.betree_points()]
        assert inserts == sorted(inserts)

    def test_query_cost_falls_from_brt_end(self, result):
        queries = [p.query_ms for p in result.betree_points()]
        assert queries[0] > queries[-1]

    def test_all_reference_structures_present(self, result):
        labels = {p.label for p in result.points}
        assert any(label.startswith("btree") for label in labels)
        assert any(label.startswith("lsm") for label in labels)
        assert "cola" in labels

    def test_cola_is_write_optimal_but_not_query_optimal(self, result):
        by_label = {p.label: p for p in result.points}
        cola = by_label["cola"]
        assert cola.insert_ms == min(p.insert_ms for p in result.points)
        # Even with fence pointers, the COLA probes one block per level —
        # strictly worse for queries than the B-tree's single-leaf miss.
        assert cola.query_ms > by_label["btree 64KiB"].query_ms

    def test_render(self, result):
        assert "tradeoff" in result.render()


class TestAging:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_aging.run(
            node_sizes=(16 << 10, 256 << 10),
            n_entries=60_000,
            cache_bytes=1 << 20,
            n_scans=10,
        )

    def test_aging_hurts_small_nodes_more(self, result):
        slow = result.measured_slowdown
        assert slow[0] > 3 * slow[-1]

    def test_fresh_always_faster(self, result):
        for f, a in zip(result.fresh_mibps, result.aged_mibps):
            assert f > a

    def test_prediction_brackets_measurement(self, result):
        for measured, predicted in zip(result.measured_slowdown, result.predicted_slowdown):
            assert predicted / 3 < measured < predicted * 3

    def test_render(self, result):
        assert "aging" in result.render()


class TestAsymmetry:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_asymmetry.run(
            write_multipliers=(1.0, 8.0),
            fanouts=(4, 16, 64),
            n_entries=40_000,
            cache_bytes=1 << 20,
            n_queries=80,
        )

    def test_model_optimum_falls_with_write_cost(self, result):
        assert result.model_optimal_fanout[1] < result.model_optimal_fanout[0]

    def test_measured_optimum_weakly_falls(self, result):
        assert result.measured_best_fanout[1] <= result.measured_best_fanout[0]

    def test_costs_rise_with_write_multiplier(self, result):
        # Same workload, pricier writes: every fanout's cost goes up.
        for fanout in result.fanouts:
            assert result.measured_cost_ms[1][fanout] > result.measured_cost_ms[0][fanout]

    def test_render(self, result):
        assert "asymmetry" in result.render()


class TestModelError:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import exp_model_error

        return exp_model_error.run(
            node_sizes=(16 << 10, 256 << 10, 4 << 20),
            n_entries=80_000,
            cache_bytes=2 << 20,
            n_queries=150,
        )

    def test_affine_within_paper_bound(self, result):
        assert all(abs(e) < 0.25 for e in result.affine_errors)

    def test_dam_within_lemma1_factor_2(self, result):
        for m, p in zip(result.measured_ms, result.dam_ms):
            assert 0.4 < p / m < 2.6

    def test_dam_error_changes_sign(self, result):
        assert min(result.dam_errors) < 0 < max(result.dam_errors)

    def test_render(self, result):
        assert "predictability" in result.render()
