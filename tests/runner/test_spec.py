"""SweepPoint/SweepSpec canonicalization and fingerprint stability."""

import pytest

from repro.errors import ConfigurationError
from repro.runner import CACHE_EPOCH, SweepPoint, SweepSpec, fingerprint


class TestSweepPoint:
    def test_param_order_is_canonical(self):
        a = SweepPoint.make("k", x=1, y=2)
        b = SweepPoint.make("k", y=2, x=1)
        assert a == b
        assert a.fingerprint() == b.fingerprint()

    def test_lists_freeze_to_tuples(self):
        a = SweepPoint.make("k", sizes=[1, 2, 3])
        b = SweepPoint.make("k", sizes=(1, 2, 3))
        assert a == b
        assert hash(a) == hash(b)

    def test_param_dict_round_trip(self):
        p = SweepPoint.make("k", x=1, name="dev", flag=True)
        assert p.param_dict() == {"x": 1, "name": "dev", "flag": True}

    def test_distinct_params_distinct_fingerprints(self):
        fps = {
            SweepPoint.make("k", x=x, s=s).fingerprint()
            for x in (1, 2, 3)
            for s in ("a", "b")
        }
        assert len(fps) == 6

    def test_kernel_name_distinguishes(self):
        assert (
            SweepPoint.make("k1", x=1).fingerprint()
            != SweepPoint.make("k2", x=1).fingerprint()
        )

    def test_epoch_bump_invalidates(self):
        p = SweepPoint.make("k", x=1)
        assert p.fingerprint() != p.fingerprint(epoch=CACHE_EPOCH + 1)

    def test_rejects_dict_param(self):
        with pytest.raises(ConfigurationError):
            SweepPoint.make("k", cfg={"a": 1})

    def test_rejects_object_param(self):
        with pytest.raises(ConfigurationError):
            SweepPoint.make("k", obj=object())

    def test_rejects_empty_kernel(self):
        with pytest.raises(ConfigurationError):
            SweepPoint.make("")

    def test_fingerprint_is_sha256_hex(self):
        fp = SweepPoint.make("k", x=1).fingerprint()
        assert len(fp) == 64
        int(fp, 16)  # parses as hex

    def test_bool_and_int_params_distinct(self):
        # json canonicalization must not conflate True with 1
        assert (
            SweepPoint.make("k", x=True).fingerprint()
            != SweepPoint.make("k", x=1).fingerprint()
        )


class TestSweepSpec:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            SweepSpec.make("empty", [])

    def test_len_and_order(self):
        pts = [SweepPoint.make("k", x=i) for i in range(4)]
        spec = SweepSpec.make("s", pts)
        assert len(spec) == 4
        assert list(spec.points) == pts


def test_fingerprint_function_matches_point():
    p = SweepPoint.make("k", x=1, y=(2, 3))
    assert p.fingerprint() == fingerprint("k", {"x": 1, "y": (2, 3)})
