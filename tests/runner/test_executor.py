"""Executor semantics: ordering, caching, parallel equality, error paths."""

import pytest

from repro.errors import ConfigurationError
from repro.runner import (
    MISS,
    ResultCache,
    SweepPoint,
    SweepSpec,
    SweepReport,
    get_kernel,
    register,
    resolve_jobs,
    run_sweep,
)
from repro.runner.cache import fingerprint


# Module-level kernels: fork workers inherit these registrations.
@register("test_square")
def _square(*, x: int) -> int:
    return x * x


@register("test_payload")
def _payload(*, tag: str, n: int) -> dict:
    return {"tag": tag, "values": [n * i for i in range(3)]}


def _spec(xs):
    return SweepSpec.make("squares", [SweepPoint.make("test_square", x=x) for x in xs])


class TestKernelsRegistry:
    def test_get_registered(self):
        assert get_kernel("test_square")(x=3) == 9

    def test_unknown_kernel_raises(self):
        with pytest.raises(ConfigurationError):
            get_kernel("no_such_kernel")

    def test_duplicate_registration_raises(self):
        with pytest.raises(ConfigurationError):
            register("test_square")(lambda: None)

    def test_experiment_kernels_registered(self):
        for name in (
            "affine_validation_device",
            "btree_nodesize_point",
            "betree_nodesize_point",
            "autotune_device",
        ):
            get_kernel(name)


class TestRunSweep:
    def test_results_in_spec_order(self):
        assert run_sweep(_spec([3, 1, 2])) == [9, 1, 4]

    def test_parallel_matches_serial(self):
        spec = _spec(range(8))
        assert run_sweep(spec, jobs=4) == run_sweep(spec, jobs=1)

    def test_report_counts(self):
        report = SweepReport(spec_name="", n_points=0)
        run_sweep(_spec([1, 2, 3]), report=report)
        assert report.n_points == 3
        assert report.n_computed == 3
        assert report.n_cached == 0
        assert len(report.fingerprints) == 3
        assert "3 points" in report.summary()

    def test_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec([2, 3])
        first = run_sweep(spec, cache=cache)
        assert (cache.hits, cache.misses) == (0, 2)
        report = SweepReport(spec_name="", n_points=0)
        second = run_sweep(spec, cache=cache, report=report)
        assert second == first
        assert report.n_cached == 2 and report.n_computed == 0

    def test_cache_shared_between_specs(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(_spec([1, 2, 3]), cache=cache)
        report = SweepReport(spec_name="", n_points=0)
        run_sweep(_spec([2, 3, 4]), cache=cache, report=report)
        assert report.n_cached == 2 and report.n_computed == 1

    def test_parallel_with_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec(range(6))
        serial = run_sweep(spec, jobs=1)
        assert run_sweep(spec, jobs=3, cache=cache) == serial
        assert run_sweep(spec, jobs=3, cache=cache) == serial
        assert cache.hits == 6

    def test_complex_values_pickle(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = SweepSpec.make(
            "payloads", [SweepPoint.make("test_payload", tag="a", n=2)]
        )
        first = run_sweep(spec, cache=cache)
        assert first == [{"tag": "a", "values": [0, 2, 4]}]
        assert run_sweep(spec, cache=cache) == first

    def test_negative_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sweep(_spec([1]), jobs=-1)

    def test_jobs_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1
        assert run_sweep(_spec([2]), jobs=0) == [4]


class TestResultCache:
    def test_miss_sentinel(self, tmp_path):
        cache = ResultCache(tmp_path)
        value = cache.get("0" * 64)
        assert ResultCache.is_miss(value)
        assert value is MISS

    def test_none_is_a_valid_cached_value(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = fingerprint("k", {"x": 1})
        cache.put(fp, None)
        got = cache.get(fp)
        assert got is None
        assert not ResultCache.is_miss(got)

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = fingerprint("k", {"x": 2})
        cache.put(fp, [1, 2, 3])
        path = cache._path(fp)
        path.write_bytes(b"not a pickle")
        assert ResultCache.is_miss(cache.get(fp))

    def test_two_level_fanout(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = fingerprint("k", {"x": 3})
        cache.put(fp, "v")
        assert (tmp_path / fp[:2] / f"{fp}.pkl").exists()
