"""Executor semantics: ordering, caching, parallel equality, error paths."""

import pytest

from repro.errors import ConfigurationError
from repro.runner import (
    MISS,
    ResultCache,
    SweepPoint,
    SweepSpec,
    SweepReport,
    get_kernel,
    register,
    resolve_jobs,
    run_sweep,
)
from repro.runner.cache import fingerprint


# Module-level kernels: fork workers inherit these registrations.
@register("test_square")
def _square(*, x: int) -> int:
    return x * x


@register("test_payload")
def _payload(*, tag: str, n: int) -> dict:
    return {"tag": tag, "values": [n * i for i in range(3)]}


def _spec(xs):
    return SweepSpec.make("squares", [SweepPoint.make("test_square", x=x) for x in xs])


class TestKernelsRegistry:
    def test_get_registered(self):
        assert get_kernel("test_square")(x=3) == 9

    def test_unknown_kernel_raises(self):
        with pytest.raises(ConfigurationError):
            get_kernel("no_such_kernel")

    def test_duplicate_registration_raises(self):
        with pytest.raises(ConfigurationError):
            register("test_square")(lambda: None)

    def test_experiment_kernels_registered(self):
        for name in (
            "affine_validation_device",
            "btree_nodesize_point",
            "betree_nodesize_point",
            "autotune_device",
        ):
            get_kernel(name)


class TestRunSweep:
    def test_results_in_spec_order(self):
        assert run_sweep(_spec([3, 1, 2])) == [9, 1, 4]

    def test_parallel_matches_serial(self):
        spec = _spec(range(8))
        assert run_sweep(spec, jobs=4) == run_sweep(spec, jobs=1)

    def test_report_counts(self):
        report = SweepReport(spec_name="", n_points=0)
        run_sweep(_spec([1, 2, 3]), report=report)
        assert report.n_points == 3
        assert report.n_computed == 3
        assert report.n_cached == 0
        assert len(report.fingerprints) == 3
        assert "3 points" in report.summary()

    def test_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec([2, 3])
        first = run_sweep(spec, cache=cache)
        assert (cache.hits, cache.misses) == (0, 2)
        report = SweepReport(spec_name="", n_points=0)
        second = run_sweep(spec, cache=cache, report=report)
        assert second == first
        assert report.n_cached == 2 and report.n_computed == 0

    def test_cache_shared_between_specs(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(_spec([1, 2, 3]), cache=cache)
        report = SweepReport(spec_name="", n_points=0)
        run_sweep(_spec([2, 3, 4]), cache=cache, report=report)
        assert report.n_cached == 2 and report.n_computed == 1

    def test_parallel_with_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec(range(6))
        serial = run_sweep(spec, jobs=1)
        assert run_sweep(spec, jobs=3, cache=cache) == serial
        assert run_sweep(spec, jobs=3, cache=cache) == serial
        assert cache.hits == 6

    def test_complex_values_pickle(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = SweepSpec.make(
            "payloads", [SweepPoint.make("test_payload", tag="a", n=2)]
        )
        first = run_sweep(spec, cache=cache)
        assert first == [{"tag": "a", "values": [0, 2, 4]}]
        assert run_sweep(spec, cache=cache) == first

    def test_negative_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sweep(_spec([1]), jobs=-1)

    def test_jobs_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1
        assert run_sweep(_spec([2]), jobs=0) == [4]


class TestResultCache:
    def test_miss_sentinel(self, tmp_path):
        cache = ResultCache(tmp_path)
        value = cache.get("0" * 64)
        assert ResultCache.is_miss(value)
        assert value is MISS

    def test_none_is_a_valid_cached_value(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = fingerprint("k", {"x": 1})
        cache.put(fp, None)
        got = cache.get(fp)
        assert got is None
        assert not ResultCache.is_miss(got)

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = fingerprint("k", {"x": 2})
        cache.put(fp, [1, 2, 3])
        path = cache._path(fp)
        path.write_bytes(b"not a pickle")
        assert ResultCache.is_miss(cache.get(fp))

    def test_two_level_fanout(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = fingerprint("k", {"x": 3})
        cache.put(fp, "v")
        assert (tmp_path / fp[:2] / f"{fp}.pkl").exists()


class TestQuarantine:
    """Corrupt cache entries become misses AND leave the lookup path."""

    def _corrupt(self, tmp_path, payload: bytes):
        cache = ResultCache(tmp_path)
        fp = fingerprint("k", {"x": 9})
        cache.put(fp, {"fine": True})
        cache._path(fp).write_bytes(payload)
        return cache, fp

    def test_garbage_bytes_quarantined(self, tmp_path):
        cache, fp = self._corrupt(tmp_path, b"\x00garbage, definitely not pickle")
        assert ResultCache.is_miss(cache.get(fp))
        assert cache.quarantined == 1
        assert not cache._path(fp).exists()
        qfile = tmp_path / ResultCache.QUARANTINE_DIR / f"{fp}.pkl"
        assert qfile.exists()

    def test_truncated_pickle_quarantined(self, tmp_path):
        import pickle

        blob = pickle.dumps({"big": list(range(1000))})
        cache, fp = self._corrupt(tmp_path, blob[: len(blob) // 2])
        assert ResultCache.is_miss(cache.get(fp))
        assert cache.quarantined == 1

    def test_stale_class_layout_quarantined(self, tmp_path):
        # A pickle referencing a module that no longer exists: unpickling
        # raises ModuleNotFoundError, not UnpicklingError.  Still a miss.
        cache, fp = self._corrupt(
            tmp_path, b"cdefinitely_not_a_module\nGoneClass\n."
        )
        assert ResultCache.is_miss(cache.get(fp))
        assert cache.quarantined == 1

    def test_absent_file_is_not_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert ResultCache.is_miss(cache.get("ab" + "0" * 62))
        assert cache.quarantined == 0

    def test_recompute_after_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec([7])
        run_sweep(spec, cache=cache)
        fp = spec.points[0].fingerprint()
        cache._path(fp).write_bytes(b"rot")
        assert run_sweep(spec, cache=cache) == [49]  # recomputed
        assert run_sweep(spec, cache=cache) == [49]  # and re-cached
        assert cache.quarantined == 1

    def test_quarantine_logs_entry_key(self, tmp_path, caplog):
        cache, fp = self._corrupt(tmp_path, b"\x00garbage")
        with caplog.at_level("WARNING", logger="repro.runner.cache"):
            assert ResultCache.is_miss(cache.get(fp))
        assert any(fp in rec.getMessage() for rec in caplog.records), (
            "quarantine must log the entry key so the entry is diagnosable"
        )

    def test_quarantine_records_obs_counter(self, tmp_path):
        from repro import obs

        cache, fp = self._corrupt(tmp_path, b"\x00garbage")
        obs.reset()
        obs.enable()
        try:
            assert ResultCache.is_miss(cache.get(fp))
            snap = obs.OBS.snapshot()
            assert snap["counters"]["runner.cache.quarantined"] == 1
        finally:
            obs.disable()
            obs.reset()


# Raises while ``marker`` exists; succeeds after it is removed.  Models a
# kernel bug fixed between runs (the resume-from-partial-progress story).
@register("test_explodes_while_marker")
def _explodes_while_marker(*, x: int, marker: str) -> int:
    import os

    if x == 2 and os.path.exists(marker):
        raise RuntimeError(f"kaboom on x={x}")
    return x * 10


def _marker_spec(marker, xs=(0, 1, 2, 3)):
    return SweepSpec.make(
        "explosive",
        [
            SweepPoint.make("test_explodes_while_marker", x=x, marker=str(marker))
            for x in xs
        ],
    )


class TestErrorIsolation:
    def test_invalid_on_error_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sweep(_spec([1]), on_error="explode")

    def test_raise_is_the_default(self, tmp_path):
        marker = tmp_path / "broken"
        marker.touch()
        with pytest.raises(RuntimeError, match="kaboom"):
            run_sweep(_marker_spec(marker))

    def test_isolate_yields_point_error_in_slot(self, tmp_path):
        from repro.runner import PointError

        marker = tmp_path / "broken"
        marker.touch()
        results = run_sweep(_marker_spec(marker), on_error="isolate")
        assert results[0] == 0 and results[1] == 10 and results[3] == 30
        err = results[2]
        assert isinstance(err, PointError)
        assert err.kernel == "test_explodes_while_marker"
        assert err.error_type == "RuntimeError"
        assert "kaboom on x=2" in err.message
        assert "RuntimeError" in err.traceback
        assert "kaboom" in str(err)
        # The placeholder message carries the point's cache fingerprint, so
        # an isolated failure is attributable without re-running the sweep.
        assert err.fingerprint == _marker_spec(marker).points[2].fingerprint()
        assert err.fingerprint[:12] in str(err)

    def test_isolate_parallel(self, tmp_path):
        from repro.runner import PointError

        marker = tmp_path / "broken"
        marker.touch()
        results = run_sweep(_marker_spec(marker), jobs=3, on_error="isolate")
        assert [r for r in results if not isinstance(r, PointError)] == [0, 10, 30]
        assert isinstance(results[2], PointError)

    def test_point_errors_never_cached(self, tmp_path):
        marker = tmp_path / "broken"
        marker.touch()
        cache = ResultCache(tmp_path / "cache")
        spec = _marker_spec(marker)
        report = SweepReport(spec_name="", n_points=0)
        run_sweep(spec, cache=cache, on_error="isolate", report=report)
        assert report.n_errors == 1
        assert "1 errors" in report.summary()
        assert ResultCache.is_miss(cache.get(spec.points[2].fingerprint()))
        # Kernel fixed: the failed point recomputes, the rest are hits.
        marker.unlink()
        report2 = SweepReport(spec_name="", n_points=0)
        results = run_sweep(spec, cache=cache, on_error="isolate", report=report2)
        assert results == [0, 10, 20, 30]
        assert report2.n_cached == 3 and report2.n_computed == 1
        assert report2.n_errors == 0


class TestIncrementalCaching:
    def test_interrupted_sweep_resumes_from_completed_points(self, tmp_path):
        """ISSUE satellite: kill after point k; re-run hits cache for 0..k."""
        marker = tmp_path / "broken"
        marker.touch()
        cache = ResultCache(tmp_path / "cache")
        spec = _marker_spec(marker)
        with pytest.raises(RuntimeError):
            run_sweep(spec, cache=cache)  # dies at point index 2
        # Points 0 and 1 completed before the crash and are already cached.
        for i in (0, 1):
            assert not ResultCache.is_miss(cache.get(spec.points[i].fingerprint()))
        marker.unlink()
        report = SweepReport(spec_name="", n_points=0)
        assert run_sweep(spec, cache=cache, report=report) == [0, 10, 20, 30]
        assert report.n_cached == 2 and report.n_computed == 2

    def test_parallel_interrupt_caches_completed_points(self, tmp_path):
        marker = tmp_path / "broken"
        marker.touch()
        cache = ResultCache(tmp_path / "cache")
        spec = _marker_spec(marker, xs=(0, 1, 2, 3, 4, 5))
        with pytest.raises(RuntimeError):
            run_sweep(spec, cache=cache, jobs=2)
        marker.unlink()
        report = SweepReport(spec_name="", n_points=0)
        assert run_sweep(spec, cache=cache, report=report) == [0, 10, 20, 30, 40, 50]
        # At least the points that beat the crash to the pool came back
        # cached; exact count depends on scheduling.
        assert report.n_cached >= 1
