"""Goldens: runner-migrated experiments are byte-identical at any job count.

The golden files pin the *rendered report text* of small E3 and E6
configurations.  Each test runs the experiment twice — serially and with
four workers — and compares both outputs byte-for-byte against the
checked-in golden, so a change that perturbs numbers, ordering, or
formatting (including one smuggled in via the parallel path or the result
cache) fails loudly.

Regenerate after an *intentional* semantic change (and bump
``repro.runner.cache.CACHE_EPOCH`` at the same time) with::

    PYTHONPATH=src python tests/runner/test_determinism.py --regen
"""

from pathlib import Path

import pytest

from repro.experiments import exp_affine_validation as e3
from repro.experiments import exp_betree_nodesize as e6
from repro.runner import ResultCache

GOLDEN_DIR = Path(__file__).parent / "goldens"

# Two zoo disks, three IO sizes: seconds of runtime, full code path.
E3_KWARGS = dict(
    io_sizes=(4096, 65536, 1 << 20),
    reads_per_size=8,
    devices=("seagate-2tb-2002-sim", "wd-black-1tb-2011-sim"),
    seed=0,
)

# Three node sizes (the overlay fit's minimum) on a small tree.
E6_KWARGS = dict(
    node_sizes=(65536, 262144, 1 << 20),
    n_entries=5000,
    cache_bytes=1 << 20,
    n_queries=15,
    max_inserts=500,
    warmup_queries=50,
    seed=0,
)

CASES = {
    "e3_affine_validation.txt": (e3.run, E3_KWARGS),
    "e6_betree_nodesize.txt": (e6.run, E6_KWARGS),
}


@pytest.mark.parametrize("golden_name", sorted(CASES))
def test_serial_and_parallel_match_golden(golden_name):
    run, kwargs = CASES[golden_name]
    golden = (GOLDEN_DIR / golden_name).read_text()
    serial = run(**kwargs, jobs=1).render() + "\n"
    parallel = run(**kwargs, jobs=4).render() + "\n"
    assert serial == golden, f"serial output drifted from {golden_name}"
    assert parallel == golden, f"jobs=4 output differs from {golden_name}"


def test_cached_rerun_matches_golden(tmp_path):
    """A warm-cache rerun reproduces the golden byte-for-byte too."""
    run, kwargs = CASES["e3_affine_validation.txt"]
    golden = (GOLDEN_DIR / "e3_affine_validation.txt").read_text()
    cache = ResultCache(tmp_path)
    cold = run(**kwargs, cache=cache).render() + "\n"
    warm = run(**kwargs, cache=cache).render() + "\n"
    assert cold == golden
    assert warm == golden
    assert cache.hits == len(kwargs["devices"])


def _regen() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, (run, kwargs) in CASES.items():
        (GOLDEN_DIR / name).write_text(run(**kwargs, jobs=1).render() + "\n")
        print(f"wrote {GOLDEN_DIR / name}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
