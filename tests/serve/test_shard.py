"""Shard construction: every tree kind loads, warms, and measures cleanly."""

import numpy as np
import pytest

from repro.experiments.common import build_load
from repro.faults import FaultPlan
from repro.serve import ShardConfig, ShardMap, build_shards

UNIVERSE = 1 << 16


def partitions_for(n_shards, n_entries=600, seed=11):
    pairs, _ = build_load(n_entries, UNIVERSE, seed=seed)
    keys = np.asarray(sorted(k for k, _ in pairs), dtype=np.int64)
    smap = ShardMap(n_shards, UNIVERSE, policy="hash")
    pair_map = dict(pairs)
    return [
        [(int(k), pair_map[int(k)]) for k in part] for part in smap.partition(keys)
    ]


class TestBuildShards:
    @pytest.mark.parametrize("tree", ["btree", "betree", "lsm"])
    def test_lookup_serves_loaded_keys(self, tree):
        parts = partitions_for(2)
        cfg = ShardConfig(tree=tree, replicas=2, warm_queries=8)
        shards = build_shards(2, parts, cfg, seed=5)
        for shard, part in zip(shards, parts):
            keys = [k for k, _ in part[:16]]
            for replica in shard.replicas:
                values_before = replica.lookups
                replica.lookup_many(keys)
                assert replica.lookups == values_before + len(keys)

    def test_warm_resets_measurement_state(self):
        parts = partitions_for(1)
        cfg = ShardConfig(tree="btree", replicas=1, warm_queries=32)
        (shard,) = build_shards(1, parts, cfg, seed=5)
        replica = shard.replicas[0]
        # Loading and warm-up must leave no residue on the measured clocks.
        assert replica.io_seconds == 0.0
        assert replica.rounds == 0 and replica.lookups == 0

    def test_lookup_charges_io(self):
        parts = partitions_for(1)
        cfg = ShardConfig(tree="btree", replicas=1, cache_bytes=8 << 10, warm_queries=0)
        (shard,) = build_shards(1, parts, cfg, seed=5)
        keys = [k for k, _ in parts[0][:32]]
        dur = shard.replicas[0].lookup_many(keys)
        assert dur > 0.0
        assert shard.replicas[0].io_seconds == pytest.approx(dur)

    def test_replicas_have_independent_devices(self):
        parts = partitions_for(1)
        cfg = ShardConfig(tree="btree", replicas=2, cache_bytes=8 << 10, warm_queries=0)
        (shard,) = build_shards(1, parts, cfg, seed=5)
        keys = [k for k, _ in parts[0][:32]]
        d0 = shard.replicas[0].lookup_many(keys)
        assert shard.replicas[1].io_seconds == 0.0  # untouched by replica 0
        d1 = shard.replicas[1].lookup_many(keys)
        assert d0 != d1  # distinct device seeds -> distinct mechanical noise

    def test_fault_plan_arms_after_build(self):
        parts = partitions_for(1)
        cfg = ShardConfig(tree="btree", replicas=1, warm_queries=16)
        plan = FaultPlan(seed=3, spike_prob=0.5, spike_seconds=0.1, spike_alpha=2.0)
        (shard,) = build_shards(1, parts, cfg, seed=5, plan=plan)
        replica = shard.replicas[0]
        assert replica.io_seconds == 0.0  # spikes did not pollute the build
        device = replica.tree.storage.device
        assert device.plan.spike_prob == 0.5  # armed for measured traffic

    def test_partition_count_must_match(self):
        parts = partitions_for(2)
        with pytest.raises(ValueError):
            build_shards(3, parts, ShardConfig(), seed=1)


class TestShardConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardConfig(tree="radix")
        with pytest.raises(ValueError):
            ShardConfig(node_bytes=0)
        with pytest.raises(ValueError):
            ShardConfig(replicas=0)
        with pytest.raises(ValueError):
            ShardConfig(batch=0)
        with pytest.raises(ValueError):
            ShardConfig(warm_queries=-1)

    def test_describe_roundtrips_fields(self):
        cfg = ShardConfig(tree="lsm", replicas=3)
        d = cfg.describe()
        assert d["tree"] == "lsm" and d["replicas"] == 3
