"""RequestEngine: exact determinism, conservation, and the two QoS levers."""

import numpy as np
import pytest

from repro.experiments.common import build_load
from repro.faults import FaultPlan, ResiliencePolicy
from repro.serve import (
    AdmissionController,
    RequestEngine,
    ShardConfig,
    ShardMap,
    TenantSpec,
    build_shards,
)

UNIVERSE = 1 << 18

TENANTS = (
    TenantSpec("alpha", rate=300.0, weight=2.0, theta=1.2),
    TenantSpec("beta", rate=200.0, weight=1.0, theta=1.4, rate_limit=100.0, burst=8.0),
)

SPIKY = FaultPlan(seed=7, spike_prob=0.02, spike_seconds=0.08, spike_alpha=1.6)


def make_cluster(*, plan=None, replicas=2, n_shards=2, n_entries=1500, seed=42):
    pairs, _ = build_load(n_entries, UNIVERSE, seed=seed)
    keys = np.asarray(sorted(k for k, _ in pairs), dtype=np.int64)
    smap = ShardMap(n_shards, UNIVERSE, policy="hash")
    pair_map = dict(pairs)
    partitions = [
        [(int(k), pair_map[int(k)]) for k in part] for part in smap.partition(keys)
    ]
    cfg = ShardConfig(
        tree="btree", replicas=replicas, batch=8, cache_bytes=32 << 10, warm_queries=32
    )
    shards = build_shards(n_shards, partitions, cfg, seed=seed, plan=plan)
    return shards, smap, keys


def run_once(*, plan=None, policy=None, admit=False, duration=1.0, seed=42, **kw):
    shards, smap, keys = make_cluster(plan=plan, seed=seed, **kw)
    engine = RequestEngine(
        shards,
        smap,
        TENANTS,
        keys,
        batch=8,
        admission=AdmissionController(TENANTS, enabled=admit),
        policy=policy,
    )
    return engine.run(duration, seed=seed)


class TestDeterminism:
    def test_identical_runs_identical_histograms(self):
        r1 = run_once(plan=SPIKY)
        r2 = run_once(plan=SPIKY)
        for t in TENANTS:
            assert np.array_equal(r1.latency_array(t.name), r2.latency_array(t.name))
        assert r1.describe() == r2.describe()

    def test_seed_changes_traffic(self):
        r1 = run_once(seed=42)
        r2 = run_once(seed=43)
        assert not np.array_equal(
            r1.latency_array("alpha"), r2.latency_array("alpha")
        )


class TestConservation:
    def test_every_admitted_request_completes(self):
        r = run_once(plan=SPIKY, admit=True)
        for stats in r.tenants.values():
            assert stats.offered == stats.admitted + stats.dropped
            assert stats.served == stats.admitted  # full drain after horizon
            assert len(stats.latencies) == stats.served
        assert r.served > 0

    def test_latencies_nonnegative(self):
        r = run_once(plan=SPIKY)
        for t in TENANTS:
            lat = r.latency_array(t.name)
            assert (lat >= 0).all()

    def test_percentiles_ordered(self):
        r = run_once(plan=SPIKY)
        for stats in r.tenants.values():
            p = stats.percentiles()
            assert p["p50"] <= p["p99"] <= p["p999"]


class TestAdmissionControl:
    def test_limited_tenant_sheds_only_its_own_traffic(self):
        r = run_once(admit=True)
        assert r.tenants["beta"].dropped > 0  # offered 200/s vs limit 100/s
        assert r.tenants["alpha"].dropped == 0  # no limit

    def test_disabled_controller_drops_nothing(self):
        r = run_once(admit=False)
        assert r.dropped == 0


class TestHedging:
    def test_hedges_need_spare_replicas(self):
        r = run_once(plan=SPIKY, policy=ResiliencePolicy.hedged(1e-6), replicas=1)
        assert r.hedges_issued == 0  # nowhere to hedge to

    def test_hedges_fire_on_spiked_rounds(self):
        r = run_once(plan=SPIKY, policy=ResiliencePolicy.hedged(0.02), replicas=3)
        assert r.hedges_issued > 0
        assert 0 <= r.hedges_won <= r.hedges_issued

    def test_hedging_improves_p999_under_spikes(self):
        base = run_once(plan=SPIKY, replicas=3, duration=2.0)
        hedged = run_once(
            plan=SPIKY, policy=ResiliencePolicy.hedged(0.02), replicas=3, duration=2.0
        )
        lat_b = np.concatenate([base.latency_array(t.name) for t in TENANTS])
        lat_h = np.concatenate([hedged.latency_array(t.name) for t in TENANTS])
        assert np.percentile(lat_h, 99.9) < np.percentile(lat_b, 99.9)

    def test_no_policy_never_hedges(self):
        r = run_once(plan=SPIKY)
        assert r.hedges_issued == 0 and r.hedges_won == 0


class TestValidation:
    def test_engine_rejects_bad_wiring(self):
        shards, smap, keys = make_cluster()
        with pytest.raises(ValueError):
            RequestEngine([], smap, TENANTS, keys)
        with pytest.raises(ValueError):
            RequestEngine(shards, ShardMap(5, UNIVERSE), TENANTS, keys)
        with pytest.raises(ValueError):
            RequestEngine(shards, smap, TENANTS, keys, batch=0)
        with pytest.raises(ValueError):
            RequestEngine(shards, smap, TENANTS, np.array([1]))
        engine = RequestEngine(shards, smap, TENANTS, keys)
        with pytest.raises(ValueError):
            engine.run(0.0, seed=1)
