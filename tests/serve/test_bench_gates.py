"""The bench_serve gate table: no config can silently skip a gate.

``benchmarks/bench_serve.py`` once keyed its p999 strictness off object
identity (``config is FULL``), so the smoke run skipped the gate with no
trace in the BENCH record.  The gates are now declared per config name
and every outcome — enforced or advisory — is returned for the record.
These tests pin that contract without running a sweep.
"""

import importlib.util
from pathlib import Path

import pytest

_BENCH = Path(__file__).resolve().parents[2] / "benchmarks" / "bench_serve.py"
_spec = importlib.util.spec_from_file_location("bench_serve", _BENCH)
bench_serve = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_serve)


def _metrics(*, none_p99=60.0, hedge_p99=50.0, none_p999=300.0, hedge_p999=320.0):
    return {
        "deterministic_across_jobs": True,
        "none_p99_ms": none_p99,
        "hedge_p99_ms": hedge_p99,
        "none_p999_ms": none_p999,
        "hedge_p999_ms": hedge_p999,
    }


class TestGateTable:
    def test_every_config_declares_p999_expectation(self):
        assert set(bench_serve.GATES) == {"full", "smoke"}
        for name, gates in bench_serve.GATES.items():
            assert "p999_strict" in gates, name
        assert bench_serve.GATES["full"]["p999_strict"] is True
        assert bench_serve.GATES["smoke"]["p999_strict"] is False

    def test_unknown_config_cannot_skip_silently(self):
        with pytest.raises(KeyError):
            bench_serve._check(_metrics(), config_name="nightly")


class TestCheck:
    def test_smoke_records_p999_sign_without_enforcing(self):
        # hedge p999 *worse* than none: smoke must pass but say so.
        outcomes = bench_serve._check(_metrics(), config_name="smoke")
        assert outcomes["p999_strict"] is False
        assert outcomes["p999_sign_ok"] is False
        assert outcomes["p999_strict_ok"] is False
        assert outcomes["p999_factor"] == bench_serve.P999_FACTOR

    def test_full_enforces_p999_margin(self):
        with pytest.raises(AssertionError, match="p999"):
            bench_serve._check(_metrics(), config_name="full")
        # Inside the factor: passes and reports both signs true.
        outcomes = bench_serve._check(
            _metrics(hedge_p999=100.0), config_name="full"
        )
        assert outcomes["p999_strict_ok"] is True

    def test_p99_gate_applies_to_every_config(self):
        for name in bench_serve.GATES:
            with pytest.raises(AssertionError, match="p99"):
                bench_serve._check(
                    _metrics(hedge_p99=70.0, hedge_p999=10.0), config_name=name
                )

    def test_determinism_gate_applies_to_every_config(self):
        bad = _metrics(hedge_p999=10.0)
        bad["deterministic_across_jobs"] = False
        for name in bench_serve.GATES:
            with pytest.raises(AssertionError, match="job"):
                bench_serve._check(bad, config_name=name)
