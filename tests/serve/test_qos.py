"""QoS mechanics: token buckets spend what time refills, WFQ honours weights."""

import pytest

from repro.serve import AdmissionController, TenantSpec, TokenBucket, WeightedFairQueue


def tenants(*specs):
    return tuple(specs)


class TestTokenBucket:
    def test_burst_then_starve(self):
        b = TokenBucket(rate=10.0, burst=3.0)
        assert [b.admit(0.0) for _ in range(4)] == [True, True, True, False]

    def test_refills_with_time(self):
        b = TokenBucket(rate=10.0, burst=1.0)
        assert b.admit(0.0)
        assert not b.admit(0.05)  # only half a token back
        assert b.admit(0.2)  # > 0.1s since last spend

    def test_refill_caps_at_burst(self):
        b = TokenBucket(rate=100.0, burst=2.0)
        b.admit(0.0)
        admitted = sum(b.admit(10.0) for _ in range(5))
        assert admitted == 2  # a decade of idle banks only `burst` tokens

    def test_time_must_be_monotone(self):
        b = TokenBucket(rate=1.0, burst=1.0)
        b.admit(1.0)
        with pytest.raises(ValueError):
            b.admit(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=2.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmissionController:
    def test_unlimited_tenant_always_admits(self):
        ts = tenants(TenantSpec("a", rate=1.0))
        ctl = AdmissionController(ts)
        assert all(ctl.admit("a", 0.0) for _ in range(1000))

    def test_limited_tenant_sheds_excess(self):
        ts = tenants(TenantSpec("a", rate=100.0, rate_limit=10.0, burst=1.0))
        ctl = AdmissionController(ts)
        # 100 arrivals over one second against a 10/s limit: ~10 admitted.
        admitted = sum(ctl.admit("a", i / 100.0) for i in range(100))
        assert 9 <= admitted <= 12

    def test_disabled_controller_admits_everything(self):
        ts = tenants(TenantSpec("a", rate=100.0, rate_limit=1.0, burst=1.0))
        ctl = AdmissionController(ts, enabled=False)
        assert all(ctl.admit("a", 0.0) for _ in range(50))


class TestWeightedFairQueue:
    def test_fifo_within_tenant(self):
        q = WeightedFairQueue(tenants(TenantSpec("a", rate=1.0)))
        for i in range(5):
            q.push("a", i)
        assert [q.pop()[1] for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_weights_set_drain_ratio(self):
        ts = tenants(
            TenantSpec("heavy", rate=1.0, weight=2.0),
            TenantSpec("light", rate=1.0, weight=1.0),
        )
        q = WeightedFairQueue(ts)
        for i in range(60):
            q.push("heavy", i)
            q.push("light", i)
        first_30 = [q.pop()[0] for _ in range(30)]
        heavy_share = first_30.count("heavy")
        # Start-time fair queuing: the weight-2 tenant gets ~2/3 of slots.
        assert 17 <= heavy_share <= 23

    def test_idle_tenant_share_redistributes(self):
        ts = tenants(
            TenantSpec("a", rate=1.0, weight=1.0),
            TenantSpec("b", rate=1.0, weight=1.0),
        )
        q = WeightedFairQueue(ts)
        for i in range(10):
            q.push("a", i)
        assert all(q.pop()[0] == "a" for _ in range(10))
        # b was idle throughout; it restarts at the current virtual time —
        # interleaving fairly from now on, not owed the backlog it never
        # queued for (registration order gives a the tie at equal tags).
        q.push("b", 0)
        q.push("a", 10)
        q.push("a", 11)
        assert [q.pop()[0] for _ in range(3)] == ["a", "b", "a"]

    def test_deterministic_tie_break(self):
        ts = tenants(TenantSpec("a", rate=1.0), TenantSpec("b", rate=1.0))
        order = []
        for _ in range(3):
            q = WeightedFairQueue(ts)
            q.push("a", 0)
            q.push("b", 0)
            order.append((q.pop()[0], q.pop()[0]))
        assert order == [("a", "b")] * 3  # registration order breaks ties

    def test_depth_and_len(self):
        ts = tenants(TenantSpec("a", rate=1.0), TenantSpec("b", rate=1.0))
        q = WeightedFairQueue(ts)
        q.push("a", 1)
        q.push("a", 2)
        q.push("b", 3)
        assert len(q) == 3
        assert q.depth("a") == 2
        assert q.depth("b") == 1

    def test_errors(self):
        ts = tenants(TenantSpec("a", rate=1.0))
        q = WeightedFairQueue(ts)
        with pytest.raises(ValueError):
            q.push("ghost", 1)
        with pytest.raises(ValueError):
            q.pop()
        with pytest.raises(ValueError):
            WeightedFairQueue(())
        with pytest.raises(ValueError):
            WeightedFairQueue(tenants(TenantSpec("a", rate=1.0), TenantSpec("a", rate=2.0)))
