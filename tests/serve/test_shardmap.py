"""ShardMap: routing is total, balanced (hash) or ordered (range), and pure."""

import numpy as np
import pytest

from repro.serve import SHARD_POLICIES, ShardMap


class TestHashPolicy:
    def test_covers_all_shards(self):
        m = ShardMap(8, 1 << 20, policy="hash")
        owners = m.shards_of(np.arange(10_000, dtype=np.int64))
        assert set(np.unique(owners)) == set(range(8))

    def test_roughly_balanced(self):
        m = ShardMap(4, 1 << 20, policy="hash")
        owners = m.shards_of(np.arange(40_000, dtype=np.int64))
        counts = np.bincount(owners, minlength=4)
        assert counts.min() > 0.8 * counts.max()

    def test_sequential_keys_spread(self):
        # The point of hashing: adjacent keys do not share a shard run.
        m = ShardMap(4, 1 << 20, policy="hash")
        owners = m.shards_of(np.arange(64, dtype=np.int64))
        assert len(set(owners[:8].tolist())) > 1

    def test_scalar_matches_vector(self):
        m = ShardMap(5, 1 << 16, policy="hash")
        keys = np.array([0, 1, 17, 4096, (1 << 16) - 1], dtype=np.int64)
        assert [m.shard_of(int(k)) for k in keys] == m.shards_of(keys).tolist()


class TestRangePolicy:
    def test_monotone_in_key(self):
        m = ShardMap(4, 1024, policy="range")
        owners = m.shards_of(np.arange(1024, dtype=np.int64))
        assert (np.diff(owners) >= 0).all()
        assert set(np.unique(owners)) == set(range(4))

    def test_equal_width_slices(self):
        m = ShardMap(4, 1024, policy="range")
        assert m.shard_of(0) == 0
        assert m.shard_of(255) == 0
        assert m.shard_of(256) == 1
        assert m.shard_of(1023) == 3


class TestPartition:
    def test_membership_and_order(self):
        m = ShardMap(3, 1 << 12, policy="hash")
        keys = np.arange(0, 1 << 12, 7, dtype=np.int64)
        parts = m.partition(keys)
        assert len(parts) == 3
        assert sum(len(p) for p in parts) == len(keys)
        for s, part in enumerate(parts):
            assert (m.shards_of(part) == s).all()
            assert (np.diff(part) > 0).all()  # input order preserved


class TestValidation:
    def test_bad_args_rejected(self):
        with pytest.raises(ValueError):
            ShardMap(0, 100)
        with pytest.raises(ValueError):
            ShardMap(2, 0)
        with pytest.raises(ValueError):
            ShardMap(2, 100, policy="rendezvous")
        assert "hash" in SHARD_POLICIES and "range" in SHARD_POLICIES

    def test_out_of_universe_rejected(self):
        m = ShardMap(2, 100)
        with pytest.raises(ValueError):
            m.shard_of(100)
        with pytest.raises(ValueError):
            m.shard_of(-1)
        with pytest.raises(ValueError):
            m.shards_of(np.array([5, 100], dtype=np.int64))

    def test_describe_stable(self):
        assert ShardMap(2, 100).describe() == {
            "n_shards": 2,
            "universe": 100,
            "policy": "hash",
        }
