"""Replica crash and failover inside the serving loop."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import build_load
from repro.faults import CrashPlan
from repro.serve import RequestEngine, ShardConfig, ShardMap, TenantSpec, build_shards

UNIVERSE = 1 << 18

TENANTS = (
    TenantSpec("alpha", rate=300.0, weight=2.0),
    TenantSpec("beta", rate=200.0, weight=1.0),
)


def make_cluster(*, crash=None, durable=True, n_shards=2, replicas=2, seed=42):
    pairs, _ = build_load(900, UNIVERSE, seed=seed)
    keys = np.asarray(sorted(k for k, _ in pairs), dtype=np.int64)
    smap = ShardMap(n_shards, UNIVERSE, policy="hash")
    pair_map = dict(pairs)
    partitions = [
        [(int(k), pair_map[int(k)]) for k in part] for part in smap.partition(keys)
    ]
    cfg = ShardConfig(
        tree="btree",
        replicas=replicas,
        batch=8,
        cache_bytes=32 << 10,
        warm_queries=16,
        durable=durable,
        group_commit=4,
    )
    shards = build_shards(n_shards, partitions, cfg, seed=seed, crash=crash)
    return shards, smap, keys


def run_once(*, crash=None, duration=0.5, seed=42, **kw):
    shards, smap, keys = make_cluster(crash=crash, seed=seed, **kw)
    engine = RequestEngine(shards, smap, TENANTS, keys, batch=8)
    return engine.run(duration, seed=seed)


class TestWiring:
    def test_crash_plan_requires_durable_replicas(self):
        with pytest.raises(ConfigurationError, match="durable"):
            make_cluster(crash=CrashPlan(seed=1, at_io=5), durable=False)

    def test_recover_rejected_on_non_durable_replica(self):
        shards, _, _ = make_cluster(durable=False)
        with pytest.raises(ConfigurationError):
            shards[0].replicas[0].recover()

    def test_durable_config_surfaces_in_describe(self):
        cfg = ShardConfig(durable=True, group_commit=4, checkpoint_every=9)
        d = cfg.describe()
        assert d["durable"] is True
        assert d["group_commit"] == 4
        assert d["checkpoint_every"] == 9


class TestFailover:
    def test_each_shard_crashes_once_and_recovers(self):
        result = run_once(crash=CrashPlan(seed=7, at_io=6))
        assert result.crashes == 2
        assert result.recoveries == 2
        assert result.recovery_seconds > 0.0
        assert sum(s.failovers for s in result.tenants.values()) > 0
        d = result.describe()
        assert d["crashes"] == 2
        assert d["recovery_seconds"] == pytest.approx(result.recovery_seconds)
        assert all("failovers" in t for t in d["tenants"].values())

    def test_no_crash_plan_means_no_failovers(self):
        result = run_once()
        assert result.crashes == result.recoveries == 0
        assert result.recovery_seconds == 0.0
        assert all(s.failovers == 0 for s in result.tenants.values())

    def test_crashed_requests_are_requeued_not_dropped(self):
        calm = run_once()
        crashed = run_once(crash=CrashPlan(seed=7, at_io=6))
        # Failover requeues the round: same admitted traffic, same total
        # completions — the crash costs latency, never requests.
        assert crashed.served == calm.served
        assert crashed.dropped == calm.dropped

    def test_failover_lands_in_tail_latency(self):
        # A requeued request keeps its original arrival time; with a
        # single replica it cannot be served elsewhere, so it waits out
        # the whole recovery: worst-case latency is bounded below by the
        # slowest replica recovery.
        shards, smap, keys = make_cluster(
            crash=CrashPlan(seed=7, at_io=6), replicas=1
        )
        engine = RequestEngine(shards, smap, TENANTS, keys, batch=8)
        result = engine.run(0.5, seed=42)
        slowest_recovery = max(
            r.recovery_seconds for s in shards for r in s.replicas
        )
        assert slowest_recovery > 0.0
        worst = max(
            float(np.max(result.latency_array(name))) for name in result.tenants
        )
        assert worst >= slowest_recovery

    def test_bit_identical_across_runs(self):
        a = run_once(crash=CrashPlan(seed=7, at_io=6))
        b = run_once(crash=CrashPlan(seed=7, at_io=6))
        assert a.describe() == b.describe()
        for name in a.tenants:
            assert np.array_equal(a.latency_array(name), b.latency_array(name))

    def test_replica_counters_record_the_recovery(self):
        shards, smap, keys = make_cluster(crash=CrashPlan(seed=7, at_io=6))
        engine = RequestEngine(shards, smap, TENANTS, keys, batch=8)
        engine.run(0.5, seed=42)
        for shard in shards:
            assert shard.replicas[0].recoveries == 1
            assert shard.replicas[0].recovery_seconds > 0.0
