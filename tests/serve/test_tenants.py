"""Tenant traffic streams: private, independent, reproducible.

The stream-independence tests pin the core multi-tenant contract: a
tenant's draws are a function of ``(base_seed, its own name)`` only, so
adding, removing or renaming *other* tenants never perturbs an existing
tenant's traffic — A/B comparisons between tenant mixes stay paired.
"""

import numpy as np
import pytest

from repro.serve import TenantSpec, derive_seed, tenant_arrivals, tenant_keys
from repro.serve.tenants import check_unique_names


class TestDeriveSeed:
    def test_stable_values(self):
        # Process-stable (CRC, not builtin hash): pin exact values so a
        # future refactor cannot silently reshuffle every tenant's traffic.
        assert derive_seed(42, "arrivals", "alpha") == derive_seed(42, "arrivals", "alpha")
        assert derive_seed(42, "arrivals", "alpha") != derive_seed(42, "arrivals", "beta")
        assert derive_seed(42, "arrivals", "alpha") != derive_seed(43, "arrivals", "alpha")
        assert derive_seed(42, "keys", "alpha") != derive_seed(42, "arrivals", "alpha")

    def test_31_bit_range(self):
        for i in range(50):
            s = derive_seed(i, "x", i * 3)
            assert 0 <= s < 2**31


class TestArrivals:
    def test_sorted_within_horizon(self):
        spec = TenantSpec("a", rate=200.0)
        arr = tenant_arrivals(spec, 2.0, base_seed=7)
        assert (np.diff(arr) > 0).all()
        assert arr[0] >= 0.0 and arr[-1] < 2.0

    def test_rate_is_respected(self):
        spec = TenantSpec("a", rate=500.0)
        arr = tenant_arrivals(spec, 4.0, base_seed=7)
        assert 0.85 * 2000 < len(arr) < 1.15 * 2000

    def test_deterministic(self):
        spec = TenantSpec("a", rate=100.0)
        a = tenant_arrivals(spec, 1.0, base_seed=3)
        b = tenant_arrivals(spec, 1.0, base_seed=3)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            tenant_arrivals(TenantSpec("a", rate=1.0), 0.0, base_seed=1)


class TestStreamIndependence:
    """Satellite contract: tenant A's draws ignore tenant B's existence."""

    def test_arrivals_independent_of_other_tenants(self):
        a = TenantSpec("alpha", rate=300.0)
        solo = tenant_arrivals(a, 2.0, base_seed=42)
        # "Adding tenant B" is just drawing B's stream too — interleave the
        # generation orders and A must not notice.
        b = TenantSpec("beta", rate=700.0, theta=1.5)
        _ = tenant_arrivals(b, 2.0, base_seed=42)
        with_b = tenant_arrivals(a, 2.0, base_seed=42)
        assert np.array_equal(solo, with_b)

    def test_keys_independent_of_other_tenants(self):
        a = TenantSpec("alpha", rate=300.0)
        solo = tenant_keys(a, 500, 10_000, base_seed=42)
        _ = tenant_keys(TenantSpec("beta", rate=1.0), 999, 10_000, base_seed=42)
        with_b = tenant_keys(a, 500, 10_000, base_seed=42)
        assert np.array_equal(solo, with_b)

    def test_same_theta_different_hot_sets(self):
        # The per-tenant scatter seed gives each tenant its own hot keys.
        a = tenant_keys(TenantSpec("alpha", rate=1.0), 2000, 1 << 16, base_seed=1)
        b = tenant_keys(TenantSpec("beta", rate=1.0), 2000, 1 << 16, base_seed=1)
        hot_a = np.bincount(a, minlength=1 << 16).argmax()
        hot_b = np.bincount(b, minlength=1 << 16).argmax()
        assert hot_a != hot_b

    def test_arrival_and_key_streams_distinct(self):
        # Same tenant, same base seed: the two purposes use different
        # derived seeds, so they are not the same underlying stream.
        spec = TenantSpec("alpha", rate=1.0)
        assert derive_seed(1, "arrivals", spec.name) != derive_seed(1, "keys", spec.name)


class TestTenantSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantSpec("", rate=1.0)
        with pytest.raises(ValueError):
            TenantSpec("a", rate=0.0)
        with pytest.raises(ValueError):
            TenantSpec("a", rate=1.0, weight=0.0)
        with pytest.raises(ValueError):
            TenantSpec("a", rate=1.0, theta=1.0)
        with pytest.raises(ValueError):
            TenantSpec("a", rate=1.0, rate_limit=0.0)
        with pytest.raises(ValueError):
            TenantSpec("a", rate=1.0, burst=0.0)

    def test_unique_names_checked(self):
        with pytest.raises(ValueError):
            check_unique_names(())
        with pytest.raises(ValueError):
            check_unique_names((TenantSpec("a", rate=1.0), TenantSpec("a", rate=2.0)))
        ts = (TenantSpec("a", rate=1.0), TenantSpec("b", rate=1.0))
        assert check_unique_names(ts) == ts

    def test_keys_need_population(self):
        with pytest.raises(ValueError):
            tenant_keys(TenantSpec("a", rate=1.0), 10, 1, base_seed=0)
