"""AffineDevice / PDAMDevice tests — devices that ARE the models."""

import pytest

from repro.errors import ConfigurationError, InvalidIOError
from repro.models.affine import AffineModel
from repro.models.pdam import PDAMModel
from repro.storage.ideal import AffineDevice, PDAMDevice


class TestAffineDevice:
    def test_exact_model_timing(self):
        m = AffineModel(alpha=1e-6, setup_seconds=0.01)
        dev = AffineDevice(m)
        assert dev.read(0, 1000) == pytest.approx(m.seconds(1000))
        assert dev.write(0, 1) == pytest.approx(m.seconds(1))

    def test_no_noise(self):
        dev = AffineDevice(AffineModel(alpha=1e-6, setup_seconds=0.01))
        times = [dev.read(i * 4096, 4096) for i in range(10)]
        # Identical up to floating-point accumulation of the clock.
        assert max(times) - min(times) < 1e-12

    def test_sequential_detection_off_by_default(self):
        m = AffineModel(alpha=1e-6, setup_seconds=0.01)
        dev = AffineDevice(m)
        dev.read(0, 100)
        assert dev.read(100, 100) == pytest.approx(m.seconds(100))

    def test_sequential_detection_waives_setup(self):
        m = AffineModel(alpha=1e-6, setup_seconds=0.01)
        dev = AffineDevice(m, sequential_detection=True)
        dev.read(0, 100)
        assert dev.read(100, 100) == pytest.approx(m.seconds_per_byte * 100)

    def test_reset_clears_sequential_state(self):
        m = AffineModel(alpha=1e-6, setup_seconds=0.01)
        dev = AffineDevice(m, sequential_detection=True)
        dev.read(0, 100)
        dev.reset()
        assert dev.read(100, 100) == pytest.approx(m.seconds(100))


class TestPDAMDevice:
    def make(self, P=4, B=4096):
        return PDAMDevice(PDAMModel(parallelism=P, block_bytes=B), capacity_bytes=1 << 30)

    def test_integer_parallelism_required(self):
        with pytest.raises(ConfigurationError):
            PDAMDevice(PDAMModel(parallelism=3.3, block_bytes=4096))

    def test_serial_read_steps(self):
        dev = self.make()
        # 5 blocks with P=4: 2 steps.
        dev.read(0, 5 * 4096)
        assert dev.steps_elapsed == 2
        assert dev.slots_used == 5 and dev.slots_wasted == 3

    def test_serve_step_accounting(self):
        dev = self.make()
        dev.serve_step([0, 4096, 8192])
        assert dev.steps_elapsed == 1
        assert dev.slots_used == 3 and dev.slots_wasted == 1
        assert dev.stats.reads == 3

    def test_serve_step_rejects_overflow(self):
        dev = self.make(P=2)
        with pytest.raises(InvalidIOError):
            dev.serve_step([0, 4096, 8192])

    def test_serve_step_rejects_misaligned(self):
        dev = self.make()
        with pytest.raises(InvalidIOError):
            dev.serve_step([100])

    def test_empty_step_wastes_all_slots(self):
        dev = self.make()
        dev.serve_step([])
        assert dev.slots_wasted == 4

    def test_block_of(self):
        dev = self.make()
        assert dev.block_of(0) == 0
        assert dev.block_of(4096) == 1
        assert dev.block_of(8191) == 1
        with pytest.raises(InvalidIOError):
            dev.block_of(1 << 40)

    def test_clock_advances_per_step(self):
        dev = PDAMDevice(
            PDAMModel(parallelism=2, block_bytes=4096, step_seconds=0.5),
            capacity_bytes=1 << 30,
        )
        dev.serve_step([0])
        dev.serve_step([4096])
        assert dev.clock == pytest.approx(1.0)

    def test_reset(self):
        dev = self.make()
        dev.serve_step([0])
        dev.reset()
        assert dev.steps_elapsed == 0 and dev.slots_used == 0 and dev.slots_wasted == 0


class TestPDAMCrew:
    def make(self, P=4, B=4096):
        return PDAMDevice(PDAMModel(parallelism=P, block_bytes=B), capacity_bytes=1 << 30)

    def test_mixed_reads_and_writes_in_one_step(self):
        # Definition 1: "the device can serve any combination of reads and
        # writes" within a step.
        dev = self.make()
        dev.serve_step([0, 4096], [8192, 12288])
        assert dev.steps_elapsed == 1
        assert dev.stats.reads == 2 and dev.stats.writes == 2

    def test_two_writes_same_block_rejected(self):
        dev = self.make()
        with pytest.raises(InvalidIOError):
            dev.serve_step([], [0, 0])

    def test_read_of_written_block_rejected(self):
        dev = self.make()
        with pytest.raises(InvalidIOError):
            dev.serve_step([4096], [4096])

    def test_concurrent_reads_of_same_block_allowed(self):
        # CREW: concurrent *reads* are fine.
        dev = self.make()
        dev.serve_step([0, 0, 0])
        assert dev.stats.reads == 3

    def test_total_slot_budget_shared(self):
        dev = self.make(P=3)
        with pytest.raises(InvalidIOError):
            dev.serve_step([0, 4096], [8192, 12288])

    def test_misaligned_write_rejected(self):
        dev = self.make()
        with pytest.raises(InvalidIOError):
            dev.serve_step([], [100])


class TestAffineReadBatch:
    def _pair(self, **kwargs):
        m = AffineModel(alpha=1e-6, setup_seconds=0.01)
        return AffineDevice(m, **kwargs), AffineDevice(m, **kwargs)

    def test_bit_identical_to_serial_reads(self):
        dev, ref = self._pair()
        offsets = [0, 1 << 20, 4096, 3 << 20, 4096 + 4096]
        assert dev.read_batch(offsets, 4096) == [ref.read(o, 4096) for o in offsets]
        assert dev.clock == ref.clock
        assert vars(dev.stats) == vars(ref.stats)

    def test_sequential_detection_matches_serial(self):
        dev, ref = self._pair(sequential_detection=True)
        offsets = [0, 4096, 8192, 1 << 20, (1 << 20) + 4096]
        assert dev.read_batch(offsets, 4096) == [ref.read(o, 4096) for o in offsets]
        assert dev._next_sequential_offset == ref._next_sequential_offset

    def test_empty_batch(self):
        dev, _ = self._pair()
        assert dev.read_batch([], 4096) == []

    def test_describe_distinguishes_models(self):
        a = AffineDevice(AffineModel(alpha=1e-6, setup_seconds=0.01))
        b = AffineDevice(AffineModel(alpha=1e-6, setup_seconds=0.02))
        assert a.describe() != b.describe()
        assert a.describe() == AffineDevice(AffineModel(alpha=1e-6, setup_seconds=0.01)).describe()


def test_pdam_describe():
    dev = PDAMDevice(PDAMModel(parallelism=4, block_bytes=4096))
    d = dev.describe()
    assert d["parallelism"] == 4 and d["block_bytes"] == 4096
