"""Discrete-event engine tests."""

import pytest

from repro.errors import ConfigurationError
from repro.storage.engine import ClosedLoopRunner, Resource, ResourcePool


class TestResource:
    def test_idle_job_starts_immediately(self):
        r = Resource()
        assert r.acquire(5.0, 2.0) == 7.0

    def test_busy_job_queues(self):
        r = Resource()
        r.acquire(0.0, 10.0)
        assert r.acquire(3.0, 2.0) == 12.0  # waits until t=10

    def test_busy_accounting(self):
        r = Resource()
        r.acquire(0.0, 3.0)
        r.acquire(0.0, 4.0)
        assert r.busy_seconds == 7.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            Resource().acquire(0.0, -1.0)

    def test_peek_does_not_reserve(self):
        r = Resource()
        r.acquire(0.0, 5.0)
        assert r.peek_start(1.0) == 5.0
        assert r.available_at == 5.0

    def test_reset(self):
        r = Resource()
        r.acquire(0.0, 5.0)
        r.reset()
        assert r.available_at == 0.0 and r.busy_seconds == 0.0


class TestResourcePool:
    def test_independent_resources(self):
        pool = ResourcePool(3)
        pool[0].acquire(0.0, 5.0)
        assert pool[1].acquire(0.0, 1.0) == 1.0

    def test_len_and_busy(self):
        pool = ResourcePool(2)
        pool[0].acquire(0.0, 2.0)
        pool[1].acquire(0.0, 3.0)
        assert len(pool) == 2
        assert pool.busy_seconds == 5.0
        assert pool.max_available_at == 3.0

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ResourcePool(0)


class TestClosedLoopRunner:
    def test_single_client_serial(self):
        r = Resource()
        runner = ClosedLoopRunner(lambda req, at: r.acquire(at, req))
        finish = runner.run([[1.0, 2.0, 3.0]])
        assert finish == [6.0]

    def test_two_clients_share_one_resource(self):
        r = Resource()
        runner = ClosedLoopRunner(lambda req, at: r.acquire(at, req))
        makespan = runner.run_makespan([[1.0] * 5, [1.0] * 5])
        assert makespan == pytest.approx(10.0)  # fully serialized

    def test_two_clients_on_independent_resources(self):
        pool = ResourcePool(2)
        runner = ClosedLoopRunner(lambda req, at: pool[req[0]].acquire(at, req[1]))
        makespan = runner.run_makespan([[(0, 1.0)] * 5, [(1, 1.0)] * 5])
        assert makespan == pytest.approx(5.0)  # perfectly parallel

    def test_closed_loop_ordering(self):
        # Each client's requests are strictly sequential.
        log = []

        def service(req, at):
            log.append((req, at))
            return at + 1.0

        ClosedLoopRunner(service).run([["a1", "a2"], ["b1"]])
        assert log[0][0] in ("a1", "b1")
        a_times = [at for req, at in log if req.startswith("a")]
        assert a_times == sorted(a_times)

    def test_empty_streams_rejected(self):
        with pytest.raises(ConfigurationError):
            ClosedLoopRunner(lambda r, t: t).run([])

    def test_backwards_service_rejected(self):
        runner = ClosedLoopRunner(lambda req, at: at - 1.0)
        with pytest.raises(ConfigurationError):
            runner.run([[1]])


class TestSingleServerFastPath:
    def _compare(self, streams, **kwargs):
        """Heap and deque paths over one shared Resource must agree exactly."""
        results = []
        for single_server in (False, True):
            r = Resource()
            runner = ClosedLoopRunner(
                lambda req, at, r=r: r.acquire(at, req), single_server=single_server
            )
            results.append(runner.run([list(s) for s in streams], **kwargs))
        assert results[0] == results[1]
        return results[0]

    def test_matches_heap_equal_streams(self):
        finish = self._compare([[1.0] * 5, [1.0] * 5])
        assert max(finish) == pytest.approx(10.0)

    def test_matches_heap_ragged_streams(self):
        self._compare([[0.5, 2.0], [1.0], [0.25, 0.25, 3.0, 0.125]])

    def test_matches_heap_random_durations(self):
        import random

        rng = random.Random(7)
        streams = [
            [rng.uniform(0.01, 2.0) for _ in range(rng.randrange(1, 12))]
            for _ in range(6)
        ]
        self._compare(streams)

    def test_matches_heap_nonzero_start(self):
        self._compare([[1.0, 1.0], [2.0]], start_time=5.0)

    def test_single_client_auto_fast_path(self):
        # One client takes the deque path even without single_server=True,
        # and zero-duration services are fine there (no ordering to break).
        runner = ClosedLoopRunner(lambda req, at: at + req)
        assert runner.run([[0.0, 1.0, 0.0]]) == [1.0]

    def test_guard_rejects_nonmonotone_completions(self):
        # Two independent resources: completions interleave out of order.
        pool = ResourcePool(2)
        runner = ClosedLoopRunner(
            lambda req, at: pool[req[0]].acquire(at, req[1]), single_server=True
        )
        with pytest.raises(ConfigurationError):
            runner.run([[(0, 5.0), (0, 5.0)], [(1, 1.0), (1, 1.0), (1, 1.0)]])

    def test_guard_rejects_zero_duration_ties(self):
        r = Resource()
        runner = ClosedLoopRunner(
            lambda req, at: r.acquire(at, req), single_server=True
        )
        with pytest.raises(ConfigurationError):
            runner.run([[0.0, 0.0], [1.0]])

    def test_backwards_service_rejected_on_fast_path(self):
        runner = ClosedLoopRunner(lambda req, at: at - 1.0, single_server=True)
        with pytest.raises(ConfigurationError):
            runner.run([[1]])


class TestValueErrorContract:
    """ISSUE satellite: nonsense construction raises ValueError.

    ConfigurationError and InvalidIOError are ValueError subclasses, so
    both the package-specific excepts and plain ``except ValueError``
    callers work.
    """

    def test_error_hierarchy(self):
        from repro.errors import ConfigurationError, InvalidIOError

        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(InvalidIOError, ValueError)

    def test_resource_negative_duration_is_valueerror(self):
        with pytest.raises(ValueError):
            Resource().acquire(0.0, -0.5)

    def test_resource_pool_nonpositive_count_is_valueerror(self):
        with pytest.raises(ValueError):
            ResourcePool(0)
        with pytest.raises(ValueError):
            ResourcePool(-3)

    def test_iosampler_nonpositive_capacity_is_valueerror(self):
        from repro.storage.device import IOSampler

        with pytest.raises(ValueError):
            IOSampler(0)
        with pytest.raises(ValueError):
            IOSampler(-1)


class TestRunnerEdgeCases:
    """ISSUE satellite: ClosedLoopRunner corner cases."""

    def test_stream_exception_propagates_with_clock_intact(self):
        r = Resource()

        def stream():
            yield 1.0
            yield 2.0
            raise RuntimeError("generator died")

        runner = ClosedLoopRunner(lambda req, at: r.acquire(at, req))
        with pytest.raises(RuntimeError, match="generator died"):
            runner.run([stream()])
        # Both requests served before the crash stay charged.
        assert r.available_at == 3.0
        assert r.busy_seconds == 3.0

    def test_stream_exception_in_heap_path(self):
        r = Resource()

        def bad():
            yield 1.0
            raise RuntimeError("client 0 died")

        runner = ClosedLoopRunner(lambda req, at: r.acquire(at, req))
        with pytest.raises(RuntimeError, match="client 0 died"):
            runner.run([bad(), iter([1.0, 1.0, 1.0])])
        assert r.busy_seconds > 0.0

    def test_single_server_vs_heap_mixed_workload(self):
        streams = [[0.1, 5.0, 0.1], [1.0, 1.0, 1.0, 1.0], [2.5], [0.01] * 8]
        results = []
        for single_server in (False, True):
            r = Resource()
            runner = ClosedLoopRunner(
                lambda req, at, r=r: r.acquire(at, req), single_server=single_server
            )
            results.append(runner.run([list(s) for s in streams]))
        assert results[0] == results[1]


class TestRunnerResilience:
    """ClosedLoopRunner with a ResiliencePolicy: retry and hedged service."""

    def test_retry_recovers_flaky_service(self):
        from repro.errors import TransientIOError
        from repro.faults import ResiliencePolicy

        r = Resource()
        calls = {"n": 0}

        def service(req, at):
            calls["n"] += 1
            if calls["n"] % 3 == 1:
                raise TransientIOError("flaky")
            return r.acquire(at, req)

        runner = ClosedLoopRunner(
            service,
            policy=ResiliencePolicy.retry(max_retries=4, backoff_seconds=0.5),
        )
        finish = runner.run([[1.0, 1.0]])
        assert runner.retries > 0
        assert finish[0] > 2.0  # backoff waits are simulated time

    def test_retry_exhaustion_propagates(self):
        from repro.errors import TransientIOError
        from repro.faults import ResiliencePolicy

        def service(req, at):
            raise TransientIOError("always down")

        runner = ClosedLoopRunner(
            service, policy=ResiliencePolicy.retry(max_retries=2, backoff_seconds=0.1)
        )
        with pytest.raises(TransientIOError):
            runner.run([[1.0]])
        assert runner.retries == 2

    def test_hedged_duplicate_wins(self):
        from repro.faults import ResiliencePolicy

        pool = ResourcePool(2)
        pool[0].acquire(0.0, 100.0)  # primary path starts deeply backlogged
        calls = {"n": 0}

        def service(req, at):
            i = min(calls["n"], 1)
            calls["n"] += 1
            return pool[i].acquire(at, req)

        runner = ClosedLoopRunner(service, policy=ResiliencePolicy.hedged(1.0))
        finish = runner.run([[2.0]])
        # Primary would complete at 102; the duplicate issued at the 1.0s
        # deadline on the idle resource completes at 3.0 and wins.
        assert finish == [3.0]
        assert runner.hedges_issued == 1
        assert runner.hedge_wins == 1

    def test_noop_policy_skips_wrapper(self):
        from repro.faults import ResiliencePolicy

        r = Resource()
        runner = ClosedLoopRunner(
            lambda req, at: r.acquire(at, req), policy=ResiliencePolicy.none()
        )
        assert runner._policy is None
        assert runner.run([[1.0, 1.0]]) == [2.0]


class TestPoolOccupancy:
    """Satellite: free_slots/first_free/next_available_at accessors.

    The serving layer asks the pool "who is idle at time t?" instead of
    poking Resource.available_at directly; these pin the accessor
    semantics it relies on.
    """

    def test_free_slots_counts_idle_resources(self):
        pool = ResourcePool(3)
        assert pool.free_slots(0.0) == 3
        pool[0].acquire(0.0, 5.0)
        pool[1].acquire(0.0, 2.0)
        assert pool.free_slots(0.0) == 1
        assert pool.free_slots(2.0) == 2
        assert pool.free_slots(5.0) == 3

    def test_first_free_scans_in_index_order(self):
        pool = ResourcePool(3)
        pool[0].acquire(0.0, 4.0)
        assert pool.first_free(0.0) == 1
        assert pool.first_free(0.0, exclude=1) == 2
        pool[1].acquire(0.0, 4.0)
        pool[2].acquire(0.0, 4.0)
        assert pool.first_free(0.0) is None
        assert pool.first_free(4.0) == 0

    def test_is_free_matches_acquire_semantics(self):
        r = Resource()
        assert r.is_free(0.0)
        r.acquire(0.0, 3.0)
        assert not r.is_free(2.999)
        assert r.is_free(3.0)  # a job arriving exactly at free time starts now

    def test_next_available_at(self):
        pool = ResourcePool(2)
        assert pool.next_available_at() == 0.0
        pool[0].acquire(0.0, 3.0)
        pool[1].acquire(0.0, 1.0)
        assert pool.next_available_at() == 1.0

    def test_accessors_do_not_reserve(self):
        pool = ResourcePool(1)
        pool.free_slots(0.0)
        pool.first_free(0.0)
        pool.next_available_at()
        # Purely observational: the slot is still free, so a job arriving
        # at 0 starts immediately and completes at its bare duration.
        assert pool[0].acquire(0.0, 1.0) == 1.0
