"""Discrete-event engine tests."""

import pytest

from repro.errors import ConfigurationError
from repro.storage.engine import ClosedLoopRunner, Resource, ResourcePool


class TestResource:
    def test_idle_job_starts_immediately(self):
        r = Resource()
        assert r.acquire(5.0, 2.0) == 7.0

    def test_busy_job_queues(self):
        r = Resource()
        r.acquire(0.0, 10.0)
        assert r.acquire(3.0, 2.0) == 12.0  # waits until t=10

    def test_busy_accounting(self):
        r = Resource()
        r.acquire(0.0, 3.0)
        r.acquire(0.0, 4.0)
        assert r.busy_seconds == 7.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            Resource().acquire(0.0, -1.0)

    def test_peek_does_not_reserve(self):
        r = Resource()
        r.acquire(0.0, 5.0)
        assert r.peek_start(1.0) == 5.0
        assert r.available_at == 5.0

    def test_reset(self):
        r = Resource()
        r.acquire(0.0, 5.0)
        r.reset()
        assert r.available_at == 0.0 and r.busy_seconds == 0.0


class TestResourcePool:
    def test_independent_resources(self):
        pool = ResourcePool(3)
        pool[0].acquire(0.0, 5.0)
        assert pool[1].acquire(0.0, 1.0) == 1.0

    def test_len_and_busy(self):
        pool = ResourcePool(2)
        pool[0].acquire(0.0, 2.0)
        pool[1].acquire(0.0, 3.0)
        assert len(pool) == 2
        assert pool.busy_seconds == 5.0
        assert pool.max_available_at == 3.0

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ResourcePool(0)


class TestClosedLoopRunner:
    def test_single_client_serial(self):
        r = Resource()
        runner = ClosedLoopRunner(lambda req, at: r.acquire(at, req))
        finish = runner.run([[1.0, 2.0, 3.0]])
        assert finish == [6.0]

    def test_two_clients_share_one_resource(self):
        r = Resource()
        runner = ClosedLoopRunner(lambda req, at: r.acquire(at, req))
        makespan = runner.run_makespan([[1.0] * 5, [1.0] * 5])
        assert makespan == pytest.approx(10.0)  # fully serialized

    def test_two_clients_on_independent_resources(self):
        pool = ResourcePool(2)
        runner = ClosedLoopRunner(lambda req, at: pool[req[0]].acquire(at, req[1]))
        makespan = runner.run_makespan([[(0, 1.0)] * 5, [(1, 1.0)] * 5])
        assert makespan == pytest.approx(5.0)  # perfectly parallel

    def test_closed_loop_ordering(self):
        # Each client's requests are strictly sequential.
        log = []

        def service(req, at):
            log.append((req, at))
            return at + 1.0

        ClosedLoopRunner(service).run([["a1", "a2"], ["b1"]])
        assert log[0][0] in ("a1", "b1")
        a_times = [at for req, at in log if req.startswith("a")]
        assert a_times == sorted(a_times)

    def test_empty_streams_rejected(self):
        with pytest.raises(ConfigurationError):
            ClosedLoopRunner(lambda r, t: t).run([])

    def test_backwards_service_rejected(self):
        runner = ClosedLoopRunner(lambda req, at: at - 1.0)
        with pytest.raises(ConfigurationError):
            runner.run([[1]])


class TestSingleServerFastPath:
    def _compare(self, streams, **kwargs):
        """Heap and deque paths over one shared Resource must agree exactly."""
        results = []
        for single_server in (False, True):
            r = Resource()
            runner = ClosedLoopRunner(
                lambda req, at, r=r: r.acquire(at, req), single_server=single_server
            )
            results.append(runner.run([list(s) for s in streams], **kwargs))
        assert results[0] == results[1]
        return results[0]

    def test_matches_heap_equal_streams(self):
        finish = self._compare([[1.0] * 5, [1.0] * 5])
        assert max(finish) == pytest.approx(10.0)

    def test_matches_heap_ragged_streams(self):
        self._compare([[0.5, 2.0], [1.0], [0.25, 0.25, 3.0, 0.125]])

    def test_matches_heap_random_durations(self):
        import random

        rng = random.Random(7)
        streams = [
            [rng.uniform(0.01, 2.0) for _ in range(rng.randrange(1, 12))]
            for _ in range(6)
        ]
        self._compare(streams)

    def test_matches_heap_nonzero_start(self):
        self._compare([[1.0, 1.0], [2.0]], start_time=5.0)

    def test_single_client_auto_fast_path(self):
        # One client takes the deque path even without single_server=True,
        # and zero-duration services are fine there (no ordering to break).
        runner = ClosedLoopRunner(lambda req, at: at + req)
        assert runner.run([[0.0, 1.0, 0.0]]) == [1.0]

    def test_guard_rejects_nonmonotone_completions(self):
        # Two independent resources: completions interleave out of order.
        pool = ResourcePool(2)
        runner = ClosedLoopRunner(
            lambda req, at: pool[req[0]].acquire(at, req[1]), single_server=True
        )
        with pytest.raises(ConfigurationError):
            runner.run([[(0, 5.0), (0, 5.0)], [(1, 1.0), (1, 1.0), (1, 1.0)]])

    def test_guard_rejects_zero_duration_ties(self):
        r = Resource()
        runner = ClosedLoopRunner(
            lambda req, at: r.acquire(at, req), single_server=True
        )
        with pytest.raises(ConfigurationError):
            runner.run([[0.0, 0.0], [1.0]])

    def test_backwards_service_rejected_on_fast_path(self):
        runner = ClosedLoopRunner(lambda req, at: at - 1.0, single_server=True)
        with pytest.raises(ConfigurationError):
            runner.run([[1]])
