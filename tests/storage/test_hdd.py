"""Simulated hard-disk tests: seek curve, rotation, transfer, determinism."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.storage.hdd import HDDGeometry, SimulatedHDD


def make(seed=0, **kwargs):
    defaults = dict(capacity_bytes=1 << 30)
    defaults.update(kwargs)
    return SimulatedHDD(HDDGeometry(**defaults), seed=seed)


class TestGeometry:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HDDGeometry(track_to_track_seek_seconds=0.02, full_stroke_seek_seconds=0.01)
        with pytest.raises(ConfigurationError):
            HDDGeometry(bandwidth_bytes_per_second=0)
        with pytest.raises(ConfigurationError):
            HDDGeometry(rotation_seconds=0)

    def test_derived_quantities(self):
        g = HDDGeometry()
        assert g.seconds_per_byte == pytest.approx(1.0 / g.bandwidth_bytes_per_second)
        assert g.alpha == pytest.approx(g.seconds_per_byte / g.mean_setup_seconds)
        assert g.half_bandwidth_bytes == pytest.approx(
            g.mean_setup_seconds * g.bandwidth_bytes_per_second
        )

    def test_mean_setup_between_extremes(self):
        g = HDDGeometry()
        assert (
            g.track_to_track_seek_seconds + g.rotation_seconds / 2
            < g.mean_setup_seconds
            < g.full_stroke_seek_seconds + g.rotation_seconds
        )


class TestTiming:
    def test_sequential_io_pays_no_setup(self):
        hdd = make()
        hdd.read(0, 4096)
        t = hdd.read(4096, 4096)  # head is exactly there
        assert t == pytest.approx(4096 * hdd.geometry.seconds_per_byte)

    def test_sequential_detection_can_be_disabled(self):
        hdd = SimulatedHDD(HDDGeometry(capacity_bytes=1 << 30), seed=0,
                           sequential_detection=False)
        hdd.read(0, 4096)
        t = hdd.read(4096, 4096)
        assert t > 4096 * hdd.geometry.seconds_per_byte

    def test_random_io_pays_seek_and_rotation(self):
        hdd = make()
        t = hdd.read(512 << 20, 4096)
        g = hdd.geometry
        assert t >= g.track_to_track_seek_seconds + 4096 * g.seconds_per_byte

    def test_longer_seeks_cost_more_on_average(self):
        near, far = [], []
        for i in range(200):
            hdd = make(seed=i)
            hdd.read(0, 512)  # park head at ~0
            near.append(hdd.read(1 << 20, 4096))
            hdd2 = make(seed=i)
            hdd2.read(0, 512)
            far.append(hdd2.read(1000 << 20, 4096))
        assert np.mean(far) > np.mean(near)

    def test_transfer_linear_in_size(self):
        hdd = make()
        hdd.read(0, 512)
        t1 = hdd.read(512, 1 << 20)       # sequential: pure transfer
        t2_start = hdd.head_position
        t2 = hdd.read(t2_start, 2 << 20)  # sequential again
        assert t2 == pytest.approx(2 * t1, rel=1e-9)

    def test_mean_setup_matches_geometry(self):
        # Empirical intercept over many random reads ~ mean_setup_seconds.
        hdd = make(seed=42)
        rng = np.random.default_rng(7)
        times = []
        for _ in range(800):
            off = int(rng.integers(0, (1 << 30) - 4096))
            times.append(hdd.read(off, 4096))
        transfer = 4096 * hdd.geometry.seconds_per_byte
        mean_setup = np.mean(times) - transfer
        assert mean_setup == pytest.approx(hdd.geometry.mean_setup_seconds, rel=0.08)

    def test_writes_cost_like_reads(self):
        h1, h2 = make(seed=3), make(seed=3)
        t_r = h1.read(100 << 20, 8192)
        t_w = h2.write(100 << 20, 8192)
        assert t_r == pytest.approx(t_w)

    def test_deterministic_with_seed(self):
        def total(seed):
            hdd = make(seed=seed)
            rng = np.random.default_rng(0)
            return sum(
                hdd.read(int(rng.integers(0, 1 << 29)), 4096) for _ in range(50)
            )

        assert total(5) == total(5)
        assert total(5) != total(6)

    def test_reset_restores_rng_stream(self):
        hdd = make(seed=9)
        seq1 = [hdd.read(i * (1 << 20), 4096) for i in range(1, 20)]
        hdd.reset()
        seq2 = [hdd.read(i * (1 << 20), 4096) for i in range(1, 20)]
        assert seq1 == seq2


class TestReadBatch:
    def _serial_reference(self, offsets, nbytes, **kwargs):
        hdd = make(**kwargs)
        return hdd, [hdd.read(off, nbytes) for off in offsets]

    def test_bit_identical_to_serial_reads(self):
        rng = np.random.default_rng(3)
        offsets = [int(o) * 512 for o in rng.integers(0, (1 << 30) // 512 - 64, size=50)]
        ref_hdd, ref = self._serial_reference(offsets, 4096, seed=11)
        hdd = make(seed=11)
        batch = hdd.read_batch(offsets, 4096)
        assert batch == ref  # exact float equality, not approx
        assert hdd.clock == ref_hdd.clock
        assert hdd.head_position == ref_hdd.head_position
        assert vars(hdd.stats) == vars(ref_hdd.stats)

    def test_rng_stream_position_matches(self):
        # After a batch, further serial reads must see the same rotational
        # draws as if the batch had been issued serially.
        offsets = [512, 1 << 20, 4096, 2 << 20]
        ref_hdd, _ = self._serial_reference(offsets, 4096, seed=5)
        hdd = make(seed=5)
        hdd.read_batch(offsets, 4096)
        assert hdd.read(3 << 20, 8192) == ref_hdd.read(3 << 20, 8192)

    def test_sequential_runs_skip_rotation_draws(self):
        # Offsets forming a sequential run draw no rotation inside the run.
        start = 1 << 20
        offsets = [start, start + 4096, start + 8192, 1 << 24]
        ref_hdd, ref = self._serial_reference(offsets, 4096, seed=9)
        hdd = make(seed=9)
        assert hdd.read_batch(offsets, 4096) == ref
        assert ref[1] == pytest.approx(4096 / hdd.geometry.bandwidth_bytes_per_second)

    def test_empty_batch(self):
        hdd = make()
        assert hdd.read_batch([], 4096) == []
        assert hdd.stats.reads == 0

    def test_invalid_batch_charges_nothing(self):
        from repro.errors import InvalidIOError

        hdd = make()
        with pytest.raises(InvalidIOError):
            hdd.read_batch([0, hdd.capacity_bytes], 4096)
        assert hdd.stats.reads == 0 and hdd.clock == 0.0

    def test_trace_and_sampler_match_serial(self):
        offsets = [512, 1 << 20, 4096]
        ref_hdd = SimulatedHDD(HDDGeometry(capacity_bytes=1 << 30), seed=2, trace=True)
        ref_hdd.enable_sampling()
        for off in offsets:
            ref_hdd.read(off, 4096)
        hdd = SimulatedHDD(HDDGeometry(capacity_bytes=1 << 30), seed=2, trace=True)
        hdd.enable_sampling()
        hdd.read_batch(offsets, 4096)
        assert hdd.trace == ref_hdd.trace
        assert hdd.sampler.samples() == ref_hdd.sampler.samples()


def test_describe_identifies_timing_behavior():
    a, b = make(seed=1), make(seed=1)
    assert a.describe() == b.describe()
    assert make(seed=2).describe() != a.describe()
    assert make(seed=1, bandwidth_bytes_per_second=99e6).describe() != a.describe()
    assert a.describe()["type"] == "SimulatedHDD"
