"""StorageStack integration tests."""

import pytest

from repro.errors import CacheError, ConfigurationError
from repro.storage.ram import ConstantLatencyDevice
from repro.storage.stack import StorageStack


def make(cache_bytes=1000, latency=1.0):
    dev = ConstantLatencyDevice(latency, capacity_bytes=1 << 20)
    return StorageStack(dev, cache_bytes, alignment=1), dev


class TestLifecycle:
    def test_create_get_destroy(self):
        stack, dev = make()
        stack.create("n1", {"k": 1}, 100)
        assert stack.get("n1") == {"k": 1}
        stack.destroy("n1")
        with pytest.raises(CacheError):
            stack.get("n1")

    def test_destroy_releases_extent(self):
        stack, _ = make()
        stack.create("n1", "x", 100)
        used = stack.allocator.used_bytes
        stack.destroy("n1")
        assert stack.allocator.used_bytes == used - 100

    def test_io_seconds_accumulates(self):
        stack, dev = make(cache_bytes=150)
        stack.create("a", "a", 100)
        stack.create("b", "b", 100)  # evicts dirty a -> 1 write
        stack.get("a")               # miss -> 1 read, then evicts dirty b -> 1 write
        assert stack.io_seconds == pytest.approx(3.0)

    def test_bad_cache_size(self):
        dev = ConstantLatencyDevice(0.0)
        with pytest.raises(ConfigurationError):
            StorageStack(dev, 0)


class TestDirtyAndFlush:
    def test_mark_dirty_resident(self):
        stack, dev = make()
        stack.create("a", "a", 100)
        stack.flush()
        stack.mark_dirty("a")
        stack.flush()
        assert dev.stats.writes == 2

    def test_mark_dirty_refetches_evicted_node(self):
        stack, dev = make(cache_bytes=150)
        stack.create("a", "a", 100)
        stack.flush()
        stack.create("b", "b", 100)  # evicts a (clean now)
        reads_before = dev.stats.reads
        stack.mark_dirty("a")        # must re-read a first
        assert dev.stats.reads == reads_before + 1
        stack.flush()

    def test_drop_cache_starts_cold(self):
        stack, dev = make()
        stack.create("a", "a", 100)
        stack.drop_cache()
        reads = dev.stats.reads
        stack.get("a")
        assert dev.stats.reads == reads + 1

    def test_cache_bytes_property(self):
        stack, _ = make(cache_bytes=777)
        assert stack.cache_bytes == 777


class TestDropCacheStats:
    def test_drop_cache_keeps_stats_by_default(self):
        stack, _ = make()
        stack.create("a", "a", 100)
        stack.get("a")
        hits = stack.cache.stats.hits
        assert hits > 0
        stack.drop_cache()
        assert stack.cache.stats.hits == hits

    def test_drop_cache_can_reset_stats(self):
        stack, _ = make()
        stack.create("a", "a", 100)
        stack.get("a")
        stack.drop_cache(reset_stats=True)
        assert stack.cache.stats.hits == 0
        assert stack.cache.stats.accesses == 0


class TestStackResilience:
    def test_bare_device_gets_wrapped(self):
        from repro.faults import FaultyDevice, ResiliencePolicy
        from repro.storage.ram import NullDevice

        stack = StorageStack(
            NullDevice(), cache_bytes=1 << 20, resilience=ResiliencePolicy.retry()
        )
        assert isinstance(stack.device, FaultyDevice)
        assert stack.device.policy.name == "retry"
        assert not stack.device.plan.injects_anything  # zero plan

    def test_existing_faulty_device_adopts_policy(self):
        from repro.faults import FaultPlan, FaultyDevice, ResiliencePolicy
        from repro.storage.ram import NullDevice

        dev = FaultyDevice(NullDevice(), FaultPlan(seed=2, error_prob=0.5))
        stack = StorageStack(
            dev, cache_bytes=1 << 20, resilience=ResiliencePolicy.hedged(1e-3)
        )
        assert stack.device is dev  # not re-wrapped
        assert dev.policy.hedge_enabled
        assert dev.plan.error_prob == 0.5  # plan untouched

    def test_no_resilience_touches_nothing(self):
        from repro.storage.ram import NullDevice

        dev = NullDevice()
        stack = StorageStack(dev, cache_bytes=1 << 20)
        assert stack.device is dev


class TestReadMany:
    """Satellite contract: read_many == a loop of get, bit for bit.

    On position-independent devices (constant-latency, affine without
    sequential detection) the batched path must reproduce the serial
    loop's results, IO seconds, and hit/miss accounting exactly — batching
    is an IO *schedule* change, never a semantic one.
    """

    def _affine_stack(self, cache_bytes):
        from repro.models.affine import AffineModel
        from repro.storage.ideal import AffineDevice

        dev = AffineDevice(AffineModel(1e-6, setup_seconds=1e-3))
        return StorageStack(dev, cache_bytes, alignment=1), dev

    def _populate(self, stack, n=24, nbytes=100):
        for i in range(n):
            # Mixed sizes: runs must split when the size changes.
            stack.create(i, f"obj{i}", nbytes if i % 3 else 2 * nbytes)
        stack.flush()
        stack.drop_cache()

    def test_matches_serial_loop(self):
        ids = [0, 5, 3, 5, 7, 1, 2, 2, 9, 11]
        a, _ = self._affine_stack(cache_bytes=10_000)
        self._populate(a)
        serial = [a.get(i) for i in ids]
        serial_io = a.io_seconds
        serial_stats = (a.cache.stats.hits, a.cache.stats.misses)

        b, _ = self._affine_stack(cache_bytes=10_000)
        self._populate(b)
        batched = b.read_many(ids)
        assert batched == serial
        assert b.io_seconds == pytest.approx(serial_io)
        assert (b.cache.stats.hits, b.cache.stats.misses) == serial_stats

    def test_matches_under_eviction_pressure(self):
        # Cache far smaller than the batch: get_many must evict mid-batch
        # exactly as the serial loop would.
        ids = list(range(24)) + [0, 1, 2]
        a, _ = self._affine_stack(cache_bytes=450)
        self._populate(a)
        serial = [a.get(i) for i in ids]
        serial_io = a.io_seconds

        b, _ = self._affine_stack(cache_bytes=450)
        self._populate(b)
        assert b.read_many(ids) == serial
        assert b.io_seconds == pytest.approx(serial_io)

    def test_duplicate_ids_count_like_serial(self):
        # Second touch of an id within one batch is a hit, as in the loop.
        a, _ = self._affine_stack(cache_bytes=10_000)
        self._populate(a, n=4)
        a.read_many([0, 0, 1, 1])
        assert a.cache.stats.hits == 2
        assert a.cache.stats.misses == 2

    def test_empty_and_unknown(self):
        stack, _ = make()
        assert stack.read_many([]) == []
        with pytest.raises(CacheError):
            stack.read_many(["ghost"])

    def test_all_resident_no_io(self):
        stack, dev = make(cache_bytes=1000)
        stack.create("a", 1, 100)
        stack.create("b", 2, 100)
        before = stack.io_seconds
        assert stack.read_many(["a", "b", "a"]) == [1, 2, 1]
        assert stack.io_seconds == before
