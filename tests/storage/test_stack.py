"""StorageStack integration tests."""

import pytest

from repro.errors import CacheError, ConfigurationError
from repro.storage.ram import ConstantLatencyDevice
from repro.storage.stack import StorageStack


def make(cache_bytes=1000, latency=1.0):
    dev = ConstantLatencyDevice(latency, capacity_bytes=1 << 20)
    return StorageStack(dev, cache_bytes, alignment=1), dev


class TestLifecycle:
    def test_create_get_destroy(self):
        stack, dev = make()
        stack.create("n1", {"k": 1}, 100)
        assert stack.get("n1") == {"k": 1}
        stack.destroy("n1")
        with pytest.raises(CacheError):
            stack.get("n1")

    def test_destroy_releases_extent(self):
        stack, _ = make()
        stack.create("n1", "x", 100)
        used = stack.allocator.used_bytes
        stack.destroy("n1")
        assert stack.allocator.used_bytes == used - 100

    def test_io_seconds_accumulates(self):
        stack, dev = make(cache_bytes=150)
        stack.create("a", "a", 100)
        stack.create("b", "b", 100)  # evicts dirty a -> 1 write
        stack.get("a")               # miss -> 1 read, then evicts dirty b -> 1 write
        assert stack.io_seconds == pytest.approx(3.0)

    def test_bad_cache_size(self):
        dev = ConstantLatencyDevice(0.0)
        with pytest.raises(ConfigurationError):
            StorageStack(dev, 0)


class TestDirtyAndFlush:
    def test_mark_dirty_resident(self):
        stack, dev = make()
        stack.create("a", "a", 100)
        stack.flush()
        stack.mark_dirty("a")
        stack.flush()
        assert dev.stats.writes == 2

    def test_mark_dirty_refetches_evicted_node(self):
        stack, dev = make(cache_bytes=150)
        stack.create("a", "a", 100)
        stack.flush()
        stack.create("b", "b", 100)  # evicts a (clean now)
        reads_before = dev.stats.reads
        stack.mark_dirty("a")        # must re-read a first
        assert dev.stats.reads == reads_before + 1
        stack.flush()

    def test_drop_cache_starts_cold(self):
        stack, dev = make()
        stack.create("a", "a", 100)
        stack.drop_cache()
        reads = dev.stats.reads
        stack.get("a")
        assert dev.stats.reads == reads + 1

    def test_cache_bytes_property(self):
        stack, _ = make(cache_bytes=777)
        assert stack.cache_bytes == 777


class TestDropCacheStats:
    def test_drop_cache_keeps_stats_by_default(self):
        stack, _ = make()
        stack.create("a", "a", 100)
        stack.get("a")
        hits = stack.cache.stats.hits
        assert hits > 0
        stack.drop_cache()
        assert stack.cache.stats.hits == hits

    def test_drop_cache_can_reset_stats(self):
        stack, _ = make()
        stack.create("a", "a", 100)
        stack.get("a")
        stack.drop_cache(reset_stats=True)
        assert stack.cache.stats.hits == 0
        assert stack.cache.stats.accesses == 0


class TestStackResilience:
    def test_bare_device_gets_wrapped(self):
        from repro.faults import FaultyDevice, ResiliencePolicy
        from repro.storage.ram import NullDevice

        stack = StorageStack(
            NullDevice(), cache_bytes=1 << 20, resilience=ResiliencePolicy.retry()
        )
        assert isinstance(stack.device, FaultyDevice)
        assert stack.device.policy.name == "retry"
        assert not stack.device.plan.injects_anything  # zero plan

    def test_existing_faulty_device_adopts_policy(self):
        from repro.faults import FaultPlan, FaultyDevice, ResiliencePolicy
        from repro.storage.ram import NullDevice

        dev = FaultyDevice(NullDevice(), FaultPlan(seed=2, error_prob=0.5))
        stack = StorageStack(
            dev, cache_bytes=1 << 20, resilience=ResiliencePolicy.hedged(1e-3)
        )
        assert stack.device is dev  # not re-wrapped
        assert dev.policy.hedge_enabled
        assert dev.plan.error_prob == 0.5  # plan untouched

    def test_no_resilience_touches_nothing(self):
        from repro.storage.ram import NullDevice

        dev = NullDevice()
        stack = StorageStack(dev, cache_bytes=1 << 20)
        assert stack.device is dev
