"""Buffer-cache tests: LRU, dirty write-back, pinning, accounting."""

import pytest

from repro.errors import CacheError, ConfigurationError
from repro.storage.cache import BufferCache
from repro.storage.ram import ConstantLatencyDevice


def make(capacity=1000, latency=1.0):
    dev = ConstantLatencyDevice(latency, capacity_bytes=1 << 20)
    return BufferCache(dev, capacity), dev


class TestBasics:
    def test_insert_and_get_hit(self):
        cache, dev = make()
        cache.insert("a", {"x": 1}, offset=0, nbytes=100)
        assert cache.get("a") == {"x": 1}
        assert cache.stats.hits == 1 and cache.stats.misses == 0
        assert dev.stats.reads == 0

    def test_unknown_id_rejected(self):
        cache, _ = make()
        with pytest.raises(CacheError):
            cache.get("nope")

    def test_duplicate_insert_rejected(self):
        cache, _ = make()
        cache.insert("a", 1, 0, 10)
        with pytest.raises(CacheError):
            cache.insert("a", 2, 0, 10)

    def test_bad_capacity(self):
        dev = ConstantLatencyDevice(0.0)
        with pytest.raises(ConfigurationError):
            BufferCache(dev, 0)


class TestEviction:
    def test_lru_order(self):
        cache, dev = make(capacity=250)
        for name in "abc":
            cache.insert(name, name, 0, 100)  # c's insert evicts a
        assert not cache.contains("a")
        assert cache.contains("b") and cache.contains("c")

    def test_access_refreshes_lru(self):
        cache, _ = make(capacity=250)
        cache.insert("a", "a", 0, 100)
        cache.insert("b", "b", 100, 100)
        cache.get("a")                       # a is now MRU
        cache.insert("c", "c", 200, 100)     # evicts b
        assert cache.contains("a") and not cache.contains("b")

    def test_clean_eviction_free(self):
        cache, dev = make(capacity=250)
        cache.insert("a", "a", 0, 100, dirty=False)
        cache.insert("b", "b", 100, 100, dirty=False)
        cache.insert("c", "c", 200, 100, dirty=False)
        assert dev.stats.writes == 0

    def test_dirty_eviction_writes_back(self):
        cache, dev = make(capacity=250)
        cache.insert("a", "a", 0, 100, dirty=True)
        cache.insert("b", "b", 100, 100, dirty=False)
        cache.insert("c", "c", 200, 100, dirty=False)
        assert dev.stats.writes == 1
        assert dev.stats.bytes_written == 100
        assert cache.stats.dirty_evictions == 1

    def test_miss_rereads_from_device(self):
        cache, dev = make(capacity=250)
        cache.insert("a", "va", 0, 100, dirty=False)
        cache.insert("b", "vb", 100, 100, dirty=False)
        cache.insert("c", "vc", 200, 100, dirty=False)  # evicts a
        assert cache.get("a") == "va"                   # read back
        assert dev.stats.reads == 1
        assert cache.stats.misses == 1

    def test_single_oversized_entry_held(self):
        cache, _ = make(capacity=50)
        cache.insert("big", "x", 0, 500)
        assert cache.contains("big")  # at least one entry always resident


class TestDirtyAndExtents:
    def test_mark_dirty_then_evict_writes(self):
        cache, dev = make(capacity=250)
        cache.insert("a", "a", 0, 100, dirty=False)
        cache.mark_dirty("a")
        cache.insert("b", "b", 100, 100, dirty=False)
        cache.insert("c", "c", 200, 100, dirty=False)
        assert dev.stats.writes == 1

    def test_mark_dirty_nonresident_rejected(self):
        cache, _ = make()
        with pytest.raises(CacheError):
            cache.mark_dirty("ghost")

    def test_mark_clean(self):
        cache, dev = make(capacity=250)
        cache.insert("a", "a", 0, 100, dirty=True)
        cache.mark_clean("a")
        cache.insert("b", "b", 100, 100)
        cache.insert("c", "c", 200, 100)
        assert dev.stats.writes == 0 or dev.stats.bytes_written < 300

    def test_update_extent(self):
        cache, _ = make()
        cache.insert("a", "a", 0, 100)
        cache.update_extent("a", 500, 300)
        assert cache.extent_of("a") == (500, 300)
        assert cache.cached_bytes == 300

    def test_extent_of_on_disk(self):
        cache, _ = make(capacity=150)
        cache.insert("a", "a", 0, 100, dirty=False)
        cache.insert("b", "b", 100, 100, dirty=False)  # evicts a
        assert cache.extent_of("a") == (0, 100)

    def test_admit_no_charge(self):
        cache, dev = make()
        cache.admit("a", "va", 0, 100, dirty=False)
        assert cache.contains("a")
        assert dev.stats.reads == 0
        cache.admit("a", "va2", 0, 200, dirty=True)  # refresh in place
        assert cache.get("a") == "va2"
        assert cache.cached_bytes == 200

    def test_flush_writes_all_dirty(self):
        cache, dev = make()
        cache.insert("a", "a", 0, 100, dirty=True)
        cache.insert("b", "b", 100, 150, dirty=True)
        cache.insert("c", "c", 250, 100, dirty=False)
        spent = cache.flush()
        assert dev.stats.writes == 2
        assert spent == pytest.approx(2.0)
        # Second flush is a no-op.
        assert cache.flush() == 0.0

    def test_drop_clean_empties_cache(self):
        cache, dev = make()
        cache.insert("a", "a", 0, 100, dirty=True)
        cache.drop_clean()
        assert len(cache) == 0
        assert dev.stats.writes == 1  # dirty write-back on the way out
        assert cache.get("a") == "a"  # still reachable from disk


class TestPinning:
    def test_pinned_survives_pressure(self):
        cache, _ = make(capacity=250)
        cache.insert("a", "a", 0, 100)
        cache.pin("a")
        cache.insert("b", "b", 100, 100)
        cache.insert("c", "c", 200, 100)
        assert cache.contains("a")
        cache.unpin("a")

    def test_unpin_unpinned_rejected(self):
        cache, _ = make()
        cache.insert("a", "a", 0, 100)
        with pytest.raises(CacheError):
            cache.unpin("a")

    def test_all_pinned_over_budget_raises(self):
        cache, _ = make(capacity=200)
        cache.insert("a", "a", 0, 100)
        cache.pin("a")
        cache.insert("b", "b", 100, 90)
        cache.pin("b")
        # Growing a pinned entry pushes the cache over budget with every
        # entry pinned: no victim exists.
        with pytest.raises(CacheError):
            cache.update_extent("b", 100, 150)


class TestDelete:
    def test_delete_resident_no_write(self):
        cache, dev = make()
        cache.insert("a", "a", 0, 100, dirty=True)
        cache.delete("a")
        assert dev.stats.writes == 0
        with pytest.raises(CacheError):
            cache.get("a")

    def test_delete_on_disk(self):
        cache, _ = make(capacity=150)
        cache.insert("a", "a", 0, 100, dirty=False)
        cache.insert("b", "b", 100, 100, dirty=False)
        cache.delete("a")
        with pytest.raises(CacheError):
            cache.extent_of("a")

    def test_delete_unknown_rejected(self):
        cache, _ = make()
        with pytest.raises(CacheError):
            cache.delete("ghost")


class TestAccounting:
    def test_hit_rate(self):
        cache, _ = make()
        cache.insert("a", "a", 0, 100)
        cache.get("a")
        cache.get("a")
        assert cache.stats.hit_rate == 1.0
        assert cache.stats.accesses == 2

    def test_invariants_hold_through_churn(self):
        cache, _ = make(capacity=350)
        import numpy as np

        rng = np.random.default_rng(0)
        cache.insert(0, "v0", 0, 100)
        known = {0}
        for i in range(1, 200):
            op = rng.integers(0, 3)
            if op == 0:
                cache.insert(i, f"v{i}", i * 100, int(rng.integers(50, 150)))
                known.add(i)
            elif op == 1 and known:
                cache.get(int(rng.choice(list(known))))
            elif op == 2 and known and cache.contains(next(iter(known))):
                target = next(iter(known))
                cache.mark_dirty(target) if cache.contains(target) else None
            cache.check_invariants()


class TestStatsReset:
    def test_reset_zeroes_counters_only(self):
        cache, _ = make(capacity=150)
        cache.insert("a", "a", 0, 100, dirty=False)
        cache.get("a")
        cache.insert("b", "b", 100, 100, dirty=False)  # evicts a
        assert cache.stats.accesses > 0
        cache.stats.reset()
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0
        assert cache.stats.evictions == 0
        assert cache.stats.dirty_evictions == 0
        assert cache.stats.accesses == 0
        # cache contents survive a stats reset
        assert cache.contains("b")
        cache.get("b")
        assert cache.stats.hits == 1
