"""BlockDevice base-class behaviour (validation, stats, tracing)."""

import pytest

from repro.errors import InvalidIOError
from repro.storage.ram import ConstantLatencyDevice, NullDevice


class TestValidation:
    def test_zero_length_rejected(self):
        with pytest.raises(InvalidIOError):
            NullDevice().read(0, 0)

    def test_negative_offset_rejected(self):
        with pytest.raises(InvalidIOError):
            NullDevice().read(-1, 10)

    def test_past_capacity_rejected(self):
        dev = NullDevice(capacity_bytes=100)
        with pytest.raises(InvalidIOError):
            dev.write(90, 20)

    def test_capacity_boundary_ok(self):
        dev = NullDevice(capacity_bytes=100)
        dev.write(90, 10)  # exactly to the end

    def test_bad_capacity_rejected(self):
        with pytest.raises(InvalidIOError):
            NullDevice(capacity_bytes=0)


class TestStats:
    def test_counters(self):
        dev = ConstantLatencyDevice(0.5)
        dev.read(0, 100)
        dev.read(100, 200)
        dev.write(0, 50)
        s = dev.stats
        assert s.reads == 2 and s.writes == 1
        assert s.bytes_read == 300 and s.bytes_written == 50
        assert s.ios == 3 and s.total_bytes == 350
        assert s.busy_seconds == pytest.approx(1.5)
        assert s.read_seconds == pytest.approx(1.0)

    def test_clock_advances(self):
        dev = ConstantLatencyDevice(0.25)
        dev.read(0, 1)
        dev.write(0, 1)
        assert dev.clock == pytest.approx(0.5)

    def test_write_amplification(self):
        dev = ConstantLatencyDevice(0.0)
        dev.write(0, 1000)
        assert dev.stats.write_amplification(100) == 10.0

    def test_write_amplification_needs_user_bytes(self):
        with pytest.raises(InvalidIOError):
            NullDevice().stats.write_amplification(0)

    def test_snapshot_delta(self):
        dev = ConstantLatencyDevice(1.0)
        dev.read(0, 10)
        snap = dev.stats.snapshot()
        dev.write(0, 20)
        delta = dev.stats.delta(snap)
        assert delta.reads == 0 and delta.writes == 1
        assert delta.bytes_written == 20
        assert delta.busy_seconds == pytest.approx(1.0)

    def test_reset(self):
        dev = ConstantLatencyDevice(1.0)
        dev.read(0, 10)
        dev.reset()
        assert dev.stats.ios == 0 and dev.clock == 0.0


class TestTrace:
    def test_trace_disabled_by_default(self):
        dev = NullDevice()
        dev.read(0, 10)
        assert dev.trace == []

    def test_trace_records(self):
        dev = ConstantLatencyDevice(2.0, trace=True)
        dev.read(0, 10)
        dev.write(100, 20)
        assert len(dev.trace) == 2
        r, w = dev.trace
        assert r.kind == "read" and r.offset == 0 and r.nbytes == 10
        assert r.duration == pytest.approx(2.0)
        assert w.kind == "write" and w.start == pytest.approx(2.0)


class TestIOSampler:
    def test_sampling_off_by_default(self):
        dev = ConstantLatencyDevice(1.0)
        dev.read(0, 10)
        assert dev.sampler is None

    def test_enable_records_reads_and_writes(self):
        dev = ConstantLatencyDevice(1.0)
        sampler = dev.enable_sampling()
        dev.read(0, 10)
        dev.write(100, 20)
        assert len(sampler) == 2
        r, w = sampler.samples()
        assert r.kind == "read" and r.nbytes == 10 and r.seconds == pytest.approx(1.0)
        assert w.kind == "write" and w.nbytes == 20

    def test_kind_filter(self):
        dev = ConstantLatencyDevice(1.0)
        sampler = dev.enable_sampling()
        dev.read(0, 10)
        dev.write(0, 20)
        assert [s.kind for s in sampler.samples(kind="read")] == ["read"]

    def test_ring_buffer_caps_capacity(self):
        dev = ConstantLatencyDevice(0.0)
        sampler = dev.enable_sampling(capacity=4)
        for i in range(10):
            dev.read(0, i + 1)
        assert len(sampler) == 4
        # Oldest samples fell out; the newest four remain.
        assert [s.nbytes for s in sampler.samples()] == [7, 8, 9, 10]

    def test_disable_stops_recording(self):
        dev = ConstantLatencyDevice(0.0)
        dev.enable_sampling()
        dev.read(0, 10)
        dev.disable_sampling()
        dev.read(0, 10)
        assert dev.sampler is None

    def test_reset_clears_samples(self):
        dev = ConstantLatencyDevice(0.0)
        sampler = dev.enable_sampling()
        dev.read(0, 10)
        dev.reset()
        assert len(sampler) == 0
