"""BlockDevice base-class behaviour (validation, stats, tracing)."""

import pytest

from repro.errors import InvalidIOError
from repro.storage.ram import ConstantLatencyDevice, NullDevice


class TestValidation:
    def test_zero_length_rejected(self):
        with pytest.raises(InvalidIOError):
            NullDevice().read(0, 0)

    def test_negative_offset_rejected(self):
        with pytest.raises(InvalidIOError):
            NullDevice().read(-1, 10)

    def test_past_capacity_rejected(self):
        dev = NullDevice(capacity_bytes=100)
        with pytest.raises(InvalidIOError):
            dev.write(90, 20)

    def test_capacity_boundary_ok(self):
        dev = NullDevice(capacity_bytes=100)
        dev.write(90, 10)  # exactly to the end

    def test_bad_capacity_rejected(self):
        with pytest.raises(InvalidIOError):
            NullDevice(capacity_bytes=0)


class TestStats:
    def test_counters(self):
        dev = ConstantLatencyDevice(0.5)
        dev.read(0, 100)
        dev.read(100, 200)
        dev.write(0, 50)
        s = dev.stats
        assert s.reads == 2 and s.writes == 1
        assert s.bytes_read == 300 and s.bytes_written == 50
        assert s.ios == 3 and s.total_bytes == 350
        assert s.busy_seconds == pytest.approx(1.5)
        assert s.read_seconds == pytest.approx(1.0)

    def test_clock_advances(self):
        dev = ConstantLatencyDevice(0.25)
        dev.read(0, 1)
        dev.write(0, 1)
        assert dev.clock == pytest.approx(0.5)

    def test_write_amplification(self):
        dev = ConstantLatencyDevice(0.0)
        dev.write(0, 1000)
        assert dev.stats.write_amplification(100) == 10.0

    def test_write_amplification_needs_user_bytes(self):
        with pytest.raises(InvalidIOError):
            NullDevice().stats.write_amplification(0)

    def test_snapshot_delta(self):
        dev = ConstantLatencyDevice(1.0)
        dev.read(0, 10)
        snap = dev.stats.snapshot()
        dev.write(0, 20)
        delta = dev.stats.delta(snap)
        assert delta.reads == 0 and delta.writes == 1
        assert delta.bytes_written == 20
        assert delta.busy_seconds == pytest.approx(1.0)

    def test_reset(self):
        dev = ConstantLatencyDevice(1.0)
        dev.read(0, 10)
        dev.reset()
        assert dev.stats.ios == 0 and dev.clock == 0.0


class TestTrace:
    def test_trace_disabled_by_default(self):
        dev = NullDevice()
        dev.read(0, 10)
        assert dev.trace == []

    def test_trace_records(self):
        dev = ConstantLatencyDevice(2.0, trace=True)
        dev.read(0, 10)
        dev.write(100, 20)
        assert len(dev.trace) == 2
        r, w = dev.trace
        assert r.kind == "read" and r.offset == 0 and r.nbytes == 10
        assert r.duration == pytest.approx(2.0)
        assert w.kind == "write" and w.start == pytest.approx(2.0)
