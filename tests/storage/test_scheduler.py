"""PDAM read-ahead scheduler tests (the Section 8 strategy)."""

import pytest

from repro.errors import ConfigurationError, InvalidIOError
from repro.models.pdam import PDAMModel
from repro.storage.ideal import PDAMDevice
from repro.storage.scheduler import ReadAheadScheduler


def make(P=4, expand=True):
    dev = PDAMDevice(PDAMModel(parallelism=P, block_bytes=4096), capacity_bytes=1 << 24)
    return ReadAheadScheduler(dev, expand_readahead=expand), dev


class TestBasics:
    def test_step_without_demands_rejected(self):
        sched, _ = make()
        with pytest.raises(ConfigurationError):
            sched.step()

    def test_negative_block_rejected(self):
        sched, _ = make()
        with pytest.raises(ConfigurationError):
            sched.submit("c", -1)

    def test_single_demand_single_step(self):
        sched, dev = make()
        sched.submit("c", 10)
        served = sched.step()
        assert 10 in served["c"]
        assert dev.steps_elapsed == 1
        assert sched.pending == 0


class TestReadAhead:
    def test_lone_client_gets_full_expansion(self):
        # "the system expands that to P blocks, effectively loading the
        # entire node into cache."
        sched, dev = make(P=4)
        sched.submit("c", 10)
        served = sched.step()
        assert served["c"] == [10, 11, 12, 13]
        assert dev.slots_wasted == 0

    def test_two_clients_split_expansion(self):
        # "two one-block IO requests, which it will expand into two runs of
        # P/2 blocks each."
        sched, _ = make(P=4)
        sched.submit("a", 10)
        sched.submit("b", 50)
        served = sched.step()
        assert served["a"] == [10, 11]
        assert served["b"] == [50, 51]

    def test_uneven_split(self):
        sched, _ = make(P=4)
        for name, blk in (("a", 0), ("b", 100), ("c", 200)):
            sched.submit(name, blk)
        served = sched.step()
        total = sum(len(b) for b in served.values())
        assert total == 4
        # Round-robin: exactly one client got one extra block.
        lengths = sorted(len(b) for b in served.values())
        assert lengths == [1, 1, 2]

    def test_expansion_stops_at_device_end(self):
        sched, dev = make(P=4)
        last_block = dev.capacity_bytes // dev.block_bytes - 1
        sched.submit("c", last_block)
        served = sched.step()
        assert served["c"] == [last_block]

    def test_no_expansion_when_disabled(self):
        sched, dev = make(P=4, expand=False)
        sched.submit("c", 10)
        served = sched.step()
        assert served["c"] == [10]
        assert dev.slots_wasted == 3


class TestOversubscription:
    def test_fifo_when_clients_exceed_p(self):
        sched, _ = make(P=2)
        for i in range(5):
            sched.submit(f"c{i}", i * 10)
        first = sched.step()
        assert set(first) == {"c0", "c1"}
        second = sched.step()
        assert set(second) == {"c2", "c3"}
        assert sched.pending == 1

    def test_steps_counter(self):
        sched, _ = make(P=1)
        for i in range(3):
            sched.submit("c", i)
        while sched.pending:
            sched.step()
        assert sched.steps == 3


class TestExpansionDedup:
    def test_adjacent_demands_no_duplicate_fetch(self):
        # Regression: with demands at blocks 0 and 1, client 0's read-ahead
        # run starts at block 1 — which this very step already fetches as
        # client 1's demand.  The expansion must skip past it instead of
        # burning a parallel slot on a duplicate.
        sched, dev = make(P=4)
        sched.submit("a", 0)
        sched.submit("b", 1)
        served = sched.step()
        blocks = [blk for fetched in served.values() for blk in fetched]
        assert len(blocks) == len(set(blocks)), f"duplicate fetch in {served}"
        assert len(blocks) == 4  # every slot used, all on distinct blocks
        assert dev.slots_wasted == 0

    def test_interleaved_runs_stay_disjoint(self):
        # Three adjacent demands with P=8: every expansion run starts inside
        # another client's territory and must leapfrog it.
        sched, _ = make(P=8)
        for name, blk in (("a", 0), ("b", 1), ("c", 2)):
            sched.submit(name, blk)
        served = sched.step()
        blocks = [blk for fetched in served.values() for blk in fetched]
        assert sorted(blocks) == list(range(8))

    def test_dedup_preserves_far_apart_behaviour(self):
        # Far-apart demands are unaffected by the dedup logic.
        sched, _ = make(P=4)
        sched.submit("a", 10)
        sched.submit("b", 50)
        served = sched.step()
        assert served["a"] == [10, 11]
        assert served["b"] == [50, 51]


class TestAgainstNaive:
    def test_readahead_never_slower(self):
        # With k=1, read-ahead turns 4 dependent fetches of consecutive
        # blocks into 1 step instead of 4.
        sched, dev = make(P=4)
        blocks = [100, 101, 102, 103]
        got: set[int] = set()
        i = 0
        while i < len(blocks):
            sched.submit("c", blocks[i])
            got.update(sched.step()["c"])
            while i < len(blocks) and blocks[i] in got:
                i += 1
        assert dev.steps_elapsed == 1

        sched2, dev2 = make(P=4, expand=False)
        for b in blocks:
            sched2.submit("c", b)
            sched2.step()
        assert dev2.steps_elapsed == 4
