"""Scalar-vs-batched byte-identity across every device model.

The batched IO contract (docs/architecture.md): ``read_batch`` /
``write_batch`` are *semantically invisible* — clock, stats, trace,
sampler, and RNG stream position must match a serial loop of ``read`` /
``write`` bit for bit.  These tests enforce that with exact float
equality (no ``approx``) on every device the experiments use, plus the
fault wrapper in both its transparent and perturbed configurations, and
with observability both off and on.
"""

import pytest

from repro.errors import InvalidIOError
from repro.faults.device import FaultyDevice
from repro.faults.plan import FaultPlan
from repro.faults.policy import ResiliencePolicy
from repro.models.affine import AffineModel
from repro.models.pdam import PDAMModel
from repro.obs import OBS
from repro.storage.device import ReadRequest
from repro.storage.engine import ClosedLoopRunner, ResourcePool
from repro.storage.hdd import HDDGeometry, SimulatedHDD
from repro.storage.ideal import AffineDevice, PDAMDevice
from repro.storage.ram import ConstantLatencyDevice
from repro.storage.ssd import SimulatedSSD, SSDGeometry

OFFSETS = [512, 1 << 20, 4096, 2 << 20, 4096 + 65536, 1 << 24]
NBYTES = 4096


def affine():
    return AffineDevice(
        AffineModel(alpha=2.5e-6, setup_seconds=0.004),
        capacity_bytes=1 << 30,
        sequential_detection=True,
        write_multiplier=2.5,
    )


def pdam():
    return PDAMDevice(
        PDAMModel(block_bytes=4096, parallelism=4, step_seconds=1e-4),
        capacity_bytes=1 << 30,
    )


def hdd(seed=3):
    return SimulatedHDD(HDDGeometry(capacity_bytes=1 << 30), seed=seed)


def ssd():
    return SimulatedSSD(SSDGeometry(capacity_bytes=1 << 30))


def faulty_transparent():
    return FaultyDevice(hdd(seed=7), FaultPlan(seed=11))


def faulty_perturbed():
    return FaultyDevice(
        hdd(seed=7),
        FaultPlan(seed=11, spike_prob=0.5, spike_seconds=0.01, error_prob=0.2),
        policy=ResiliencePolicy.retry(max_retries=4, timeout_seconds=10.0),
    )


DEVICES = {
    "constant": lambda: ConstantLatencyDevice(0.002, capacity_bytes=1 << 30),
    "affine": affine,
    "pdam": pdam,
    "hdd": hdd,
    "ssd": ssd,
    "faulty-transparent": faulty_transparent,
    "faulty-perturbed": faulty_perturbed,
}


def _state(dev):
    """Everything a batch must leave bit-identical to the serial loop."""
    state = {"clock": dev.clock, "stats": vars(dev.stats).copy()}
    if isinstance(dev, SimulatedHDD):
        state["head"] = dev.head_position
        # One more draw exposes any RNG stream divergence.
        state["next_draw"] = float(dev._rng.random())
    if isinstance(dev, PDAMDevice):
        state["steps"] = dev.steps_elapsed
        state["slots"] = (dev.slots_used, dev.slots_wasted)
    if isinstance(dev, SimulatedSSD):
        state["dies"] = dev._dies.available_at_array.tolist()
        state["channels"] = dev._channels.available_at_array.tolist()
    if isinstance(dev, FaultyDevice):
        state["inner"] = _state(dev.inner)
        state["faults"] = vars(dev.fault_stats).copy()
    return state


@pytest.mark.parametrize("name", DEVICES)
@pytest.mark.parametrize("direction", ["read", "write"])
def test_batch_identical_to_serial_loop(name, direction):
    ref, dev = DEVICES[name](), DEVICES[name]()
    op = getattr(ref, direction)
    expected = [op(off, NBYTES) for off in OFFSETS]
    got = getattr(dev, f"{direction}_batch")(OFFSETS, NBYTES)
    assert got == expected  # exact float equality, not approx
    assert _state(dev) == _state(ref)


@pytest.mark.parametrize("name", DEVICES)
def test_batch_identical_under_observability(name, monkeypatch):
    monkeypatch.setattr(OBS, "enabled", True)
    ref, dev = DEVICES[name](), DEVICES[name]()
    expected = [ref.read(off, NBYTES) for off in OFFSETS]
    assert dev.read_batch(OFFSETS, NBYTES) == expected
    assert _state(dev) == _state(ref)


@pytest.mark.parametrize("name", DEVICES)
def test_invalid_batch_charges_nothing(name):
    dev = DEVICES[name]()
    with pytest.raises(InvalidIOError):
        dev.write_batch([0, dev.capacity_bytes], NBYTES)
    assert dev.stats.ios == 0 and dev.clock == 0.0


@pytest.mark.parametrize("name", DEVICES)
def test_empty_batch_is_noop(name):
    dev = DEVICES[name]()
    assert dev.read_batch([], NBYTES) == []
    assert dev.write_batch([], NBYTES) == []
    assert dev.stats.ios == 0


def test_faulty_fast_path_rng_stream_untouched():
    # A transparent batch must leave the plan RNG exactly where a serial
    # loop leaves it (untouched), so later perturbed runs are unaffected.
    ref, dev = faulty_transparent(), faulty_transparent()
    for off in OFFSETS:
        ref.read(off, NBYTES)
    dev.read_batch(OFFSETS, NBYTES)
    assert float(dev._rng.random()) == float(ref._rng.random())


def test_faulty_perturbed_falls_back_to_full_pipeline():
    # Spikes and errors draw from the plan RNG per IO; the batch must
    # consume the stream in the same order a serial loop does.
    ref, dev = faulty_perturbed(), faulty_perturbed()
    expected = [ref.read(off, NBYTES) for off in OFFSETS]
    assert dev.read_batch(OFFSETS, NBYTES) == expected
    assert _state(dev) == _state(ref)


class TestCrashInBatch:
    """An armed crash plan inside ``write_batch`` == the serial loop.

    Arming a crash disables the transparent batch fast path; the per-IO
    fallback must then consume the fault and torn-write RNG streams in
    exactly the order a serial loop does, die at the same ordinal with
    the same torn prefix, and leave clock/stats/inner state bit-equal.
    """

    def _armed(self, at_io, *, perturbed=True):
        from repro.faults.crash import CrashPlan

        plan = (
            FaultPlan(seed=11, spike_prob=0.5, spike_seconds=0.01)
            if perturbed
            else FaultPlan(seed=11)
        )
        dev = FaultyDevice(hdd(seed=7), plan)
        dev.arm_crash(CrashPlan(seed=5, at_io=at_io, torn=True))
        return dev

    @pytest.mark.parametrize("at_io", [0, 2, len(OFFSETS) - 1])
    @pytest.mark.parametrize("perturbed", [False, True])
    def test_batch_crash_identical_to_serial_loop(self, at_io, perturbed):
        from repro.errors import DeviceCrashed

        ref, dev = (
            self._armed(at_io, perturbed=perturbed),
            self._armed(at_io, perturbed=perturbed),
        )
        with pytest.raises(DeviceCrashed):
            for off in OFFSETS:
                ref.write(off, NBYTES)
        with pytest.raises(DeviceCrashed):
            dev.write_batch(OFFSETS, NBYTES)
        assert dev.crash_state == ref.crash_state  # ordinal + torn prefix
        assert dev.io_ordinal == ref.io_ordinal
        assert _state(dev) == _state(ref)
        # And the fault RNG sits at the same position afterwards.
        assert float(dev._rng.random()) == float(ref._rng.random())

    def test_batch_after_recover_matches_serial(self):
        from repro.errors import DeviceCrashed

        ref, dev = self._armed(3), self._armed(3)
        with pytest.raises(DeviceCrashed):
            for off in OFFSETS:
                ref.write(off, NBYTES)
        with pytest.raises(DeviceCrashed):
            dev.write_batch(OFFSETS, NBYTES)
        assert dev.recover() == ref.recover()
        expected = [ref.write(off, NBYTES) for off in OFFSETS]
        assert dev.write_batch(OFFSETS, NBYTES) == expected
        assert _state(dev) == _state(ref)


class TestResourcePoolArrays:
    def _loop_reference(self, jobs):
        """Occupancy computed with per-slot Python objects (the old layout)."""
        from repro.storage.engine import Resource

        slots = [Resource() for _ in range(4)]
        for idx, at, dur in jobs:
            slots[idx].acquire(at, dur)
        return slots

    def test_occupancy_matches_loop_reference(self):
        jobs = [(0, 0.0, 1.0), (1, 0.5, 2.0), (0, 1.0, 0.5), (3, 0.2, 0.1)]
        ref = self._loop_reference(jobs)
        pool = ResourcePool(4)
        for idx, at, dur in jobs:
            pool.acquire(idx, at, dur)
        for i in range(4):
            assert pool[i].available_at == ref[i].available_at
            assert pool[i].busy_seconds == ref[i].busy_seconds
        assert pool.busy_seconds == sum(r.busy_seconds for r in ref)
        for t in (0.0, 0.3, 1.0, 2.5, 10.0):
            assert pool.free_slots(t) == sum(r.is_free(t) for r in ref)
        assert pool.next_available_at() == min(r.available_at for r in ref)
        assert pool.max_available_at == max(r.available_at for r in ref)

    def test_first_free_prefers_lowest_index(self):
        pool = ResourcePool(3)
        pool.acquire(0, 0.0, 5.0)
        assert pool.first_free(1.0) == 1
        assert pool.first_free(1.0, exclude=1) == 2
        pool.acquire(1, 0.0, 5.0)
        pool.acquire(2, 0.0, 5.0)
        assert pool.first_free(1.0) is None


class TestWriteMany:
    """Stack/cache ``write_many``: batched write-back, serial accounting."""

    def _stack(self, n_nodes=12, nbytes=4096, cache_bytes=1 << 20):
        from repro.storage.stack import StorageStack

        stack = StorageStack(hdd(seed=4), cache_bytes)
        for i in range(n_nodes):
            stack.create(i, {"id": i}, nbytes if i % 3 else 2 * nbytes)
            stack.mark_dirty(i)
        return stack

    def test_batched_runs_match_singleton_batches(self):
        # One big write_many must equal per-node calls: run batching only
        # groups equal-size extents, it never changes timing or order.
        ids = list(range(12))
        ref = self._stack()
        ref_total = sum(ref.write_many([i]) for i in ids)
        stack = self._stack()
        assert stack.write_many(ids) == ref_total
        assert stack.device.clock == ref.device.clock
        assert vars(stack.device.stats) == vars(ref.device.stats)
        assert stack.io_seconds == ref.io_seconds

    def test_clean_and_repeated_ids_are_skipped(self):
        stack = self._stack()
        spent = stack.write_many(list(range(12)))
        assert spent > 0
        assert stack.write_many(list(range(12))) == 0.0  # all clean now
        assert stack.device.stats.writes == 12

    def test_unknown_id_raises(self):
        from repro.errors import CacheError

        stack = self._stack()
        with pytest.raises(CacheError):
            stack.write_many([0, 999])

    def test_flush_equals_write_many_of_all(self):
        ref = self._stack()
        ref_spent = ref.write_many(list(range(12)))
        stack = self._stack()
        assert stack.flush() == ref_spent
        assert stack.device.clock == ref.device.clock


class TestBatchedRunner:
    def _streams(self, n_clients, n_requests):
        return [
            [ReadRequest((c * 7 + r) % 128 * 65536, 65536) for r in range(n_requests)]
            for c in range(n_clients)
        ]

    def test_batched_dispatch_matches_scalar(self):
        streams = self._streams(6, 40)
        scalar_dev, batch_dev = ssd(), ssd()
        scalar = ClosedLoopRunner(
            scalar_dev.service_request,
        ).run(streams)
        batched = ClosedLoopRunner(
            batch_dev.service_request,
            service_batch=batch_dev.service_request_batch,
        ).run(streams)
        assert batched == scalar  # exact float equality
        assert _state(batch_dev) == _state(scalar_dev)

    def test_run_closed_loop_uses_batch_path(self):
        scalar_dev, batch_dev = ssd(), ssd()
        streams = self._streams(4, 30)
        scalar = ClosedLoopRunner(scalar_dev.service_request).run_makespan(streams)
        assert batch_dev.run_closed_loop(streams) == scalar

    def test_batch_path_disabled_under_observability(self, monkeypatch):
        # The scalar path stays authoritative when OBS is recording; the
        # makespan must not change either way.
        streams = self._streams(4, 10)
        plain = ssd().run_closed_loop(streams)
        monkeypatch.setattr(OBS, "enabled", True)
        assert ssd().run_closed_loop(streams) == plain
