"""Extent-allocator tests, including hypothesis property checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, InvalidIOError, OutOfSpaceError
from repro.storage.allocator import ExtentAllocator


class TestBasics:
    def test_first_fit_is_sequential_initially(self):
        a = ExtentAllocator(10_000)
        assert a.alloc(100) == 0
        assert a.alloc(100) == 100
        assert a.alloc(100) == 200

    def test_alignment(self):
        a = ExtentAllocator(10_000, alignment=512)
        assert a.alloc(100) == 0
        assert a.alloc(100) == 512  # rounded up
        assert a.used_bytes == 1024

    def test_out_of_space(self):
        a = ExtentAllocator(1000)
        a.alloc(900)
        with pytest.raises(OutOfSpaceError):
            a.alloc(200)

    def test_free_and_reuse(self):
        a = ExtentAllocator(1000)
        off = a.alloc(400)
        a.alloc(400)
        a.free(off, 400)
        assert a.alloc(300) == off  # first fit reuses the hole

    def test_coalescing(self):
        a = ExtentAllocator(1000)
        o1 = a.alloc(300)
        o2 = a.alloc(300)
        o3 = a.alloc(300)
        a.free(o1, 300)
        a.free(o3, 300)
        a.free(o2, 300)  # merges with both neighbours
        assert a.largest_free_extent == 1000
        assert a.fragmentation == 0.0

    def test_double_free_rejected(self):
        a = ExtentAllocator(1000)
        off = a.alloc(100)
        a.free(off, 100)
        with pytest.raises(InvalidIOError):
            a.free(off, 100)

    def test_overlapping_free_rejected(self):
        a = ExtentAllocator(1000)
        a.alloc(500)
        a.free(0, 300)
        with pytest.raises(InvalidIOError):
            a.free(200, 200)

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            ExtentAllocator(0)
        with pytest.raises(ConfigurationError):
            ExtentAllocator(100, policy="weird")
        with pytest.raises(InvalidIOError):
            ExtentAllocator(100).alloc(0)
        with pytest.raises(InvalidIOError):
            ExtentAllocator(100).free(0, -1)


class TestRandomPolicy:
    def test_scatters_allocations(self):
        a = ExtentAllocator(1 << 24, policy="random", seed=1)
        offsets = [a.alloc(4096) for _ in range(20)]
        # Random placement should not be the sequential prefix.
        assert offsets != sorted(offsets)

    def test_deterministic_given_seed(self):
        a1 = ExtentAllocator(1 << 20, policy="random", seed=5)
        a2 = ExtentAllocator(1 << 20, policy="random", seed=5)
        assert [a1.alloc(1000) for _ in range(10)] == [a2.alloc(1000) for _ in range(10)]

    def test_random_policy_keeps_invariants(self):
        a = ExtentAllocator(1 << 20, policy="random", seed=3)
        live = []
        rng = np.random.default_rng(4)
        for _ in range(300):
            if live and rng.random() < 0.4:
                off, size = live.pop(int(rng.integers(0, len(live))))
                a.free(off, size)
            else:
                size = int(rng.integers(1, 5000))
                live.append((a.alloc(size), size))
            a.check_invariants()


class TestPropertyBased:
    @given(st.lists(st.integers(1, 500), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_allocations_never_overlap(self, sizes):
        a = ExtentAllocator(1 << 20, alignment=1)
        extents = sorted((a.alloc(s), s) for s in sizes)
        for (o1, s1), (o2, _) in zip(extents, extents[1:]):
            assert o1 + s1 <= o2
        a.check_invariants()

    @given(
        st.lists(st.integers(1, 500), min_size=1, max_size=40),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_alloc_free_roundtrip_restores_all_space(self, sizes, pyrng):
        a = ExtentAllocator(1 << 20, alignment=1)
        live = [(a.alloc(s), s) for s in sizes]
        pyrng.shuffle(live)
        for off, s in live:
            a.free(off, s)
        assert a.free_bytes == 1 << 20
        assert a.largest_free_extent == 1 << 20
        a.check_invariants()
