"""Simulated SSD tests: address mapping, pipelining, parallelism, conflicts."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.storage.device import ReadRequest, WriteRequest
from repro.storage.ssd import SSDGeometry, SimulatedSSD


def make(**kwargs):
    defaults = dict(capacity_bytes=1 << 30, channels=2, dies_per_channel=2)
    defaults.update(kwargs)
    return SimulatedSSD(SSDGeometry(**defaults))


class TestGeometry:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SSDGeometry(stripe_bytes=1000, page_bytes=4096)  # stripe < page
        with pytest.raises(ConfigurationError):
            SSDGeometry(stripe_bytes=5000, page_bytes=4096)  # not a multiple
        with pytest.raises(ConfigurationError):
            SSDGeometry(channels=0)
        with pytest.raises(ConfigurationError):
            SSDGeometry(page_read_seconds=0)

    def test_total_dies(self):
        assert SSDGeometry(channels=2, dies_per_channel=4).total_dies == 8

    def test_derived_rates(self):
        g = SSDGeometry(channels=2, dies_per_channel=8)
        assert g.saturated_read_bytes_per_second > 0
        assert g.expected_pdam_parallelism > 1.0


class TestAddressMapping:
    def test_stripe_maps_to_one_die(self):
        ssd = make()
        plan = ssd._page_plan(0, 65536)
        assert len(plan) == 1
        die, pages = plan[0]
        assert pages == 16

    def test_cross_stripe_io_touches_two_dies(self):
        ssd = make()
        plan = ssd._page_plan(65536 - 4096, 8192)
        assert len(plan) == 2
        assert plan[0][0] != plan[1][0]

    def test_round_robin_die_assignment(self):
        ssd = make()
        dies = [ssd.die_of_stripe(i) for i in range(8)]
        assert dies == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_channel_of_die(self):
        ssd = make()
        assert {ssd.channel_of_die(d) for d in range(4)} == {0, 1}


class TestTiming:
    def test_single_page_read_time(self):
        ssd = make()
        g = ssd.geometry
        t = ssd.read(0, 4096)
        assert t == pytest.approx(g.page_read_seconds + g.channel_transfer_seconds)

    def test_pipelined_stripe_read(self):
        ssd = make()
        g = ssd.geometry
        t = ssd.read(0, 65536)  # 16 pages on one die
        # Die reads dominate; the final transfer trails the last read.
        assert t == pytest.approx(16 * g.page_read_seconds + g.channel_transfer_seconds)

    def test_write_slower_than_read(self):
        s1, s2 = make(), make()
        assert s1.write(0, 65536) > s2.read(0, 65536)

    def test_two_requests_same_die_serialize(self):
        ssd = make()
        r = ReadRequest(0, 65536)
        t1 = ssd.service_request(r, 0.0)
        # Same stripe -> same die: starts after the first die work ends.
        t2 = ssd.service_request(ReadRequest(0, 65536), 0.0)
        assert t2 >= 2 * 16 * ssd.geometry.page_read_seconds
        assert t1 < t2

    def test_two_requests_distinct_dies_parallel(self):
        ssd = make()
        t1 = ssd.service_request(ReadRequest(0, 65536), 0.0)
        t2 = ssd.service_request(ReadRequest(65536, 65536), 0.0)
        # Different dies, different channels: fully parallel.
        assert t2 == pytest.approx(t1)

    def test_write_request_counted(self):
        ssd = make()
        ssd.service_request(WriteRequest(0, 4096), 0.0)
        assert ssd.stats.writes == 1 and ssd.stats.bytes_written == 4096

    def test_unknown_request_type_rejected(self):
        ssd = make()
        with pytest.raises(ConfigurationError):
            ssd.service_request("nope", 0.0)


class TestClosedLoop:
    def _streams(self, ssd, p, n_requests=32, seed=0):
        rng = np.random.default_rng(seed)
        stripes = ssd.capacity_bytes // ssd.geometry.stripe_bytes
        out = []
        for _ in range(p):
            offs = rng.integers(0, stripes, size=n_requests) * ssd.geometry.stripe_bytes
            out.append([ReadRequest(int(o), ssd.geometry.stripe_bytes) for o in offs])
        return out

    def test_flat_then_linear(self):
        # The Figure 1 shape: sub-linear growth below the knee,
        # ~linear growth once the device is saturated.
        times = {}
        for p in (1, 2, 32, 64):
            ssd = make(channels=2, dies_per_channel=4)
            times[p] = ssd.run_closed_loop(self._streams(ssd, p, n_requests=64))
        assert times[2] < 1.5 * times[1]          # near-flat early
        assert times[64] == pytest.approx(2 * times[32], rel=0.15)  # linear late

    def test_makespan_increases_with_demand(self):
        ssd = make()
        t4 = ssd.run_closed_loop(self._streams(ssd, 4))
        ssd.reset()
        t8 = ssd.run_closed_loop(self._streams(ssd, 8))
        assert t8 > t4

    def test_reset_clears_resources(self):
        ssd = make()
        ssd.run_closed_loop(self._streams(ssd, 2))
        ssd.reset()
        assert ssd.clock == 0.0 and ssd.stats.ios == 0
        t = ssd.read(0, 4096)
        g = ssd.geometry
        assert t == pytest.approx(g.page_read_seconds + g.channel_transfer_seconds)
