"""LSM-tree unit tests: memtable, flush, compaction, queries."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TreeError
from repro.storage.ram import NullDevice
from repro.trees.lsm import LSMConfig, LSMTree
from repro.trees.lsm.sstable import SSTable, TOMBSTONE
from repro.trees.sizing import EntryFormat


def make(sstable_bytes=1 << 13, **kwargs):
    cfg_kwargs = dict(
        sstable_bytes=sstable_bytes,
        memtable_bytes=sstable_bytes,
        level1_bytes=4 * sstable_bytes,
        fmt=EntryFormat(value_bytes=20),
    )
    cfg_kwargs.update(kwargs)
    dev = NullDevice(capacity_bytes=1 << 30)
    return LSMTree(dev, LSMConfig(**cfg_kwargs)), dev


class TestSSTable:
    def test_lookup(self):
        t = SSTable(0, [1, 3, 5], ["a", "b", "c"])
        assert t.lookup(3) == ("b", True)
        assert t.lookup(2) == (None, False)

    def test_overlaps(self):
        t = SSTable(0, [10, 20], ["a", "b"])
        assert t.overlaps(15, 25)
        assert t.overlaps(20, 20)
        assert not t.overlaps(21, 30)
        assert not t.overlaps(0, 9)

    def test_slice(self):
        t = SSTable(0, [1, 2, 3, 4], list("abcd"))
        assert t.slice(2, 3) == [(2, "b"), (3, "c")]

    def test_validation(self):
        with pytest.raises(TreeError):
            SSTable(0, [], [])
        with pytest.raises(TreeError):
            SSTable(0, [2, 1], ["a", "b"])
        with pytest.raises(TreeError):
            SSTable(0, [1], [])


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LSMConfig(sstable_bytes=10)
        with pytest.raises(ConfigurationError):
            LSMConfig(growth_factor=1)
        with pytest.raises(ConfigurationError):
            LSMConfig(l0_trigger=0)

    def test_entries_per_sstable(self):
        cfg = LSMConfig(sstable_bytes=1 << 13, fmt=EntryFormat(value_bytes=20))
        assert cfg.entries_per_sstable > 100


class TestCRUD:
    def test_memtable_only(self):
        tree, dev = make()
        tree.insert(1, "one")
        assert tree.get(1) == "one"
        assert dev.stats.writes == 0  # nothing flushed yet

    def test_flush_on_overflow(self):
        tree, dev = make()
        for k in range(tree.config.entries_per_memtable + 1):
            tree.insert(k, k)
        assert dev.stats.writes >= 1
        assert tree.levels[0] or len(tree.levels) > 1

    def test_delete_shadows_older_levels(self):
        tree, _ = make()
        tree.insert(5, "x")
        tree.flush_memtable()
        tree.delete(5)
        assert tree.get(5) is None
        tree.flush_memtable()
        assert tree.get(5) is None

    def test_newer_l0_run_wins(self):
        tree, _ = make()
        tree.insert(5, "old")
        tree.flush_memtable()
        tree.insert(5, "new")
        tree.flush_memtable()
        assert tree.get(5) == "new"

    def test_random_ops_match_dict(self):
        tree, _ = make()
        rng = np.random.default_rng(0)
        ref = {}
        for _ in range(8000):
            k = int(rng.integers(0, 2000))
            if rng.random() < 0.7:
                tree.insert(k, k)
                ref[k] = k
            else:
                tree.delete(k)
                ref.pop(k, None)
        tree.check_invariants()
        assert dict(tree.items()) == ref
        for k in list(ref)[::13]:
            assert tree.get(k) == ref[k]

    def test_len(self):
        tree, _ = make()
        for k in range(100):
            tree.insert(k, k)
        tree.delete(5)
        assert len(tree) == 99


class TestCompaction:
    def test_compaction_triggers(self):
        tree, _ = make(l0_trigger=2)
        for k in range(6 * tree.config.entries_per_memtable):
            tree.insert(k, k)
        assert tree.compactions > 0
        tree.check_invariants()

    def test_deeper_levels_disjoint(self):
        tree, _ = make(l0_trigger=2)
        rng = np.random.default_rng(1)
        for k in rng.integers(0, 10**6, size=12_000):
            tree.insert(int(k), 0)
        tree.check_invariants()  # asserts disjointness
        assert len(tree.levels) >= 2

    def test_compaction_preserves_contents(self):
        tree, _ = make(l0_trigger=2)
        ref = {}
        rng = np.random.default_rng(2)
        for k in rng.integers(0, 5000, size=10_000):
            k = int(k)
            tree.insert(k, k * 2)
            ref[k] = k * 2
        assert dict(tree.items()) == ref

    def test_tombstones_dropped_at_last_level(self):
        tree, _ = make(l0_trigger=2)
        for k in range(3000):
            tree.insert(k, k)
        for k in range(3000):
            tree.delete(k)
        # Force everything down.
        for k in range(6 * tree.config.entries_per_memtable):
            tree.insert(10**7 + k, 0)
        values = [
            v for lvl in tree.levels for t in lvl for v in t.values
        ]
        # Most tombstones should have been compacted away eventually.
        n_tomb = sum(1 for v in values if v is TOMBSTONE)
        assert n_tomb < 3000

    def test_write_amp_greater_than_one_with_compaction(self):
        tree, dev = make(l0_trigger=2)
        fmt = tree.config.fmt
        n = 8 * tree.config.entries_per_memtable
        for k in range(n):
            tree.insert(k, k)
        tree.flush_memtable()
        assert dev.stats.write_amplification(n * fmt.entry_bytes) > 1.0


class TestRange:
    def test_range_across_levels(self):
        tree, _ = make(l0_trigger=2)
        ref = {}
        rng = np.random.default_rng(3)
        for k in rng.integers(0, 3000, size=9000):
            k = int(k)
            tree.insert(k, k)
            ref[k] = k
        tree.delete(100)
        ref.pop(100, None)
        lo, hi = 50, 800
        expected = sorted((k, v) for k, v in ref.items() if lo <= k <= hi)
        assert tree.range(lo, hi) == expected

    def test_inverted_range(self):
        tree, _ = make()
        tree.insert(1, 1)
        assert tree.range(5, 2) == []

    def test_memtable_overrides_levels_in_range(self):
        tree, _ = make()
        tree.insert(5, "old")
        tree.flush_memtable()
        tree.insert(5, "new")
        tree.delete(7)
        assert dict(tree.range(0, 10)).get(5) == "new"
