"""Static search tree, vEB layout, and PDAM query-simulator tests."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models.pdam import PDAMModel
from repro.storage.ideal import PDAMDevice
from repro.trees.btree.veb import (
    PDAMQuerySimulator,
    StaticSearchTree,
    VEBLayout,
)


class TestStaticSearchTree:
    def test_contains_all_keys(self):
        keys = np.arange(1, 100) * 5
        tree = StaticSearchTree(keys)
        for k in keys:
            assert tree.contains(int(k))

    def test_rejects_absent_keys(self):
        tree = StaticSearchTree(np.arange(1, 100) * 5)
        assert not tree.contains(7)
        assert not tree.contains(0)
        assert not tree.contains(10**9)

    def test_search_path_root_to_leaf(self):
        tree = StaticSearchTree(np.arange(1, 65))
        path = tree.search_path(30)
        assert path[0] == 0
        assert len(path) == tree.height
        for a, b in zip(path, path[1:]):
            assert b in (2 * a + 1, 2 * a + 2)

    def test_nodes_at_depth_contiguous(self):
        tree = StaticSearchTree(np.arange(1, 17))
        cohort = tree.nodes_at_depth(0, 2)
        assert list(cohort) == [3, 4, 5, 6]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StaticSearchTree([])
        with pytest.raises(ConfigurationError):
            StaticSearchTree([3, 2, 1])
        with pytest.raises(ConfigurationError):
            StaticSearchTree([1, 1])

    def test_non_power_of_two_padded(self):
        keys = np.arange(1, 100)  # 99 keys -> 128 leaves
        tree = StaticSearchTree(keys)
        assert tree.n_nodes == 2 * 128 - 1
        assert all(tree.contains(int(k)) for k in keys)

    def test_single_key(self):
        tree = StaticSearchTree([42])
        assert tree.contains(42)
        assert not tree.contains(41)
        assert not tree.contains(43)
        path = tree.search_path(42)
        assert path[0] == 0 and len(path) == tree.height

    @pytest.mark.parametrize("n", [2, 4, 8, 64, 1024])
    def test_exact_power_of_two_counts(self, n):
        # No padded leaves: every leaf is a real key.
        keys = np.arange(1, n + 1) * 7
        tree = StaticSearchTree(keys)
        assert tree.n_nodes == 2 * n - 1
        assert all(tree.contains(int(k)) for k in keys)
        assert not tree.contains(int(keys[-1]) + 7)

    def test_int64_max_key_without_padding(self):
        # An exact power-of-two count needs no pad sentinel, so the
        # maximum representable key is legal as the largest key.
        top = np.iinfo(np.int64).max
        keys = np.array([1, 5, 9, top], dtype=np.int64)
        tree = StaticSearchTree(keys)
        for k in keys:
            assert tree.contains(int(k))
        assert not tree.contains(2)

    def test_int64_max_key_with_padding_rejected(self):
        # 3 keys -> 4 leaves: the pad sentinel would have to exceed
        # INT64_MAX, which wrapped to INT64_MIN before the fix and
        # corrupted every search right of the real keys.
        top = np.iinfo(np.int64).max
        with pytest.raises(ConfigurationError):
            StaticSearchTree(np.array([1, 5, top], dtype=np.int64))

    def test_near_max_key_with_padding_ok(self):
        # One below the boundary still pads fine.
        top = np.iinfo(np.int64).max - 1
        tree = StaticSearchTree(np.array([1, 5, top], dtype=np.int64))
        assert tree.contains(top)
        assert not tree.contains(top - 1)

    @pytest.mark.parametrize("n", [1, 2, 5, 16, 100, 512])
    def test_nodes_at_depth_cohorts(self, n):
        # At every scale, each depth cohort under the root is contiguous,
        # sized 2^d, and the cohorts tile the whole heap.
        tree = StaticSearchTree(np.arange(1, n + 1))
        seen = []
        for d in range(tree.height):
            cohort = tree.nodes_at_depth(0, d)
            assert len(cohort) == 1 << d
            assert list(cohort) == list(
                range(cohort.start, cohort.start + (1 << d))
            )
            seen.extend(cohort)
        assert seen == list(range(tree.n_nodes))

    def test_nodes_at_depth_subtree_roots(self):
        tree = StaticSearchTree(np.arange(1, 17))
        # Cohorts of an internal root stay inside its subtree and line up
        # with its children's cohorts one level down.
        for root in (1, 2, 3):
            kids = tree.nodes_at_depth(root, 1)
            assert list(kids) == [2 * root + 1, 2 * root + 2]
            grand = tree.nodes_at_depth(root, 2)
            assert grand.start == 2 * (2 * root + 1) + 1


class TestVEBLayout:
    @pytest.mark.parametrize("height", [1, 2, 3, 4, 5, 8, 13])
    def test_is_a_permutation(self, height):
        layout = VEBLayout(height)
        assert sorted(layout.position.tolist()) == list(range(layout.n_nodes))

    def test_root_is_first(self):
        for h in (2, 5, 9):
            assert VEBLayout(h).position[0] == 0

    def test_height_one(self):
        layout = VEBLayout(1)
        assert layout.n_nodes == 1

    def test_bottom_subtrees_contiguous(self):
        # The vEB property: each recursive bottom subtree occupies a
        # contiguous range of positions.
        h = 6
        layout = VEBLayout(h)
        top_h = (h + 1) // 2
        bottom_h = h - top_h
        first = (1 << top_h) - 1
        for root in range(first, 2 * first + 1):
            # Collect the subtree of `root` of height bottom_h.
            nodes = [root]
            frontier = [root]
            for _ in range(bottom_h - 1):
                frontier = [c for n in frontier for c in (2 * n + 1, 2 * n + 2)]
                nodes.extend(frontier)
            positions = sorted(int(layout.position[n]) for n in nodes)
            assert positions == list(range(positions[0], positions[0] + len(nodes)))

    def test_path_spans_few_blocks(self):
        # A root-to-leaf path in vEB order touches O(log N / log B) blocks.
        h = 16
        layout = VEBLayout(h)
        tree = StaticSearchTree(np.arange(1, (1 << (h - 1)) + 1))
        entries_per_block = 255  # 8 levels per block
        rng = np.random.default_rng(0)
        for _ in range(20):
            key = int(rng.integers(1, 1 << (h - 1)))
            path = tree.search_path(key)
            blocks = {int(layout.position[n]) // entries_per_block for n in path}
            assert len(blocks) <= math.ceil(h / 8) + 1

    def test_bad_height(self):
        with pytest.raises(ConfigurationError):
            VEBLayout(0)


class TestPDAMQuerySimulator:
    def setup_method(self):
        self.tree = StaticSearchTree(np.arange(1, 2**12 + 1) * 3)

    def _sim(self, mode, P=8):
        dev = PDAMDevice(PDAMModel(parallelism=P, block_bytes=4096))
        return PDAMQuerySimulator(dev, self.tree, mode=mode)

    def test_all_queries_complete(self):
        for mode in ("flat_b", "flat_pb", "veb_pb"):
            res = self._sim(mode).run(3, 10, seed=1)
            assert res.queries_completed == 30
            assert res.steps > 0

    def test_flat_b_scales_with_clients_up_to_p(self):
        t1 = self._sim("flat_b").run(1, 20, seed=0).throughput
        t8 = self._sim("flat_b").run(8, 20, seed=0).throughput
        assert t8 == pytest.approx(8 * t1, rel=0.15)

    def test_flat_b_saturates_past_p(self):
        t8 = self._sim("flat_b").run(8, 20, seed=0).throughput
        t16 = self._sim("flat_b").run(16, 20, seed=0).throughput
        assert t16 == pytest.approx(t8, rel=0.15)

    def test_flat_pb_does_not_scale(self):
        t1 = self._sim("flat_pb").run(1, 20, seed=0).throughput
        t8 = self._sim("flat_pb").run(8, 20, seed=0).throughput
        assert t8 < 2 * t1

    def test_veb_beats_flat_b_single_client(self):
        v = self._sim("veb_pb").run(1, 30, seed=0).throughput
        f = self._sim("flat_b").run(1, 30, seed=0).throughput
        assert v > 1.2 * f

    def test_veb_matches_flat_b_at_saturation(self):
        v = self._sim("veb_pb").run(8, 30, seed=0).throughput
        f = self._sim("flat_b").run(8, 30, seed=0).throughput
        assert v > 0.9 * f

    def test_lemma13_dominance(self):
        # veb_pb within 90% of the best mode at every k.
        for k in (1, 2, 4, 8):
            results = {
                mode: self._sim(mode).run(k, 20, seed=2).throughput
                for mode in ("flat_b", "flat_pb", "veb_pb")
            }
            best = max(results.values())
            assert results["veb_pb"] >= 0.9 * best, (k, results)

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            self._sim("diagonal")

    def test_bad_run_params_rejected(self):
        sim = self._sim("veb_pb")
        with pytest.raises(ConfigurationError):
            sim.run(0, 10)
        with pytest.raises(ConfigurationError):
            sim.run(1, 0)

    def test_deterministic(self):
        a = self._sim("veb_pb").run(4, 25, seed=9)
        b = self._sim("veb_pb").run(4, 25, seed=9)
        assert a.steps == b.steps
