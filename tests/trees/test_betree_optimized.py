"""Theorem 9 Bε-tree tests: correctness parity plus IO-size assertions."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models.affine import AffineModel
from repro.storage.ideal import AffineDevice
from repro.storage.ram import NullDevice
from repro.storage.stack import StorageStack
from repro.trees.betree import BeTree, BeTreeConfig, OptimizedBeTree
from repro.trees.sizing import EntryFormat


def make(node_bytes=8192, fanout=4, cache_bytes=1 << 20, device=None, **flags):
    stack = StorageStack(device or NullDevice(), cache_bytes)
    cfg = BeTreeConfig(node_bytes=node_bytes, fanout=fanout, fmt=EntryFormat(value_bytes=20))
    return OptimizedBeTree(stack, cfg, **flags), stack


class TestConstruction:
    def test_pivots_in_parent_requires_segments(self):
        with pytest.raises(ConfigurationError):
            make(segmented_io=False, pivots_in_parent=True)

    def test_slot_geometry(self):
        tree, _ = make(node_bytes=8192, fanout=4)
        assert tree.segment_cap_bytes > 0
        assert tree.basement_entries >= 1
        # All segment slots plus the pivot slot fit in the node.
        total = tree._pivot_slot_bytes + tree.config.max_children * tree._segment_slot_bytes
        assert total <= tree.config.node_bytes


class TestCorrectnessParity:
    """The optimized tree must behave exactly like the naive tree."""

    def _drive(self, tree, seed=0, n=5000):
        rng = np.random.default_rng(seed)
        ref = {}
        for _ in range(n):
            k = int(rng.integers(0, 1500))
            r = rng.random()
            if r < 0.55:
                tree.insert(k, k * 3)
                ref[k] = k * 3
            elif r < 0.8:
                tree.delete(k)
                ref.pop(k, None)
            else:
                tree.upsert(k, 1)
                ref[k] = ref.get(k, 0) + 1
        return ref

    def test_random_ops_match_dict(self):
        tree, _ = make()
        ref = self._drive(tree)
        tree.check_invariants()
        assert dict(tree.items()) == ref

    def test_matches_naive_tree_exactly(self):
        opt, _ = make()
        naive_stack = StorageStack(NullDevice(), 1 << 20)
        naive = BeTree(naive_stack, opt.config)
        ref1 = self._drive(opt, seed=7)
        ref2 = self._drive(naive, seed=7)
        assert ref1 == ref2
        assert list(opt.items()) == list(naive.items())

    def test_flush_all(self):
        tree, _ = make()
        ref = self._drive(tree, seed=2)
        tree.flush_all()
        tree.check_invariants()
        assert dict(tree.items()) == ref

    def test_bulk_load_and_query(self):
        tree, _ = make()
        tree.bulk_load([(i * 2, i) for i in range(3000)])
        tree.check_invariants()
        assert tree.get(100) == 50
        assert tree.get(101) is None

    def test_range_queries(self):
        tree, _ = make()
        ref = self._drive(tree, seed=3)
        lo, hi = 200, 900
        expected = sorted((k, v) for k, v in ref.items() if lo <= k <= hi)
        assert tree.range(lo, hi) == expected

    def test_ablation_flags_preserve_correctness(self):
        for flags in (
            dict(segmented_io=True, pivots_in_parent=False),
            dict(segmented_io=False, pivots_in_parent=False),
        ):
            tree, _ = make(**flags)
            ref = self._drive(tree, seed=4)
            tree.check_invariants()
            assert dict(tree.items()) == ref


class TestPartialIO:
    """The point of Theorem 9: queries read ~B/F + F, not B."""

    def _loaded(self, node_bytes=1 << 16, fanout=8, **flags):
        device = AffineDevice(AffineModel(alpha=1e-6, setup_seconds=0.01),
                              capacity_bytes=1 << 30, trace=True)
        tree, stack = make(node_bytes=node_bytes, fanout=fanout,
                           cache_bytes=node_bytes, device=device, **flags)
        tree.bulk_load([(i, i) for i in range(0, 40_000, 2)])
        stack.drop_cache()
        return tree, stack

    def test_query_reads_are_small(self):
        tree, stack = self._loaded()
        t0 = len(stack.device.trace)
        tree.get(10_000)
        reads = [r for r in stack.device.trace[t0:] if r.kind == "read"]
        assert reads, "a cold query must read something"
        # Every read is far smaller than a whole node.
        assert max(r.nbytes for r in reads) <= tree.config.node_bytes // 2

    def test_query_cheaper_than_naive(self):
        opt, opt_stack = self._loaded()
        naive_dev = AffineDevice(AffineModel(alpha=1e-6, setup_seconds=0.01),
                                 capacity_bytes=1 << 30)
        naive_stack = StorageStack(naive_dev, 1 << 16)
        naive = BeTree(naive_stack, opt.config)
        naive.bulk_load([(i, i) for i in range(0, 40_000, 2)])
        naive_stack.drop_cache()

        t_opt0 = opt_stack.io_seconds
        t_naive0 = naive_stack.io_seconds
        rng = np.random.default_rng(5)
        for _ in range(50):
            k = int(rng.integers(0, 20_000)) * 2
            opt.get(k)
            naive.get(k)
        opt_cost = opt_stack.io_seconds - t_opt0
        naive_cost = naive_stack.io_seconds - t_naive0
        assert opt_cost < naive_cost

    def test_pivots_in_parent_saves_an_io_per_level(self):
        with_piv, s1 = self._loaded(pivots_in_parent=True)
        without_piv, s2 = self._loaded(pivots_in_parent=False)
        r1 = s1.device.stats.reads
        r2 = s2.device.stats.reads
        rng = np.random.default_rng(6)
        keys = [int(rng.integers(0, 20_000)) * 2 for _ in range(40)]
        for k in keys:
            with_piv.get(k)
            without_piv.get(k)
        io1 = s1.device.stats.reads - r1
        io2 = s2.device.stats.reads - r2
        assert io1 < io2

    def test_range_scan_reads_whole_nodes(self):
        tree, stack = self._loaded()
        t0 = stack.io_seconds
        out = tree.range(0, 10_000)
        assert len(out) == 5001
        assert stack.io_seconds > t0


class TestWriteAccounting:
    def test_flush_rewrites_are_batched(self):
        # A node rewrite must charge a handful of large IOs, not one IO
        # per basement chunk.
        device = NullDevice(capacity_bytes=1 << 30, trace=True)
        tree, stack = make(node_bytes=1 << 16, fanout=8, cache_bytes=1 << 16,
                           device=device)
        for k in range(20_000):
            tree.insert(k, k)
        writes = [r for r in device.trace if r.kind == "write"]
        reads = [r for r in device.trace if r.kind == "read"]
        assert writes
        # Batched whole-node writes exist (bigger than any single slot).
        assert max(w.nbytes for w in writes) > tree._segment_slot_bytes
        assert len(reads) + len(writes) < 20_000  # amortization happened

    def test_extent_freed_on_node_free(self):
        tree, stack = make()
        for k in range(3000):
            tree.insert(k, k)
        tree.flush_all()
        peak = stack.allocator.used_bytes
        for k in range(3000):
            tree.delete(k)
        tree.flush_all()
        tree.check_invariants()
        # Emptied leaves released their extents (internal skeleton remains).
        assert stack.allocator.used_bytes < peak / 2
