"""EntryFormat sizing tests."""

import pytest

from repro.errors import ConfigurationError
from repro.trees.sizing import EntryFormat


class TestEntryFormat:
    def test_defaults(self):
        fmt = EntryFormat()
        assert fmt.entry_bytes == 108
        assert fmt.pivot_bytes == 16
        assert fmt.message_bytes == 112

    def test_leaf_capacity(self):
        fmt = EntryFormat(key_bytes=8, value_bytes=92, node_header_bytes=0)
        assert fmt.leaf_capacity(1000) == 10

    def test_internal_capacity(self):
        fmt = EntryFormat(key_bytes=8, pointer_bytes=8, node_header_bytes=0)
        assert fmt.internal_capacity(160) == 10

    def test_capacity_too_small_rejected(self):
        fmt = EntryFormat()
        with pytest.raises(ConfigurationError):
            fmt.leaf_capacity(100)

    def test_byte_footprints_roundtrip(self):
        fmt = EntryFormat()
        n = fmt.leaf_capacity(65536)
        assert fmt.leaf_bytes(n) <= 65536
        assert fmt.leaf_bytes(n + 1) > 65536 - fmt.entry_bytes

    def test_internal_bytes(self):
        fmt = EntryFormat(node_header_bytes=48)
        assert fmt.internal_bytes(10) == 48 + 160

    def test_buffer_bytes(self):
        fmt = EntryFormat()
        assert fmt.buffer_bytes(5) == 5 * fmt.message_bytes

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EntryFormat(key_bytes=0)
        with pytest.raises(ConfigurationError):
            EntryFormat(value_bytes=-1)
