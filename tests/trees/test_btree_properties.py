"""Property-based B-tree tests (hypothesis): dict-equivalence under any ops."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.ram import NullDevice
from repro.storage.stack import StorageStack
from repro.trees.btree import BTree, BTreeConfig
from repro.trees.sizing import EntryFormat


def fresh_tree(node_bytes=1024):
    stack = StorageStack(NullDevice(), cache_bytes=1 << 20)
    return BTree(stack, BTreeConfig(node_bytes=node_bytes, fmt=EntryFormat(value_bytes=8)))


ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 300), st.integers(0, 1000)),
        st.tuples(st.just("delete"), st.integers(0, 300), st.just(0)),
    ),
    max_size=300,
)


@given(ops_strategy)
@settings(max_examples=80, deadline=None)
def test_matches_dict_reference(ops):
    tree = fresh_tree()
    ref: dict[int, int] = {}
    for op, key, value in ops:
        if op == "insert":
            tree.insert(key, value)
            ref[key] = value
        else:
            assert tree.delete(key) == (key in ref)
            ref.pop(key, None)
    tree.check_invariants()
    assert dict(tree.items()) == ref
    assert len(tree) == len(ref)


@given(ops_strategy, st.integers(0, 300), st.integers(0, 300))
@settings(max_examples=60, deadline=None)
def test_range_matches_reference(ops, lo, hi):
    tree = fresh_tree()
    ref: dict[int, int] = {}
    for op, key, value in ops:
        if op == "insert":
            tree.insert(key, value)
            ref[key] = value
        else:
            tree.delete(key)
            ref.pop(key, None)
    expected = sorted((k, v) for k, v in ref.items() if lo <= k <= hi)
    assert tree.range(lo, hi) == expected


@given(st.sets(st.integers(0, 10_000), min_size=1, max_size=500))
@settings(max_examples=40, deadline=None)
def test_bulk_load_equals_insert_load(keys):
    pairs = [(k, k * 3) for k in sorted(keys)]
    bulk = fresh_tree()
    bulk.bulk_load(pairs)
    inserted = fresh_tree()
    for k, v in pairs:
        inserted.insert(k, v)
    bulk.check_invariants()
    inserted.check_invariants()
    assert list(bulk.items()) == list(inserted.items())


@given(st.lists(st.integers(0, 100), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_invariants_after_every_op(keys):
    tree = fresh_tree(node_bytes=512)  # tiny nodes -> frequent splits
    for i, k in enumerate(keys):
        if i % 3 == 2:
            tree.delete(k)
        else:
            tree.insert(k, i)
    tree.check_invariants()
