"""Theorem 9 weight-balanced rebuild tests."""

import numpy as np
import pytest

from repro.errors import TreeError
from repro.storage.ram import NullDevice
from repro.storage.stack import StorageStack
from repro.trees.betree import BeTree, BeTreeConfig, OptimizedBeTree
from repro.trees.betree.rebalance import (
    check_weight_balance,
    find_unbalanced,
    node_weights,
    rebuild_weight_balance,
    weight_bounds,
)
from repro.trees.sizing import EntryFormat


def make_tree(cls=BeTree, node_bytes=4096, fanout=8):
    stack = StorageStack(NullDevice(), cache_bytes=1 << 20)
    cfg = BeTreeConfig(node_bytes=node_bytes, fanout=fanout, fmt=EntryFormat(value_bytes=8))
    return cls(stack, cfg)


class TestWeightBounds:
    def test_window_shape(self):
        lo, hi = weight_bounds(16, 2)
        assert lo == pytest.approx(256 * 0.75)
        assert hi == pytest.approx(256 * 1.25)

    def test_leaf_level(self):
        lo, hi = weight_bounds(16, 0)
        assert lo < 1 < hi

    def test_bad_fanout(self):
        with pytest.raises(TreeError):
            weight_bounds(1, 2)


class TestNodeWeights:
    def test_weights_sum_correctly(self):
        tree = make_tree()
        for k in range(4000):
            tree.insert(k, k)
        weights = node_weights(tree)
        root_h, root_w = weights[tree.root_id]
        leaf_count = sum(1 for h, _ in weights.values() if h == 0)
        assert root_w == leaf_count
        assert root_h >= 1


class TestRebuild:
    def test_balanced_after_rebuild(self):
        tree = make_tree()
        rng = np.random.default_rng(0)
        for k in rng.integers(0, 10**6, size=20_000):
            tree.insert(int(k), 0)
        rebuild_weight_balance(tree)
        check_weight_balance(tree)
        tree.check_invariants()

    def test_contents_preserved(self):
        tree = make_tree()
        ref = {}
        rng = np.random.default_rng(1)
        for k in rng.integers(0, 50_000, size=15_000):
            k = int(k)
            tree.insert(k, k * 2)
            ref[k] = k * 2
        for k in list(ref)[::5]:
            tree.delete(k)
            del ref[k]
        rebuild_weight_balance(tree)
        assert dict(tree.items()) == ref
        tree.check_invariants()

    def test_optimized_tree_supported(self):
        tree = make_tree(OptimizedBeTree)
        rng = np.random.default_rng(2)
        ref = {}
        for k in rng.integers(0, 10**6, size=12_000):
            k = int(k)
            tree.insert(k, k)
            ref[k] = k
        rebuild_weight_balance(tree)
        check_weight_balance(tree)
        tree.check_invariants()
        assert dict(tree.items()) == ref

    def test_skewed_deletions_rebalanced(self):
        """Delete a contiguous half of the keyspace: splits alone cannot
        restore weight balance, the rebuild must."""
        tree = make_tree()
        for k in range(30_000):
            tree.insert(k, k)
        for k in range(15_000):
            tree.delete(k)
        tree.flush_all()
        rebuild_weight_balance(tree)
        check_weight_balance(tree)
        assert len(list(tree.items())) == 15_000

    def test_rebuild_count_zero_when_balanced(self):
        tree = make_tree()
        for k in range(5000):
            tree.insert(k, k)
        first = rebuild_weight_balance(tree)
        again = rebuild_weight_balance(tree)
        assert again == 0
        assert first >= 0

    def test_empty_and_tiny_trees(self):
        tree = make_tree()
        assert rebuild_weight_balance(tree) == 0
        tree.insert(1, 1)
        assert rebuild_weight_balance(tree) == 0
        assert tree.get(1) == 1

    def test_find_unbalanced_reports_violations(self):
        tree = make_tree()
        for k in range(30_000):
            tree.insert(k, k)
        for k in range(25_000):
            tree.delete(k)
        tree.flush_all()
        # After deleting 5/6 of a one-sided range, some node should be out
        # of its weight window (the split-based tree never merges).
        assert find_unbalanced(tree) is not None
        rebuild_weight_balance(tree)
        assert find_unbalanced(tree) is None

    def test_queries_after_rebuild(self):
        tree = make_tree()
        rng = np.random.default_rng(3)
        ref = {}
        for k in rng.integers(0, 10**6, size=10_000):
            k = int(k)
            tree.insert(k, k)
            ref[k] = k
        rebuild_weight_balance(tree)
        for k in list(ref)[::17]:
            assert tree.get(k) == ref[k]
        lo, hi = 10_000, 200_000
        expected = sorted((k, v) for k, v in ref.items() if lo <= k <= hi)
        assert tree.range(lo, hi) == expected

    def test_mutations_after_rebuild(self):
        tree = make_tree()
        for k in range(8000):
            tree.insert(k, k)
        rebuild_weight_balance(tree)
        for k in range(8000, 12_000):
            tree.insert(k, k)
        for k in range(0, 4000):
            tree.delete(k)
        tree.check_invariants()
        assert len(list(tree.items())) == 8000


from hypothesis import given, settings
from hypothesis import strategies as st


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete"]),
            st.integers(0, 3000),
        ),
        min_size=50,
        max_size=400,
    )
)
@settings(max_examples=30, deadline=None)
def test_rebuild_property(ops):
    """After any op sequence, the rebuild restores balance and contents."""
    tree = make_tree(fanout=4, node_bytes=2048)
    ref = {}
    for op, key in ops:
        if op == "insert":
            tree.insert(key, key)
            ref[key] = key
        else:
            tree.delete(key)
            ref.pop(key, None)
    rebuild_weight_balance(tree, max_rebuilds=256)
    check_weight_balance(tree)
    tree.check_invariants()
    assert dict(tree.items()) == ref
