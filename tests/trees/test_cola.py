"""COLA unit and property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.storage.ram import NullDevice
from repro.trees.cola import COLA, COLAConfig
from repro.trees.sizing import EntryFormat


def make(ram_bytes=1 << 20, **kwargs):
    cfg = COLAConfig(fmt=EntryFormat(value_bytes=20), ram_bytes=ram_bytes, **kwargs)
    dev = NullDevice(capacity_bytes=1 << 30)
    return COLA(dev, cfg), dev


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            COLAConfig(block_bytes=0)
        with pytest.raises(ConfigurationError):
            COLAConfig(ram_bytes=-1)

    def test_entries_per_block(self):
        cfg = COLAConfig(fmt=EntryFormat(value_bytes=20), block_bytes=4096)
        assert cfg.entries_per_block == 4096 // 28


class TestStructure:
    def test_binomial_counter_levels(self):
        cola, _ = make()
        for k in range(7):
            cola.insert(k, k)
        # 7 = 0b111: levels 0, 1, 2 occupied.
        occupied = [i for i, lvl in enumerate(cola.levels) if lvl is not None]
        assert occupied == [0, 1, 2]
        cola.check_invariants()

    def test_power_of_two_collapses(self):
        cola, _ = make()
        for k in range(8):
            cola.insert(k, k)
        occupied = [i for i, lvl in enumerate(cola.levels) if lvl is not None]
        assert occupied == [3]
        cola.check_invariants()

    def test_duplicates_shrink_levels(self):
        cola, _ = make()
        for _ in range(16):
            cola.insert(7, "same")
        # All inserts were the same key: far fewer than 16 live entries.
        total = sum(len(l.keys) for l in cola.levels if l is not None)
        assert total < 16
        assert cola.get(7) == "same"
        cola.check_invariants()


class TestCRUD:
    def test_empty(self):
        cola, _ = make()
        assert cola.get(1) is None
        assert len(cola) == 0

    def test_insert_get(self):
        cola, _ = make()
        cola.insert(5, "five")
        assert cola.get(5) == "five"
        assert 5 in cola

    def test_newer_wins(self):
        cola, _ = make()
        cola.insert(5, "old")
        for k in range(100, 120):  # push 'old' into a deeper level
            cola.insert(k, k)
        cola.insert(5, "new")
        assert cola.get(5) == "new"

    def test_delete(self):
        cola, _ = make()
        cola.insert(5, "x")
        cola.delete(5)
        assert cola.get(5) is None
        assert 5 not in cola

    def test_random_ops_match_dict(self):
        cola, _ = make()
        rng = np.random.default_rng(0)
        ref = {}
        for _ in range(5000):
            k = int(rng.integers(0, 1000))
            if rng.random() < 0.7:
                cola.insert(k, k * 3)
                ref[k] = k * 3
            else:
                cola.delete(k)
                ref.pop(k, None)
        cola.check_invariants()
        assert dict(cola.items()) == ref

    def test_range(self):
        cola, _ = make()
        ref = {}
        rng = np.random.default_rng(1)
        for k in rng.integers(0, 3000, size=5000):
            k = int(k)
            cola.insert(k, k)
            ref[k] = k
        cola.delete(500)
        ref.pop(500, None)
        expected = sorted((k, v) for k, v in ref.items() if 300 <= k <= 900)
        assert cola.range(300, 900) == expected

    def test_tombstones_eventually_dropped(self):
        cola, _ = make()
        for k in range(256):
            cola.insert(k, k)
        for k in range(256):
            cola.delete(k)
        for k in range(1000, 1000 + 512):  # force full-depth merges
            cola.insert(k, k)
        from repro.trees.lsm.sstable import TOMBSTONE

        live = [
            v for lvl in cola.levels if lvl is not None for v in lvl.values
        ]
        assert sum(1 for v in live if v is TOMBSTONE) < 256


class TestIOAccounting:
    def test_inserts_write_sequentially_amortized(self):
        cola, dev = make(ram_bytes=0)  # force every level to disk
        n = 4096
        for k in range(n):
            cola.insert(k, k)
        fmt = cola.config.fmt
        # Each element is rewritten O(log n) times.
        amp = dev.stats.write_amplification(n * fmt.entry_bytes)
        assert amp < 2 * np.log2(n)

    def test_cold_query_charges_probes(self):
        cola, dev = make(ram_bytes=0)
        for k in range(5000):
            cola.insert(k, k)
        r0 = dev.stats.reads
        cola.get(2500)
        assert dev.stats.reads > r0

    def test_ram_resident_levels_free(self):
        cola_cold, dev_cold = make(ram_bytes=0)
        cola_warm, dev_warm = make(ram_bytes=1 << 26)
        for k in range(5000):
            cola_cold.insert(k, k)
            cola_warm.insert(k, k)
        r0c, r0w = dev_cold.stats.reads, dev_warm.stats.reads
        for k in range(0, 5000, 100):
            cola_cold.get(k)
            cola_warm.get(k)
        assert dev_warm.stats.reads == r0w           # everything pinned
        assert dev_cold.stats.reads > r0c            # every level probed


@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("insert"), st.integers(0, 150), st.integers(0, 99)),
            st.tuples(st.just("delete"), st.integers(0, 150), st.just(0)),
        ),
        max_size=200,
    )
)
@settings(max_examples=60, deadline=None)
def test_matches_dict_reference(ops):
    cola, _ = make()
    ref: dict[int, int] = {}
    for op, key, value in ops:
        if op == "insert":
            cola.insert(key, value)
            ref[key] = value
        else:
            cola.delete(key)
            ref.pop(key, None)
    cola.check_invariants()
    assert dict(cola.items()) == ref


class TestFencePointers:
    def test_fences_reduce_probe_reads(self):
        def query_cost(fence_every):
            dev = NullDevice(capacity_bytes=1 << 30)
            cfg = COLAConfig(fmt=EntryFormat(value_bytes=20), ram_bytes=0,
                             fence_every=fence_every)
            cola = COLA(dev, cfg)
            for k in range(30_000):
                cola.insert(k, k)
            r0 = dev.stats.reads
            for k in range(0, 30_000, 500):
                cola.get(k)
            return dev.stats.reads - r0

        # One block per level with fences; ~log(blocks) per level without.
        assert query_cost(64) < 0.5 * query_cost(None)

    def test_fence_config_validation(self):
        with pytest.raises(ConfigurationError):
            COLAConfig(fence_every=1)

    def test_correctness_unaffected(self):
        for fence in (None, 16):
            cola, _ = make(fence_every=fence)
            ref = {}
            rng = np.random.default_rng(3)
            for k in rng.integers(0, 800, size=3000):
                k = int(k)
                cola.insert(k, k)
                ref[k] = k
            assert dict(cola.items()) == ref
