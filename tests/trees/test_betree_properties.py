"""Property-based Bε-tree tests: naive and Theorem 9 trees vs a dict oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.ram import NullDevice
from repro.storage.stack import StorageStack
from repro.trees.betree import BeTree, BeTreeConfig, OptimizedBeTree
from repro.trees.sizing import EntryFormat


def fresh(cls, node_bytes=2048, fanout=3):
    stack = StorageStack(NullDevice(), cache_bytes=1 << 20)
    cfg = BeTreeConfig(node_bytes=node_bytes, fanout=fanout, fmt=EntryFormat(value_bytes=8))
    return cls(stack, cfg)


ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 200), st.integers(-50, 50)),
        st.tuples(st.just("delete"), st.integers(0, 200), st.just(0)),
        st.tuples(st.just("upsert"), st.integers(0, 200), st.integers(-5, 5)),
    ),
    max_size=250,
)


def apply_ref(ref, op, key, value):
    if op == "insert":
        ref[key] = value
    elif op == "delete":
        ref.pop(key, None)
    else:
        ref[key] = ref.get(key, 0) + value


@pytest.mark.parametrize("cls", [BeTree, OptimizedBeTree])
class TestAgainstOracle:
    @given(ops=ops_strategy)
    @settings(max_examples=60, deadline=None)
    def test_contents_match(self, cls, ops):
        tree = fresh(cls)
        ref: dict[int, int] = {}
        for op, key, value in ops:
            getattr(tree, op)(key, value) if op != "delete" else tree.delete(key)
            apply_ref(ref, op, key, value)
        tree.check_invariants()
        assert dict(tree.items()) == ref

    @given(ops=ops_strategy, probe=st.integers(0, 200))
    @settings(max_examples=60, deadline=None)
    def test_point_queries_match(self, cls, ops, probe):
        tree = fresh(cls)
        ref: dict[int, int] = {}
        for op, key, value in ops:
            getattr(tree, op)(key, value) if op != "delete" else tree.delete(key)
            apply_ref(ref, op, key, value)
        assert tree.get(probe) == ref.get(probe)

    @given(ops=ops_strategy)
    @settings(max_examples=40, deadline=None)
    def test_flush_all_is_invisible(self, cls, ops):
        tree = fresh(cls)
        ref: dict[int, int] = {}
        for op, key, value in ops:
            getattr(tree, op)(key, value) if op != "delete" else tree.delete(key)
            apply_ref(ref, op, key, value)
        before = dict(tree.items())
        tree.flush_all()
        tree.check_invariants()
        assert dict(tree.items()) == before == ref

    @given(ops=ops_strategy, lo=st.integers(0, 200), span=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_range_matches(self, cls, ops, lo, span):
        tree = fresh(cls)
        ref: dict[int, int] = {}
        for op, key, value in ops:
            getattr(tree, op)(key, value) if op != "delete" else tree.delete(key)
            apply_ref(ref, op, key, value)
        hi = lo + span
        expected = sorted((k, v) for k, v in ref.items() if lo <= k <= hi)
        assert tree.range(lo, hi) == expected


@given(keys=st.sets(st.integers(0, 5000), min_size=1, max_size=400))
@settings(max_examples=30, deadline=None)
def test_bulk_load_equals_insert_load(keys):
    pairs = [(k, k) for k in sorted(keys)]
    bulk = fresh(BeTree)
    bulk.bulk_load(pairs)
    inserted = fresh(BeTree)
    for k, v in pairs:
        inserted.insert(k, v)
    assert list(bulk.items()) == list(inserted.items())
