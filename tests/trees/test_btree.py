"""B-tree unit tests: CRUD, structure, IO accounting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TreeError
from repro.storage.ram import NullDevice
from repro.storage.stack import StorageStack
from repro.trees.btree import BTree, BTreeConfig
from repro.trees.sizing import EntryFormat


def make_tree(node_bytes=2048, cache_bytes=1 << 20, value_bytes=20):
    stack = StorageStack(NullDevice(), cache_bytes)
    cfg = BTreeConfig(node_bytes=node_bytes, fmt=EntryFormat(value_bytes=value_bytes))
    return BTree(stack, cfg), stack


class TestConfig:
    def test_capacities(self):
        cfg = BTreeConfig(node_bytes=4096)
        assert cfg.leaf_capacity >= 2
        assert cfg.internal_capacity >= 2

    def test_tiny_node_rejected(self):
        with pytest.raises(ConfigurationError):
            BTreeConfig(node_bytes=64)

    def test_bad_bulk_fill(self):
        with pytest.raises(ConfigurationError):
            BTreeConfig(node_bytes=4096, bulk_fill=0.01)


class TestCRUD:
    def test_empty_tree(self):
        tree, _ = make_tree()
        assert len(tree) == 0
        assert tree.get(42) is None
        assert 42 not in tree
        assert tree.height == 1

    def test_insert_get(self):
        tree, _ = make_tree()
        tree.insert(5, "five")
        assert tree.get(5) == "five"
        assert 5 in tree
        assert len(tree) == 1

    def test_overwrite(self):
        tree, _ = make_tree()
        tree.insert(5, "a")
        tree.insert(5, "b")
        assert tree.get(5) == "b"
        assert len(tree) == 1

    def test_delete_present(self):
        tree, _ = make_tree()
        tree.insert(1, "x")
        assert tree.delete(1) is True
        assert tree.get(1) is None
        assert len(tree) == 0

    def test_delete_absent(self):
        tree, _ = make_tree()
        tree.insert(1, "x")
        assert tree.delete(2) is False
        assert len(tree) == 1

    def test_many_inserts_match_dict(self):
        tree, _ = make_tree()
        rng = np.random.default_rng(1)
        ref = {}
        for k in rng.integers(0, 5000, size=3000):
            k = int(k)
            tree.insert(k, k * 7)
            ref[k] = k * 7
        tree.check_invariants()
        assert len(tree) == len(ref)
        for k in list(ref)[::11]:
            assert tree.get(k) == ref[k]

    def test_interleaved_insert_delete(self):
        tree, _ = make_tree()
        rng = np.random.default_rng(2)
        ref = {}
        for _ in range(4000):
            k = int(rng.integers(0, 800))
            if rng.random() < 0.6:
                tree.insert(k, k)
                ref[k] = k
            else:
                assert tree.delete(k) == (k in ref)
                ref.pop(k, None)
        tree.check_invariants()
        assert dict(tree.items()) == ref

    def test_delete_everything(self):
        tree, _ = make_tree()
        keys = list(range(0, 2000, 3))
        for k in keys:
            tree.insert(k, k)
        for k in keys:
            assert tree.delete(k)
        tree.check_invariants()
        assert len(tree) == 0
        assert tree.height == 1  # collapsed back to a lone leaf

    def test_sequential_inserts_stay_balanced(self):
        tree, _ = make_tree(node_bytes=1024)
        for k in range(3000):
            tree.insert(k, k)
        tree.check_invariants()
        # Balanced height ~ log_fanout(n).
        assert tree.height <= 8


class TestRangeQueries:
    def test_range_basic(self):
        tree, _ = make_tree()
        for k in range(0, 100, 2):
            tree.insert(k, k * 10)
        assert tree.range(10, 20) == [(k, k * 10) for k in range(10, 21, 2)]

    def test_range_empty_interval(self):
        tree, _ = make_tree()
        tree.insert(5, 5)
        assert tree.range(10, 2) == []
        assert tree.range(6, 7) == []

    def test_range_whole_tree(self):
        tree, _ = make_tree()
        keys = list(range(0, 3000, 7))
        for k in keys:
            tree.insert(k, k)
        assert tree.range(-100, 10**9) == [(k, k) for k in keys]

    def test_items_sorted(self):
        tree, _ = make_tree()
        rng = np.random.default_rng(3)
        for k in rng.permutation(500):
            tree.insert(int(k), int(k))
        got = list(tree.items())
        assert got == sorted(got)


class TestBulkLoad:
    def test_bulk_load_queryable(self):
        tree, _ = make_tree()
        pairs = [(i * 3, i) for i in range(5000)]
        tree.bulk_load(pairs)
        tree.check_invariants()
        assert len(tree) == 5000
        assert tree.get(9) == 3
        assert tree.get(10) is None

    def test_bulk_load_then_mutate(self):
        tree, _ = make_tree()
        tree.bulk_load([(i * 2, i) for i in range(2000)])
        tree.insert(1001, "odd")
        assert tree.delete(0)
        tree.check_invariants()
        assert tree.get(1001) == "odd"

    def test_bulk_load_requires_empty(self):
        tree, _ = make_tree()
        tree.insert(1, 1)
        with pytest.raises(TreeError):
            tree.bulk_load([(2, 2)])

    def test_bulk_load_requires_sorted_unique(self):
        tree, _ = make_tree()
        with pytest.raises(TreeError):
            tree.bulk_load([(2, 2), (1, 1)])
        tree2, _ = make_tree()
        with pytest.raises(TreeError):
            tree2.bulk_load([(1, 1), (1, 2)])

    def test_bulk_load_empty_list(self):
        tree, _ = make_tree()
        tree.bulk_load([])
        assert len(tree) == 0


class TestIOAccounting:
    def test_all_io_through_cache(self):
        stack = StorageStack(NullDevice(), cache_bytes=4096)  # ~2 nodes
        tree = BTree(stack, BTreeConfig(node_bytes=2048, fmt=EntryFormat(value_bytes=20)))
        for k in range(2000):
            tree.insert(k, k)
        dev = stack.device.stats
        assert dev.reads > 0 and dev.writes > 0  # cache pressure forced IO

    def test_node_bytes_ios(self):
        # Every IO the B-tree issues moves exactly node_bytes.
        stack = StorageStack(NullDevice(capacity_bytes=1 << 30, trace=True), cache_bytes=4096)
        tree = BTree(stack, BTreeConfig(node_bytes=2048, fmt=EntryFormat(value_bytes=20)))
        for k in range(500):
            tree.insert(k, k)
        sizes = {rec.nbytes for rec in stack.device.trace}
        assert sizes == {2048}

    def test_write_amp_grows_with_node_size(self):
        amps = []
        for node_bytes in (2048, 8192):
            stack = StorageStack(NullDevice(), cache_bytes=8192)
            tree = BTree(stack, BTreeConfig(node_bytes=node_bytes,
                                            fmt=EntryFormat(value_bytes=20)))
            rng = np.random.default_rng(0)
            for k in rng.integers(0, 10**9, size=3000):
                tree.insert(int(k), 1)
            stack.flush()
            amps.append(stack.device.stats.write_amplification(tree.user_bytes_modified))
        assert amps[1] > 1.5 * amps[0]  # Lemma 3: ~linear in B

    def test_user_bytes_modified_counts(self):
        tree, _ = make_tree()
        tree.insert(1, 1)
        tree.insert(2, 2)
        tree.delete(1)
        assert tree.user_bytes_modified == 3 * tree.config.fmt.entry_bytes


class TestGetMany:
    """Batched descent: same answers as get, one batched read per level."""

    def _loaded(self, n=500, **kw):
        tree, stack = make_tree(**kw)
        pairs = [(i * 7, f"v{i}") for i in range(n)]
        tree.bulk_load(pairs)
        return tree, stack, pairs

    def test_matches_pointwise_get(self):
        tree, _, pairs = self._loaded()
        keys = [k for k, _ in pairs[::17]] + [1, 2, 3, 10**9]
        assert tree.get_many(keys) == [tree.get(k) for k in keys]

    def test_duplicates_and_empty(self):
        tree, _, pairs = self._loaded(n=50)
        k = pairs[3][0]
        assert tree.get_many([k, k, k]) == [tree.get(k)] * 3
        assert tree.get_many([]) == []

    def test_batched_descent_costs_no_more_io(self):
        from repro.models.affine import AffineModel
        from repro.storage.ideal import AffineDevice

        def build():
            dev = AffineDevice(AffineModel(1e-6, setup_seconds=1e-3))
            stack = StorageStack(dev, cache_bytes=8 << 10)
            tree = BTree(stack, BTreeConfig(node_bytes=1024))
            tree.bulk_load([(i * 3, i) for i in range(3000)])
            stack.drop_cache()
            return tree, stack

        keys = [i * 3 for i in range(0, 3000, 91)]
        serial_tree, serial_stack = build()
        serial = [serial_tree.get(k) for k in keys]
        serial_io = serial_stack.io_seconds

        batched_tree, batched_stack = build()
        assert batched_tree.get_many(keys) == serial
        # Shared ancestors dedup: the batch can only save IO, never add.
        assert batched_stack.io_seconds <= serial_io + 1e-12
