"""Bε-tree unit tests: messages, flushing, CRUD, structure, IO accounting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TreeError
from repro.storage.ram import NullDevice
from repro.storage.stack import StorageStack
from repro.trees.betree import BeTree, BeTreeConfig
from repro.trees.betree.messages import Message, MessageOp, apply_messages
from repro.trees.betree.node import SegmentBuffer
from repro.trees.sizing import EntryFormat


def make_tree(node_bytes=4096, fanout=4, cache_bytes=1 << 20, value_bytes=20):
    stack = StorageStack(NullDevice(), cache_bytes)
    cfg = BeTreeConfig(
        node_bytes=node_bytes, fanout=fanout, fmt=EntryFormat(value_bytes=value_bytes)
    )
    return BeTree(stack, cfg), stack


class TestMessages:
    def test_apply_insert(self):
        v, present = apply_messages(None, False, [Message(1, MessageOp.INSERT, 5, "x")])
        assert (v, present) == ("x", True)

    def test_apply_delete(self):
        v, present = apply_messages("x", True, [Message(1, MessageOp.DELETE, 5)])
        assert present is False

    def test_apply_upsert_chain(self):
        msgs = [
            Message(1, MessageOp.UPSERT, 5, 10),
            Message(2, MessageOp.UPSERT, 5, 7),
        ]
        v, present = apply_messages(None, False, msgs)
        assert (v, present) == (17, True)

    def test_delete_then_upsert_restarts_from_zero(self):
        msgs = [
            Message(1, MessageOp.DELETE, 5),
            Message(2, MessageOp.UPSERT, 5, 3),
        ]
        v, present = apply_messages(100, True, msgs)
        assert (v, present) == (3, True)

    def test_out_of_order_rejected(self):
        msgs = [Message(2, MessageOp.INSERT, 5, "a"), Message(1, MessageOp.DELETE, 5)]
        with pytest.raises(TreeError):
            apply_messages(None, False, msgs)

    def test_ordering_by_seq(self):
        assert Message(1, MessageOp.INSERT, 9) < Message(2, MessageOp.DELETE, 1)


class TestSegmentBuffer:
    def test_add_count(self):
        seg = SegmentBuffer()
        seg.add(Message(1, MessageOp.INSERT, 5, "a"))
        seg.add(Message(2, MessageOp.INSERT, 5, "b"))
        seg.add(Message(3, MessageOp.INSERT, 7, "c"))
        assert seg.count == 3 == len(seg)
        assert [m.value for m in seg.for_key(5)] == ["a", "b"]

    def test_take_sorted_drains(self):
        seg = SegmentBuffer()
        for s in (3, 1, 2):
            seg.add(Message(s, MessageOp.INSERT, s * 10))
        out = seg.take_sorted()
        assert [m.seq for m in out] == [1, 2, 3]
        assert seg.count == 0

    def test_extract_ge(self):
        seg = SegmentBuffer()
        for k in (1, 5, 9):
            seg.add(Message(k, MessageOp.INSERT, k))
        right = seg.extract_ge(5)
        assert sorted(right.msgs) == [5, 9]
        assert sorted(seg.msgs) == [1]
        assert seg.count == 1 and right.count == 2


class TestConfig:
    def test_fanout_from_epsilon(self):
        cfg = BeTreeConfig(node_bytes=1 << 16, fanout=None, epsilon=0.5,
                           fmt=EntryFormat(value_bytes=20))
        assert cfg.target_fanout == pytest.approx(np.sqrt(cfg.leaf_capacity), rel=0.1)

    def test_epsilon_validation(self):
        with pytest.raises(ConfigurationError):
            BeTreeConfig(epsilon=1.5, fanout=None)

    def test_fanout_too_big_for_node(self):
        with pytest.raises(ConfigurationError):
            BeTreeConfig(node_bytes=2048, fanout=500)

    def test_buffer_budget_positive(self):
        cfg = BeTreeConfig(node_bytes=1 << 20, fanout=16)
        assert cfg.buffer_budget_bytes > (1 << 20) // 2


class TestCRUD:
    def test_empty(self):
        tree, _ = make_tree()
        assert tree.get(1) is None
        assert len(tree) == 0

    def test_insert_visible_while_buffered(self):
        tree, _ = make_tree(node_bytes=1 << 14)
        for k in range(500):
            tree.insert(k, k)
        # Many messages are still in buffers, but queries see them.
        for k in range(0, 500, 17):
            assert tree.get(k) == k

    def test_delete_visible_while_buffered(self):
        tree, _ = make_tree()
        for k in range(200):
            tree.insert(k, k)
        tree.delete(100)
        assert tree.get(100) is None
        assert 100 not in tree

    def test_upsert_semantics(self):
        tree, _ = make_tree()
        tree.upsert(5, 10)       # absent -> starts at 0
        assert tree.get(5) == 10
        tree.upsert(5, -3)
        assert tree.get(5) == 7
        tree.insert(5, 100)
        tree.upsert(5, 1)
        assert tree.get(5) == 101

    def test_random_ops_match_dict(self):
        tree, _ = make_tree()
        rng = np.random.default_rng(0)
        ref = {}
        for _ in range(6000):
            k = int(rng.integers(0, 1200))
            r = rng.random()
            if r < 0.55:
                tree.insert(k, k)
                ref[k] = k
            elif r < 0.8:
                tree.delete(k)
                ref.pop(k, None)
            else:
                tree.upsert(k, 1)
                ref[k] = ref.get(k, 0) + 1
        tree.check_invariants()
        assert dict(tree.items()) == ref

    def test_flush_all_preserves_contents(self):
        tree, _ = make_tree()
        rng = np.random.default_rng(1)
        ref = {}
        for k in rng.integers(0, 3000, size=4000):
            k = int(k)
            tree.insert(k, k)
            ref[k] = k
        tree.flush_all()
        tree.check_invariants()
        assert dict(tree.items()) == ref
        # After flush_all, no buffered messages remain anywhere.
        def walk(nid):
            node = tree._get(nid)
            if node.is_leaf:
                return 0
            return node.buffered_messages() + sum(walk(c) for c in node.children)
        assert walk(tree.root_id) == 0


class TestRange:
    def test_range_sees_buffered_and_applied(self):
        tree, _ = make_tree()
        for k in range(0, 1000, 2):
            tree.insert(k, k)
        tree.delete(500)
        tree.upsert(502, 5)
        got = dict(tree.range(495, 510))
        assert 500 not in got
        assert got[502] == 507
        assert got[496] == 496

    def test_range_matches_reference(self):
        tree, _ = make_tree()
        rng = np.random.default_rng(2)
        ref = {}
        for k in rng.integers(0, 2000, size=3000):
            k = int(k)
            tree.insert(k, k * 2)
            ref[k] = k * 2
        lo, hi = 300, 700
        expected = sorted((k, v) for k, v in ref.items() if lo <= k <= hi)
        assert tree.range(lo, hi) == expected

    def test_inverted_range_empty(self):
        tree, _ = make_tree()
        tree.insert(1, 1)
        assert tree.range(5, 2) == []


class TestStructure:
    def test_fanout_bounded(self):
        tree, _ = make_tree(node_bytes=4096, fanout=4)
        for k in range(8000):
            tree.insert(k, k)
        tree.check_invariants()  # includes fanout <= max_children

    def test_all_leaves_same_depth(self):
        tree, _ = make_tree(node_bytes=2048, fanout=3)
        rng = np.random.default_rng(3)
        for k in rng.integers(0, 10**6, size=5000):
            tree.insert(int(k), 0)
        tree.check_invariants()

    def test_bulk_load(self):
        tree, _ = make_tree()
        pairs = [(i * 3, i) for i in range(4000)]
        tree.bulk_load(pairs)
        tree.check_invariants()
        assert tree.get(9) == 3
        assert len(tree) == 4000

    def test_bulk_load_then_ops(self):
        tree, _ = make_tree()
        tree.bulk_load([(i * 2, i) for i in range(3000)])
        tree.insert(999, "odd")
        tree.delete(0)
        tree.check_invariants()
        assert tree.get(999) == "odd"
        assert tree.get(0) is None

    def test_bulk_load_requires_pristine(self):
        tree, _ = make_tree()
        tree.insert(1, 1)
        with pytest.raises(TreeError):
            tree.bulk_load([(5, 5)])


class TestWriteOptimization:
    def test_fewer_write_ios_than_btree(self):
        """The headline WOD property: Bε inserts touch the device less."""
        from repro.trees.btree import BTree, BTreeConfig

        rng_keys = np.random.default_rng(4).integers(0, 10**9, size=5000)

        stack_b = StorageStack(NullDevice(), cache_bytes=1 << 14)
        btree = BTree(stack_b, BTreeConfig(node_bytes=4096, fmt=EntryFormat(value_bytes=20)))
        for k in rng_keys:
            btree.insert(int(k), 1)
        stack_b.flush()

        stack_be = StorageStack(NullDevice(), cache_bytes=1 << 14)
        betree = BeTree(
            stack_be,
            BeTreeConfig(node_bytes=4096, fanout=4, fmt=EntryFormat(value_bytes=20)),
        )
        for k in rng_keys:
            betree.insert(int(k), 1)
        stack_be.flush()

        assert stack_be.device.stats.writes < stack_b.device.stats.writes / 2

    def test_query_cost_bounded_by_height_ios(self):
        stack = StorageStack(NullDevice(capacity_bytes=1 << 30, trace=True), cache_bytes=4096)
        tree = BeTree(
            stack, BeTreeConfig(node_bytes=4096, fanout=4, fmt=EntryFormat(value_bytes=20))
        )
        for k in range(5000):
            tree.insert(k, k)
        stack.drop_cache()
        n_before = stack.device.stats.reads
        tree.get(2500)
        reads = stack.device.stats.reads - n_before
        # One read per level, bounded by a loose height estimate.
        assert reads <= 8
