"""``put_many`` serial-identity: batched inserts must equal insert loops.

Every tree's ``put_many`` contract is the write-side twin of the batched
read paths: device traffic, cache statistics, structural state, and (for
the Bε-trees) message sequence numbers must be *identical* to calling
``insert`` once per pair — the batch removes Python overhead, never
semantics.  Devices with real timing (the default simulated HDD) make
the comparison bit-exact in simulated seconds, not just op counts.
"""

import numpy as np
import pytest

from repro.obs import OBS
from repro.storage.hdd import HDDGeometry, SimulatedHDD
from repro.storage.stack import StorageStack
from repro.trees.betree import BeTree, BeTreeConfig, OptimizedBeTree
from repro.trees.btree import BTree, BTreeConfig
from repro.trees.cob import BufferedCOBTree, COBConfig, COBTree
from repro.trees.cola import COLA, COLAConfig
from repro.trees.lsm import LSMConfig, LSMTree
from repro.trees.sizing import EntryFormat


def _pairs(n=4000, universe=60_000, seed=13):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, universe, size=n, dtype=np.int64)
    return [(int(k), int(k) * 5 + 1) for k in keys]


def _hdd():
    return SimulatedHDD(HDDGeometry(capacity_bytes=1 << 30), seed=1)


def _make_btree():
    stack = StorageStack(_hdd(), cache_bytes=1 << 18)
    return BTree(stack, BTreeConfig(node_bytes=4096)), stack


def _make_betree():
    stack = StorageStack(_hdd(), cache_bytes=1 << 18)
    cfg = BeTreeConfig(node_bytes=16384, fanout=4, fmt=EntryFormat(value_bytes=20))
    return BeTree(stack, cfg), stack


def _make_opt_betree():
    stack = StorageStack(_hdd(), cache_bytes=1 << 18)
    cfg = BeTreeConfig(node_bytes=16384, fanout=4, fmt=EntryFormat(value_bytes=20))
    return OptimizedBeTree(stack, cfg), stack


def _make_lsm():
    dev = _hdd()
    return LSMTree(dev, LSMConfig(memtable_bytes=1 << 12, sstable_bytes=1 << 14)), dev


def _make_cola():
    dev = _hdd()
    return COLA(dev, COLAConfig(fmt=EntryFormat(value_bytes=20))), dev


def _make_cob():
    dev = _hdd()
    return COBTree(dev, COBConfig(fmt=EntryFormat(value_bytes=20))), dev


def _make_buffered_cob():
    dev = _hdd()
    return BufferedCOBTree(dev, COBConfig(fmt=EntryFormat(value_bytes=20))), dev


TREES = {
    "btree": _make_btree,
    "betree": _make_betree,
    "betree-optimized": _make_opt_betree,
    "lsm": _make_lsm,
    # PR 7 left COLA out of the batched fast path; it and the cob tier
    # now carry the same serial-identity contract as every other tree.
    "cola": _make_cola,
    "cob": _make_cob,
    "cob-buffered": _make_buffered_cob,
}


def _accounting(tree, backing):
    device = backing.device if isinstance(backing, StorageStack) else backing
    acct = {
        "clock": device.clock,
        "stats": vars(device.stats).copy(),
        "user_bytes": tree.user_bytes_modified,
    }
    if isinstance(backing, StorageStack):
        acct["io_seconds"] = backing.io_seconds
        acct["cache"] = (backing.cache.stats.hits, backing.cache.stats.misses)
    return acct


@pytest.mark.parametrize("name", TREES)
def test_put_many_identical_to_insert_loop(name):
    pairs = _pairs()
    serial_tree, serial_backing = TREES[name]()
    for k, v in pairs:
        serial_tree.insert(k, v)
    batch_tree, batch_backing = TREES[name]()
    batch_tree.put_many(pairs)
    assert _accounting(batch_tree, batch_backing) == _accounting(
        serial_tree, serial_backing
    )
    if hasattr(batch_tree, "check_invariants"):
        batch_tree.check_invariants()
    if hasattr(batch_tree, "items"):
        assert list(batch_tree.items()) == list(serial_tree.items())


@pytest.mark.parametrize("name", ["betree", "betree-optimized"])
def test_put_many_preserves_sequence_numbers(name):
    # Later deletes/upserts must see exactly the sequence counter a serial
    # loop leaves behind, or message ordering would diverge downstream.
    pairs = _pairs(n=1500)
    serial_tree, _ = TREES[name]()
    for k, v in pairs:
        serial_tree.insert(k, v)
    batch_tree, _ = TREES[name]()
    batch_tree.put_many(pairs)
    assert batch_tree._next_seq == serial_tree._next_seq


@pytest.mark.parametrize("name", TREES)
def test_put_many_empty_and_iterator_inputs(name):
    tree, backing = TREES[name]()
    tree.put_many([])
    tree.put_many(iter([(1, 2), (3, 4)]))
    assert tree.get(1) == 2 and tree.get(3) == 4


@pytest.mark.parametrize("name", ["cola", "cob", "cob-buffered"])
@pytest.mark.parametrize("obs_on", [False, True])
def test_batched_ops_identical_with_obs_on_off(name, obs_on, monkeypatch):
    # The PR 7 regression gate for the trees that missed the batched fast
    # path: put_many AND get_many must leave byte-identical device stats
    # to the per-op loops, with observability recording on or off.
    monkeypatch.setattr(OBS, "enabled", obs_on)
    pairs = _pairs(n=1200, universe=20_000)
    query_keys = [k for k, _ in _pairs(n=400, universe=25_000, seed=29)]

    serial_tree, serial_dev = TREES[name]()
    for k, v in pairs:
        serial_tree.insert(k, v)
    serial_hits = [serial_tree.get(k) for k in query_keys]

    batch_tree, batch_dev = TREES[name]()
    batch_tree.put_many(pairs)
    batch_hits = batch_tree.get_many(query_keys)

    assert batch_hits == serial_hits
    assert batch_dev.clock == serial_dev.clock  # exact float equality
    assert vars(batch_dev.stats) == vars(serial_dev.stats)


def test_put_many_interleaves_with_serial_ops():
    # Mixing batched and serial mutations must match an all-serial run.
    pairs = _pairs(n=2000)
    serial_tree, serial_stack = _make_opt_betree()
    batch_tree, batch_stack = _make_opt_betree()
    for k, v in pairs[:500]:
        serial_tree.insert(k, v)
        batch_tree.insert(k, v)
    for k, v in pairs[500:1500]:
        serial_tree.insert(k, v)
    batch_tree.put_many(pairs[500:1500])
    serial_tree.delete(pairs[0][0])
    batch_tree.delete(pairs[0][0])
    for k, v in pairs[1500:]:
        serial_tree.insert(k, v)
    batch_tree.put_many(pairs[1500:])
    assert _accounting(batch_tree, batch_stack) == _accounting(
        serial_tree, serial_stack
    )
    assert list(batch_tree.items()) == list(serial_tree.items())
