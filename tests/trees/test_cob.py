"""Cache-oblivious tier tests: PMA, COBTree, and the buffered variant.

The model-based tests drive each structure against a plain dict and
assert identical contents after every phase; the accounting tests pin
the IO conventions (every structural mutation and uncached probe charges
device traffic, pinned-top searches are free).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, KeyOrderError, TreeError
from repro.storage.ram import NullDevice
from repro.trees.cob import EMPTY, BufferedCOBTree, COBConfig, COBTree, PackedMemoryArray
from repro.trees.sizing import EntryFormat


def _null():
    return NullDevice(capacity_bytes=1 << 30)


def make_pma(initial_slots=64, **kwargs):
    dev = _null()
    return PackedMemoryArray(dev, entry_bytes=28, initial_slots=initial_slots, **kwargs), dev


def make_tree(cls=COBTree, ram_bytes=1 << 20, **kwargs):
    cfg = COBConfig(
        fmt=EntryFormat(value_bytes=20),
        ram_bytes=ram_bytes,
        initial_slots=64,
        **kwargs,
    )
    dev = _null()
    return cls(dev, cfg), dev


class TestPMAConfig:
    def test_validation(self):
        dev = _null()
        with pytest.raises(ConfigurationError):
            PackedMemoryArray(dev, entry_bytes=0)
        with pytest.raises(ConfigurationError):
            PackedMemoryArray(dev, entry_bytes=28, block_bytes=0)
        with pytest.raises(ConfigurationError):
            PackedMemoryArray(dev, entry_bytes=28, initial_slots=48)  # not 2^k
        with pytest.raises(ConfigurationError):
            PackedMemoryArray(dev, entry_bytes=28, initial_slots=4)  # < 8
        with pytest.raises(ConfigurationError):
            PackedMemoryArray(dev, entry_bytes=28, max_density=1.5)

    def test_cob_config_validation(self):
        with pytest.raises(ConfigurationError):
            COBConfig(block_bytes=0)
        with pytest.raises(ConfigurationError):
            COBConfig(initial_slots=100)
        with pytest.raises(ConfigurationError):
            COBConfig(fanout=1)
        with pytest.raises(ConfigurationError):
            COBConfig(buffer_bytes=0)
        with pytest.raises(ConfigurationError):
            COBConfig(rebuild_factor=0.5)
        with pytest.raises(ConfigurationError):
            # Weight trigger unreachable when rebuild_factor >= fanout.
            COBConfig(fanout=4, rebuild_factor=4.0)

    def test_sentinel_key_rejected(self):
        pma, _ = make_pma()
        with pytest.raises(TreeError):
            pma.insert(int(EMPTY), 0)


class TestPMAStructure:
    def _insert_via_search(self, pma, key):
        """Successor slot by linear scan (the search layer in miniature)."""
        occupied = np.flatnonzero(pma.keys != EMPTY)
        larger = occupied[pma.keys[occupied] >= key]
        slot = int(larger[0]) if larger.size else pma.capacity - 1
        pma.insert(key, slot)

    def test_sorted_after_random_inserts(self):
        pma, _ = make_pma()
        rng = np.random.default_rng(0)
        keys = rng.choice(10_000, size=200, replace=False)
        for k in keys:
            self._insert_via_search(pma, int(k))
            pma.check_invariants()
        assert pma.n == 200
        assert list(pma.present_keys()) == sorted(int(k) for k in keys)

    def test_growth_doubles_capacity(self):
        pma, _ = make_pma(initial_slots=8)
        for k in range(1, 60):
            self._insert_via_search(pma, k)
        assert pma.resizes >= 1
        assert pma.capacity >= 64
        assert pma.n == 59
        pma.check_invariants()

    def test_density_band_across_growth(self):
        # Window thresholds steer rebalancing, not a hard global cap: a
        # segment may fill completely before its ancestors overflow.  The
        # durable guarantees are (a) capacity is never exceeded and (b)
        # right after a resize the array is at least half the max density
        # (so growth is geometric, not thrashing).
        pma, _ = make_pma(initial_slots=16, max_density=0.7)
        resizes_seen = 0
        for k in range(1, 200):
            self._insert_via_search(pma, k)
            assert pma.n <= pma.capacity
            if pma.resizes > resizes_seen:
                resizes_seen = pma.resizes
                assert pma.n >= pma.max_density / 2 * pma.capacity
        assert resizes_seen >= 3
        pma.check_invariants()

    def test_delete_blanks_slot(self):
        pma, _ = make_pma()
        for k in (10, 20, 30):
            self._insert_via_search(pma, k)
        slot = int(np.flatnonzero(pma.keys == 20)[0])
        pma.delete(slot)
        assert pma.n == 2
        assert list(pma.present_keys()) == [10, 30]
        with pytest.raises(TreeError):
            pma.delete(slot)  # already blank
        pma.check_invariants()

    def test_bulk_insert_one_rebalance(self):
        pma, _ = make_pma(initial_slots=64)
        for k in (100, 500):
            self._insert_via_search(pma, k)
        before = pma.rebalances
        run = np.array([200, 300, 400], dtype=np.int64)
        slot = int(np.flatnonzero(pma.keys == 500)[0])
        pma.bulk_insert(run, slot, slot)
        assert pma.rebalances == before + 1
        assert list(pma.present_keys()) == [100, 200, 300, 400, 500]
        pma.check_invariants()

    def test_bulk_insert_rejects_unsorted(self):
        pma, _ = make_pma()
        with pytest.raises(TreeError):
            pma.bulk_insert(np.array([3, 1], dtype=np.int64), 0, 0)

    def test_load_and_reload_guard(self):
        pma, _ = make_pma(initial_slots=8)
        keys = np.arange(1, 50, dtype=np.int64) * 3
        pma.load(keys)
        assert pma.n == keys.size
        assert list(pma.present_keys()) == list(keys)
        pma.check_invariants()
        with pytest.raises(TreeError):
            pma.load(keys)

    def test_load_rejects_unsorted(self):
        pma, _ = make_pma()
        with pytest.raises(TreeError):
            pma.load(np.array([5, 2], dtype=np.int64))

    def test_charges_io(self):
        pma, dev = make_pma()
        self._insert_via_search(pma, 42)
        assert dev.stats.writes >= 1  # a rebalance rewrites its window


class TestCOBTree:
    def test_get_put_roundtrip(self):
        tree, _ = make_tree()
        for k in (5, 1, 9, 3):
            tree.put(k, k * 10)
        assert tree.get(5) == 50
        assert tree.get(2) is None
        assert 9 in tree
        assert 4 not in tree
        tree.check_invariants()

    def test_overwrite_keeps_count(self):
        tree, _ = make_tree()
        tree.put(7, "a")
        tree.put(7, "b")
        assert len(tree) == 1
        assert tree.get(7) == "b"
        tree.check_invariants()

    def test_model_based_random_ops(self):
        tree, _ = make_tree()
        model = {}
        rng = np.random.default_rng(1)
        for _ in range(500):
            k = int(rng.integers(0, 300))
            op = rng.integers(0, 4)
            if op < 2:
                v = int(rng.integers(0, 10**6))
                tree.put(k, v)
                model[k] = v
            elif op == 2:
                assert tree.get(k) == model.get(k)
            elif k in model:
                tree.delete(k)
                del model[k]
        tree.check_invariants()
        assert list(tree.items()) == sorted(model.items())

    def test_growth_through_index_rebuild(self):
        tree, _ = make_tree()
        for k in range(1, 400):
            tree.put(k, k)
        assert tree.pma.resizes >= 1
        assert tree.index_rebuilds >= 1
        assert len(tree) == 399
        tree.check_invariants()

    def test_delete_missing_raises(self):
        tree, _ = make_tree()
        tree.put(1, 1)
        with pytest.raises(TreeError):
            tree.delete(2)

    def test_range_and_items(self):
        tree, _ = make_tree()
        for k in range(0, 100, 7):
            tree.put(k, -k)
        assert tree.range(10, 30) == [(14, -14), (21, -21), (28, -28)]
        assert tree.range(30, 10) == []
        assert tree.range(200, 300) == []
        assert list(tree.items()) == [(k, -k) for k in range(0, 100, 7)]

    def test_bulk_load_matches_serial(self):
        pairs = [(k, k * 2) for k in range(1, 200, 3)]
        loaded, _ = make_tree()
        loaded.bulk_load(pairs)
        serial, _ = make_tree()
        for k, v in pairs:
            serial.put(k, v)
        assert list(loaded.items()) == list(serial.items())
        loaded.check_invariants()
        with pytest.raises(TreeError):
            loaded.bulk_load(pairs)
        bad, _ = make_tree()
        with pytest.raises(KeyOrderError):
            bad.bulk_load([(3, 0), (1, 0)])

    def test_put_bulk_matches_serial_contents(self):
        base = [(k, k) for k in range(0, 50, 5)]
        bulk_tree, _ = make_tree()
        bulk_tree.bulk_load(base)
        serial, _ = make_tree()
        serial.bulk_load(base)
        batch = [(k, k * 3) for k in range(1, 40, 4)]
        bulk_tree.put_bulk(batch)
        for k, v in batch:
            serial.put(k, v)
        assert list(bulk_tree.items()) == list(serial.items())
        bulk_tree.check_invariants()
        with pytest.raises(KeyOrderError):
            bulk_tree.put_bulk([(9, 0), (2, 0)])

    def test_items_cover_extreme_keys(self):
        # Regression: items()/range() used +/-2^62 pseudo-infinities, so
        # legally stored keys beyond them vanished from iteration.
        lo_key, hi_key = -(1 << 62) - 7, (1 << 62) + 5
        tree, _ = make_tree()
        tree.put(hi_key, "hi")
        tree.put(lo_key, "lo")
        tree.put((1 << 63) - 1, "max")
        assert list(tree.items()) == [
            (lo_key, "lo"),
            (hi_key, "hi"),
            ((1 << 63) - 1, "max"),
        ]
        assert len(tree) == 3
        tree.check_invariants()

    def test_put_bulk_mixed_charges_outside_overwrites(self):
        # Regression: in a mixed fresh/overwrite batch, overwritten keys
        # outside the rebalanced window used to update only the value
        # dict, with zero device traffic.
        pairs = [(k, 0) for k in range(0, 1000, 10)]
        fresh_only, dev_f = make_tree()
        fresh_only.bulk_load(pairs)
        mixed, dev_m = make_tree()
        mixed.bulk_load(pairs)
        base_f = dev_f.stats.bytes_written
        base_m = dev_m.stats.bytes_written
        fresh_only.put_bulk([(501, "new")])
        mixed.put_bulk([(0, "x"), (501, "new"), (990, "y")])
        assert dev_m.stats.bytes_written - base_m > dev_f.stats.bytes_written - base_f
        assert mixed.get(0) == "x" and mixed.get(990) == "y"
        mixed.check_invariants()

    def test_put_bulk_pure_overwrite(self):
        tree, _ = make_tree()
        tree.bulk_load([(k, 0) for k in range(10)])
        rebalances = tree.pma.rebalances
        tree.put_bulk([(2, "x"), (5, "y")])
        assert tree.pma.rebalances == rebalances  # no structural change
        assert tree.get(2) == "x" and tree.get(5) == "y"
        tree.check_invariants()

    def test_queries_charge_io_beyond_pinned_top(self):
        # A tiny RAM budget leaves most index levels unpinned: queries on
        # a large-enough tree must touch the device.
        tree, dev = make_tree(ram_bytes=64)
        tree.bulk_load([(k, k) for k in range(2000)])
        reads_before = dev.stats.reads
        tree.get(1234)
        assert dev.stats.reads > reads_before

    def test_pinned_index_makes_searches_free(self):
        # A RAM budget bigger than the whole index: query misses read
        # nothing at all, hits only the data block.
        tree, dev = make_tree(ram_bytes=1 << 24)
        tree.bulk_load([(k, k) for k in range(500)])
        reads_before = dev.stats.reads
        assert tree.get(10**9) is None  # miss: no data block either
        assert dev.stats.reads == reads_before

    def test_no_node_size_knob(self):
        # block_bytes prices IO but never changes the structure.
        small, _ = make_tree(block_bytes=512)
        large, _ = make_tree(block_bytes=1 << 20)
        for k in range(1, 300, 2):
            small.put(k, k)
            large.put(k, k)
        assert np.array_equal(small.pma.keys, large.pma.keys)
        assert small.pma.capacity == large.pma.capacity

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=-(10**6), max_value=10**6),
            min_size=1,
            max_size=120,
        )
    )
    def test_hypothesis_matches_dict(self, keys):
        tree, _ = make_tree()
        model = {}
        for k in keys:
            tree.put(k, k ^ 1)
            model[k] = k ^ 1
        tree.check_invariants()
        assert list(tree.items()) == sorted(model.items())
        for k in keys:
            assert tree.get(k) == model[k]


class TestBufferedCOBTree:
    def test_roundtrip_through_buffers(self):
        tree, _ = make_tree(BufferedCOBTree)
        for k in (5, 1, 9):
            tree.put(k, k * 10)
        # Unflushed messages answer queries.
        assert tree.get(5) == 50
        tree.flush_all()
        assert tree.get(5) == 50
        assert tree.get(4) is None
        tree.check_invariants()

    def test_matches_dict_with_deletes(self):
        tree, _ = make_tree(BufferedCOBTree, buffer_bytes=1 << 10)
        model = {}
        rng = np.random.default_rng(3)
        for _ in range(800):
            k = int(rng.integers(0, 250))
            if rng.integers(0, 3) < 2:
                v = int(rng.integers(0, 10**6))
                tree.put(k, v)
                model[k] = v
            else:
                tree.delete(k)
                model.pop(k, None)
        assert sorted(tree.items()) == sorted(model.items())
        tree.flush_all()
        tree.check_invariants()
        assert sorted(tree.items()) == sorted(model.items())

    def test_small_buffers_force_flushes(self):
        tree, _ = make_tree(BufferedCOBTree, buffer_bytes=512)
        for k in range(300):
            tree.put(k, k)
        assert tree.flushes > 0
        assert len(tree.base) > 0
        tree.check_invariants()

    def test_skew_triggers_splitter_rebuild(self):
        tree, _ = make_tree(
            BufferedCOBTree, fanout=4, buffer_bytes=512, rebuild_factor=1.5
        )
        tree.bulk_load([(k, k) for k in range(0, 4000, 10)])
        assert len(tree.splitters) == 3  # seeded at load
        rebuilds = tree.splitter_rebuilds
        # Hammer one narrow key range: its bucket absorbs far more than
        # its fair share and must trigger a weight-balanced rebuild.
        for i in range(2000):
            tree.put(4000 + (i % 7), i)
        assert tree.splitter_rebuilds > rebuilds
        tree.check_invariants()

    def test_bulk_load_and_guard(self):
        pairs = [(k, k) for k in range(1, 100, 3)]
        tree, _ = make_tree(BufferedCOBTree)
        tree.bulk_load(pairs)
        assert sorted(tree.items()) == pairs
        tree.put(0, 0)
        with pytest.raises(TreeError):
            tree.bulk_load(pairs)

    def test_range_merges_buffers(self):
        tree, _ = make_tree(BufferedCOBTree)
        tree.bulk_load([(k, "old") for k in range(0, 40, 4)])
        tree.put(8, "new")
        tree.delete(12)
        got = tree.range(0, 20)
        assert (8, "new") in got
        assert all(k != 12 for k, _ in got)

    def test_append_reresolves_bucket_after_seeding_flush(self):
        # Regression: the overflow flush inside _append can seed (or
        # rebuild) the splitters, remapping the key space; the pending
        # message must land in the bucket that owns the key *after* the
        # flush, or it becomes unreachable.
        tree, _ = make_tree(
            BufferedCOBTree, fanout=4, buffer_bytes=512, rebuild_factor=3.9
        )
        k = 0
        while not tree.splitters:  # first overflow flush seeds them
            tree.put(k, k)
            k += 1
        tree.put(10_000_000, -1)
        assert tree.get(10_000_000) == -1
        tree.check_invariants()
        assert sorted(tree.items()) == sorted(
            [(i, i) for i in range(k)] + [(10_000_000, -1)]
        )

    def test_buffered_extreme_keys_visible(self):
        # Regression: bucket bounds used +/-2^62 pseudo-infinities, so a
        # key beyond them tripped check_invariants and vanished from
        # items() even though get() found it.
        big = (1 << 62) + 5
        tree, _ = make_tree(BufferedCOBTree)
        tree.put(big, 1)
        tree.check_invariants()  # bucket 0 owns the whole key domain
        assert sorted(tree.items()) == [(big, 1)]
        tree.flush_all()
        assert tree.get(big) == 1
        assert sorted(tree.items()) == [(big, 1)]

    def test_buffered_inserts_cost_less_io_than_base(self):
        # The Theorem 9 trade: buffering makes the insert path cheaper
        # (fewer, bigger PMA rebalances) at some query-read cost.
        pairs = [(int(k), 0) for k in np.random.default_rng(5).permutation(3000)]
        base, base_dev = make_tree(COBTree)
        base.put_many(pairs)
        buf, buf_dev = make_tree(BufferedCOBTree)
        buf.put_many(pairs)
        buf.flush_all()
        assert buf_dev.stats.bytes_written < base_dev.stats.bytes_written
        assert sorted(buf.items()) == sorted(base.items())
