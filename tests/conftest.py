"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.affine import AffineModel
from repro.models.pdam import PDAMModel
from repro.storage.hdd import HDDGeometry, SimulatedHDD
from repro.storage.ideal import AffineDevice, PDAMDevice
from repro.storage.ram import NullDevice
from repro.storage.ssd import SSDGeometry, SimulatedSSD
from repro.storage.stack import StorageStack
from repro.trees.sizing import EntryFormat


@pytest.fixture
def rng():
    """A deterministic RNG for test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_fmt():
    """An entry format with small values so tiny nodes hold many entries."""
    return EntryFormat(key_bytes=8, value_bytes=20)


@pytest.fixture
def null_stack():
    """A storage stack over a free device (logic tests)."""
    return StorageStack(NullDevice(), cache_bytes=1 << 20)


@pytest.fixture
def tiny_cache_stack():
    """A storage stack whose cache holds only a couple of nodes."""
    return StorageStack(NullDevice(), cache_bytes=12 << 10)


@pytest.fixture
def affine_model():
    return AffineModel(alpha=1e-6, setup_seconds=0.01)


@pytest.fixture
def affine_device(affine_model):
    return AffineDevice(affine_model, capacity_bytes=1 << 30)


@pytest.fixture
def pdam_device():
    return PDAMDevice(PDAMModel(parallelism=4, block_bytes=4096), capacity_bytes=1 << 30)


@pytest.fixture
def hdd():
    return SimulatedHDD(HDDGeometry(capacity_bytes=1 << 30), seed=7)


@pytest.fixture
def ssd():
    return SimulatedSSD(SSDGeometry(capacity_bytes=1 << 30))
