"""Engine behaviour: suppressions, selection, exemptions, parallel runs."""

import textwrap

from repro.lint import LintConfig, collect_files, lint_paths, lint_source
from repro.lint.engine import PARSE_ERROR_CODE

VIOLATION = textwrap.dedent(
    """
    import time

    def step():
        return time.time()

    def dedupe(items):
        return list(set(items))
    """
)


class TestSuppressions:
    def test_bare_ignore_suppresses_every_rule(self):
        src = "def f(items):\n    return list(set(items))  # repro-lint: ignore\n"
        assert lint_source(src, path="pkg/m.py") == []

    def test_ignore_other_code_does_not_suppress(self):
        src = (
            "def f(items):\n"
            "    return list(set(items))  # repro-lint: ignore[DET001]\n"
        )
        out = lint_source(src, path="pkg/m.py")
        assert [f.code for f in out] == ["DET002"]

    def test_multiple_codes_one_comment(self):
        src = (
            "import time\n"
            "def f(items):\n"
            "    return list(set(items)), time.time()  "
            "# repro-lint: ignore[DET001, DET002]\n"
        )
        assert lint_source(src, path="pkg/m.py") == []

    def test_skip_file(self):
        src = "# repro-lint: skip-file\n" + VIOLATION
        assert lint_source(src, path="pkg/m.py") == []

    def test_show_suppressed_keeps_findings_nonfailing(self):
        src = "def f(items):\n    return list(set(items))  # repro-lint: ignore\n"
        config = LintConfig(show_suppressed=True)
        out = lint_source(src, path="pkg/m.py", config=config)
        assert [f.code for f in out] == ["DET002"]
        assert all(f.suppressed for f in out)

    def test_multiline_statement_suppressed_on_first_line(self):
        # The violating node sits on line 3, but the statement *starts*
        # on line 2 — the comment belongs where the statement begins.
        src = (
            "def f(items):\n"
            "    return list(  # repro-lint: ignore[DET002]\n"
            "        set(items)\n"
            "    )\n"
        )
        assert lint_source(src, path="pkg/m.py") == []

    def test_multiline_suppression_still_reports_the_inner_line(self):
        src = (
            "def f(items):\n"
            "    return list(\n"
            "        set(items)\n"
            "    )\n"
        )
        out = lint_source(src, path="pkg/m.py")
        assert [(f.code, f.line) for f in out] == [("DET002", 3)]

    def test_comment_on_inner_line_also_works(self):
        src = (
            "def f(items):\n"
            "    return list(\n"
            "        set(items)  # repro-lint: ignore[DET002]\n"
            "    )\n"
        )
        assert lint_source(src, path="pkg/m.py") == []


class TestSelection:
    def test_select_restricts(self):
        config = LintConfig(select=frozenset({"DET002"}))
        out = lint_source(VIOLATION, path="pkg/m.py", config=config)
        assert [f.code for f in out] == ["DET002"]

    def test_ignore_removes(self):
        config = LintConfig(ignore=frozenset({"DET002"}))
        out = lint_source(VIOLATION, path="pkg/m.py", config=config)
        assert [f.code for f in out] == ["DET001"]


class TestExemptions:
    def test_exempt_path_fragment(self):
        src = "import time\n\ndef f():\n    return time.perf_counter()\n"
        assert lint_source(src, path="src/repro/obs/tracing.py") == []
        assert [f.code for f in lint_source(src, path="src/repro/storage/x.py")] == [
            "DET001"
        ]

    def test_benchmarks_exempt_from_det001(self):
        src = "import time\n\ndef f():\n    return time.time()\n"
        assert lint_source(src, path="benchmarks/bench_foo.py") == []


class TestParseErrors:
    def test_unparsable_file_is_a_finding(self):
        out = lint_source("def broken(:\n", path="pkg/m.py")
        assert [f.code for f in out] == [PARSE_ERROR_CODE]


class TestLintPaths:
    def _tree(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "clean.py").write_text("X = 1\n")
        (tmp_path / "sub" / "bad.py").write_text(
            "def f(items):\n    return list(set(items))\n"
        )
        (tmp_path / "sub" / "worse.py").write_text(
            "import time\n\ndef g():\n    return time.time()\n"
        )
        return tmp_path

    def test_collect_files_sorted(self, tmp_path):
        root = self._tree(tmp_path)
        files = collect_files([root])
        assert files == sorted(files)
        assert len(files) == 3

    def test_report_counts(self, tmp_path):
        report = lint_paths([self._tree(tmp_path)])
        assert report.n_files == 3
        assert report.counts() == {"DET001": 1, "DET002": 1}

    def test_jobs_do_not_change_output(self, tmp_path):
        root = self._tree(tmp_path)
        serial = lint_paths([root], jobs=1)
        parallel = lint_paths([root], jobs=3)
        assert serial.findings == parallel.findings
        assert serial.n_files == parallel.n_files
