"""The whole-program flow pass: index, call graph, taint, FLOW rules.

The ``flowpkg`` fixture package is the ground truth: every module is one
scenario with a known chain, and these tests pin the **exact** finding
set and the call-graph snapshot.  Any fixture edit must update both.
"""

import json
from pathlib import Path

from repro.lint import JSON_SCHEMA_V1, JSON_SCHEMA_V2, LintConfig, lint_paths
from repro.lint.engine import collect_files
from repro.lint.flow import FlowProject, build_callgraph, build_index

FIXTURES = Path(__file__).resolve().parent / "fixtures"
FLOWPKG = FIXTURES / "flowpkg"
GOLDEN = FIXTURES / "flowpkg_callgraph.json"

FLOW_ONLY = frozenset({"FLOW001", "FLOW002", "FLOW003", "FLOW004"})


def flow_config(**overrides) -> LintConfig:
    defaults = dict(select=FLOW_ONLY, flow_entry_fragments=("flowpkg/",))
    defaults.update(overrides)
    return LintConfig(**defaults)


def run_flow(**overrides):
    return lint_paths([FLOWPKG], flow_config(**overrides))


def key(finding) -> tuple:
    return (finding.code, Path(finding.path).name, finding.line)


class TestCallGraphSnapshot:
    def build(self):
        cfg = flow_config()
        files = collect_files([FLOWPKG])
        index = build_index(files, cfg)
        return index, build_callgraph(index, cfg), cfg

    def test_matches_golden(self):
        index, graph, cfg = self.build()
        project = FlowProject(index, graph, cfg)
        actual = {
            "modules": sorted(index.modules),
            "entry_points": [fn.qname for fn in project.entry_points()],
            "edges": [
                {
                    "caller": s.caller,
                    "callee": s.callee,
                    "line": s.lineno,
                    "col": s.col,
                    "guarded": s.guarded,
                }
                for s in graph.edges()
            ],
        }
        golden = json.loads(GOLDEN.read_text())
        assert actual == golden, (
            "call graph drifted from the golden snapshot — if the fixture "
            "change is intentional, regenerate tests/lint/fixtures/"
            "flowpkg_callgraph.json"
        )

    def test_mro_dispatch_and_guard_marks(self):
        _, graph, _ = self.build()
        edges = {(s.caller, s.callee): s for s in graph.edges()}
        # Inherited scalar twin: SymChild.put_many -> Sym.insert via MRO.
        assert ("flowpkg.batchapi.SymChild.put_many", "flowpkg.batchapi.Sym.insert") in edges
        # The OBS.enabled guard is recorded on the edge, per call site.
        assert edges[("flowpkg.obsflow.guarded_op", "flowpkg.obsflow._record")].guarded
        assert not edges[("flowpkg.obsflow.unguarded_op", "flowpkg.obsflow._record")].guarded


class TestFixtureFindings:
    EXPECTED = {
        ("FLOW001", "deep.py", 14),
        ("FLOW001", "direct.py", 10),
        ("FLOW002", "rngflow.py", 15),
        ("FLOW002", "rngflow.py", 18),
        ("FLOW002", "rngflow.py", 21),
        ("FLOW003", "batchapi.py", 7),
        ("FLOW003", "batchapi.py", 21),
        ("FLOW004", "obsflow.py", 20),
    }

    def test_exact_finding_set(self):
        report = run_flow()
        assert {key(f) for f in report.findings} == self.EXPECTED
        assert all(not f.suppressed for f in report.findings)

    def test_suppressed_at_either_endpoint(self):
        report = run_flow(show_suppressed=True)
        extra = {key(f) for f in report.findings if f.suppressed}
        assert extra == {
            ("FLOW001", "suppressed_src.py", 6),  # ignore[] on the def line
            ("FLOW001", "suppressed_sink.py", 10),  # ignore[] on the sink line
        }
        # Suppressed findings never fail the gate.
        assert {key(f) for f in report.failures} == self.EXPECTED

    def test_transitive_chain_frames(self):
        report = run_flow()
        (finding,) = [f for f in report.findings if key(f) == ("FLOW001", "deep.py", 14)]
        assert "3 calls deep" in finding.message
        assert [(fn, Path(p).name, line) for fn, p, line in finding.chain] == [
            ("flowpkg.deep.simulate", "deep.py", 17),
            ("flowpkg.deep._hop1", "deep.py", 11),
            ("flowpkg.deep._hop2", "deep.py", 7),
            ("flowpkg.sinks.now", "sinks.py", 8),
        ]

    def test_entropy_reported_at_depth_zero(self):
        report = run_flow()
        (finding,) = [f for f in report.findings if key(f) == ("FLOW001", "direct.py", 10)]
        assert "os.urandom" in finding.message
        assert len(finding.chain) == 1

    def test_depth_zero_per_file_kinds_left_to_det_rules(self):
        # sinks.now calls time.time() directly and is itself an entry
        # point — that is DET001's finding, never FLOW001's.
        report = run_flow()
        assert not any(Path(f.path).name == "sinks.py" for f in report.findings)

    def test_guarded_caller_is_clean(self):
        report = run_flow()
        assert not any(
            f.code == "FLOW004" and "guarded_op" in f.message and "unguarded" not in f.message
            for f in report.findings
        )

    def test_rng_stays_contained(self):
        report = run_flow()
        assert not any(
            f.code == "FLOW002" and f.line > 24 for f in report.findings
        ), "the Contained class must not trigger FLOW002"


class TestSinkJustification:
    def test_per_file_suppression_at_sink_kills_the_taint(self, tmp_path):
        """``ignore[DET001]`` at the sink = locally justified, no chains."""
        pkg = tmp_path / "justpkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text(
            "import time\n"
            "\n"
            "\n"
            "def _helper():\n"
            "    return time.time()  # repro-lint: ignore[DET001]\n"
            "\n"
            "\n"
            "def simulate():\n"
            "    return _helper()\n"
        )
        cfg = LintConfig(select=FLOW_ONLY, flow_entry_fragments=("justpkg/",))
        report = lint_paths([pkg], cfg, jobs=1)
        assert report.findings == []
        # ... and it is not merely hiding as a suppressed finding:
        cfg = LintConfig(
            select=FLOW_ONLY,
            flow_entry_fragments=("justpkg/",),
            show_suppressed=True,
        )
        assert lint_paths([pkg], cfg).findings == []


class TestSchemaVersioning:
    def test_flow_run_emits_v2_with_chains(self):
        report = run_flow()
        assert report.schema == JSON_SCHEMA_V2
        payload = report.to_json()
        assert payload["version"] == JSON_SCHEMA_V2
        assert all("chain" in f for f in payload["findings"])
        deep = [
            f
            for f in payload["findings"]
            if f["code"] == "FLOW001" and f["path"].endswith("deep.py")
        ]
        assert deep[0]["chain"][0]["function"] == "flowpkg.deep.simulate"
        assert set(deep[0]["chain"][0]) == {"function", "path", "line"}

    def test_rule_only_run_stays_v1(self):
        cfg = LintConfig(select=frozenset({"DET001"}))
        report = lint_paths([FLOWPKG], cfg)
        assert report.schema == JSON_SCHEMA_V1
        payload = report.to_json()
        assert payload["version"] == JSON_SCHEMA_V1
        assert all("chain" not in f for f in payload["findings"])


class TestJobsDeterminism:
    def test_v2_json_byte_identical_across_jobs(self):
        """The acceptance bar: byte-identical v2 reports at any --jobs."""
        cfg = LintConfig(flow_entry_fragments=("flowpkg/",))
        dumps = [
            json.dumps(
                lint_paths([FLOWPKG], cfg, jobs=jobs).to_json(),
                indent=2,
                sort_keys=True,
            )
            for jobs in (1, 2, 8)
        ]
        assert dumps[0] == dumps[1] == dumps[2]
