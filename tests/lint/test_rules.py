"""Fixture-snippet tests: every rule fires on its positive fixture, is
silenced by a ``# repro-lint: ignore[...]`` on the flagged line, and
stays quiet on the compliant rewrite."""

import textwrap

from repro.lint import LintConfig, lint_source


def run(source, *, rule, path="pkg/sim.py"):
    """Lint a dedented snippet with exactly one rule selected."""
    config = LintConfig(select=frozenset({rule}))
    return lint_source(textwrap.dedent(source), path=path, config=config)


def codes(findings):
    return [f.code for f in findings]


# -- DET001: wall clock / global RNG ---------------------------------------


class TestDET001:
    def test_wall_clock_fires(self):
        out = run(
            """
            import time

            def step():
                return time.time()
            """,
            rule="DET001",
        )
        assert codes(out) == ["DET001"]
        assert "time.time" in out[0].message

    def test_from_import_alias_resolves(self):
        out = run(
            """
            from time import perf_counter as pc

            def step():
                return pc()
            """,
            rule="DET001",
        )
        assert codes(out) == ["DET001"]

    def test_global_numpy_rng_fires(self):
        out = run(
            """
            import numpy as np

            def draw():
                return np.random.randint(10)
            """,
            rule="DET001",
        )
        assert codes(out) == ["DET001"]

    def test_stdlib_global_rng_fires(self):
        out = run(
            """
            import random

            def draw():
                random.seed(0)
                return random.random()
            """,
            rule="DET001",
        )
        assert codes(out) == ["DET001", "DET001"]

    def test_suppressed(self):
        out = run(
            """
            import time

            def step():
                return time.time()  # repro-lint: ignore[DET001]
            """,
            rule="DET001",
        )
        assert out == []

    def test_seeded_rng_clean(self):
        out = run(
            """
            import numpy as np
            import random

            def draw(seed):
                rng = np.random.default_rng(seed)
                r2 = random.Random(seed)
                return rng.integers(0, 10), r2.randint(0, 9)
            """,
            rule="DET001",
        )
        assert out == []

    def test_runner_timing_path_exempt(self):
        out = run(
            """
            import time

            def measure():
                return time.perf_counter()
            """,
            rule="DET001",
            path="src/repro/runner/executor.py",
        )
        assert out == []


# -- DET002: unordered iteration -------------------------------------------


class TestDET002:
    def test_for_over_set_literal_fires(self):
        out = run(
            """
            def order(out):
                for k in {1, 2, 3}:
                    out.append(k)
            """,
            rule="DET002",
        )
        assert codes(out) == ["DET002"]

    def test_list_of_set_call_fires(self):
        out = run(
            """
            def dedupe(items):
                return list(set(items))
            """,
            rule="DET002",
        )
        assert codes(out) == ["DET002"]

    def test_comprehension_over_set_method_fires(self):
        out = run(
            """
            def shared(a, b):
                return [k for k in a.intersection(b)]
            """,
            rule="DET002",
        )
        assert codes(out) == ["DET002"]

    def test_listdir_fires(self):
        out = run(
            """
            import os

            def entries(root):
                return [p for p in os.listdir(root)]
            """,
            rule="DET002",
        )
        assert codes(out) == ["DET002"]

    def test_suppressed(self):
        out = run(
            """
            def dedupe(items):
                return list(set(items))  # repro-lint: ignore[DET002]
            """,
            rule="DET002",
        )
        assert out == []

    def test_sorted_wrapping_clean(self):
        out = run(
            """
            def dedupe(items):
                for k in sorted(set(items)):
                    yield k
                return sorted(set(items))
            """,
            rule="DET002",
        )
        assert out == []

    def test_order_insensitive_reduction_clean(self):
        out = run(
            """
            def total(xs):
                return sum(set(xs)), len(set(xs)), max(set(xs))
            """,
            rule="DET002",
        )
        assert out == []

    def test_dict_keys_strict_mode_on_by_default(self):
        # Repo policy since PR 10: `.keys()` into an order-sensitive sink
        # is flagged unless the config opts out.
        src = """
        def order(d):
            return list(d.keys())
        """
        assert codes(run(src, rule="DET002")) == ["DET002"]
        lax = LintConfig(
            select=frozenset({"DET002"}), det002_flag_dict_keys=False
        )
        out = lint_source(textwrap.dedent(src), path="pkg/sim.py", config=lax)
        assert out == []
        # Iterating the dict itself (insertion order) stays fine.
        direct = """
        def order(d):
            return list(d)
        """
        assert run(direct, rule="DET002") == []


# -- OBS001: enabled-guards around recording calls -------------------------


class TestOBS001:
    def test_unguarded_counter_fires(self):
        out = run(
            """
            from repro.obs import OBS

            def hot():
                OBS.counter("x").inc()
            """,
            rule="OBS001",
        )
        assert codes(out) == ["OBS001"]

    def test_else_branch_is_not_guarded(self):
        out = run(
            """
            from repro.obs import OBS

            def hot():
                if OBS.enabled:
                    pass
                else:
                    OBS.counter("x").inc()
            """,
            rule="OBS001",
        )
        assert codes(out) == ["OBS001"]

    def test_unguarded_tracer_record_fires(self):
        out = run(
            """
            from repro.obs import OBS

            def hot():
                OBS.tracer.record("span", 0.0, 1.0)
            """,
            rule="OBS001",
        )
        assert codes(out) == ["OBS001"]

    def test_suppressed(self):
        out = run(
            """
            from repro.obs import OBS

            def helper():
                OBS.io_event("d", "read", 0, 1, 0.0, 1.0)  # repro-lint: ignore[OBS001]
            """,
            rule="OBS001",
        )
        assert out == []

    def test_direct_guard_clean(self):
        out = run(
            """
            from repro.obs import OBS

            def hot():
                if OBS.enabled:
                    OBS.counter("x").inc()
                    if OBS.tracer is not None:
                        OBS.tracer.record("span", 0.0, 1.0)
            """,
            rule="OBS001",
        )
        assert out == []

    def test_hoisted_flag_guard_clean(self):
        out = run(
            """
            from repro.obs import OBS

            def hot():
                observe = OBS.enabled
                if observe:
                    OBS.histogram("h").record(1.0)
            """,
            rule="OBS001",
        )
        assert out == []

    def test_early_return_guard_clean(self):
        out = run(
            """
            from repro.obs import OBS

            def hot():
                if not OBS.enabled:
                    return
                OBS.counter("x").inc()
            """,
            rule="OBS001",
        )
        assert out == []

    def test_conjunction_guard_clean(self):
        out = run(
            """
            from repro.obs import OBS

            def hot(n):
                if OBS.enabled and n > 0:
                    OBS.counter("x").inc(n)
            """,
            rule="OBS001",
        )
        assert out == []

    def test_snapshot_is_control_plane(self):
        out = run(
            """
            from repro.obs import OBS

            def render():
                return OBS.snapshot()
            """,
            rule="OBS001",
        )
        assert out == []


# -- PURE001: kernel purity -------------------------------------------------


class TestPURE001:
    def test_global_write_fires(self):
        out = run(
            """
            from repro.runner.kernels import register

            COUNTER = 0

            @register("bad_kernel")
            def bad(*, seed):
                global COUNTER
                COUNTER += 1
                return seed
            """,
            rule="PURE001",
        )
        assert "PURE001" in codes(out)
        assert any("global" in f.message for f in out)

    def test_module_state_mutation_fires(self):
        out = run(
            """
            from repro.runner.kernels import register

            STATE = {}

            @register("bad_kernel")
            def bad(*, seed):
                STATE["last"] = seed
                return seed
            """,
            rule="PURE001",
        )
        assert codes(out) == ["PURE001"]
        assert "STATE" in out[0].message

    def test_open_handle_capture_fires(self):
        out = run(
            """
            from repro.runner.kernels import register

            LOG_FH = open("kernel.log", "a")

            @register("bad_kernel")
            def bad(*, seed):
                LOG_FH.write(str(seed))
                return seed
            """,
            rule="PURE001",
        )
        assert codes(out) == ["PURE001"]
        assert "LOG_FH" in out[0].message

    def test_suppressed(self):
        out = run(
            """
            from repro.runner.kernels import register

            STATE = {}

            @register("bad_kernel")
            def bad(*, seed):
                STATE["last"] = seed  # repro-lint: ignore[PURE001]
                return seed
            """,
            rule="PURE001",
        )
        assert out == []

    def test_pure_kernel_clean(self):
        out = run(
            """
            from repro.runner.kernels import register

            @register("good_kernel")
            def good(*, n, seed):
                acc = {}
                for i in range(n):
                    acc[i] = i * seed
                acc["total"] = sum(acc.values())
                return acc
            """,
            rule="PURE001",
        )
        assert out == []

    def test_unregistered_function_ignored(self):
        out = run(
            """
            STATE = {}

            def helper(x):
                STATE["x"] = x
            """,
            rule="PURE001",
        )
        assert out == []


# -- ERR001: blind excepts must leave evidence ------------------------------


class TestERR001:
    def test_silent_swallow_fires(self):
        out = run(
            """
            def f(g):
                try:
                    g()
                except Exception:
                    pass
            """,
            rule="ERR001",
        )
        assert codes(out) == ["ERR001"]

    def test_bare_except_fires(self):
        out = run(
            """
            def f(g):
                try:
                    g()
                except:
                    return None
            """,
            rule="ERR001",
        )
        assert codes(out) == ["ERR001"]

    def test_suppressed(self):
        out = run(
            """
            def f(g):
                try:
                    g()
                except Exception:  # repro-lint: ignore[ERR001]
                    pass
            """,
            rule="ERR001",
        )
        assert out == []

    def test_reraise_clean(self):
        out = run(
            """
            def f(g, guarded):
                try:
                    g()
                except Exception:
                    if not guarded:
                        raise
                    return None
            """,
            rule="ERR001",
        )
        assert out == []

    def test_logging_clean(self):
        out = run(
            """
            import logging

            LOG = logging.getLogger(__name__)

            def f(g):
                try:
                    g()
                except Exception as exc:
                    LOG.warning("failed: %s", exc)
            """,
            rule="ERR001",
        )
        assert out == []

    def test_obs_counter_clean(self):
        out = run(
            """
            from repro.obs import OBS

            def f(g):
                try:
                    g()
                except Exception:
                    if OBS.enabled:
                        OBS.counter("errors").inc()
            """,
            rule="ERR001",
        )
        assert out == []

    def test_narrow_handler_out_of_scope(self):
        out = run(
            """
            def f(g):
                try:
                    g()
                except OSError:
                    pass
            """,
            rule="ERR001",
        )
        assert out == []


# -- VAL001: constructor validation ----------------------------------------


class TestVAL001:
    def test_unvalidated_params_fire(self):
        out = run(
            """
            class Pool:
                def __init__(self, capacity_bytes, n_workers=2):
                    self.capacity_bytes = capacity_bytes
                    self.n_workers = n_workers
            """,
            rule="VAL001",
        )
        assert codes(out) == ["VAL001", "VAL001"]
        assert {"capacity_bytes", "n_workers"} == {
            f.message.split("`")[3] for f in out
        }

    def test_suppressed(self):
        out = run(
            """
            class Pool:
                def __init__(self, capacity_bytes):  # repro-lint: ignore[VAL001]
                    self.capacity_bytes = capacity_bytes
            """,
            rule="VAL001",
        )
        assert out == []

    def test_raise_on_bad_value_clean(self):
        out = run(
            """
            class Pool:
                def __init__(self, capacity_bytes):
                    if capacity_bytes <= 0:
                        raise ValueError(capacity_bytes)
                    self.capacity_bytes = capacity_bytes
            """,
            rule="VAL001",
        )
        assert out == []

    def test_delegation_clean(self):
        out = run(
            """
            class Base:
                def __init__(self, capacity_bytes):
                    if capacity_bytes <= 0:
                        raise ValueError(capacity_bytes)

            class Derived(Base):
                def __init__(self, capacity_bytes, n_items):
                    super().__init__(capacity_bytes)
                    self.n_items = _check_count(n_items)
            """,
            rule="VAL001",
        )
        assert out == []

    def test_none_default_skipped(self):
        out = run(
            """
            class Pool:
                def __init__(self, max_spans=None):
                    self.max_spans = max_spans
            """,
            rule="VAL001",
        )
        assert out == []

    def test_private_class_skipped(self):
        out = run(
            """
            class _Internal:
                def __init__(self, capacity_bytes):
                    self.capacity_bytes = capacity_bytes
            """,
            rule="VAL001",
        )
        assert out == []

    def test_unrelated_params_skipped(self):
        out = run(
            """
            class Labeller:
                def __init__(self, name, color="red"):
                    self.name = name
                    self.color = color
            """,
            rule="VAL001",
        )
        assert out == []
