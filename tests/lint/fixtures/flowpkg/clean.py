"""A clean entry point: no chain reaches any sink."""


def _double(x: int) -> int:
    return 2 * x


def simulate(steps: int) -> int:
    total = 0
    for i in range(steps):
        total += _double(i)
    return total
