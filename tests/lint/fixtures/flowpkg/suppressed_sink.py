"""Suppression at the sink endpoint: every chain rooted there is quiet."""

import time


def _stamp() -> float:
    return time.time()  # repro-lint: ignore[FLOW001]


def simulate(steps: int) -> float:
    return _stamp() * steps
