"""Fixture package for the whole-program flow analysis tests.

Never imported at runtime — the linter parses it.  Each module is one
known scenario; tests/lint/test_flow.py pins the exact finding set and
the call-graph snapshot, so any change here must update both.
"""
