"""A 3-hop transitive chain: simulate -> _hop1 -> _hop2 -> sinks.now."""

from flowpkg import sinks


def _hop2() -> float:
    return sinks.now()


def _hop1() -> float:
    return _hop2()


def simulate(steps: int) -> float:
    total = 0.0
    for _ in range(steps):
        total += _hop1()
    return total
