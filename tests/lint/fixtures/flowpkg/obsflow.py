"""FLOW004 scenarios: guard propagation across the call graph.

``_record`` carries ``ignore[OBS001]`` — the "all callers guard" claim.
``guarded_op`` honours it; ``unguarded_op`` is the lie FLOW004 catches.
"""

from repro.obs import OBS


def _record(n: int) -> None:
    OBS.counter("flowpkg.ops").inc(n)  # repro-lint: ignore[OBS001]


def guarded_op(n: int) -> int:
    if OBS.enabled:
        _record(n)
    return n * 2


def unguarded_op(n: int) -> int:
    _record(n)
    return n * 2
