"""OS entropy directly in an entry point: FLOW001 at depth 0.

``os.urandom`` has no per-file rule, so the flow pass reports it even
without a call chain.
"""

import os


def fresh_key(nbytes: int) -> bytes:
    return os.urandom(nbytes)
