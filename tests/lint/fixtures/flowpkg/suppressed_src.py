"""Suppression at the source endpoint: the entry's ``def`` line."""

from flowpkg import sinks


def simulate(steps: int) -> float:  # repro-lint: ignore[FLOW001]
    return sinks.now() * steps
