"""FLOW002 scenarios: private RNG streams escaping (or not)."""

from numpy.random import default_rng


def consume(rng) -> float:
    return float(rng.random())


class Leaky:
    def __init__(self, seed: int) -> None:
        self._rng = default_rng(seed)

    def leak_return(self):
        return self._rng

    def leak_pass(self) -> float:
        return consume(self._rng)

    def leak_store(self, other) -> None:
        other.rng = self._rng


class Contained:
    def __init__(self, seed: int) -> None:
        self._rng = default_rng(seed)

    def draw(self) -> int:
        return int(self._rng.integers(10))

    def shuffle_sum(self, items) -> int:
        return self._mix(self._rng.permutation(len(items)))

    def _mix(self, order) -> int:
        return int(sum(order))

    def tick(self) -> None:
        # Same-component pass: allowed.
        self._advance(self._rng)

    def _advance(self, rng) -> None:
        rng.random()

    def derive(self, seed: int) -> "Contained":
        return Contained(seed)
