"""Nondeterminism sinks the other modules reach through call chains."""

import time


def now() -> float:
    """Depth-0 wall-clock: DET001's job, never FLOW001's."""
    return time.time()


def _stamp() -> float:
    return time.time()
