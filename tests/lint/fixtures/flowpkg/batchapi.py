"""FLOW003 scenarios: batch/serial API symmetry."""


class NoTwin:
    """Defines the batch op only — no scalar ``read`` anywhere."""

    def read_batch(self, offsets):
        return [0.0 for _ in offsets]


class Asym:
    """``put_many`` bumps a counter the scalar ``insert`` never touches."""

    def __init__(self) -> None:
        self.data = {}
        self.batch_calls = 0

    def insert(self, key, value) -> None:
        self.data[key] = value

    def put_many(self, pairs) -> None:
        self.batch_calls += 1
        for key, value in pairs:
            self.data[key] = value


class Sym:
    """The compliant shape: the batch op is a loop over the scalar op."""

    def __init__(self) -> None:
        self.data = {}

    def insert(self, key, value) -> None:
        self.data[key] = value

    def put_many(self, pairs) -> None:
        insert = self.insert
        for key, value in pairs:
            insert(key, value)


class SymChild(Sym):
    """Overriding the batch op while inheriting the scalar twin is fine."""

    def put_many(self, pairs) -> None:
        for key, value in pairs:
            self.insert(key, value)
