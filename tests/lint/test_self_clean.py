"""The gate on the gate: this repo's own source lints clean.

If a change introduces a determinism/invariant violation, this test
fails locally with the same finding the CI ``lint`` job would print —
fix it or add a reviewed ``# repro-lint: ignore[RULE]`` with a reason.
"""

from pathlib import Path

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"


class TestSelfClean:
    def test_src_repro_has_zero_findings(self):
        report = lint_paths([SRC])
        assert report.n_files > 50, "lint walked suspiciously few files"
        assert report.failures == [], "\n" + "\n".join(
            f.render() for f in report.failures
        )

    def test_jobs_match_serial_on_real_tree(self):
        serial = lint_paths([SRC], jobs=1)
        parallel = lint_paths([SRC], jobs=4)
        assert serial.findings == parallel.findings

    def test_lint_package_lints_itself(self):
        report = lint_paths([SRC / "lint"])
        assert report.failures == []
