"""CLI contract: exit codes, JSON schema, rule listing."""

import json

from repro.lint import JSON_SCHEMA_V2, JSON_SCHEMA_VERSION, all_rules
from repro.lint.cli import main

BAD = "def f(items):\n    return list(set(items))\n"
CLEAN = "def f(items):\n    return sorted(set(items))\n"


class TestExitCodes:
    def test_clean_exits_zero(self, tmp_path, capsys):
        p = tmp_path / "ok.py"
        p.write_text(CLEAN)
        assert main([str(p)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        p = tmp_path / "bad.py"
        p.write_text(BAD)
        assert main([str(p)]) == 1
        out = capsys.readouterr().out
        assert "DET002" in out and "bad.py:2" in out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        p = tmp_path / "ok.py"
        p.write_text(CLEAN)
        assert main([str(p), "--select", "NOPE999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_select_ignores_other_rules(self, tmp_path):
        p = tmp_path / "bad.py"
        p.write_text(BAD)
        assert main([str(p), "--select", "DET001"]) == 0
        assert main([str(p), "--select", "DET002"]) == 1
        assert main([str(p), "--ignore", "DET002"]) == 0

    def test_family_prefix_select(self, tmp_path):
        p = tmp_path / "bad.py"
        p.write_text(BAD)
        # "DET" expands to DET001+DET002; "FLOW" to the flow rules.
        assert main([str(p), "--select", "DET"]) == 1
        assert main([str(p), "--select", "FLOW"]) == 0
        assert main([str(p), "--ignore", "DET"]) == 0

    def test_jobs_flag(self, tmp_path):
        for i in range(4):
            (tmp_path / f"m{i}.py").write_text(CLEAN)
        assert main([str(tmp_path), "--jobs", "2"]) == 0


class TestJSONOutput:
    def test_schema(self, tmp_path, capsys):
        # A default run includes the flow pass, so the payload is v2 and
        # every finding carries a (possibly empty) chain.
        p = tmp_path / "bad.py"
        p.write_text(BAD)
        assert main([str(p), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == JSON_SCHEMA_V2
        assert payload["n_files"] == 1
        assert payload["n_findings"] == 1
        assert payload["counts"] == {"DET002": 1}
        (finding,) = payload["findings"]
        assert set(finding) == {
            "code",
            "path",
            "line",
            "col",
            "message",
            "suppressed",
            "chain",
        }
        assert finding["code"] == "DET002"
        assert finding["line"] == 2
        assert finding["suppressed"] is False
        assert finding["chain"] == []

    def test_rule_only_select_keeps_v1_schema(self, tmp_path, capsys):
        p = tmp_path / "bad.py"
        p.write_text(BAD)
        assert main([str(p), "--select", "DET002", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == JSON_SCHEMA_VERSION  # the v1 alias
        (finding,) = payload["findings"]
        assert "chain" not in finding

    def test_clean_json(self, tmp_path, capsys):
        p = tmp_path / "ok.py"
        p.write_text(CLEAN)
        assert main([str(p), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["counts"] == {}


class TestListRules:
    def test_catalog_covers_every_registered_rule(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in all_rules():
            assert code in out

    def test_expected_rule_set(self):
        assert set(all_rules()) == {
            "DET001",
            "DET002",
            "OBS001",
            "PURE001",
            "ERR001",
            "VAL001",
            "FLOW001",
            "FLOW002",
            "FLOW003",
            "FLOW004",
        }
