"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so PEP-517
editable installs (``pip install -e .`` with a ``[build-system]`` table)
fail with ``invalid command 'bdist_wheel'``.  This shim lets pip use the
legacy ``setup.py develop`` path instead; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
