"""File-system aging and range queries (paper Section 5).

    "the optimal node size x is not large enough to amortize the setup
    cost.  This means that as B-trees age, their nodes get spread out
    across disk, and range-query performance degrades."

This example measures that effect directly: the same B-tree, same data,
same device — but one instance allocates nodes first-fit (a fresh file
system, nearly sequential layout) and the other with the ``random``
allocator policy (an aged file system).  Range scans pay a seek per node
when nodes are scattered; larger nodes amortize it.

Run:  python examples/aging_range_queries.py
"""

from repro.experiments.devices import default_hdd
from repro.storage.stack import StorageStack
from repro.trees.btree import BTree, BTreeConfig
from repro.workloads.generators import random_load_pairs, range_query_stream


def build(policy: str, node_bytes: int, pairs):
    device = default_hdd(seed=7)
    stack = StorageStack(device, cache_bytes=4 << 20,
                         allocator_policy=policy, allocator_seed=13)
    tree = BTree(stack, BTreeConfig(node_bytes=node_bytes))
    tree.bulk_load(pairs)
    stack.flush()
    stack.drop_cache()
    return tree, stack


def scan_throughput(tree, stack, keys, span=2000, n_scans=20):
    """MB/s of simulated range-scan bandwidth."""
    t0 = stack.io_seconds
    rows = 0
    for lo, hi in range_query_stream(keys, n_scans, span_keys=span, seed=3):
        rows += len(tree.range(lo, hi))
    elapsed = stack.io_seconds - t0
    mib = rows * tree.config.fmt.entry_bytes / 2**20
    return mib / elapsed


def main() -> None:
    pairs = random_load_pairs(200_000, 1 << 31, seed=1)
    keys = [k for k, _ in pairs]
    disk_bw = default_hdd().geometry.bandwidth_bytes_per_second / 2**20

    print(f"Device sequential bandwidth: {disk_bw:.0f} MiB/s\n")
    print(f"  {'node size':>10s}  {'fresh (MiB/s)':>14s}  {'aged (MiB/s)':>13s}  {'aging slowdown':>14s}")
    for node_bytes in (16 << 10, 64 << 10, 256 << 10, 1 << 20):
        fresh_tree, fresh_stack = build("first_fit", node_bytes, pairs)
        aged_tree, aged_stack = build("random", node_bytes, pairs)
        fresh = scan_throughput(fresh_tree, fresh_stack, keys)
        aged = scan_throughput(aged_tree, aged_stack, keys)
        print(f"  {node_bytes >> 10:>8d}Ki  {fresh:>14.1f}  {aged:>13.1f}  {fresh / aged:>13.1f}x")

    print(
        "\nSmall nodes under-utilize disk bandwidth once scattered — the"
        "\npaper's explanation for why range-query-focused (OLAP) systems"
        "\nuse ~1 MB nodes while OLTP B-trees stay at 16 KiB and age badly."
    )


if __name__ == "__main__":
    main()
