"""PDAM in action: sizing nodes for an SSD serving a varying client load.

Reproduces the Section 8 story end to end:

1. Fit the PDAM to a simulated SSD (the Table 1 recipe) to learn ``P``.
2. Show the dilemma: size-``B`` nodes waste the device at one client;
   size-``PB`` nodes waste it at ``P`` clients.
3. Resolve it with the van Emde Boas layout (Lemma 13): near-optimal
   throughput at *every* concurrency level, obliviously.

Run:  python examples/ssd_concurrency.py
"""

import numpy as np

from repro.analysis.fitting import fit_pdam_model
from repro.experiments.devices import make_ssd
from repro.models.pdam import PDAMModel
from repro.storage.device import ReadRequest
from repro.storage.ideal import PDAMDevice
from repro.trees.btree.veb import PDAMQuerySimulator, StaticSearchTree


def fit_device(name="samsung-860-pro-sim"):
    """Step 1: the Figure 1 / Table 1 thread-scaling benchmark."""
    threads = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32)
    bytes_per_thread = 4 << 20
    times = []
    for p in threads:
        ssd = make_ssd(name)
        rng = np.random.default_rng(p)
        stripes = ssd.capacity_bytes // 65536
        streams = [
            [ReadRequest(int(o) * 65536, 65536)
             for o in rng.integers(0, stripes, size=bytes_per_thread // 65536)]
            for _ in range(p)
        ]
        times.append(ssd.run_closed_loop(streams))
    return fit_pdam_model(list(threads), times, bytes_per_thread=bytes_per_thread)


def main() -> None:
    print("Step 1: fit the PDAM to the device")
    fit = fit_device()
    print(f"  P = {fit.parallelism:.1f}, saturation = "
          f"{fit.saturation_bytes_per_second / 1e6:.0f} MB/s (R^2 = {fit.r2:.4f})")

    # Round to an integer P for the design step.
    P = max(2, round(fit.parallelism))
    print(f"\nStep 2-3: organize a search tree for P = {P} (Lemma 13)")

    tree = StaticSearchTree(np.arange(1, 2**15 + 1) * 3)
    print(f"  tree: {tree.n_keys} keys, {tree.height} comparison levels\n")

    header = "  {:>10s}".format("k clients")
    modes = ("flat_b", "flat_pb", "veb_pb")
    for mode in modes:
        header += f"  {mode:>10s}"
    print(header + "   (queries per PDAM step)")

    for k in (1, 2, 4, 8, 16):
        row = f"  {k:>10d}"
        for mode in modes:
            device = PDAMDevice(PDAMModel(parallelism=P, block_bytes=4096))
            sim = PDAMQuerySimulator(device, tree, mode=mode)
            out = sim.run(k, 40, seed=0)
            row += f"  {out.throughput:>10.3f}"
        print(row)

    print(
        "\n  flat_b  : size-B nodes — scales with k, wastes the device at k=1"
        "\n  flat_pb : size-PB nodes, whole-node reads — good at k=1 only"
        "\n  veb_pb  : size-PB nodes in vEB layout — near-best at *every* k"
    )


if __name__ == "__main__":
    main()
