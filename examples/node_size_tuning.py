"""Node-size tuning workflow: from device measurements to design choices.

Walks the full loop an engineer would follow with this library:

1. Microbenchmark an (unknown) disk: random reads of varying size.
2. Fit the affine model to recover ``(s, t, alpha)`` — the Table 2 recipe.
3. Apply the paper's corollaries to choose node sizes:
   - B-tree optimum (Corollary 7): ``~1/(alpha ln(1/alpha))``, well below
     the half-bandwidth point — this is why production B-trees use 16-64 KiB
     nodes.
   - Bε-tree design (Corollary 12): fanout ``F = B-tree optimum``, node
     size ``B = F^2`` — why TokuDB uses ~4 MiB nodes with basement nodes.
4. Verify the predictions against simulated trees.

Run:  python examples/node_size_tuning.py
"""

import numpy as np

from repro.analysis.fitting import fit_affine_model
from repro.experiments.devices import make_hdd
from repro.models.analysis import (
    betree_speedup_over_btree,
    optimal_betree_params,
    optimal_btree_node_size,
)
from repro.storage.stack import StorageStack
from repro.trees.btree import BTree, BTreeConfig
from repro.trees.sizing import EntryFormat
from repro.workloads.generators import point_query_stream, random_load_pairs


def measure_device(hdd, io_sizes, reads_per_size=48, seed=0):
    """Step 1: the Table 2 microbenchmark."""
    rng = np.random.default_rng(seed)
    sizes, times = [], []
    for io in io_sizes:
        samples = []
        for _ in range(reads_per_size):
            off = int(rng.integers(0, (hdd.capacity_bytes - io) // 512)) * 512
            samples.append(hdd.read(off, io))
        sizes.append(io)
        times.append(float(np.mean(samples)))
    return sizes, times


def main() -> None:
    fmt = EntryFormat()  # 108-byte entries
    hdd = make_hdd("wd-black-1tb-2011-sim", seed=0)

    print("Step 1-2: fit the affine model to the device")
    sizes, times = measure_device(hdd, [4096 * 4**k for k in range(7)])
    fit = fit_affine_model(sizes, times)
    print(f"  s = {fit.setup_seconds * 1e3:.1f} ms, "
          f"t = {fit.seconds_per_byte * 4096 * 1e6:.1f} us/4KiB, "
          f"alpha = {fit.alpha:.4f}/4KiB  (R^2 = {fit.r2:.4f})")

    alpha_per_entry = fit.seconds_per_byte * fmt.entry_bytes / fit.setup_seconds
    half_bw = fit.setup_seconds / fit.seconds_per_byte

    print("\nStep 3: apply the corollaries")
    b_star_entries = optimal_btree_node_size(alpha_per_entry)
    b_star_bytes = b_star_entries * fmt.entry_bytes
    print(f"  half-bandwidth point:       {half_bw / 2**20:.2f} MiB")
    print(f"  B-tree optimum (Cor. 7):    {b_star_bytes / 2**10:.0f} KiB "
          f"({b_star_bytes / half_bw:.0%} of half-bandwidth)")
    F, B = optimal_betree_params(alpha_per_entry)
    print(f"  Bε-tree design (Cor. 12):   F = {F:.0f}, "
          f"node = {B * fmt.entry_bytes / 2**20:.1f} MiB")
    print(f"  predicted insert speedup:   "
          f"{betree_speedup_over_btree(alpha_per_entry, 1e8, 1e5):.1f}x over the B-tree")

    print("\nStep 4: verify against a simulated B-tree")
    n_entries, cache = 150_000, 4 << 20
    pairs = random_load_pairs(n_entries, 1 << 31, seed=1)
    keys = [k for k, _ in pairs]
    candidates = [16 << 10, 64 << 10, 256 << 10, 2 << 20]
    for node_bytes in candidates:
        device = make_hdd("wd-black-1tb-2011-sim", seed=2)
        stack = StorageStack(device, cache)
        tree = BTree(stack, BTreeConfig(node_bytes=node_bytes, fmt=fmt))
        tree.bulk_load(pairs)
        stack.drop_cache()
        for k in point_query_stream(keys, 100, seed=3):
            tree.get(k)
        t0 = stack.io_seconds
        for k in point_query_stream(keys, 200, seed=4):
            tree.get(k)
        per_op = (stack.io_seconds - t0) / 200
        marker = "  <- nearest the Cor. 7 optimum" if (
            node_bytes / 2 < b_star_bytes <= node_bytes * 2
        ) else ""
        print(f"  B-tree @ {node_bytes >> 10:5d} KiB nodes: "
              f"{per_op * 1e3:6.2f} ms/query{marker}")


if __name__ == "__main__":
    main()
