"""Quickstart: a write-optimized dictionary on a simulated hard disk.

Builds the paper's Theorem 9 Bε-tree on a simulated commodity HDD, runs a
small workload, and reports what the storage model *charges* for it —
simulated device seconds, the quantity every experiment in this repository
measures.

Run:  python examples/quickstart.py
"""

from repro.experiments.devices import default_hdd
from repro.storage.stack import StorageStack
from repro.trees.betree import BeTreeConfig, OptimizedBeTree


def main() -> None:
    # A simulated 2011-era 1 TB disk (Table 2 row) with a 16 MiB cache.
    device = default_hdd(seed=42)
    storage = StorageStack(device, cache_bytes=16 << 20)

    # TokuDB-flavoured tuning: 1 MiB nodes, fanout 16 (paper Section 3).
    tree = OptimizedBeTree(storage, BeTreeConfig(node_bytes=1 << 20, fanout=16))

    print("Loading 100k key-value pairs (bulk)...")
    tree.bulk_load([(k, f"value-{k}") for k in range(0, 200_000, 2)])
    load_seconds = storage.io_seconds
    print(f"  simulated device time: {load_seconds:.3f}s")

    print("Point queries (cold cache)...")
    storage.drop_cache()
    t0 = storage.io_seconds
    hits = sum(tree.get(k) is not None for k in range(0, 2000, 20))
    print(f"  {hits}/100 hits, {(storage.io_seconds - t0) * 1000 / 100:.2f} ms/query simulated")

    print("Buffered mutations (messages, not in-place writes)...")
    t0 = storage.io_seconds
    for k in range(1, 20_001, 2):           # 10k inserts of odd keys
        tree.insert(k, f"new-{k}")
    for k in range(0, 10_000, 10):          # 1k deletes
        tree.delete(k)
    tree.upsert(999_999, 7)                 # read-modify-write without the read
    storage.flush()
    mutate_seconds = storage.io_seconds - t0
    print(f"  11,001 mutations in {mutate_seconds:.3f}s simulated "
          f"({mutate_seconds * 1e6 / 11001:.1f} us/op amortized)")

    print("Range scan...")
    t0 = storage.io_seconds
    rows = tree.range(50_000, 60_000)
    print(f"  {len(rows)} rows, {storage.io_seconds - t0:.3f}s simulated")

    print("Consistency check...")
    tree.check_invariants()
    assert tree.get(1) == "new-1"
    assert tree.get(0) is None          # deleted
    assert tree.get(999_999) == 7       # upsert from absent starts at 0
    print("  all invariants hold")

    stats = device.stats
    print(
        f"\nDevice totals: {stats.reads} reads / {stats.writes} writes, "
        f"{stats.total_bytes / 2**20:.1f} MiB moved, "
        f"{stats.busy_seconds:.2f}s busy"
    )
    print(
        "Write amplification: "
        f"{stats.write_amplification(tree.user_bytes_modified):.1f}x"
    )


if __name__ == "__main__":
    main()
