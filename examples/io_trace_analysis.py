"""IO-trace anatomy: what write-optimization looks like on the wire.

Runs the same update-heavy workload against a B-tree and a Bε-tree with IO
tracing enabled, then uses :mod:`repro.analysis.traces` to show *why* the
Bε-tree wins: far fewer IOs, much larger and more sequential ones — the
affine model's favourite kind.

Run:  python examples/io_trace_analysis.py
"""

import math

from repro.analysis.traces import io_size_histogram, summarize_trace
from repro.experiments.devices import default_hdd
from repro.storage.stack import StorageStack
from repro.trees.betree import BeTreeConfig, OptimizedBeTree
from repro.trees.btree import BTree, BTreeConfig
from repro.workloads.generators import insert_stream, random_load_pairs

N_LOAD = 100_000
N_OPS = 6000
CACHE = 2 << 20


def run_workload(label, build):
    device = default_hdd(seed=1, trace=True)
    stack = StorageStack(device, CACHE)
    tree = build(stack)
    tree.bulk_load(random_load_pairs(N_LOAD, 1 << 31, seed=0))
    stack.drop_cache()
    trace_start = len(device.trace)
    for k, v in insert_stream(1 << 31, N_OPS, seed=2):
        tree.insert(k, v)
    stack.flush()
    trace = device.trace[trace_start:]
    stats = summarize_trace(trace)

    print(f"\n{label}: {N_OPS} random inserts")
    print(f"  IOs issued:          {stats.n_ios} "
          f"({stats.n_reads} reads / {stats.n_writes} writes)")
    print(f"  bytes moved:         {stats.total_bytes / 2**20:.1f} MiB")
    print(f"  mean IO size:        {stats.mean_io_bytes / 1024:.0f} KiB")
    seq = (
        "n/a (single IO)"
        if math.isnan(stats.sequential_fraction)
        else f"{stats.sequential_fraction:.0%}"
    )
    print(f"  sequential IOs:      {seq}")
    print(f"  device time:         {stats.busy_seconds:.2f} s simulated "
          f"({stats.busy_seconds * 1e6 / N_OPS:.0f} us/op)")
    print(f"  effective bandwidth: {stats.effective_bandwidth / 2**20:.1f} MiB/s")
    print("  IO size histogram:")
    for bucket, count in io_size_histogram(trace):
        print(f"    {bucket:>22s}  {count}")
    return stats


def main() -> None:
    bt = run_workload(
        "B-tree (64 KiB nodes)",
        lambda stack: BTree(stack, BTreeConfig(node_bytes=64 << 10)),
    )
    be = run_workload(
        "Bε-tree (1 MiB nodes, F=16)",
        lambda stack: OptimizedBeTree(
            stack, BeTreeConfig(node_bytes=1 << 20, fanout=16)
        ),
    )
    print(
        f"\nSame {N_OPS} inserts: the Bε-tree issued {bt.n_ios / be.n_ios:.0f}x "
        f"fewer IOs, moved {bt.total_bytes / be.total_bytes:.0f}x fewer bytes, "
        f"and finished in {bt.busy_seconds / be.busy_seconds:.0f}x less device "
        "time.  Buffering turns thousands of read-modify-write leaf touches "
        "into a few large batched node IOs — exactly the IO pattern the "
        "affine model rewards (and Definition 3's write amplification counts "
        "from the bytes side)."
    )


if __name__ == "__main__":
    main()
