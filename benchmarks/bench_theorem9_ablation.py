"""Theorem 9 ablation: per-child segments and pivots-in-parent.

Checks that each optimization step reduces query cost and that the full
Theorem 9 tree achieves a material speedup over naive whole-node IOs —
the ``1 + a(B/F + F)`` vs ``1 + aB`` per-level difference.
"""

from repro.experiments import exp_optimizations


def bench_theorem9_ablation(benchmark, show):
    result = benchmark.pedantic(lambda: exp_optimizations.run(), rounds=1, iterations=1)
    show(result.render())
    benchmark.extra_info["query_ms"] = {k: round(v, 2) for k, v in result.query_ms.items()}
    benchmark.extra_info["query_speedup"] = round(result.query_speedup, 2)

    q = result.query_ms
    assert q["segments"] < q["naive"], "partial reads must beat whole-node reads"
    assert q["theorem9"] <= q["segments"], "pivots-in-parent must not hurt"
    assert result.query_speedup > 1.5
    # Inserts move whole nodes in every variant: within an order of magnitude.
    ins = result.insert_ms
    assert max(ins.values()) < 20 * max(min(ins.values()), 1e-6)
