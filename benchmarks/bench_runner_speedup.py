"""repro.runner: parallel sweep speedup and cache warm-rerun cost.

Two gates on the runner subsystem rather than on the paper's quantities:

1. **Parallelism is sound and free** — the E3 + E5 sweeps produce the exact
   same results at any job count, and with >= 2 cores the parallel run is
   no slower than the serial one (no absolute wall-clock thresholds: CI
   hardware varies, correctness and relative ordering do not).

   *cpus caveat*: on a single-core host a process pool cannot win, so the
   "no slower" claim is **skipped**, not vacuously passed — the record
   carries ``parallel_gate_checked: false`` so readers of the JSON history
   know which entries actually exercised the gate.  Single-core speed is
   instead covered by the vectorization gate in
   ``benchmarks/bench_engine_vector.py``, which batches IO inside one
   process and gates the E6 sweep at ``jobs=1``.
2. **The cache works** — a warm rerun of the same sweeps costs < 10% of
   the cold run and returns identical results.

Run standalone to append a wall-clock record to ``BENCH_runner_speedup.json``
at the repo root::

    PYTHONPATH=src python benchmarks/bench_runner_speedup.py [--smoke]

``--smoke`` shrinks the sweeps to a few seconds of runtime.
"""

import json
import os
import time
from pathlib import Path

from repro.experiments import exp_affine_validation as e3
from repro.experiments import exp_btree_nodesize as e5
from repro.runner import ResultCache, run_sweep

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_runner_speedup.json"

# Big enough that per-point work dwarfs pool startup, small enough for CI.
FULL = dict(
    e3=dict(
        io_sizes=tuple(4096 * 4**k for k in range(7)),
        reads_per_size=256,
        devices=("seagate-2tb-2002-sim", "seagate-250gb-2006-sim",
                 "hitachi-1tb-2009-sim", "wd-black-1tb-2011-sim"),
        seed=0,
    ),
    e5=dict(
        node_sizes=tuple(8192 * 2**k for k in range(8)),  # 8 KiB .. 1 MiB
        n_entries=150_000,
        cache_bytes=4 << 20,
        n_queries=300,
        n_inserts=300,
        warmup_queries=150,
        seed=0,
    ),
)

# Sized so that on 2+ cores the pool's fork overhead is well under the
# serial runtime — the smoke gate (parallel <= serial) must not be won or
# lost on process startup noise.
SMOKE = dict(
    e3=dict(
        io_sizes=(4096, 65536, 1 << 20),
        reads_per_size=8,
        devices=("seagate-2tb-2002-sim", "wd-black-1tb-2011-sim"),
        seed=0,
    ),
    e5=dict(
        node_sizes=(32768, 131072, 524288, 1 << 20),
        n_entries=100_000,
        cache_bytes=2 << 20,
        n_queries=200,
        n_inserts=200,
        warmup_queries=100,
        seed=0,
    ),
)

# A few points of warm-up work, shared by every measurement path.
WARMUP = dict(
    e3=dict(
        io_sizes=(4096, 65536),
        reads_per_size=4,
        devices=("seagate-2tb-2002-sim",),
        seed=0,
    ),
    e5=dict(
        node_sizes=(65536,),
        n_entries=4000,
        cache_bytes=1 << 20,
        n_queries=10,
        n_inserts=10,
        warmup_queries=10,
        seed=0,
    ),
)


def _specs(config):
    return [e3.sweep_spec(**config["e3"]), e5.sweep_spec(**config["e5"])]


def _run_sweeps(config, *, jobs, cache=None):
    """Run both sweeps, returning (results, wall_seconds)."""
    start = time.perf_counter()
    results = [run_sweep(spec, jobs=jobs, cache=cache) for spec in _specs(config)]
    return results, time.perf_counter() - start


def _measure(config, tmp_cache_dir):
    jobs = min(8, os.cpu_count() or 1)
    _run_sweeps(WARMUP, jobs=1)  # warm imports/allocator so timings compare fairly
    serial_results, serial_s = _run_sweeps(config, jobs=1)
    parallel_results, parallel_s = _run_sweeps(config, jobs=jobs)
    cache = ResultCache(tmp_cache_dir)
    cold_results, cold_s = _run_sweeps(config, jobs=1, cache=cache)
    warm_results, warm_s = _run_sweeps(config, jobs=1, cache=cache)
    cpus = os.cpu_count() or 1
    return {
        "jobs": jobs,
        "cpus": cpus,
        # False on single-core hosts: the parallel no-lose gate below is
        # skipped there (a pool cannot beat serial on one core), and the
        # record says so explicitly rather than passing vacuously.
        "parallel_gate_checked": cpus >= 2,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": serial_s / parallel_s if parallel_s else float("inf"),
        "warm_fraction": warm_s / cold_s if cold_s else 0.0,
        "results_identical": (
            parallel_results == serial_results
            and cold_results == serial_results
            and warm_results == serial_results
        ),
    }


def _check(m):
    assert m["results_identical"], "parallel/cached results diverged from serial"
    assert m["warm_fraction"] < 0.10, (
        f"warm rerun cost {m['warm_fraction']:.1%} of cold (>= 10%)"
    )
    if m["parallel_gate_checked"]:
        # Relative gate only: the pool must not lose to the serial path.
        assert m["parallel_s"] <= m["serial_s"], (
            f"parallel {m['parallel_s']:.2f}s slower than serial {m['serial_s']:.2f}s"
        )


def bench_runner_speedup(benchmark, show, tmp_path):
    m = benchmark.pedantic(
        lambda: _measure(FULL, tmp_path / "cache"), rounds=1, iterations=1
    )
    gate_note = "" if m["parallel_gate_checked"] else " [parallel gate skipped: 1 cpu]"
    show(
        f"E3+E5 sweeps: serial {m['serial_s']:.2f}s, "
        f"jobs={m['jobs']} {m['parallel_s']:.2f}s "
        f"({m['speedup']:.2f}x on {m['cpus']} cpus){gate_note}; "
        f"cold {m['cold_s']:.2f}s, warm {m['warm_s']:.2f}s "
        f"({m['warm_fraction']:.1%})"
    )
    for key in ("jobs", "cpus", "parallel_gate_checked", "serial_s",
                "parallel_s", "cold_s", "warm_s"):
        benchmark.extra_info[key] = round(m[key], 3) if isinstance(m[key], float) else m[key]
    benchmark.extra_info["speedup"] = round(m["speedup"], 2)
    benchmark.extra_info["warm_fraction"] = round(m["warm_fraction"], 4)
    _check(m)


def main(argv):
    import tempfile

    config = SMOKE if "--smoke" in argv else FULL
    with tempfile.TemporaryDirectory() as tmp:
        m = _measure(config, Path(tmp) / "cache")
    _check(m)
    record = {"config": "smoke" if config is SMOKE else "full"}
    record.update({k: round(v, 4) if isinstance(v, float) else v for k, v in m.items()})
    history = []
    if BENCH_JSON.exists():
        history = json.loads(BENCH_JSON.read_text())
    history.append(record)
    BENCH_JSON.write_text(json.dumps(history, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"appended to {BENCH_JSON}")


if __name__ == "__main__":
    import sys

    main(sys.argv[1:])
