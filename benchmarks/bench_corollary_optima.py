"""Corollaries 6/7/11/12: optimal node sizes across the alpha grid.

Checks that the numeric optimum tracks the closed form, sits below the
half-bandwidth point, and that the Corollary 12 Bε-tree design's insert
speedup grows like log(1/alpha).
"""

from repro.experiments import exp_optima


def bench_corollary_optima(benchmark, show):
    result = benchmark.pedantic(lambda: exp_optima.run(), rounds=1, iterations=1)
    show(result.render())
    benchmark.extra_info["speedups"] = [round(v, 2) for v in result.insert_speedup]

    for i, alpha in enumerate(result.alphas):
        # Corollary 6/7: optimum strictly below the half-bandwidth point.
        assert result.numeric_btree[i] < 1.0 / alpha
        # Closed form within a small constant factor of the numeric optimum.
        ratio = result.numeric_btree[i] / result.closed_btree[i]
        assert 0.5 < ratio < 3.0
        # Corollary 11's per-level overhead is sub-constant.
        assert result.query_overhead[i] < 1.0
    # Corollary 12: speedup increases as alpha decreases (grid is decreasing).
    assert result.insert_speedup == sorted(result.insert_speedup)
