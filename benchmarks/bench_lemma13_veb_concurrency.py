"""Lemma 13 / Section 8: PDAM-adaptive B-tree layouts under concurrency.

Checks the dominance claim: size-PB nodes in vEB layout achieve (near-)
optimal throughput at *every* client count, while size-B nodes waste the
device at k=1 and whole-node size-PB reads waste it at k=P.
"""

from repro.experiments import exp_pdam_concurrency


def bench_lemma13_concurrent_queries(benchmark, show):
    result = benchmark.pedantic(lambda: exp_pdam_concurrency.run(), rounds=1, iterations=1)
    show(result.render())
    thr = result.throughput
    benchmark.extra_info["veb_throughput"] = [round(v, 3) for v in thr["veb_pb"]]

    # veb within 85% of the best layout at every k (Lemma 13 dominance).
    assert result.veb_dominates(slack=0.85)
    # flat_b wastes parallelism at k=1: veb beats it clearly.
    assert thr["veb_pb"][0] > 1.2 * thr["flat_b"][0]
    # flat_pb cannot scale: at k=P it is far below both others.
    k_p_index = result.clients.index(result.parallelism)
    assert thr["flat_pb"][k_p_index] < 0.5 * thr["flat_b"][k_p_index]
    # flat_b saturates at k=P (throughput stops growing past it).
    assert thr["flat_b"][-1] < 1.2 * thr["flat_b"][k_p_index]
