"""Extension: model predictability — affine vs DAM on the same workload.

Checks the paper's headline quantitatively: on a B-tree query workload,
the affine model predicts within the paper's 25% bound at every node size,
while the Lemma 1 DAM stays within its factor-of-2 guarantee but swings
from over- to under-prediction across the sweep (so it cannot rank node
sizes).
"""

from repro.experiments import exp_model_error


def bench_model_predictability(benchmark, show):
    result = benchmark.pedantic(lambda: exp_model_error.run(), rounds=1, iterations=1)
    show(result.render())
    benchmark.extra_info["affine_err"] = [round(e, 3) for e in result.affine_errors]
    benchmark.extra_info["dam_err"] = [round(e, 3) for e in result.dam_errors]

    # Affine: within the paper's 25% error bound at every node size.
    assert all(abs(e) < 0.25 for e in result.affine_errors)
    # DAM: within Lemma 1's factor of 2 (error in (-50%, +100%] modulo
    # measurement noise)...
    assert all(-0.55 < e < 1.6 for e in result.dam_errors)
    # ...but far less predictive than the affine model overall...
    worst_affine = max(abs(e) for e in result.affine_errors)
    worst_dam = max(abs(e) for e in result.dam_errors)
    assert worst_dam > 4 * worst_affine
    # ...and its error changes sign across the sweep: it cannot rank sizes.
    assert min(result.dam_errors) < 0 < max(result.dam_errors)
