"""repro.storage engine vectorization: batched-IO identity and speedup gates.

Three gates on the vectorized simulation engine rather than on the paper's
quantities:

1. **Batching is invisible** — every batched path (device ``read_batch`` /
   ``write_batch``, the runner's ``service_batch`` dispatch, the trees'
   ``put_many``) produces byte-identical results and accounting to its
   serial loop, asserted with exact float equality.
2. **Batching does not lose** — each batched path is no slower than its
   serial-dispatch twin (relative gates only: CI hardware varies, identity
   and relative ordering do not).
3. **The E6 tentpole holds** (``--full`` only) — the full Figure 3 sweep at
   ``jobs=1`` runs at least 5x faster than the pre-vectorization seed
   baseline recorded below.  Raw wall-clock gates are meaningless across
   hosts, so the seed baseline is scaled by a pure-Python calibration
   workload (:func:`_calibration`) run at bench time: a host that runs the
   calibration 1.4x slower than the reference epoch gets a 1.4x larger
   baseline.  CI runs ``--smoke``, which checks gates 1-2 and records (but
   does not gate) the E6 wall time.

Run standalone to append a record to ``BENCH_engine_vector.json``::

    PYTHONPATH=src python benchmarks/bench_engine_vector.py [--smoke]
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.runner.cache import CACHE_EPOCH
from repro.storage.engine import ClosedLoopRunner
from repro.storage.device import ReadRequest
from repro.storage.hdd import HDDGeometry, SimulatedHDD
from repro.storage.ssd import SimulatedSSD, SSDGeometry
from repro.storage.stack import StorageStack
from repro.trees.betree import BeTreeConfig, OptimizedBeTree
from repro.trees.sizing import EntryFormat

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_engine_vector.json"

#: E6 full-sweep wall seconds at jobs=1 on the seed (pre-vectorization)
#: engine, measured on the reference machine.  The --full gate demands a
#: 5x improvement against this number, scaled by the calibration below.
SEED_E6_WALL_S = 6.98
TARGET_SPEEDUP = 5.0

#: Wall seconds of :func:`_calibration` on the reference machine at the
#: epoch the seed baseline was taken.  Interpreter speed varies across CI
#: hosts (and drifts on shared ones), so the absolute gate compares
#: machine-normalized times: the effective baseline is
#: ``SEED_E6_WALL_S * calibration_now / SEED_CALIB_S``.
SEED_CALIB_S = 0.19


def _calibration():
    """A fixed pure-Python workload shaped like the E6 kernels.

    Dict churn, bisect-maintained sorted lists, and small-object float
    arithmetic — the operations whose interpreter cost dominates the
    sweep.  Returns its wall seconds; deterministic amount of work.
    """
    import bisect

    start = time.perf_counter()
    acc = {}
    keys: list[int] = []
    clock = 0.0
    x = 123456789
    for i in range(120_000):
        x = (x * 1103515245 + 12345) % (1 << 31)
        k = x % 50_000
        lst = acc.get(k)
        if lst is None:
            acc[k] = [i]
            bisect.insort(keys, k)
        else:
            lst.append(i)
        clock += 1e-6 * (k % 7 + 1)
        if len(acc) > 20_000:
            acc.clear()
            keys.clear()
    return time.perf_counter() - start


def _device_batch(n_ios):
    """HDD read_batch vs a serial read loop: (identical, serial_s, batch_s)."""
    rng = np.random.default_rng(0)
    offsets = (rng.integers(0, (1 << 30) // 4096, size=n_ios) * 4096).tolist()
    serial_dev = SimulatedHDD(HDDGeometry(capacity_bytes=1 << 30), seed=2)
    start = time.perf_counter()
    expected = [serial_dev.read(off, 4096) for off in offsets]
    serial_s = time.perf_counter() - start
    batch_dev = SimulatedHDD(HDDGeometry(capacity_bytes=1 << 30), seed=2)
    start = time.perf_counter()
    got = batch_dev.read_batch(offsets, 4096)
    batch_s = time.perf_counter() - start
    identical = got == expected and batch_dev.clock == serial_dev.clock
    return identical, serial_s, batch_s


def _runner_batch(n_clients, n_requests):
    """SSD closed loop, scalar vs service_batch dispatch."""
    def streams():
        return [
            [ReadRequest((c * 11 + r) % 256 * 65536, 65536) for r in range(n_requests)]
            for c in range(n_clients)
        ]

    scalar_dev = SimulatedSSD(SSDGeometry(capacity_bytes=1 << 30))
    start = time.perf_counter()
    scalar = ClosedLoopRunner(scalar_dev.service_request).run(streams())
    scalar_s = time.perf_counter() - start
    batch_dev = SimulatedSSD(SSDGeometry(capacity_bytes=1 << 30))
    start = time.perf_counter()
    batched = ClosedLoopRunner(
        batch_dev.service_request, service_batch=batch_dev.service_request_batch
    ).run(streams())
    batch_s = time.perf_counter() - start
    identical = batched == scalar and batch_dev.clock == scalar_dev.clock
    return identical, scalar_s, batch_s


def _tree_batch(n_pairs):
    """OptimizedBeTree put_many vs a serial insert loop."""
    def make():
        stack = StorageStack(
            SimulatedHDD(HDDGeometry(capacity_bytes=1 << 30), seed=1), 1 << 20
        )
        cfg = BeTreeConfig(node_bytes=65536, fanout=8, fmt=EntryFormat(value_bytes=20))
        return OptimizedBeTree(stack, cfg), stack

    rng = np.random.default_rng(7)
    pairs = [(int(k), int(k) * 3) for k in rng.integers(0, 1 << 24, size=n_pairs)]
    serial_tree, serial_stack = make()
    start = time.perf_counter()
    for k, v in pairs:
        serial_tree.insert(k, v)
    serial_s = time.perf_counter() - start
    batch_tree, batch_stack = make()
    start = time.perf_counter()
    batch_tree.put_many(pairs)
    batch_s = time.perf_counter() - start
    identical = (
        batch_stack.io_seconds == serial_stack.io_seconds
        and batch_stack.device.clock == serial_stack.device.clock
        and vars(batch_stack.device.stats) == vars(serial_stack.device.stats)
        and batch_tree._next_seq == serial_tree._next_seq
    )
    return identical, serial_s, batch_s


def _e6(smoke):
    """Run the E6 sweep at jobs=1 (uncached) twice; wall time + identity."""
    from repro.experiments import exp_betree_nodesize as e6

    kwargs = {}
    if smoke:
        kwargs = dict(
            node_sizes=(65536, 262144, 1048576), n_entries=30_000, n_queries=60
        )
    start = time.perf_counter()
    first = e6.run(jobs=1, **kwargs)
    wall_a = time.perf_counter() - start
    start = time.perf_counter()
    second = e6.run(jobs=1, **kwargs)
    wall_b = time.perf_counter() - start
    # Min of the two runs: the determinism rerun doubles as a best-of-2
    # timing, for free.
    return first.render() == second.render(), min(wall_a, wall_b)


def _best_of(fn, rounds=3):
    """Repeat a (identical, serial_s, batch_s) measurement; best of each.

    Identity must hold on every round; the timing gates compare the best
    serial against the best batch so one scheduler hiccup cannot flip a
    thin relative margin.
    """
    oks, serials, batches = [], [], []
    for _ in range(rounds):
        ok, serial_s, batch_s = fn()
        oks.append(ok)
        serials.append(serial_s)
        batches.append(batch_s)
    return all(oks), min(serials), min(batches)


def _measure(smoke):
    scale = 10 if smoke else 1
    # E6 and its calibration run before the micro-benches below, which
    # leave a large tracked heap behind that would tax the cyclic
    # collector during the sweep's between-point windows.  Calibrating
    # both before and after E6 (min over all rounds) pairs the host's
    # best observed interpreter speed with E6's best observed wall, so
    # drifting machine state between the two windows cannot skew the
    # normalized ratio in either direction.
    calib_rounds = [_calibration() for _ in range(3)]
    e6_ok, e6_wall = _e6(smoke)
    calib_rounds += [_calibration() for _ in range(2)]
    calib = min(calib_rounds)
    dev_ok, dev_serial, dev_batch = _best_of(lambda: _device_batch(20_000 // scale))
    # Runner workload shrinks less than the others in smoke mode (at ~2ms
    # a side the no-lose comparison would be pure timer noise) and gets
    # extra rounds: its margin is the thinnest of the three paths.
    run_ok, run_serial, run_batch = _best_of(
        lambda: _runner_batch(8, 600 // (4 if smoke else 1)), rounds=5
    )
    tree_ok, tree_serial, tree_batch = _best_of(lambda: _tree_batch(40_000 // scale))
    return {
        "cache_epoch": CACHE_EPOCH,
        "device_identical": dev_ok,
        "runner_identical": run_ok,
        "tree_identical": tree_ok,
        "e6_deterministic": e6_ok,
        "device_serial_s": dev_serial,
        "device_batch_s": dev_batch,
        "runner_serial_s": run_serial,
        "runner_batch_s": run_batch,
        "tree_serial_s": tree_serial,
        "tree_batch_s": tree_batch,
        "device_speedup": dev_serial / dev_batch if dev_batch else float("inf"),
        "runner_speedup": run_serial / run_batch if run_batch else float("inf"),
        "tree_speedup": tree_serial / tree_batch if tree_batch else float("inf"),
        "e6_wall_s": e6_wall,
        "seed_e6_wall_s": SEED_E6_WALL_S,
        "calibration_s": calib,
        "seed_calibration_s": SEED_CALIB_S,
        # Machine-normalized: what the seed would take at this host's
        # current interpreter speed, divided by what E6 actually took.
        "e6_baseline_here_s": SEED_E6_WALL_S * calib / SEED_CALIB_S,
        "e6_speedup_vs_seed": (
            (SEED_E6_WALL_S * calib / SEED_CALIB_S) / e6_wall
            if e6_wall
            else float("inf")
        ),
    }


def _check(m, *, full):
    assert m["device_identical"], "device batch diverged from serial reads"
    assert m["runner_identical"], "batched runner diverged from scalar dispatch"
    assert m["tree_identical"], "put_many accounting diverged from insert loop"
    assert m["e6_deterministic"], "E6 reruns diverged"
    # Relative no-lose gates: batching must never cost wall time.  The
    # slack plus a 2ms floor absorbs scheduler/timer noise; the runner
    # path gets more room because its dispatch win is breakeven-to-modest
    # by design (the SSD completion math dominates either way, batching
    # only removes the per-request heap/dispatch overhead), so on a noisy
    # host a strict gate on it flips on drift rather than on regressions.
    for path, slack in (("device", 1.05), ("runner", 1.15), ("tree", 1.05)):
        assert m[f"{path}_batch_s"] <= slack * m[f"{path}_serial_s"] + 0.002, (
            f"{path} batch path {m[f'{path}_batch_s']:.3f}s slower than "
            f"serial {m[f'{path}_serial_s']:.3f}s"
        )
    if full:
        assert m["e6_speedup_vs_seed"] >= TARGET_SPEEDUP, (
            f"E6 ran {m['e6_wall_s']:.2f}s — only "
            f"{m['e6_speedup_vs_seed']:.2f}x vs the calibrated seed baseline "
            f"{m['e6_baseline_here_s']:.2f}s (target {TARGET_SPEEDUP}x); "
            "see module docstring for the calibration scheme"
        )


def bench_engine_vector(benchmark, show, tmp_path):
    m = benchmark.pedantic(lambda: _measure(True), rounds=1, iterations=1)
    show(
        f"engine vectorization: device batch {m['device_speedup']:.1f}x, "
        f"runner batch {m['runner_speedup']:.2f}x, "
        f"put_many {m['tree_speedup']:.2f}x, "
        f"E6 smoke {m['e6_wall_s']:.2f}s (full-sweep seed baseline "
        f"{SEED_E6_WALL_S}s)"
    )
    for key, value in m.items():
        benchmark.extra_info[key] = (
            round(value, 4) if isinstance(value, float) else value
        )
    _check(m, full=False)


def main(argv):
    smoke = "--smoke" in argv
    m = _measure(smoke)
    _check(m, full=not smoke)
    record = {"config": "smoke" if smoke else "full"}
    record.update(
        {k: round(v, 4) if isinstance(v, float) else v for k, v in m.items()}
    )
    history = []
    if BENCH_JSON.exists():
        history = json.loads(BENCH_JSON.read_text())
    history.append(record)
    BENCH_JSON.write_text(json.dumps(history, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"appended to {BENCH_JSON}")


if __name__ == "__main__":
    import sys

    main(sys.argv[1:])
