"""Figure 1: time to read per-thread data on each simulated SSD vs p.

Regenerates the paper's thread-scaling series and checks the DAM-vs-PDAM
claim: completion time is flat until ``p ~ P``, while the DAM predicts
linear growth from ``p = 1`` (overestimating by ``~P`` at large ``p``).
"""

from repro.experiments import exp_pdam_validation


def bench_fig1_pdam_thread_scaling(benchmark, show):
    result = benchmark.pedantic(
        lambda: exp_pdam_validation.run(bytes_per_thread=8 << 20),
        rounds=1,
        iterations=1,
    )
    show(result.render())
    for name, fit in result.fits.items():
        benchmark.extra_info[f"P[{name}]"] = round(fit.parallelism, 2)
        benchmark.extra_info[f"R2[{name}]"] = round(fit.r2, 4)
        # Shape assertions: Figure 1's flat-then-linear curve.
        times = result.times[name]
        assert times[1] < 1.4 * times[0], f"{name}: no flat region"
        assert times[-1] > 3 * times[0], f"{name}: never saturated"
        assert result.dam_overestimate_factor(name) > 1.5, name
