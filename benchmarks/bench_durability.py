"""repro.recovery: E21 durability gates on the WAL write path.

Three gates on the committed durability numbers:

1. **Recovery correctness** — every swept point crashes mid-stream,
   recovers, and must match the acked-prefix dict model
   (``recovered_ok`` on every row).  A sweep that stops recovering
   correctly is not a performance regression, it is a broken promise.
2. **Model-dependent optimum** — the affine model's cost-minimizing
   group-commit batch must be strictly larger than the DAM's, and the
   PDAM's must agree with the DAM's: the Corollary 6/7 argument applied
   to the write path.  If the optima collapse together, the cost models
   have stopped differentiating the write path.
3. **WAL overhead bound** — at batch ``k >= 8`` the log's share of the
   run must stay below ``WAL_FRAC_BOUND`` on the DAM: group commit
   exists to amortize the log out of the write path.

Plus the standing **determinism** gate: re-running the sweep through the
runner at ``jobs=2`` must reproduce identical rows.

Run standalone to append a record to ``BENCH_durability.json`` at the
repo root::

    PYTHONPATH=src python benchmarks/bench_durability.py [--smoke]

``--smoke`` shrinks the sweep to about a second of runtime.
"""

import json
import time
from pathlib import Path

from repro.experiments import exp_durability

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_durability.json"

FULL = dict(seed=0)

SMOKE = dict(quick=True, seed=0)

#: DAM-model WAL share of the run at batch k >= 8 must stay below this.
WAL_FRAC_BOUND = 0.5

#: Expected gate strictness per config, recorded into every BENCH record.
#: The smoke sweep keeps all three devices, so the separation gate stays
#: strict even there; unknown config names raise — a new config must
#: declare its expectations here.
GATES = {
    "full": {"separation_strict": True, "wal_frac_strict": True},
    "smoke": {"separation_strict": True, "wal_frac_strict": True},
}


def _run(config, *, jobs=1):
    t0 = time.perf_counter()
    result = exp_durability.run(jobs=jobs, cache=None, **config)
    return result, time.perf_counter() - t0


def _measure(config):
    result, wall = _run(config)
    rerun, _ = _run(config, jobs=2)
    ckpt0 = result.checkpoints[0]
    optima = {d: result.argmin_batch(d, checkpoint_every=ckpt0) for d in result.devices}
    dam_rows = [
        r
        for r in result.rows
        if r["device"] == "dam" and r["group_commit"] >= 8
    ]
    return {
        "seed": config.get("seed", 0),
        "devices": list(result.devices),
        "group_commits": list(result.group_commits),
        "checkpoints": list(result.checkpoints),
        "crash_rate": result.crash_rate,
        "wall_s": wall,
        "deterministic_across_jobs": result.rows == rerun.rows,
        "all_recovered_ok": all(r["recovered_ok"] for r in result.rows),
        "argmin_batch": optima,
        "dam_wal_frac_at_k8": max(r["wal_frac"] for r in dam_rows),
        "rows": [
            {
                "device": r["device"],
                "group_commit": r["group_commit"],
                "checkpoint_every": r["checkpoint_every"],
                "run_per_op_ms": round(r["run_per_op_ms"], 4),
                "wal_frac": round(r["wal_frac"], 4),
                "exposure": round(r["exposure"], 2),
                "lost_ops": r["lost_ops"],
                "replayed": r["replayed"],
                "recovery_ms": round(r["recovery_ms"], 3),
                "cost_per_op_ms": round(r["cost_per_op_ms"], 4),
                "recovered_ok": r["recovered_ok"],
            }
            for r in result.rows
        ],
    }


def _check(m, *, config_name):
    """Run the gates for ``config_name``; return the gate outcomes."""
    gates = GATES[config_name]  # KeyError = undeclared config, on purpose
    optima = m["argmin_batch"]
    outcomes = {
        "separation_strict": gates["separation_strict"],
        "wal_frac_strict": gates["wal_frac_strict"],
        "wal_frac_bound": WAL_FRAC_BOUND,
        "separation_ok": optima["affine"] > optima["dam"],
        "pdam_agrees_with_dam": optima["pdam"] == optima["dam"],
        "wal_frac_ok": m["dam_wal_frac_at_k8"] < WAL_FRAC_BOUND,
    }
    assert m["deterministic_across_jobs"], (
        "durability sweep differs across job counts"
    )
    assert m["all_recovered_ok"], (
        "a swept point failed the acked-prefix recovery check"
    )
    if gates["separation_strict"]:
        assert outcomes["separation_ok"], (
            f"affine-optimal batch ({optima['affine']}) should exceed the "
            f"DAM-optimal one ({optima['dam']}): the models have stopped "
            "differentiating the write path"
        )
        assert outcomes["pdam_agrees_with_dam"], (
            f"PDAM-optimal batch ({optima['pdam']}) should match the DAM's "
            f"({optima['dam']}): one commit blob fits one parallel step"
        )
    if gates["wal_frac_strict"]:
        assert outcomes["wal_frac_ok"], (
            f"WAL share at k>=8 on the DAM is {m['dam_wal_frac_at_k8']:.2f}, "
            f"over the {WAL_FRAC_BOUND} bound: group commit has stopped "
            "amortizing the log"
        )
    return outcomes


def bench_durability(benchmark, show):
    m = benchmark.pedantic(lambda: _measure(FULL), rounds=1, iterations=1)
    optima = m["argmin_batch"]
    show(
        f"E21 cost-minimizing batch: dam k*={optima['dam']}, "
        f"affine k*={optima['affine']}, pdam k*={optima['pdam']}; "
        f"all recovered: {m['all_recovered_ok']}; "
        f"deterministic across jobs: {m['deterministic_across_jobs']}"
    )
    benchmark.extra_info["argmin_dam"] = optima["dam"]
    benchmark.extra_info["argmin_affine"] = optima["affine"]
    benchmark.extra_info["argmin_pdam"] = optima["pdam"]
    _check(m, config_name="full")


def main(argv):
    config_name = "smoke" if "--smoke" in argv else "full"
    config = SMOKE if config_name == "smoke" else FULL
    m = _measure(config)
    m["gates"] = _check(m, config_name=config_name)
    record = {"config": config_name}
    record.update(
        {k: round(v, 4) if isinstance(v, float) else v for k, v in m.items()}
    )
    history = []
    if BENCH_JSON.exists():
        history = json.loads(BENCH_JSON.read_text())
    history.append(record)
    BENCH_JSON.write_text(json.dumps(history, indent=2) + "\n")
    print(json.dumps({k: v for k, v in record.items() if k != "rows"}, indent=2))
    print(f"appended to {BENCH_JSON} ({len(record['rows'])} rows)")


if __name__ == "__main__":
    import sys

    main(sys.argv[1:])
