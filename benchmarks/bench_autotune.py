"""E17: the autotuner converges on every device; no static config can.

Three gates on the :mod:`repro.tuning` closed loop:

1. **Convergence** — starting from a node size 16x off, one
   probe -> fit -> solve -> rebuild pass lands within 2x of the optimum an
   exhaustive per-device sweep finds, on every device in the zoo.
2. **No static configuration** — over the same fitted device models at the
   reference big-data scale, every single node size is more than 2x off
   optimal on at least one device: per-device tuning is necessary.
3. **Round-trip** — calibrating the ideal devices recovers the planted
   parameters (alpha within 5%, P within 5%) with fit R² >= 0.98.
"""

from repro.experiments import exp_autotune
from repro.models.affine import AffineModel
from repro.models.pdam import PDAMModel
from repro.storage.ideal import AffineDevice, PDAMDevice
from repro.tuning import calibrate_device


def bench_autotune_convergence(benchmark, show):
    result = benchmark.pedantic(lambda: exp_autotune.run(), rounds=1, iterations=1)
    show(result.render())
    benchmark.extra_info["ratios"] = {
        row.name: round(row.convergence_ratio, 2) for row in result.rows
    }
    benchmark.extra_info["static_worst"] = round(result.best_static_worst_ratio, 2)

    # Gate 1: within 2x of the sweep optimum on every device.
    for row in result.rows:
        assert row.convergence_ratio <= 2.0, row.name
    # The bad start really was bad somewhere (16x off is not a no-op).
    assert max(row.start_ratio for row in result.rows) > 2.0
    # Gate 2: the best static node size is > 2x off on its worst device.
    assert result.best_static_worst_ratio > 2.0


def bench_autotune_roundtrip(benchmark, show):
    s, t = 0.004, 4e-9

    def roundtrip():
        affine_profile = calibrate_device(
            AffineDevice(AffineModel.from_hardware(s, t))
        )
        pdam_profile = calibrate_device(
            PDAMDevice(PDAMModel(parallelism=8, block_bytes=4096, step_seconds=1e-4))
        )
        return affine_profile, pdam_profile

    affine_profile, pdam_profile = benchmark.pedantic(
        roundtrip, rounds=1, iterations=1
    )
    alpha_err = abs(affine_profile.alpha_per_byte - t / s) / (t / s)
    p_err = abs(pdam_profile.pdam.parallelism - 8) / 8
    show(
        f"alpha round-trip error {alpha_err * 100:.3g}% "
        f"(fit R2 {affine_profile.affine.r2:.4f}), "
        f"P round-trip error {p_err * 100:.3g}% "
        f"(fit R2 {pdam_profile.pdam.r2:.4f})"
    )
    benchmark.extra_info["alpha_err_pct"] = round(alpha_err * 100, 3)
    benchmark.extra_info["p_err_pct"] = round(p_err * 100, 3)

    # Gate 3: parameters recovered within 5%, fits confident.
    assert alpha_err < 0.05
    assert affine_profile.affine.r2 >= 0.98
    assert pdam_profile.pdam is not None
    assert p_err < 0.05
    assert pdam_profile.pdam.r2 >= 0.98
    assert abs(affine_profile.setup_seconds - s) / s < 0.05
