"""Extension: the insert/query tradeoff curve across the WOD design space.

Checks the Section 6 framing: sweeping the Bε-tree's fanout from 2 (≈
buffered repository tree) to the pivot capacity (≈ B-tree) trades insert
cost monotonically against query cost, with the B-tree as the query-optimal
endpoint and the small-fanout Bε-tree / LSM / COLA as the write-optimal
end.
"""

from repro.experiments import exp_epsilon_tradeoff


def bench_epsilon_tradeoff(benchmark, show):
    result = benchmark.pedantic(lambda: exp_epsilon_tradeoff.run(), rounds=1, iterations=1)
    show(result.render())
    be = result.betree_points()
    benchmark.extra_info["betree_insert_ms"] = [round(p.insert_ms, 3) for p in be]
    benchmark.extra_info["betree_query_ms"] = [round(p.query_ms, 2) for p in be]

    inserts = [p.insert_ms for p in be]
    queries = [p.query_ms for p in be]
    # Inserts get monotonically more expensive with fanout...
    assert inserts == sorted(inserts)
    # ...while queries improve substantially from the BRT end to F=16.
    assert queries[0] > 1.5 * min(queries)
    # Endpoint sanity: the B-tree is the best query structure measured...
    by_label = {p.label: p for p in result.points}
    assert by_label["btree 64KiB"].query_ms <= min(queries) * 1.1
    # ...and costs orders of magnitude more per insert than the F=2 tree.
    assert by_label["btree 64KiB"].insert_ms > 20 * inserts[0]
