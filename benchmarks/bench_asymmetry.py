"""Extension: read/write cost asymmetry shifts the optimal fanout.

Checks the Section 3 aside — expensive writes have algorithmic
consequences: both the affine-model optimum and the measured-best Bε-tree
fanout decrease monotonically as the device's write cost multiplier grows.
"""

from repro.experiments import exp_asymmetry


def bench_asymmetric_write_costs(benchmark, show):
    result = benchmark.pedantic(lambda: exp_asymmetry.run(), rounds=1, iterations=1)
    show(result.render())
    benchmark.extra_info["model_F"] = [round(f, 1) for f in result.model_optimal_fanout]
    benchmark.extra_info["measured_F"] = result.measured_best_fanout

    # The model optimum falls monotonically with the write multiplier.
    model = result.model_optimal_fanout
    assert all(a > b for a, b in zip(model, model[1:]))
    # The measured optimum falls too (weakly — it is grid-quantized).
    measured = result.measured_best_fanout
    assert all(a >= b for a, b in zip(measured, measured[1:]))
    assert measured[0] > measured[-1]
    # At every multiplier, tiny fanouts (no query help) and huge fanouts
    # (flush-write heavy) both lose to the middle.
    for costs in result.measured_cost_ms:
        best = min(costs.values())
        assert costs[result.fanouts[0]] > 1.3 * best
        assert costs[result.fanouts[-1]] > 1.05 * best
