"""Figure 3: Bε-tree ms/op vs node size on the simulated HDD.

Checks the paper's shape: the Bε-tree is much less sensitive to node size
than the B-tree (Figure 2); its insert optimum sits at a much larger node
than the B-tree's (the paper's TokuDB: queries ~512 KiB, inserts ~4 MiB).
"""

from repro.experiments import exp_betree_nodesize, exp_btree_nodesize


def bench_fig3_betree_node_size(benchmark, show):
    result = benchmark.pedantic(lambda: exp_betree_nodesize.run(), rounds=1, iterations=1)
    show(result.render())
    benchmark.extra_info["best_query_node"] = result.best_query_node
    benchmark.extra_info["best_insert_node"] = result.best_insert_node
    benchmark.extra_info["query_sensitivity"] = round(result.sensitivity("query"), 2)

    # Queries vary mildly across a 64x node-size range.
    assert result.sensitivity("query") < 3.0
    # Inserts favour large nodes (the paper's 4 MiB optimum).
    assert result.best_insert_node >= result.node_sizes[-2]
    # Insert cost is orders of magnitude below query cost (write optimization).
    assert max(result.insert_ms) < min(result.query_ms)


def bench_fig2_vs_fig3_sensitivity(benchmark, show):
    """The cross-figure claim: Bε-trees are flatter than B-trees."""

    def both():
        bt = exp_btree_nodesize.run(
            node_sizes=(64 << 10, 256 << 10, 1 << 20),
            n_entries=150_000,
            cache_bytes=4 << 20,
            n_queries=250,
            n_inserts=250,
        )
        be = exp_betree_nodesize.run(
            node_sizes=(64 << 10, 256 << 10, 1 << 20),
            n_entries=150_000,
            cache_bytes=4 << 20,
            n_queries=250,
            max_inserts=40_000,
        )
        return bt, be

    bt, be = benchmark.pedantic(both, rounds=1, iterations=1)
    show(bt.render())
    show(be.render())
    bt_sens = max(bt.query_ms) / min(bt.query_ms)
    be_sens = max(be.query_ms) / min(be.query_ms)
    benchmark.extra_info["btree_query_sensitivity"] = round(bt_sens, 2)
    benchmark.extra_info["betree_query_sensitivity"] = round(be_sens, 2)
    assert be_sens < bt_sens, "Bε-tree must be less node-size sensitive"
