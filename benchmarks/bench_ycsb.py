"""Extension: YCSB-style workload mixes across the dictionary zoo.

Checks the Section 5 OLTP/OLAP claim on one table: the B-tree only wins
when reads (or scans) dominate; write-optimized structures win every
update-heavy mix, and Bε upsert messages make read-modify-write nearly
free.
"""

from repro.experiments import exp_ycsb


def bench_ycsb_mixes(benchmark, show):
    result = benchmark.pedantic(lambda: exp_ycsb.run(), rounds=1, iterations=1)
    show(result.render())
    benchmark.extra_info["winners"] = {
        wl: result.winner(wl) for wl in result.cost_ms
    }

    # Update-heavy: a write-optimized structure wins.
    assert result.winner("A (50r/50u)") in ("betree", "lsm")
    # Read-only: the B-tree wins.
    assert result.winner("C (100r)") == "btree"
    # RMW: the Bε-tree's blind upserts beat read-modify-write by a mile.
    f = result.cost_ms["F (100 rmw)"]
    assert f["betree"] < f["btree"] / 20
    assert f["betree"] < f["lsm"] / 20
    # The B-tree's update-heavy penalty vs its read-only cost is large.
    a = result.cost_ms["A (50r/50u)"]
    assert a["btree"] > 2 * min(a.values())
