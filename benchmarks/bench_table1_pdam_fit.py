"""Table 1: segmented-linear-regression PDAM fits for the SSD zoo.

Checks the paper's quantitative claims: R^2 within a fraction of a percent
of 1, fitted P in the commodity-SSD range (paper: 2.9-5.5), and saturation
throughput matching the device's configured ``∝PB``.
"""

from repro.experiments import exp_pdam_validation
from repro.experiments.devices import SSD_ZOO


def bench_table1_pdam_fits(benchmark, show):
    result = benchmark.pedantic(
        lambda: exp_pdam_validation.run(bytes_per_thread=8 << 20),
        rounds=1,
        iterations=1,
    )
    show(result.render())
    for name, fit in result.fits.items():
        benchmark.extra_info[f"P[{name}]"] = round(fit.parallelism, 2)
        assert fit.r2 > 0.99, f"{name}: R^2 {fit.r2}"
        assert 1.5 < fit.parallelism < 12, f"{name}: P {fit.parallelism}"
        target = SSD_ZOO[name].saturated_read_bytes_per_second
        assert abs(fit.saturation_bytes_per_second - target) / target < 0.15, name
    # Device ordering by parallelism matches the configured geometry.
    fitted = {n: f.parallelism for n, f in result.fits.items()}
    assert fitted["silicon-power-s55-sim"] < fitted["samsung-970-pro-sim"]
