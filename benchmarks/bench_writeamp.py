"""Lemma 3 / Theorem 4(4): write amplification of B-trees vs Bε-trees.

Checks that B-tree write amplification grows ~linearly with the node size
while the Bε-tree's stays roughly flat — the paper's second explanation
for why production B-trees use small nodes.
"""

from repro.experiments import exp_write_amp


def bench_write_amplification(benchmark, show):
    result = benchmark.pedantic(lambda: exp_write_amp.run(), rounds=1, iterations=1)
    show(result.render())
    benchmark.extra_info["btree_amp"] = [round(v, 1) for v in result.btree]
    benchmark.extra_info["betree_amp"] = [round(v, 1) for v in result.betree]

    # B-tree: linear growth — 64x node size buys >= ~20x amplification.
    assert result.btree[-1] > 20 * result.btree[0]
    # Bε-tree: ~flat (within a small factor across the whole sweep).
    assert max(result.betree) < 10 * min(result.betree)
    # And the Bε-tree wins by a widening margin at large nodes.
    assert result.betree[-1] < result.btree[-1] / 100
