"""Table 3: analytic node-size sensitivity of B-trees vs Bε-trees.

Checks the paper's comparison: "The cost for inserts and queries increases
more slowly in Bε-trees than in B-trees as the node size increases."
"""

from repro.experiments import exp_sensitivity


def bench_table3_sensitivity(benchmark, show):
    result = benchmark.pedantic(lambda: exp_sensitivity.run(), rounds=1, iterations=1)
    show(result.render())
    bt_sens = result.sensitivity(result.btree)
    bq_sens = result.sensitivity(result.betree_query)
    bi_sens = result.sensitivity(result.betree_insert)
    benchmark.extra_info["btree_sensitivity"] = round(bt_sens, 1)
    benchmark.extra_info["betree_query_sensitivity"] = round(bq_sens, 1)
    # B-trees are far more sensitive to node size than Bε-tree queries.
    assert bt_sens > 3 * bq_sens
    # And the Bε-tree's optimal node is at least as large as the B-tree's.
    assert result.optimum_entries(result.betree_query) >= result.optimum_entries(result.btree)
    assert result.optimum_entries(result.betree_insert) >= result.optimum_entries(result.btree)
    del bi_sens
