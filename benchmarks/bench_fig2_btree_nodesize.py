"""Figure 2: B-tree ms/op vs node size on the simulated HDD.

Checks the paper's shape: costs are flat up to an optimum well below the
half-bandwidth point (the paper's BerkeleyDB optimum was 64 KiB), then
grow roughly linearly with node size.
"""

from repro.experiments import exp_btree_nodesize
from repro.experiments.devices import default_hdd


def bench_fig2_btree_node_size(benchmark, show):
    result = benchmark.pedantic(lambda: exp_btree_nodesize.run(), rounds=1, iterations=1)
    show(result.render())
    benchmark.extra_info["best_query_node"] = result.best_query_node
    benchmark.extra_info["query_ms"] = [round(v, 2) for v in result.query_ms]

    half_bw = default_hdd().geometry.half_bandwidth_bytes
    assert result.best_query_node < half_bw, "optimum must be below half-bandwidth"
    assert result.best_insert_node < half_bw
    # Past the optimum the cost grows: the largest node is clearly worse.
    assert result.query_ms[-1] > 1.7 * min(result.query_ms)
    assert result.insert_ms[-1] > 1.7 * min(result.insert_ms)
    # The affine overlay fits with a positive alpha (the black line).
    assert result.query_fit is not None and result.query_fit.alpha > 0
