"""Benchmark-suite configuration.

Each bench regenerates one of the paper's tables/figures on the simulated
substrate and prints the rendered result (run pytest with ``-s`` to see the
tables inline; they are also attached to each benchmark's ``extra_info``).

Wall-clock time measured by pytest-benchmark is the *simulation* cost, not
the metric of interest — the paper's quantities are simulated device
seconds, which appear inside the printed tables.  See DESIGN.md section 5.
"""

import pytest


@pytest.fixture
def show(capsys):
    """Print a rendered experiment table around pytest's capture."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show
