"""repro.obs: metrics overhead on the E6 (Bε-tree node-size) sweep.

Two gates on the observability layer:

1. **Identity** — the sweep produces the exact same results with metrics
   and tracing enabled as with them disabled.  Instrumentation only reads
   what the simulator already computed; it must never move a clock tick.
2. **Cheap when on, free when off** — the metrics-on run costs < 5% extra
   wall time over the metrics-off run (the off run pays one boolean test
   per event, the on run a dict increment).

Run standalone to append a wall-clock record to ``BENCH_obs_overhead.json``
at the repo root::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--smoke]

``--smoke`` shrinks the sweep to a few seconds of runtime.
"""

import gc
import json
import statistics
import time
from pathlib import Path

from repro import obs
from repro.experiments import exp_betree_nodesize as e6
from repro.runner import run_sweep

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"

#: The overhead gate.  Generous vs. the observed ratio (~1%) so CI timer
#: noise does not flake the job, still tight enough to catch a regression
#: that puts real work on the disabled path or inside the record calls.
MAX_OVERHEAD_RATIO = 1.05

FULL = dict(
    node_sizes=tuple(65536 * 2**k for k in range(6)),  # 64 KiB .. 2 MiB
    n_entries=150_000,
    cache_bytes=4 << 20,
    n_queries=300,
    max_inserts=50_000,
    warmup_queries=150,
    seed=0,
)

SMOKE = dict(
    node_sizes=(65536, 262144, 1 << 20),
    n_entries=60_000,
    cache_bytes=2 << 20,
    n_queries=100,
    max_inserts=10_000,
    warmup_queries=50,
    seed=0,
)

WARMUP = dict(
    node_sizes=(65536,),
    n_entries=5000,
    cache_bytes=1 << 20,
    n_queries=10,
    max_inserts=500,
    warmup_queries=10,
    seed=0,
)


def _timed_run(spec):
    # GC pauses would bill the mode that happens to trip a collection
    # (the on-run's span buffer is exactly such a trigger) for a heap scan
    # both modes own; collect outside the timed region, like timeit does.
    gc.collect()
    gc.disable()
    try:
        wall = time.perf_counter()
        cpu = time.process_time()
        results = run_sweep(spec, jobs=1)
        return results, time.perf_counter() - wall, time.process_time() - cpu
    finally:
        gc.enable()


def _measure(config, *, repeats=6):
    """Paired off/on runs; the gate reads the median of paired ratios.

    Wall clocks on shared CI hosts drift and spike by several percent over
    seconds.  Each on-run is therefore ratioed against the off-run
    immediately before it (adjacent runs see the same host load), and the
    median over ``repeats`` pairs discards the spikes; a min-of-N over
    independently noisy halves cannot.  CPU time is measured alongside —
    it is immune to host contention and bounds the same added work.
    """
    spec = e6.sweep_spec(**config)
    obs.disable(detach_tracer=True)
    obs.reset()
    _timed_run(e6.sweep_spec(**WARMUP))  # warm imports/allocator
    wall_ratios, cpu_ratios = [], []
    off_s = on_s = float("inf")
    results_off = results_on = None
    snap = None
    try:
        for _ in range(repeats):
            obs.disable()
            results_off, off_wall, off_cpu = _timed_run(spec)
            off_s = min(off_s, off_wall)
            obs.enable(trace=True)
            obs.reset()
            results_on, on_wall, on_cpu = _timed_run(spec)
            on_s = min(on_s, on_wall)
            wall_ratios.append(on_wall / off_wall)
            cpu_ratios.append(on_cpu / off_cpu)
        snap = obs.OBS.snapshot()
        n_spans = len(obs.OBS.tracer.spans)
    finally:
        obs.disable(detach_tracer=True)
        obs.reset()
    return {
        "off_s": off_s,
        "on_s": on_s,
        "overhead_ratio": statistics.median(wall_ratios),
        "cpu_overhead_ratio": statistics.median(cpu_ratios),
        "n_ios_recorded": snap["counters"].get("device.read.ios", 0)
        + snap["counters"].get("device.write.ios", 0),
        "n_spans": n_spans,
        "results_identical": results_on == results_off,
    }


def _measure_gated(config):
    """Measure; on a gate miss, re-measure once with more pairs.

    The median paired ratio still carries a percent or two of host noise;
    a single noisy burst must not fail CI, while a real regression (the
    gate is ~2x the true overhead) fails both measurements.
    """
    m = _measure(config)
    if (
        m["overhead_ratio"] >= MAX_OVERHEAD_RATIO
        or m["cpu_overhead_ratio"] >= MAX_OVERHEAD_RATIO
    ):
        m = _measure(config, repeats=12)
        m["retried"] = True
    return m


def _check(m):
    assert m["results_identical"], "metrics-on results diverged from metrics-off"
    assert m["n_ios_recorded"] > 0, "metrics-on run recorded no device IOs"
    assert m["overhead_ratio"] < MAX_OVERHEAD_RATIO, (
        f"metrics wall overhead {m['overhead_ratio']:.3f}x "
        f"exceeds the {MAX_OVERHEAD_RATIO}x gate"
    )
    assert m["cpu_overhead_ratio"] < MAX_OVERHEAD_RATIO, (
        f"metrics CPU overhead {m['cpu_overhead_ratio']:.3f}x "
        f"exceeds the {MAX_OVERHEAD_RATIO}x gate"
    )


def bench_obs_overhead(benchmark, show):
    m = benchmark.pedantic(lambda: _measure_gated(FULL), rounds=1, iterations=1)
    show(
        f"E6 sweep: metrics off {m['off_s']:.2f}s, on {m['on_s']:.2f}s "
        f"(wall {m['overhead_ratio']:.3f}x, cpu {m['cpu_overhead_ratio']:.3f}x, "
        f"{m['n_ios_recorded']} IOs, {m['n_spans']} spans)"
    )
    for key in ("off_s", "on_s"):
        benchmark.extra_info[key] = round(m[key], 3)
    benchmark.extra_info["overhead_ratio"] = round(m["overhead_ratio"], 4)
    benchmark.extra_info["cpu_overhead_ratio"] = round(m["cpu_overhead_ratio"], 4)
    benchmark.extra_info["n_ios_recorded"] = m["n_ios_recorded"]
    _check(m)


def main(argv):
    config = SMOKE if "--smoke" in argv else FULL
    m = _measure_gated(config)
    _check(m)
    record = {"config": "smoke" if config is SMOKE else "full"}
    record.update(
        {k: round(v, 4) if isinstance(v, float) else v for k, v in m.items()}
    )
    history = []
    if BENCH_JSON.exists():
        history = json.loads(BENCH_JSON.read_text())
    history.append(record)
    BENCH_JSON.write_text(json.dumps(history, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"appended to {BENCH_JSON}")


if __name__ == "__main__":
    import sys

    main(sys.argv[1:])
