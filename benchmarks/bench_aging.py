"""Extension: file-system aging vs range-scan bandwidth (paper Section 5).

Checks the paper's claim that small-node B-trees age badly: once nodes are
scattered, range scans at point-query-optimal node sizes lose an order of
magnitude of bandwidth, while scan-optimal (large) nodes barely notice.
"""

from repro.experiments import exp_aging


def bench_aging_range_scans(benchmark, show):
    result = benchmark.pedantic(lambda: exp_aging.run(), rounds=1, iterations=1)
    show(result.render())
    slow = result.measured_slowdown
    benchmark.extra_info["slowdown"] = [round(v, 1) for v in slow]

    # Aging hurts monotonically less as nodes grow.
    assert slow == sorted(slow, reverse=True)
    # Small nodes: order-of-magnitude degradation.
    assert slow[0] > 10
    # Large nodes: mild degradation.
    assert slow[-1] < 3
    # The affine prediction brackets the measurement within ~2x everywhere.
    for measured, predicted in zip(slow, result.predicted_slowdown):
        assert predicted / 2.5 < measured < predicted * 2.5
