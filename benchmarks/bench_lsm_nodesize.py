"""Extension: LSM-tree SSTable-size sensitivity (the LevelDB 2 MiB question).

Checks that, like the Bε-tree, the LSM is insensitive to its run size over
a wide range — consistent with LevelDB shipping one 2 MiB default for all
workloads (paper introduction).
"""

from repro.experiments import exp_lsm_nodesize


def bench_lsm_sstable_size(benchmark, show):
    result = benchmark.pedantic(lambda: exp_lsm_nodesize.run(), rounds=1, iterations=1)
    show(result.render())
    benchmark.extra_info["query_ms"] = [round(v, 2) for v in result.query_ms]
    benchmark.extra_info["write_amp"] = [round(v, 1) for v in result.write_amp]

    # Query cost is flat across a 16x run-size range.
    assert max(result.query_ms) < 1.3 * min(result.query_ms)
    # Inserts are write-optimized: far cheaper than queries at every size.
    assert max(result.insert_ms) < min(result.query_ms)
    # Compaction actually happened (write amp > 1 everywhere).
    assert min(result.write_amp) > 1.0
