"""repro.serve: E19 tail-latency gates on the serving layer.

Two gates on the committed serving numbers:

1. **Hedging pays at high load** — at the highest swept offered rate, the
   ``hedge`` policy's aggregate p99 must beat ``none``'s.  Replica
   hedging exists to cut the spiked-service tail; if it stops doing so,
   either the engine regressed or the stock plan/deadline drifted.
2. **Determinism** — the sweep re-run must reproduce identical rows
   (same seed, same per-tenant percentiles), through the runner at
   ``jobs=2``: the serving layer inherits the runner's bit-identical
   parallelism contract.

Run standalone to append a record to ``BENCH_serve_tail.json`` at the
repo root::

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke]

``--smoke`` shrinks the sweep to a few seconds of runtime.
"""

import json
import time
from pathlib import Path

from repro.experiments import exp_serve_tail

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_serve_tail.json"

FULL = dict(
    trees=("btree",),
    rates=(300.0, 500.0, 700.0),
    policies=("none", "admit", "hedge", "admit+hedge"),
    seed=0,
)

SMOKE = dict(
    trees=("btree",),
    rates=(600.0,),
    policies=("none", "hedge"),
    quick=True,
    seed=0,
)

#: Expected gate sign per config, recorded into every BENCH record so a
#: relaxed gate is visible in the history instead of silently skipped.
#: ``p999_strict=True`` enforces ``hedge p999 < P999_FACTOR * none p999``.
#: The smoke sweep serves too few requests for its p999 to be anything
#: but the single worst round, so there the gate is *advisory*: the sign
#: is still measured and written to the record, never asserted.  Unknown
#: config names raise — a new config must declare its expectation here.
P999_FACTOR = 0.5
GATES = {
    "full": {"p999_strict": True},
    "smoke": {"p999_strict": False},
}


def _run(config, *, jobs=1):
    t0 = time.perf_counter()
    result = exp_serve_tail.run(jobs=jobs, cache=None, **config)
    return result, time.perf_counter() - t0


def _row(rows, rate, policy):
    for r in rows:
        if r["total_rate"] == rate and r["policy"] == policy:
            return r
    raise AssertionError(f"no row at rate={rate} policy={policy}")


def _measure(config):
    result, wall = _run(config)
    rerun, _ = _run(config, jobs=2)
    top_rate = max(config["rates"])
    none_row = _row(result.rows, top_rate, "none")
    hedge_row = _row(result.rows, top_rate, "hedge")
    return {
        "seed": config.get("seed", 0),
        "plan": result.plan,
        "rates": list(config["rates"]),
        "wall_s": wall,
        "deterministic_across_jobs": result.rows == rerun.rows,
        "none_p99_ms": none_row["p99_ms"],
        "hedge_p99_ms": hedge_row["p99_ms"],
        "none_p999_ms": none_row["p999_ms"],
        "hedge_p999_ms": hedge_row["p999_ms"],
        "hedge_p99_improvement": 1.0 - hedge_row["p99_ms"] / none_row["p99_ms"],
        "hedge_p999_improvement": 1.0 - hedge_row["p999_ms"] / none_row["p999_ms"],
        "rows": [
            {
                "tree": r["tree"],
                "rate": r["total_rate"],
                "policy": r["policy"],
                "utilization": round(r["utilization"], 4),
                "served": r["served"],
                "dropped": r["dropped"],
                "hedges_issued": r["hedges_issued"],
                "hedges_won": r["hedges_won"],
                "p50_ms": round(r["p50_ms"], 3),
                "p99_ms": round(r["p99_ms"], 3),
                "p999_ms": round(r["p999_ms"], 3),
                "tenants": {
                    name: {
                        "p50_ms": round(t["p50"] * 1e3, 3),
                        "p99_ms": round(t["p99"] * 1e3, 3),
                        "p999_ms": round(t["p999"] * 1e3, 3),
                        "dropped": t["dropped"],
                        "served": t["served"],
                    }
                    for name, t in r["tenants"].items()
                },
            }
            for r in result.rows
        ],
    }


def _check(m, *, config_name):
    """Run the gates for ``config_name``; return the gate outcomes.

    Every outcome — including the p999 sign when the gate is advisory —
    goes back to the caller for the BENCH record, so the history shows
    *which* gates each record actually enforced.
    """
    gates = GATES[config_name]  # KeyError = undeclared config, on purpose
    outcomes = {
        "p999_strict": gates["p999_strict"],
        "p999_factor": P999_FACTOR,
        "p999_sign_ok": m["hedge_p999_ms"] < m["none_p999_ms"],
        "p999_strict_ok": m["hedge_p999_ms"] < P999_FACTOR * m["none_p999_ms"],
    }
    assert m["deterministic_across_jobs"], "serve sweep differs across job counts"
    assert m["hedge_p99_ms"] < m["none_p99_ms"], (
        f"hedging no longer improves p99 at the top rate: "
        f"hedge {m['hedge_p99_ms']:.1f}ms vs none {m['none_p99_ms']:.1f}ms"
    )
    if gates["p999_strict"]:
        # The spike quantile is hedging's home turf; demand a wide margin.
        assert outcomes["p999_strict_ok"], (
            f"hedging should cut p999 decisively at the top rate: "
            f"hedge {m['hedge_p999_ms']:.1f}ms vs none {m['none_p999_ms']:.1f}ms"
        )
    return outcomes


def bench_serve_tail(benchmark, show):
    m = benchmark.pedantic(lambda: _measure(FULL), rounds=1, iterations=1)
    show(
        f"E19 top-rate p99: none {m['none_p99_ms']:.1f}ms, "
        f"hedge {m['hedge_p99_ms']:.1f}ms "
        f"({m['hedge_p99_improvement']:.0%} better); "
        f"deterministic across jobs: {m['deterministic_across_jobs']}"
    )
    benchmark.extra_info["none_p99_ms"] = round(m["none_p99_ms"], 2)
    benchmark.extra_info["hedge_p99_ms"] = round(m["hedge_p99_ms"], 2)
    benchmark.extra_info["improvement"] = round(m["hedge_p99_improvement"], 4)
    _check(m, config_name="full")


def main(argv):
    config_name = "smoke" if "--smoke" in argv else "full"
    config = SMOKE if config_name == "smoke" else FULL
    m = _measure(config)
    m["gates"] = _check(m, config_name=config_name)
    record = {"config": config_name}
    record.update(
        {k: round(v, 4) if isinstance(v, float) else v for k, v in m.items()}
    )
    history = []
    if BENCH_JSON.exists():
        history = json.loads(BENCH_JSON.read_text())
    history.append(record)
    BENCH_JSON.write_text(json.dumps(history, indent=2) + "\n")
    print(json.dumps({k: v for k, v in record.items() if k != "rows"}, indent=2))
    print(f"appended to {BENCH_JSON} ({len(record['rows'])} rows)")


if __name__ == "__main__":
    import sys

    main(sys.argv[1:])
