"""Table 2: affine fits (s, t, alpha) for the HDD zoo.

Checks the paper's claims: R^2 "within 0.1% of 1" for the linear fit of IO
time vs size, recovered bandwidth matching the configured hardware, and
alpha values in the commodity-HDD range (paper: 0.0012-0.0031 per 4 KiB).
"""

from repro.experiments import exp_affine_validation


def bench_table2_affine_fits(benchmark, show):
    result = benchmark.pedantic(
        lambda: exp_affine_validation.run(),
        rounds=1,
        iterations=1,
    )
    show(result.render())
    for name, fit in result.fits.items():
        benchmark.extra_info[f"alpha[{name}]"] = round(fit.alpha, 5)
        benchmark.extra_info[f"R2[{name}]"] = round(fit.r2, 5)
        s_true, t4k_true = result.truth[name]
        assert fit.r2 > 0.999, f"{name}: R^2 {fit.r2}"
        assert abs(fit.seconds_per_byte * 4096 - t4k_true) / t4k_true < 0.05, name
        assert abs(fit.setup_seconds - s_true) / s_true < 0.25, name
        assert 0.0005 < fit.alpha < 0.01, f"{name}: alpha {fit.alpha}"
