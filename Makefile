# Convenience targets; see README.md.

.PHONY: install test lint bench engine-bench experiments examples serve-quick cob recovery e21-quick all

install:
	pip install -e .

test:
	pytest tests/

# The CI lint gate: per-file rules plus the whole-program flow pass,
# then the flow pass alone against src/repro as the lint-flow CI job
# runs it (docs/lint.md).
lint:
	PYTHONPATH=src python -m repro.lint src/
	PYTHONPATH=src python -m repro.lint src/repro --select FLOW

bench:
	pytest benchmarks/ --benchmark-only

# Vectorized-engine gates: batch/serial byte-identity + speedup (smoke).
engine-bench:
	PYTHONPATH=src python benchmarks/bench_engine_vector.py --smoke

experiments:
	python -m repro.experiments all

# The serving-layer smoke: E19 quick sweep + its tail-latency gates.
serve-quick:
	PYTHONPATH=src python -m repro.experiments serve --quick --no-cache
	PYTHONPATH=src python benchmarks/bench_serve.py --smoke

# The cache-oblivious tier: its tests, its lint, and the E20 quick sweep.
cob:
	PYTHONPATH=src python -m pytest tests/trees/test_cob.py tests/trees/test_veb.py tests/trees/test_put_many.py -q
	PYTHONPATH=src python -m repro.lint src/repro/trees/cob
	PYTHONPATH=src python -m repro.experiments cob --quick --no-cache

# The durability layer: its tests + the sampled crash-consistency checker.
recovery:
	PYTHONPATH=src python -m pytest tests/recovery tests/faults/test_crash.py tests/serve/test_crash_failover.py -q
	PYTHONPATH=src python -c "from repro.recovery import RECOVERY_TREES, run_check; \
	reports = {t: run_check(t, n_ops=60, mode='sample', samples=16, seed=0) for t in RECOVERY_TREES}; \
	[print(t, r.describe()) for t, r in reports.items()]; \
	assert all(r.passed for r in reports.values())"

# The E21 quick sweep + its durability gates.
e21-quick:
	PYTHONPATH=src python -m repro.experiments durability --quick --no-cache
	PYTHONPATH=src python benchmarks/bench_durability.py --smoke

examples:
	python examples/quickstart.py
	python examples/node_size_tuning.py
	python examples/ssd_concurrency.py
	python examples/aging_range_queries.py
	python examples/io_trace_analysis.py

all: lint test bench experiments serve-quick
