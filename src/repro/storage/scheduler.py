"""PDAM step scheduler with read-ahead expansion (paper Section 8).

The paper's strategy for exploiting device parallelism under a varying
number of clients:

    "In each time step, clients issue IOs for single blocks.  Once the
    system has collected all the IO requests, if there are any unused IO
    slots in that time step, then it expands the requests to perform
    read-ahead."

With ``k <= P`` clients each demanding one block, the ``P - k`` unused
slots are split round-robin among the clients as read-ahead of blocks
*consecutive after* each demand.  Because the Section 8 B-tree stores its
nodes in a van Emde Boas layout, consecutive blocks are exactly the next
levels of the search path, so read-ahead turns into useful prefetching.

With ``k > P`` clients, demands queue FIFO and each step serves the ``P``
oldest — per-client progress degrades gracefully to ``P/k`` IOs per step.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.errors import ConfigurationError
from repro.obs import OBS
from repro.storage.ideal import PDAMDevice


class ReadAheadScheduler:
    """Batches one-block demands into PDAM steps, expanding unused slots.

    Parameters
    ----------
    device:
        The :class:`~repro.storage.ideal.PDAMDevice` to drive.
    expand_readahead:
        When false, unused slots are simply wasted (the naive baseline).
    """

    def __init__(self, device: PDAMDevice, *, expand_readahead: bool = True) -> None:
        self.device = device
        self.expand_readahead = bool(expand_readahead)
        self._waiting: deque[tuple[Hashable, int]] = deque()
        self.steps = 0

    def submit(self, client: Hashable, block_index: int) -> None:
        """Enqueue a one-block demand from ``client``."""
        if block_index < 0:
            raise ConfigurationError(f"block index must be non-negative, got {block_index}")
        self._waiting.append((client, block_index))

    @property
    def pending(self) -> int:
        """Demands not yet served."""
        return len(self._waiting)

    def step(self) -> dict[Hashable, list[int]]:
        """Serve one PDAM time step.

        Returns the blocks fetched for each client this step (demand first,
        then any read-ahead blocks).  Raises if no demands are pending —
        stepping an idle device would just waste a step silently.
        """
        if not self._waiting:
            raise ConfigurationError("no pending demands; nothing to step")
        P = self.device.parallelism
        served: list[tuple[Hashable, int]] = []
        while self._waiting and len(served) < P:
            served.append(self._waiting.popleft())

        fetched: dict[Hashable, list[int]] = {}
        for client, block in served:
            fetched.setdefault(client, []).append(block)

        spare = P - len(served)
        if self.expand_readahead and spare > 0:
            # Round-robin one extra consecutive block at a time so every
            # client's read-ahead run grows evenly (the paper's "two runs of
            # P/2 blocks each" behaviour for two clients).  Expansion never
            # re-fetches a block another client already demanded this step,
            # nor one still queued as a demand — a duplicate would silently
            # burn a parallel slot on data the step already delivers (and a
            # queued demand will be served, at full usefulness, next step).
            max_block = self.device.capacity_bytes // self.device.block_bytes - 1
            taken = {blk for blocks in fetched.values() for blk in blocks}
            taken.update(blk for _, blk in self._waiting)
            next_block = {client: blocks[-1] + 1 for client, blocks in fetched.items()}
            order = list(fetched.keys())
            i = 0
            stalled = 0
            while spare > 0 and stalled < len(order):
                client = order[i % len(order)]
                i += 1
                blk = next_block[client]
                while blk <= max_block and blk in taken:
                    blk += 1  # jump the run past blocks this step already covers
                if blk > max_block:
                    next_block[client] = blk
                    stalled += 1
                    continue
                stalled = 0
                fetched[client].append(blk)
                taken.add(blk)
                next_block[client] = blk + 1
                spare -= 1

        offsets = [
            blk * self.device.block_bytes
            for blocks in fetched.values()
            for blk in blocks
        ]
        if OBS.enabled:
            OBS.counter("scheduler.steps").inc()
            OBS.counter("scheduler.demand_blocks").inc(len(served))
            OBS.counter("scheduler.readahead_blocks").inc(len(offsets) - len(served))
            OBS.gauge("scheduler.queue_depth").set(len(self._waiting))
            OBS.histogram("scheduler.step_occupancy").record(len(offsets))
        self.device.serve_step(offsets)
        self.steps += 1
        return fetched
