"""PDAM step scheduler with read-ahead expansion (paper Section 8).

The paper's strategy for exploiting device parallelism under a varying
number of clients:

    "In each time step, clients issue IOs for single blocks.  Once the
    system has collected all the IO requests, if there are any unused IO
    slots in that time step, then it expands the requests to perform
    read-ahead."

With ``k <= P`` clients each demanding one block, the ``P - k`` unused
slots are split round-robin among the clients as read-ahead of blocks
*consecutive after* each demand.  Because the Section 8 B-tree stores its
nodes in a van Emde Boas layout, consecutive blocks are exactly the next
levels of the search path, so read-ahead turns into useful prefetching.

With ``k > P`` clients, demands queue FIFO and each step serves the ``P``
oldest — per-client progress degrades gracefully to ``P/k`` IOs per step.

**Channel stalls (repro.faults).**  With a fault plan attached, each of
the ``P`` channels may stall for a few steps (seeded RNG, drawn per
step), and the step completes only when its slowest demanded channel
does.  A hedging policy spends spare slots on *duplicates* of the
stalled demands — the same unused-slot budget read-ahead uses — so a
demand completes at the min of two channels' stalls.  With no plan
attached the fault path is never entered and scheduling is byte-identical
to fault-free operation.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.faults.policy import FaultStats, ResiliencePolicy
from repro.obs import OBS
from repro.storage.ideal import PDAMDevice


class ReadAheadScheduler:
    """Batches one-block demands into PDAM steps, expanding unused slots.

    Parameters
    ----------
    device:
        The :class:`~repro.storage.ideal.PDAMDevice` to drive.
    expand_readahead:
        When false, unused slots are simply wasted (the naive baseline).
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan`; only its
        ``stall_prob``/``stall_steps`` fields apply here (per-channel
        stalls).  ``None`` (default) injects nothing.
    policy:
        Optional :class:`~repro.faults.policy.ResiliencePolicy`; a hedging
        policy duplicates stalled demands onto spare slots.
    """

    def __init__(
        self,
        device: PDAMDevice,
        *,
        expand_readahead: bool = True,
        fault_plan: FaultPlan | None = None,
        policy: ResiliencePolicy | None = None,
    ) -> None:
        self.device = device
        self.expand_readahead = bool(expand_readahead)
        self.fault_plan = fault_plan
        self.policy = policy if policy is not None else ResiliencePolicy.none()
        self.fault_stats = FaultStats()
        # The RNG exists only when stalls can happen, so a fault-free
        # scheduler never draws and stays byte-identical to pre-fault code.
        self._fault_rng = (
            np.random.default_rng(fault_plan.seed + 1)
            if fault_plan is not None and fault_plan.stall_prob > 0
            else None
        )
        self._waiting: deque[tuple[Hashable, int]] = deque()
        self.steps = 0

    def submit(self, client: Hashable, block_index: int) -> None:
        """Enqueue a one-block demand from ``client``."""
        if block_index < 0:
            raise ConfigurationError(f"block index must be non-negative, got {block_index}")
        self._waiting.append((client, block_index))

    @property
    def pending(self) -> int:
        """Demands not yet served."""
        return len(self._waiting)

    def step(self) -> dict[Hashable, list[int]]:
        """Serve one PDAM time step.

        Returns the blocks fetched for each client this step (demand first,
        then any read-ahead blocks).  Raises if no demands are pending —
        stepping an idle device would just waste a step silently.
        """
        if not self._waiting:
            raise ConfigurationError("no pending demands; nothing to step")
        P = self.device.parallelism
        served: list[tuple[Hashable, int]] = []
        while self._waiting and len(served) < P:
            served.append(self._waiting.popleft())

        fetched: dict[Hashable, list[int]] = {}
        for client, block in served:
            fetched.setdefault(client, []).append(block)

        spare = P - len(served)
        extra_steps = 0
        hedged_offsets: list[int] = []
        if self._fault_rng is not None:
            extra_steps, hedged_offsets, spare = self._inject_stalls(served, spare)
        if self.expand_readahead and spare > 0:
            # Round-robin one extra consecutive block at a time so every
            # client's read-ahead run grows evenly (the paper's "two runs of
            # P/2 blocks each" behaviour for two clients).  Expansion never
            # re-fetches a block another client already demanded this step,
            # nor one still queued as a demand — a duplicate would silently
            # burn a parallel slot on data the step already delivers (and a
            # queued demand will be served, at full usefulness, next step).
            max_block = self.device.capacity_bytes // self.device.block_bytes - 1
            taken = {blk for blocks in fetched.values() for blk in blocks}
            taken.update(blk for _, blk in self._waiting)
            next_block = {client: blocks[-1] + 1 for client, blocks in fetched.items()}
            order = list(fetched)
            i = 0
            stalled = 0
            while spare > 0 and stalled < len(order):
                client = order[i % len(order)]
                i += 1
                blk = next_block[client]
                while blk <= max_block and blk in taken:
                    blk += 1  # jump the run past blocks this step already covers
                if blk > max_block:
                    next_block[client] = blk
                    stalled += 1
                    continue
                stalled = 0
                fetched[client].append(blk)
                taken.add(blk)
                next_block[client] = blk + 1
                spare -= 1

        offsets = [
            blk * self.device.block_bytes
            for blocks in fetched.values()
            for blk in blocks
        ]
        if OBS.enabled:
            OBS.counter("scheduler.steps").inc()
            OBS.counter("scheduler.demand_blocks").inc(len(served))
            OBS.counter("scheduler.readahead_blocks").inc(len(offsets) - len(served))
            OBS.gauge("scheduler.queue_depth").set(len(self._waiting))
            OBS.histogram("scheduler.step_occupancy").record(
                len(offsets) + len(hedged_offsets)
            )
        self.device.serve_step(offsets + hedged_offsets)
        self.steps += 1
        if extra_steps:
            self.device.stall(extra_steps)
            if OBS.enabled:
                OBS.histogram("scheduler.stall_steps").record(extra_steps)
        return fetched

    def _inject_stalls(
        self, served: list[tuple[Hashable, int]], spare: int
    ) -> tuple[int, list[int], int]:
        """Draw this step's channel stalls; hedge stalled demands onto spares.

        Demands occupy channels ``0..len(served)-1`` in submission order.
        Every channel's stall is drawn every step (one ``random(P)`` call
        plus one ``integers`` call for the stalled subset), so the RNG
        stream position depends only on the step count — not on demand
        count or policy — keeping policies comparable under identical
        fault sequences.  Returns ``(extra_steps, duplicate_offsets,
        remaining_spare)``: the step runs ``extra_steps`` long, the
        duplicates are presented to :meth:`PDAMDevice.serve_step` so slot
        accounting is honest, and read-ahead expansion gets whatever spare
        slots hedging left.
        """
        plan = self.fault_plan
        assert plan is not None and self._fault_rng is not None
        P = self.device.parallelism
        draws = self._fault_rng.random(P)
        stalled = draws < plan.stall_prob
        stall_len = np.zeros(P, dtype=np.int64)
        n_stalled = int(np.count_nonzero(stalled))
        if n_stalled:
            stall_len[stalled] = self._fault_rng.integers(
                1, plan.stall_steps + 1, size=n_stalled
            )
            self.fault_stats.stalls_injected += n_stalled
            if OBS.enabled:
                OBS.counter("faults.injected").inc(n_stalled)
                OBS.counter("faults.channel_stalls").inc(n_stalled)
        effective = [int(stall_len[i]) for i in range(len(served))]
        hedged_offsets: list[int] = []
        if self.policy.hedge_enabled and spare > 0 and n_stalled:
            step_s = self.device.model.step_seconds
            deadline = self.policy.hedge_deadline_seconds
            # Worst-stalled demands hedge first; each takes one spare slot
            # (channel len(served)..P-1), whose own stall was drawn above.
            candidates = sorted(
                (i for i in range(len(served)) if (1 + effective[i]) * step_s > deadline),
                key=effective.__getitem__,
                reverse=True,
            )
            spare_channels = iter(range(len(served), P))
            B = self.device.block_bytes
            for i in candidates:
                if spare <= 0:
                    break
                j = next(spare_channels)
                dup_stall = int(stall_len[j])
                self.fault_stats.hedges_issued += 1
                if OBS.enabled:
                    OBS.counter("io.hedges_issued").inc()
                if dup_stall < effective[i]:
                    effective[i] = dup_stall
                    self.fault_stats.hedge_wins += 1
                    if OBS.enabled:
                        OBS.counter("io.hedge_wins").inc()
                hedged_offsets.append(served[i][1] * B)
                spare -= 1
        extra_steps = max(effective, default=0)
        return extra_steps, hedged_offsets, spare
