"""Byte-budgeted LRU buffer cache with dirty write-back.

This is the DAM's memory level: the cache holds up to ``M`` bytes of node
data; everything else lives "on disk" and costs device time to touch.  The
paper's analyses all assume "the top ``Theta(log M)`` levels can be cached";
LRU achieves that automatically for tree workloads.

The cache is also where *write amplification* physically happens: an
insert dirties a whole node, and when the node is evicted the device writes
the full node even though only a few bytes of user data changed (paper
Lemma 3).

Objects are arbitrary Python values; the cache tracks their device extent
``(offset, nbytes)`` and charges the device on miss (read) and on dirty
eviction (write).  Evicted objects are retained as non-resident "disk
images" — devices in this repository price IO time but do not store bytes
(see :mod:`repro.storage.device`).

Implementation: one dict maps node id to an intrusive :class:`_Entry`
that is simultaneously the cache record, the disk image, and a link in a
doubly-linked LRU list of the resident entries.  A lookup is one dict hit
plus a pointer splice; eviction and re-admission flip a residency bit on
the same object instead of shuttling tuples between two maps, so the
steady-state hot path (hit, miss, evict) allocates nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterator, Sequence

from repro.errors import CacheError, ConfigurationError
from repro.obs import OBS
from repro.storage.device import BlockDevice


@dataclass
class CacheStats:
    """Hit/miss/eviction counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total cache lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 if none yet)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        """Zero every counter in place.

        Experiments call this at a phase boundary (e.g. after cache warm-up)
        so reported hit rates describe only the measured phase.
        """
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0


class _Entry:
    """One node, resident or evicted, threaded into the LRU list when resident.

    ``prev``/``next`` are only meaningful while ``resident`` is true; the
    list order is LRU at the head side, MRU at the tail side, matching the
    iteration order the previous ``OrderedDict`` implementation exposed.
    """

    __slots__ = ("node_id", "obj", "offset", "nbytes", "dirty", "pins",
                 "resident", "prev", "next")

    def __init__(self, node_id: Hashable, obj: Any, offset: int, nbytes: int, dirty: bool) -> None:
        self.node_id = node_id
        self.obj = obj
        self.offset = offset
        self.nbytes = nbytes
        self.dirty = dirty
        self.pins = 0
        self.resident = False
        self.prev: "_Entry | None" = None
        self.next: "_Entry | None" = None


class BufferCache:
    """LRU cache of node objects over a :class:`BlockDevice`.

    Parameters
    ----------
    device:
        Where misses and write-backs are charged.
    capacity_bytes:
        The memory budget ``M``.  At least one entry is always held even if
        it alone exceeds the budget.
    """

    def __init__(self, device: BlockDevice, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError(f"cache capacity must be positive, got {capacity_bytes}")
        self.device = device
        self.capacity_bytes = int(capacity_bytes)
        self.stats = CacheStats()
        self._index: dict[Hashable, _Entry] = {}
        # LRU list sentinel: _root.next is the LRU end, _root.prev the MRU end.
        self._root = _Entry(None, None, 0, 1, dirty=False)
        self._root.prev = self._root
        self._root.next = self._root
        self._n_resident = 0
        self.cached_bytes = 0
        self.io_seconds = 0.0  # simulated device time charged through this cache

    # -- LRU list internals ---------------------------------------------------

    def _link_mru(self, entry: _Entry) -> None:
        """Splice ``entry`` in at the MRU end and mark it resident."""
        tail = self._root.prev
        entry.prev = tail
        entry.next = self._root
        tail.next = entry
        self._root.prev = entry
        entry.resident = True
        self._n_resident += 1

    def _unlink(self, entry: _Entry) -> None:
        """Remove ``entry`` from the LRU list and mark it non-resident."""
        entry.prev.next = entry.next
        entry.next.prev = entry.prev
        entry.prev = None
        entry.next = None
        entry.resident = False
        self._n_resident -= 1

    def _touch(self, entry: _Entry) -> None:
        """Move a resident entry to the MRU end."""
        if entry.next is self._root:
            return  # already MRU
        entry.prev.next = entry.next
        entry.next.prev = entry.prev
        tail = self._root.prev
        entry.prev = tail
        entry.next = self._root
        tail.next = entry
        self._root.prev = entry

    def _resident_lru_order(self) -> Iterator[_Entry]:
        """Resident entries, least recently used first."""
        entry = self._root.next
        while entry is not self._root:
            nxt = entry.next  # survive unlinking of `entry` mid-iteration
            yield entry
            entry = nxt

    # -- eviction internals ---------------------------------------------------

    def _evict_until_fits(self) -> None:
        while self.cached_bytes > self.capacity_bytes and self._n_resident > 1:
            victim = next(
                (e for e in self._resident_lru_order() if e.pins == 0), None
            )
            if victim is None:
                raise CacheError("cache over budget but every entry is pinned")
            self._evict(victim)

    def _evict(self, entry: _Entry) -> None:
        self._unlink(entry)
        if entry.dirty:
            self.io_seconds += self.device.write(entry.offset, entry.nbytes)
            self.stats.dirty_evictions += 1
            if OBS.enabled:
                OBS.counter("cache.dirty_evictions").inc()
            entry.dirty = False
        self.stats.evictions += 1
        if OBS.enabled:
            OBS.counter("cache.evictions").inc()
        self.cached_bytes -= entry.nbytes

    # -- public API ------------------------------------------------------------

    def contains(self, node_id: Hashable) -> bool:
        """True if ``node_id`` is currently resident (no LRU effect)."""
        entry = self._index.get(node_id)
        return entry is not None and entry.resident

    def get(self, node_id: Hashable) -> Any:
        """Fetch a node, charging a device read on miss."""
        entry = self._index.get(node_id)
        if entry is not None and entry.resident:
            self.stats.hits += 1
            if OBS.enabled:
                OBS.counter("cache.hits").inc()
            self._touch(entry)
            return entry.obj
        self.stats.misses += 1
        if OBS.enabled:
            OBS.counter("cache.misses").inc()
        if entry is None:
            raise CacheError(f"unknown node id {node_id!r}")
        self.io_seconds += self.device.read(entry.offset, entry.nbytes)
        self._link_mru(entry)
        self.cached_bytes += entry.nbytes
        self._evict_until_fits()
        return entry.obj

    def access(
        self, node_id: Hashable, nbytes: int | None = None, dirty: bool = False
    ) -> Any:
        """Combined touch: fault in if evicted, optionally resize and dirty.

        One index lookup replacing the ``contains`` → :meth:`get` →
        :meth:`extent_of` → :meth:`update_extent` → :meth:`mark_dirty`
        sequence the write paths used to issue per component, with
        *identical* accounting at every step:

        * a resident entry is **not** counted as a hit and not LRU-touched
          (matching ``contains``, which has no LRU effect);
        * a non-resident entry takes :meth:`get`'s miss path exactly (miss
          counter, device read, MRU admission, eviction);
        * ``nbytes`` (already rounded by the caller) resizes in place when
          it differs from the registered size, keeping the registered
          offset — component slots are fixed — and marking dirty, exactly
          like :meth:`update_extent`;
        * ``dirty=True`` then applies :meth:`mark_dirty` (dirty bit + LRU
          touch).
        """
        entry = self._index.get(node_id)
        if entry is None:
            raise CacheError(f"unknown node id {node_id!r}")
        if not entry.resident:
            self.stats.misses += 1
            if OBS.enabled:
                OBS.counter("cache.misses").inc()
            self.io_seconds += self.device.read(entry.offset, entry.nbytes)
            self._link_mru(entry)
            self.cached_bytes += entry.nbytes
            self._evict_until_fits()
        if nbytes is not None and nbytes != entry.nbytes:
            if nbytes <= 0:
                raise CacheError(f"node size must be positive, got {nbytes}")
            self.cached_bytes += nbytes - entry.nbytes
            entry.nbytes = nbytes
            entry.dirty = True
            if entry.next is not self._root:
                self._touch(entry)
            if self.cached_bytes > self.capacity_bytes:
                self._evict_until_fits()
        if dirty:
            entry.dirty = True
            if entry.next is not self._root:
                self._touch(entry)
        return entry.obj

    def get_many(self, node_ids: "Sequence[Hashable]") -> list[Any]:
        """Batched read-through fetch; objects in input order.

        Hit/miss accounting matches a serial loop of :meth:`get` exactly
        (a node fetched earlier in the same batch hits on its second
        appearance).  Runs of consecutive misses with equal extent size
        are charged through the device's vectorized
        :meth:`~repro.storage.device.BlockDevice.read_batch` and admitted
        afterwards, so the run's reads are issued before any write-backs
        its admissions trigger; see
        :meth:`repro.storage.stack.StorageStack.read_many` for the exact
        equivalence contract.
        """
        out: list[Any] = [None] * len(node_ids)
        run: list[_Entry] = []
        run_nbytes = 0
        in_run: set[Hashable] = set()

        def flush_run() -> None:
            nonlocal run_nbytes
            if not run:
                return
            offsets = [e.offset for e in run]
            for dt in self.device.read_batch(offsets, run_nbytes):
                self.io_seconds += dt
            for e in run:
                # Admission may itself evict earlier entries of this run;
                # that only changes residency, the objects stay returned.
                self._link_mru(e)
                self.cached_bytes += e.nbytes
                self._evict_until_fits()
            run.clear()
            in_run.clear()
            run_nbytes = 0

        for pos, node_id in enumerate(node_ids):
            entry = self._index.get(node_id)
            if entry is None:
                raise CacheError(f"unknown node id {node_id!r}")
            if node_id in in_run:
                flush_run()  # make it resident so the re-read hits, as serially
                entry = self._index[node_id]
            if entry.resident:
                self.stats.hits += 1
                if OBS.enabled:
                    OBS.counter("cache.hits").inc()
                self._touch(entry)
                out[pos] = entry.obj
                continue
            self.stats.misses += 1
            if OBS.enabled:
                OBS.counter("cache.misses").inc()
            out[pos] = entry.obj
            if run and entry.nbytes != run_nbytes:
                flush_run()
            run.append(entry)
            in_run.add(node_id)
            run_nbytes = entry.nbytes
        flush_run()
        return out

    def insert(
        self, node_id: Hashable, obj: Any, offset: int, nbytes: int, *, dirty: bool = True
    ) -> None:
        """Add a brand-new node (e.g. from a split), resident and dirty."""
        if node_id in self._index:
            raise CacheError(f"node id {node_id!r} already exists")
        if nbytes <= 0:
            raise CacheError(f"node size must be positive, got {nbytes}")
        entry = _Entry(node_id, obj, offset, nbytes, dirty=dirty)
        self._index[node_id] = entry
        self._link_mru(entry)
        self.cached_bytes += nbytes
        self._evict_until_fits()

    def admit(
        self,
        node_id: Hashable,
        obj: Any,
        offset: int,
        nbytes: int,
        *,
        dirty: bool,
    ) -> None:
        """Make a node resident *without charging a device read*.

        Callers use this when they have charged the data movement
        themselves (e.g. a batched multi-component IO).  Existing resident
        entries are refreshed in place; entries on disk are brought back;
        unknown ids are created.
        """
        if nbytes <= 0:
            raise CacheError(f"node size must be positive, got {nbytes}")
        entry = self._index.get(node_id)
        if entry is not None and entry.resident:
            self.cached_bytes += nbytes - entry.nbytes
            entry.obj = obj
            entry.offset = offset
            entry.nbytes = nbytes
            entry.dirty = entry.dirty or dirty
            self._touch(entry)
        else:
            if entry is None:
                entry = _Entry(node_id, obj, offset, nbytes, dirty=dirty)
                self._index[node_id] = entry
            else:
                entry.obj = obj
                entry.offset = offset
                entry.nbytes = nbytes
                entry.dirty = dirty
            self._link_mru(entry)
            self.cached_bytes += nbytes
        self._evict_until_fits()

    def readmit_clean(self, items: "Sequence[tuple[Hashable, int, int]]") -> None:
        """Admit each ``(node_id, offset, nbytes)`` as resident and clean.

        Equivalent to ``admit(id, None, offset, nbytes, dirty=False)``
        followed by ``mark_clean(id)`` per item — the whole-node rewrite
        pattern, where the caller has already charged one batched device
        write for every component — fused to one index lookup per item.
        Evictions interleave exactly as in the serial sequence.
        """
        index = self._index
        for node_id, offset, nbytes in items:
            if nbytes <= 0:
                raise CacheError(f"node size must be positive, got {nbytes}")
            entry = index.get(node_id)
            if entry is not None and entry.resident:
                self.cached_bytes += nbytes - entry.nbytes
                entry.obj = None
                entry.offset = offset
                entry.nbytes = nbytes
                entry.dirty = False
                if entry.next is not self._root:
                    self._touch(entry)
            else:
                if entry is None:
                    entry = _Entry(node_id, None, offset, nbytes, dirty=False)
                    index[node_id] = entry
                else:
                    entry.obj = None
                    entry.offset = offset
                    entry.nbytes = nbytes
                    entry.dirty = False
                self._link_mru(entry)
                self.cached_bytes += nbytes
            if self.cached_bytes > self.capacity_bytes:
                self._evict_until_fits()

    def mark_dirty(self, node_id: Hashable) -> None:
        """Record that a resident node's contents changed."""
        entry = self._index.get(node_id)
        if entry is None or not entry.resident:
            raise CacheError(f"cannot dirty non-resident node {node_id!r}")
        entry.dirty = True
        self._touch(entry)

    def mark_clean(self, node_id: Hashable) -> None:
        """Clear a resident node's dirty bit (caller wrote it back itself)."""
        entry = self._index.get(node_id)
        if entry is None or not entry.resident:
            raise CacheError(f"cannot clean non-resident node {node_id!r}")
        entry.dirty = False

    def update_extent(self, node_id: Hashable, offset: int, nbytes: int) -> None:
        """Change a resident node's device extent (after a realloc)."""
        entry = self._index.get(node_id)
        if entry is None or not entry.resident:
            raise CacheError(f"cannot relocate non-resident node {node_id!r}")
        if nbytes <= 0:
            raise CacheError(f"node size must be positive, got {nbytes}")
        self.cached_bytes += nbytes - entry.nbytes
        entry.offset = offset
        entry.nbytes = nbytes
        entry.dirty = True
        self._touch(entry)
        self._evict_until_fits()

    def pin(self, node_id: Hashable) -> None:
        """Prevent eviction of a resident node until unpinned."""
        entry = self._index.get(node_id)
        if entry is None or not entry.resident:
            raise CacheError(f"cannot pin non-resident node {node_id!r}")
        entry.pins += 1

    def unpin(self, node_id: Hashable) -> None:
        """Release one pin."""
        entry = self._index.get(node_id)
        if entry is None or not entry.resident or entry.pins == 0:
            raise CacheError(f"unpin of unpinned node {node_id!r}")
        entry.pins -= 1

    def delete(self, node_id: Hashable) -> None:
        """Drop a node entirely (after a merge frees it); no write-back."""
        entry = self._index.pop(node_id, None)
        if entry is None:
            raise CacheError(f"unknown node id {node_id!r}")
        if entry.resident:
            self._unlink(entry)
            self.cached_bytes -= entry.nbytes

    def extent_of(self, node_id: Hashable) -> tuple[int, int]:
        """The ``(offset, nbytes)`` extent of a node, resident or not."""
        entry = self._index.get(node_id)
        if entry is None:
            raise CacheError(f"unknown node id {node_id!r}")
        return entry.offset, entry.nbytes

    def write_many(self, node_ids: "Sequence[Hashable]") -> float:
        """Write back the listed nodes' dirty contents, in order; seconds spent.

        The write-side counterpart of :meth:`get_many`: clean or
        non-resident entries are skipped (their bytes are already on disk),
        and runs of consecutive dirty entries with equal extent size are
        charged through the device's vectorized
        :meth:`~repro.storage.device.BlockDevice.write_batch`.  Because
        ``write_batch`` is bit-identical to a serial loop of ``write`` on
        every device model, the total — and the device's clock, stats and
        RNG stream — match a serial ``device.write`` per dirty node
        exactly.
        """
        spent = 0.0
        run: list[_Entry] = []
        run_nbytes = 0

        def flush_run() -> None:
            nonlocal spent, run_nbytes
            if not run:
                return
            offsets = [e.offset for e in run]
            for dt in self.device.write_batch(offsets, run_nbytes):
                spent += dt
            for e in run:
                e.dirty = False
            run.clear()
            run_nbytes = 0

        for node_id in node_ids:
            entry = self._index.get(node_id)
            if entry is None:
                raise CacheError(f"unknown node id {node_id!r}")
            if not entry.resident or not entry.dirty:
                continue
            if run and entry.nbytes != run_nbytes:
                flush_run()
            run.append(entry)
            run_nbytes = entry.nbytes
        flush_run()
        self.io_seconds += spent
        return spent

    def write_back(self, node_id: Hashable) -> float:
        """Write back one node's dirty contents; returns device seconds.

        The scalar twin of :meth:`write_many`: a clean or non-resident
        entry costs nothing, and ``write_many(ids)`` is an IO-schedule
        optimisation of ``sum(write_back(i) for i in ids)``.
        """
        return self.write_many([node_id])

    def flush(self) -> float:
        """Write back every dirty resident node; returns device seconds.

        Write-back order is LRU-first — the same order the previous
        ``OrderedDict`` implementation flushed in, which matters because
        write order drives seek distances on mechanical devices.  Runs of
        equal-size dirty nodes go through the batched write path (see
        :meth:`write_many`), which is bit-identical to the serial loop.
        """
        return self.write_many([e.node_id for e in self._resident_lru_order()])

    def drop_clean(self) -> None:
        """Evict every unpinned resident node (dirty ones are written back).

        Used between the load phase and the measured phase of experiments to
        start from a cold cache.
        """
        for entry in self._resident_lru_order():
            if entry.pins == 0:
                self._evict(entry)

    def check_invariants(self) -> None:
        """Assert byte accounting, list integrity and residency consistency."""
        resident = [e for e in self._index.values() if e.resident]
        assert self.cached_bytes == sum(e.nbytes for e in resident)
        walked = list(self._resident_lru_order())
        assert len(walked) == self._n_resident == len(resident)
        assert {id(e) for e in walked} == {id(e) for e in resident}
        for e in walked:
            assert e.next.prev is e and e.prev.next is e
        for e in self._index.values():
            if not e.resident:
                assert e.prev is None and e.next is None and e.pins == 0

    def __len__(self) -> int:
        return self._n_resident
