"""Byte-budgeted LRU buffer cache with dirty write-back.

This is the DAM's memory level: the cache holds up to ``M`` bytes of node
data; everything else lives "on disk" and costs device time to touch.  The
paper's analyses all assume "the top ``Theta(log M)`` levels can be cached";
LRU achieves that automatically for tree workloads.

The cache is also where *write amplification* physically happens: an
insert dirties a whole node, and when the node is evicted the device writes
the full node even though only a few bytes of user data changed (paper
Lemma 3).

Objects are arbitrary Python values; the cache tracks their device extent
``(offset, nbytes)`` and charges the device on miss (read) and on dirty
eviction (write).  Evicted objects are retained in a side "disk image" map
— devices in this repository price IO time but do not store bytes (see
:mod:`repro.storage.device`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from repro.errors import CacheError, ConfigurationError
from repro.storage.device import BlockDevice


@dataclass
class CacheStats:
    """Hit/miss/eviction counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total cache lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 if none yet)."""
        return self.hits / self.accesses if self.accesses else 0.0


class _Entry:
    __slots__ = ("obj", "offset", "nbytes", "dirty", "pins")

    def __init__(self, obj: Any, offset: int, nbytes: int, dirty: bool) -> None:
        self.obj = obj
        self.offset = offset
        self.nbytes = nbytes
        self.dirty = dirty
        self.pins = 0


class BufferCache:
    """LRU cache of node objects over a :class:`BlockDevice`.

    Parameters
    ----------
    device:
        Where misses and write-backs are charged.
    capacity_bytes:
        The memory budget ``M``.  At least one entry is always held even if
        it alone exceeds the budget.
    """

    def __init__(self, device: BlockDevice, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError(f"cache capacity must be positive, got {capacity_bytes}")
        self.device = device
        self.capacity_bytes = int(capacity_bytes)
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, _Entry] = OrderedDict()  # LRU order
        self._disk: dict[Hashable, tuple[Any, int, int]] = {}  # evicted images
        self.cached_bytes = 0
        self.io_seconds = 0.0  # simulated device time charged through this cache

    # -- internals -----------------------------------------------------------

    def _evict_until_fits(self) -> None:
        while self.cached_bytes > self.capacity_bytes and len(self._entries) > 1:
            victim_id = next(
                (k for k, e in self._entries.items() if e.pins == 0), None
            )
            if victim_id is None:
                raise CacheError("cache over budget but every entry is pinned")
            self._evict(victim_id)

    def _evict(self, node_id: Hashable) -> None:
        entry = self._entries.pop(node_id)
        if entry.dirty:
            self.io_seconds += self.device.write(entry.offset, entry.nbytes)
            self.stats.dirty_evictions += 1
        self.stats.evictions += 1
        self.cached_bytes -= entry.nbytes
        self._disk[node_id] = (entry.obj, entry.offset, entry.nbytes)

    # -- public API ------------------------------------------------------------

    def contains(self, node_id: Hashable) -> bool:
        """True if ``node_id`` is currently resident (no LRU effect)."""
        return node_id in self._entries

    def get(self, node_id: Hashable) -> Any:
        """Fetch a node, charging a device read on miss."""
        entry = self._entries.get(node_id)
        if entry is not None:
            self.stats.hits += 1
            self._entries.move_to_end(node_id)
            return entry.obj
        self.stats.misses += 1
        try:
            obj, offset, nbytes = self._disk.pop(node_id)
        except KeyError:
            raise CacheError(f"unknown node id {node_id!r}") from None
        self.io_seconds += self.device.read(offset, nbytes)
        self._entries[node_id] = _Entry(obj, offset, nbytes, dirty=False)
        self.cached_bytes += nbytes
        self._evict_until_fits()
        return obj

    def insert(
        self, node_id: Hashable, obj: Any, offset: int, nbytes: int, *, dirty: bool = True
    ) -> None:
        """Add a brand-new node (e.g. from a split), resident and dirty."""
        if node_id in self._entries or node_id in self._disk:
            raise CacheError(f"node id {node_id!r} already exists")
        if nbytes <= 0:
            raise CacheError(f"node size must be positive, got {nbytes}")
        self._entries[node_id] = _Entry(obj, offset, nbytes, dirty=dirty)
        self.cached_bytes += nbytes
        self._evict_until_fits()

    def admit(
        self,
        node_id: Hashable,
        obj: Any,
        offset: int,
        nbytes: int,
        *,
        dirty: bool,
    ) -> None:
        """Make a node resident *without charging a device read*.

        Callers use this when they have charged the data movement
        themselves (e.g. a batched multi-component IO).  Existing resident
        entries are refreshed in place; entries on disk are brought back;
        unknown ids are created.
        """
        if nbytes <= 0:
            raise CacheError(f"node size must be positive, got {nbytes}")
        entry = self._entries.get(node_id)
        if entry is not None:
            self.cached_bytes += nbytes - entry.nbytes
            entry.obj = obj
            entry.offset = offset
            entry.nbytes = nbytes
            entry.dirty = entry.dirty or dirty
            self._entries.move_to_end(node_id)
        else:
            self._disk.pop(node_id, None)
            self._entries[node_id] = _Entry(obj, offset, nbytes, dirty=dirty)
            self.cached_bytes += nbytes
        self._evict_until_fits()

    def mark_dirty(self, node_id: Hashable) -> None:
        """Record that a resident node's contents changed."""
        entry = self._entries.get(node_id)
        if entry is None:
            raise CacheError(f"cannot dirty non-resident node {node_id!r}")
        entry.dirty = True
        self._entries.move_to_end(node_id)

    def mark_clean(self, node_id: Hashable) -> None:
        """Clear a resident node's dirty bit (caller wrote it back itself)."""
        entry = self._entries.get(node_id)
        if entry is None:
            raise CacheError(f"cannot clean non-resident node {node_id!r}")
        entry.dirty = False

    def update_extent(self, node_id: Hashable, offset: int, nbytes: int) -> None:
        """Change a resident node's device extent (after a realloc)."""
        entry = self._entries.get(node_id)
        if entry is None:
            raise CacheError(f"cannot relocate non-resident node {node_id!r}")
        if nbytes <= 0:
            raise CacheError(f"node size must be positive, got {nbytes}")
        self.cached_bytes += nbytes - entry.nbytes
        entry.offset = offset
        entry.nbytes = nbytes
        entry.dirty = True
        self._entries.move_to_end(node_id)
        self._evict_until_fits()

    def pin(self, node_id: Hashable) -> None:
        """Prevent eviction of a resident node until unpinned."""
        entry = self._entries.get(node_id)
        if entry is None:
            raise CacheError(f"cannot pin non-resident node {node_id!r}")
        entry.pins += 1

    def unpin(self, node_id: Hashable) -> None:
        """Release one pin."""
        entry = self._entries.get(node_id)
        if entry is None or entry.pins == 0:
            raise CacheError(f"unpin of unpinned node {node_id!r}")
        entry.pins -= 1

    def delete(self, node_id: Hashable) -> None:
        """Drop a node entirely (after a merge frees it); no write-back."""
        entry = self._entries.pop(node_id, None)
        if entry is not None:
            self.cached_bytes -= entry.nbytes
            return
        if self._disk.pop(node_id, None) is None:
            raise CacheError(f"unknown node id {node_id!r}")

    def extent_of(self, node_id: Hashable) -> tuple[int, int]:
        """The ``(offset, nbytes)`` extent of a node, resident or not."""
        entry = self._entries.get(node_id)
        if entry is not None:
            return entry.offset, entry.nbytes
        try:
            _, offset, nbytes = self._disk[node_id]
        except KeyError:
            raise CacheError(f"unknown node id {node_id!r}") from None
        return offset, nbytes

    def flush(self) -> float:
        """Write back every dirty resident node; returns device seconds."""
        spent = 0.0
        for entry in self._entries.values():
            if entry.dirty:
                dt = self.device.write(entry.offset, entry.nbytes)
                spent += dt
                entry.dirty = False
        self.io_seconds += spent
        return spent

    def drop_clean(self) -> None:
        """Evict every unpinned resident node (dirty ones are written back).

        Used between the load phase and the measured phase of experiments to
        start from a cold cache.
        """
        for node_id in [k for k, e in self._entries.items() if e.pins == 0]:
            self._evict(node_id)

    def check_invariants(self) -> None:
        """Assert byte accounting and id-disjointness (property tests)."""
        assert self.cached_bytes == sum(e.nbytes for e in self._entries.values())
        assert not (set(self._entries) & set(self._disk)), "id in both cache and disk"

    def __len__(self) -> int:
        return len(self._entries)
