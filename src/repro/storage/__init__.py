"""Simulated storage stack.

The paper's evaluation runs on real HDDs and SSDs; this package replaces
them with discrete-event simulators that expose the same first-order
behaviour (see DESIGN.md section 2 for the substitution argument):

* :mod:`repro.storage.engine` — event-ordering and resource-timeline core.
* :mod:`repro.storage.device` — the :class:`BlockDevice` interface, IO
  records and statistics (including write-amplification accounting).
* :mod:`repro.storage.hdd` — seek + rotation + transfer hard-disk model.
* :mod:`repro.storage.ssd` — channel/die flash model with bank conflicts.
* :mod:`repro.storage.ideal` — devices that implement the affine and PDAM
  *models exactly* (no noise), for model-vs-simulator comparisons.
* :mod:`repro.storage.ram` — free/constant-cost devices for unit tests.
* :mod:`repro.storage.cache` — byte-budgeted LRU buffer cache with dirty
  write-back (the DAM's memory level ``M``).
* :mod:`repro.storage.allocator` — extent allocator for variable-size nodes.
* :mod:`repro.storage.scheduler` — PDAM step scheduler with read-ahead
  expansion (the Section 8 strategy).
"""

from repro.storage.device import BlockDevice, DeviceStats, IORecord
from repro.storage.hdd import SimulatedHDD, HDDGeometry
from repro.storage.ssd import SimulatedSSD, SSDGeometry
from repro.storage.ideal import AffineDevice, PDAMDevice
from repro.storage.ram import NullDevice, ConstantLatencyDevice
from repro.storage.cache import BufferCache, CacheStats
from repro.storage.allocator import ExtentAllocator

__all__ = [
    "BlockDevice",
    "DeviceStats",
    "IORecord",
    "SimulatedHDD",
    "HDDGeometry",
    "SimulatedSSD",
    "SSDGeometry",
    "AffineDevice",
    "PDAMDevice",
    "NullDevice",
    "ConstantLatencyDevice",
    "BufferCache",
    "CacheStats",
    "ExtentAllocator",
]
