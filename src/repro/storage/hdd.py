"""Simulated hard disk drive.

Implements the mechanical cost structure the affine model abstracts
(paper Section 2.3):

* **Seek**: moving the head costs between a track-to-track seek (~1 ms) and
  a full-stroke seek (~10 ms) depending on distance — "the setup cost can
  vary by an order of magnitude."  We use the standard square-root seek
  curve [Ruemmler & Wilkes 1994].
* **Rotation**: after the seek, the head waits for the target sector —
  uniform in one rotation period.
* **Transfer**: data then streams at fixed bandwidth.

Sequential IOs (starting exactly where the head stopped) skip the seek and
rotation entirely, which is what makes large-node range scans fast and what
the DAM cannot express.

The expected per-IO setup cost is ``E[seek] + E[rotation]``; regressing IO
time against IO size (experiment E3 / paper Table 2) recovers it as the
intercept ``s``, with slope ``t = 1/bandwidth``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.obs import OBS
from repro.storage.device import BlockDevice, IORecord


@dataclass(frozen=True)
class HDDGeometry:
    """Mechanical parameters of a simulated hard disk.

    Defaults approximate a 7200 RPM commodity SATA drive of the era the
    paper benchmarks (Table 2).
    """

    capacity_bytes: int = 512 * 2**30
    track_to_track_seek_seconds: float = 0.001
    full_stroke_seek_seconds: float = 0.010
    rotation_seconds: float = 1.0 / 120.0  # 7200 RPM
    bandwidth_bytes_per_second: float = 150e6

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError("capacity must be positive")
        if not 0 <= self.track_to_track_seek_seconds <= self.full_stroke_seek_seconds:
            raise ConfigurationError(
                "need 0 <= track_to_track <= full_stroke seek time, got "
                f"{self.track_to_track_seek_seconds} and {self.full_stroke_seek_seconds}"
            )
        if self.rotation_seconds <= 0:
            raise ConfigurationError("rotation period must be positive")
        if self.bandwidth_bytes_per_second <= 0:
            raise ConfigurationError("bandwidth must be positive")

    @property
    def mean_setup_seconds(self) -> float:
        """Expected setup cost ``s``: average seek plus half a rotation.

        For random IOs the head moves ``|U1 - U2|`` with U uniform, whose
        density is ``2(1-x)``; under the square-root seek curve the mean
        seek is ``t2t + (full - t2t) * E[sqrt(|U1-U2|)]`` with
        ``E[sqrt(|U1-U2|)] = 8/15``.
        """
        t2t = self.track_to_track_seek_seconds
        full = self.full_stroke_seek_seconds
        return t2t + (full - t2t) * (8.0 / 15.0) + self.rotation_seconds / 2.0

    @property
    def seconds_per_byte(self) -> float:
        """Bandwidth cost ``t`` in seconds per byte."""
        return 1.0 / self.bandwidth_bytes_per_second

    @property
    def alpha(self) -> float:
        """Affine ``alpha = t / s`` (per byte) this geometry induces."""
        return self.seconds_per_byte / self.mean_setup_seconds

    @property
    def half_bandwidth_bytes(self) -> float:
        """IO size at which setup and transfer time are equal."""
        return self.mean_setup_seconds * self.bandwidth_bytes_per_second


class SimulatedHDD(BlockDevice):
    """Event-level hard disk: seek curve + rotational latency + transfer.

    Parameters
    ----------
    geometry:
        Mechanical parameters (see :class:`HDDGeometry`).
    seed:
        Seed for the rotational-position RNG; runs are deterministic.
    sequential_detection:
        When true (default), an IO starting exactly at the head's current
        position pays no seek and no rotational delay.
    """

    def __init__(
        self,
        geometry: HDDGeometry | None = None,
        *,
        seed: int = 0,
        sequential_detection: bool = True,
        trace: bool = False,
    ) -> None:
        self.geometry = geometry or HDDGeometry()
        super().__init__(self.geometry.capacity_bytes, trace=trace)
        self._rng = np.random.default_rng(seed)
        self._seed = seed
        self.sequential_detection = sequential_detection
        self.head_position = 0

    # -- timing ------------------------------------------------------------

    def _seek_seconds(self, offset: int) -> float:
        """Setup time to reposition the head at ``offset``."""
        g = self.geometry
        if self.sequential_detection and offset == self.head_position:
            return 0.0
        distance = abs(offset - self.head_position)
        frac = distance / g.capacity_bytes
        seek = g.track_to_track_seek_seconds + (
            g.full_stroke_seek_seconds - g.track_to_track_seek_seconds
        ) * math.sqrt(frac)
        rotation = float(self._rng.uniform(0.0, g.rotation_seconds))
        return seek + rotation

    def _service(self, offset: int, nbytes: int, at: float) -> float:
        setup = self._seek_seconds(offset)
        transfer = nbytes * self.geometry.seconds_per_byte
        self.head_position = offset + nbytes
        if OBS.enabled:
            self._obs_setup = setup  # seek/bandwidth split for the obs layer
        return at + setup + transfer

    def _service_read(self, offset: int, nbytes: int, at: float) -> float:
        return self._service(offset, nbytes, at)

    def _service_write(self, offset: int, nbytes: int, at: float) -> float:
        # Writes pay the same mechanical costs as reads on a hard disk.
        return self._service(offset, nbytes, at)

    def read_batch(self, offsets, nbytes: int) -> list[float]:
        """Vectorized homogeneous read batch, bit-identical to serial reads.

        The mechanical math (seek distances, square-root curve, rotational
        draws) is evaluated with numpy across the whole batch; only the
        per-IO clock/stat/trace bookkeeping stays in Python, in the exact
        float-operation order of :meth:`BlockDevice.read`, so the returned
        timings — and the RNG stream position afterwards — match a serial
        loop bit for bit.  Rotational delays are drawn only for the
        non-sequential IOs, mirroring :meth:`_seek_seconds` which does not
        touch the RNG on a sequential hit.
        """
        offs = [int(o) for o in offsets]
        if not offs:
            return []
        for off in offs:
            self._check(off, nbytes)
        g = self.geometry
        arr = np.asarray(offs, dtype=np.int64)
        # Head position each IO sees: the entry position for the first,
        # then the end of the preceding IO.
        prev = np.empty(len(offs), dtype=np.int64)
        prev[0] = self.head_position
        if len(offs) > 1:
            prev[1:] = arr[:-1] + nbytes
        if self.sequential_detection:
            nonseq = arr != prev
        else:
            nonseq = np.ones(len(offs), dtype=bool)
        setup = np.zeros(len(offs), dtype=np.float64)
        n_nonseq = int(np.count_nonzero(nonseq))
        if n_nonseq:
            frac = np.abs(arr[nonseq] - prev[nonseq]) / g.capacity_bytes
            seek = g.track_to_track_seek_seconds + (
                g.full_stroke_seek_seconds - g.track_to_track_seek_seconds
            ) * np.sqrt(frac)
            rotation = self._rng.uniform(0.0, g.rotation_seconds, size=n_nonseq)
            setup[nonseq] = seek + rotation
        transfer = nbytes * g.seconds_per_byte
        stats = self.stats
        out: list[float] = []
        for i, off in enumerate(offs):
            start = self.clock
            end = start + float(setup[i]) + transfer
            elapsed = end - start
            self.clock = end
            stats.reads += 1
            stats.bytes_read += nbytes
            stats.read_seconds += elapsed
            if self._trace_enabled:
                self.trace.append(IORecord("read", off, nbytes, start, end))
            if self.sampler is not None:
                self.sampler.record(nbytes, elapsed, "read")
            if OBS.enabled:
                OBS.io_event(
                    type(self).__name__, "read", off, nbytes, start, end,
                    float(setup[i]),
                )
            out.append(elapsed)
        self.head_position = offs[-1] + nbytes
        return out

    def write_batch(self, offsets, nbytes: int) -> list[float]:
        """Vectorized homogeneous write batch; twin of :meth:`read_batch`.

        Writes pay the same mechanical costs as reads on a hard disk, so
        the timing math is identical — only the counters and trace records
        differ.  The RNG stream position afterwards matches a serial loop
        of :meth:`BlockDevice.write` exactly.
        """
        offs = [int(o) for o in offsets]
        if not offs:
            return []
        for off in offs:
            self._check(off, nbytes)
        g = self.geometry
        arr = np.asarray(offs, dtype=np.int64)
        prev = np.empty(len(offs), dtype=np.int64)
        prev[0] = self.head_position
        if len(offs) > 1:
            prev[1:] = arr[:-1] + nbytes
        if self.sequential_detection:
            nonseq = arr != prev
        else:
            nonseq = np.ones(len(offs), dtype=bool)
        setup = np.zeros(len(offs), dtype=np.float64)
        n_nonseq = int(np.count_nonzero(nonseq))
        if n_nonseq:
            frac = np.abs(arr[nonseq] - prev[nonseq]) / g.capacity_bytes
            seek = g.track_to_track_seek_seconds + (
                g.full_stroke_seek_seconds - g.track_to_track_seek_seconds
            ) * np.sqrt(frac)
            rotation = self._rng.uniform(0.0, g.rotation_seconds, size=n_nonseq)
            setup[nonseq] = seek + rotation
        transfer = nbytes * g.seconds_per_byte
        stats = self.stats
        out: list[float] = []
        for i, off in enumerate(offs):
            start = self.clock
            end = start + float(setup[i]) + transfer
            elapsed = end - start
            self.clock = end
            stats.writes += 1
            stats.bytes_written += nbytes
            stats.write_seconds += elapsed
            if self._trace_enabled:
                self.trace.append(IORecord("write", off, nbytes, start, end))
            if self.sampler is not None:
                self.sampler.record(nbytes, elapsed, "write")
            if OBS.enabled:
                OBS.io_event(
                    type(self).__name__, "write", off, nbytes, start, end,
                    float(setup[i]),
                )
            out.append(elapsed)
        self.head_position = offs[-1] + nbytes
        return out

    def describe(self) -> dict[str, object]:
        d = super().describe()
        d.update(
            seed=self._seed,
            sequential_detection=self.sequential_detection,
            track_to_track_seek_seconds=self.geometry.track_to_track_seek_seconds,
            full_stroke_seek_seconds=self.geometry.full_stroke_seek_seconds,
            rotation_seconds=self.geometry.rotation_seconds,
            bandwidth_bytes_per_second=self.geometry.bandwidth_bytes_per_second,
        )
        return d

    def reset(self) -> None:
        """Reset clock, counters, head position and the RNG stream."""
        super().reset()
        self.head_position = 0
        self._rng = np.random.default_rng(self._seed)
