"""Devices that implement the cost models *exactly*.

The simulated HDD/SSD have mechanical noise (rotational position, bank
conflicts).  For model-vs-data-structure experiments it is often clearer to
run against a device whose timing *is* the model:

* :class:`AffineDevice` — every IO takes exactly ``s + t * nbytes``.
* :class:`PDAMDevice`  — serves up to ``P`` block IOs per time step;
  also exposes the step-batched API used by the Section 8 experiment.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ConfigurationError, InvalidIOError
from repro.models.affine import AffineModel
from repro.obs import OBS
from repro.models.pdam import PDAMModel
from repro.storage.device import BlockDevice, IORecord


class AffineDevice(BlockDevice):
    """Noise-free affine device: an IO of ``x`` bytes takes ``s + t*x``.

    Parameters
    ----------
    model:
        The :class:`~repro.models.affine.AffineModel` to realize.
    sequential_detection:
        When true, an IO starting where the previous one ended skips the
        setup cost, mirroring :class:`~repro.storage.hdd.SimulatedHDD`.
        Off by default so timing matches the model exactly.
    write_multiplier:
        Scales the cost of *writes* relative to reads (default 1.0 —
        symmetric).  Models the read/write asymmetry of flash and NVM the
        paper's Section 3 notes has "algorithmic consequences".
    """

    def __init__(
        self,
        model: AffineModel,
        capacity_bytes: int = 2**40,
        *,
        sequential_detection: bool = False,
        write_multiplier: float = 1.0,
        trace: bool = False,
    ) -> None:
        if write_multiplier <= 0:
            raise ConfigurationError(
                f"write_multiplier must be positive, got {write_multiplier}"
            )
        super().__init__(capacity_bytes, trace=trace)
        self.model = model
        self.sequential_detection = sequential_detection
        self.write_multiplier = float(write_multiplier)
        self._next_sequential_offset: int | None = None

    def _service(self, offset: int, nbytes: int, at: float, scale: float) -> float:
        sequential = (
            self.sequential_detection and offset == self._next_sequential_offset
        )
        setup = 0.0 if sequential else self.model.setup_seconds
        self._next_sequential_offset = offset + nbytes
        if OBS.enabled:
            self._obs_setup = scale * setup  # setup/bandwidth split for obs
        return at + scale * (setup + self.model.seconds_per_byte * nbytes)

    def _service_read(self, offset: int, nbytes: int, at: float) -> float:
        return self._service(offset, nbytes, at, 1.0)

    def _service_write(self, offset: int, nbytes: int, at: float) -> float:
        return self._service(offset, nbytes, at, self.write_multiplier)

    def read_batch(self, offsets, nbytes: int) -> list[float]:
        """Homogeneous read batch with the per-IO model math hoisted out.

        An affine IO of fixed size costs the same every time (modulo the
        sequential-setup waiver), so the batch path computes the two
        possible costs once and runs only the clock/stat bookkeeping per
        IO — in the same float-operation order as :meth:`BlockDevice.read`,
        keeping results bit-identical to a serial loop.
        """
        offs = [int(o) for o in offsets]
        if not offs:
            return []
        for off in offs:
            self._check(off, nbytes)
        transfer = self.model.seconds_per_byte * nbytes
        cost_nonseq = 1.0 * (self.model.setup_seconds + transfer)
        cost_seq = 1.0 * (0.0 + transfer)
        stats = self.stats
        expected = self._next_sequential_offset
        out: list[float] = []
        for off in offs:
            sequential = self.sequential_detection and off == expected
            start = self.clock
            end = start + (cost_seq if sequential else cost_nonseq)
            elapsed = end - start
            self.clock = end
            stats.reads += 1
            stats.bytes_read += nbytes
            stats.read_seconds += elapsed
            if self._trace_enabled:
                self.trace.append(IORecord("read", off, nbytes, start, end))
            if self.sampler is not None:
                self.sampler.record(nbytes, elapsed, "read")
            if OBS.enabled:
                OBS.io_event(
                    type(self).__name__, "read", off, nbytes, start, end,
                    0.0 if sequential else self.model.setup_seconds,
                )
            out.append(elapsed)
            expected = off + nbytes
        self._next_sequential_offset = expected
        return out

    def write_batch(self, offsets, nbytes: int) -> list[float]:
        """Homogeneous write batch; the write-side twin of :meth:`read_batch`.

        Identical hoisting, with the two candidate costs scaled by
        ``write_multiplier`` in the same float-operation order as
        :meth:`_service_write` — results stay bit-identical to a serial
        loop of :meth:`BlockDevice.write`.
        """
        offs = [int(o) for o in offsets]
        if not offs:
            return []
        for off in offs:
            self._check(off, nbytes)
        scale = self.write_multiplier
        transfer = self.model.seconds_per_byte * nbytes
        cost_nonseq = scale * (self.model.setup_seconds + transfer)
        cost_seq = scale * (0.0 + transfer)
        stats = self.stats
        expected = self._next_sequential_offset
        out: list[float] = []
        for off in offs:
            sequential = self.sequential_detection and off == expected
            start = self.clock
            end = start + (cost_seq if sequential else cost_nonseq)
            elapsed = end - start
            self.clock = end
            stats.writes += 1
            stats.bytes_written += nbytes
            stats.write_seconds += elapsed
            if self._trace_enabled:
                self.trace.append(IORecord("write", off, nbytes, start, end))
            if self.sampler is not None:
                self.sampler.record(nbytes, elapsed, "write")
            if OBS.enabled:
                OBS.io_event(
                    type(self).__name__, "write", off, nbytes, start, end,
                    0.0 if sequential else scale * self.model.setup_seconds,
                )
            out.append(elapsed)
            expected = off + nbytes
        self._next_sequential_offset = expected
        return out

    def describe(self) -> dict[str, object]:
        d = super().describe()
        d.update(
            setup_seconds=self.model.setup_seconds,
            seconds_per_byte=self.model.seconds_per_byte,
            sequential_detection=self.sequential_detection,
            write_multiplier=self.write_multiplier,
        )
        return d

    def reset(self) -> None:
        super().reset()
        self._next_sequential_offset = None


class PDAMDevice(BlockDevice):
    """Noise-free PDAM device (paper Definition 1).

    The serial API charges ``ceil(blocks / P)`` steps per IO.  The parallel
    API, :meth:`serve_step`, is the PDAM's native interface: callers present
    up to ``P`` block IOs; the device serves them in one step and *wastes*
    any unused slots — exactly the model's semantics, and the interface the
    Section 8 read-ahead scheduler programs against.
    """

    def __init__(self, model: PDAMModel, capacity_bytes: int = 2**40, *, trace: bool = False) -> None:
        if model.parallelism != int(model.parallelism):
            raise ConfigurationError(
                f"PDAMDevice needs integer parallelism, got {model.parallelism}"
            )
        super().__init__(capacity_bytes, trace=trace)
        self.model = model
        self.steps_elapsed = 0
        self.slots_used = 0
        self.slots_wasted = 0

    @property
    def parallelism(self) -> int:
        """Integer ``P`` of the underlying model."""
        return int(self.model.parallelism)

    @property
    def block_bytes(self) -> int:
        """Block size ``B`` of the underlying model."""
        return self.model.block_bytes

    def _serial(self, nbytes: int, at: float) -> float:
        steps = self.model.cost(nbytes)
        self.steps_elapsed += int(steps)
        blocks = self.model.blocks(nbytes)
        self.slots_used += blocks
        self.slots_wasted += int(steps) * self.parallelism - blocks
        return at + steps * self.model.step_seconds

    def _service_read(self, offset: int, nbytes: int, at: float) -> float:
        return self._serial(nbytes, at)

    def _service_write(self, offset: int, nbytes: int, at: float) -> float:
        return self._serial(nbytes, at)

    def _batch(self, offsets, nbytes: int, kind: str) -> list[float]:
        """Homogeneous batch with the PDAM step math hoisted out of the loop.

        Every IO of the same size costs the same whole number of steps, so
        the batch path computes ``cost``/``blocks`` once and runs only the
        per-IO clock and counter updates — in the same operation order as
        the serial :meth:`read`/:meth:`write` path, so results and stats
        stay bit-identical to a serial loop.
        """
        offs = [int(o) for o in offsets]
        if not offs:
            return []
        for off in offs:
            self._check(off, nbytes)
        steps = self.model.cost(nbytes)
        isteps = int(steps)
        blocks = self.model.blocks(nbytes)
        wasted = isteps * self.parallelism - blocks
        dt = steps * self.model.step_seconds
        stats = self.stats
        reading = kind == "read"
        out: list[float] = []
        for off in offs:
            start = self.clock
            end = start + dt
            # elapsed is recomputed as end - start (not reused as dt): the
            # serial path subtracts, and (start + dt) - start can differ
            # from dt in the last ulp.
            elapsed = end - start
            self.steps_elapsed += isteps
            self.slots_used += blocks
            self.slots_wasted += wasted
            self.clock = end
            if reading:
                stats.reads += 1
                stats.bytes_read += nbytes
                stats.read_seconds += elapsed
            else:
                stats.writes += 1
                stats.bytes_written += nbytes
                stats.write_seconds += elapsed
            if self._trace_enabled:
                self.trace.append(IORecord(kind, off, nbytes, start, end))
            if self.sampler is not None:
                self.sampler.record(nbytes, elapsed, kind)
            if OBS.enabled:
                OBS.io_event(type(self).__name__, kind, off, nbytes, start, end, None)
            out.append(elapsed)
        return out

    def read_batch(self, offsets, nbytes: int) -> list[float]:
        """Batched reads; bit-identical to a serial :meth:`read` loop."""
        return self._batch(offsets, nbytes, "read")

    def write_batch(self, offsets, nbytes: int) -> list[float]:
        """Batched writes; bit-identical to a serial :meth:`write` loop."""
        return self._batch(offsets, nbytes, "write")

    # -- native step interface ----------------------------------------------

    def serve_step(
        self,
        block_offsets: Sequence[int],
        write_offsets: Sequence[int] = (),
    ) -> float:
        """Serve one PDAM time step with the given block IOs.

        ``block_offsets`` are reads, ``write_offsets`` writes; together they
        must hold at most ``P`` block-aligned offsets.  Per Definition 1,
        "the device can serve any combination of reads and writes" within a
        step, under CREW semantics: a block written this step may not be
        read or written by any other slot.  Returns the new clock.
        """
        total = len(block_offsets) + len(write_offsets)
        if total > self.parallelism:
            raise InvalidIOError(
                f"step presented {total} IOs but P={self.parallelism}"
            )
        B = self.block_bytes
        write_set = set()
        for off in write_offsets:
            if off in write_set:
                raise InvalidIOError(f"CREW violation: two writes to block at {off}")
            write_set.add(off)
        if write_set and any(off in write_set for off in block_offsets):
            raise InvalidIOError("CREW violation: read of a block written this step")
        for off in block_offsets:
            if off % B:
                raise InvalidIOError(f"offset {off} is not {B}-block aligned")
            self._check(off, B)
            self.stats.reads += 1
            self.stats.bytes_read += B
        for off in write_offsets:
            if off % B:
                raise InvalidIOError(f"offset {off} is not {B}-block aligned")
            self._check(off, B)
            self.stats.writes += 1
            self.stats.bytes_written += B
        self.steps_elapsed += 1
        self.slots_used += total
        self.slots_wasted += self.parallelism - total
        self.clock += self.model.step_seconds
        self.stats.read_seconds += self.model.step_seconds
        if OBS.enabled:
            OBS.counter("device.pdam.steps").inc()
            OBS.counter("device.pdam.slots_used").inc(total)
            OBS.counter("device.pdam.slots_wasted").inc(self.parallelism - total)
            OBS.histogram("device.pdam.step_occupancy").record(total)
        return self.clock

    def stall(self, steps: int) -> float:
        """Advance the clock by ``steps`` whole steps with every slot idle.

        This is how channel-stall faults are priced: the scheduler detects
        that a step's slowest channel needs ``steps`` extra time steps and
        charges them here, with all ``P`` slots wasted for the duration
        (the device is stuck, not working).  Returns the new clock.
        """
        if steps < 0:
            raise InvalidIOError(f"stall steps must be non-negative, got {steps}")
        if steps == 0:
            return self.clock
        self.steps_elapsed += steps
        self.slots_wasted += steps * self.parallelism
        dt = steps * self.model.step_seconds
        self.clock += dt
        self.stats.read_seconds += dt
        return self.clock

    def block_of(self, offset: int) -> int:
        """Block index containing byte ``offset``."""
        if offset < 0 or offset >= self.capacity_bytes:
            raise InvalidIOError(f"offset {offset} out of range")
        return offset // self.block_bytes

    def describe(self) -> dict[str, object]:
        d = super().describe()
        d.update(
            parallelism=self.parallelism,
            block_bytes=self.block_bytes,
            step_seconds=self.model.step_seconds,
        )
        return d

    def reset(self) -> None:
        super().reset()
        self.steps_elapsed = 0
        self.slots_used = 0
        self.slots_wasted = 0
