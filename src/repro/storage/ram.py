"""Trivial devices for unit tests and cache-behaviour isolation.

* :class:`NullDevice` — all IOs complete instantly.  Used to test data
  structure *logic* (correct contents, invariants) without timing noise,
  and to count IOs without pricing them.
* :class:`ConstantLatencyDevice` — all IOs take a fixed time regardless of
  size.  This is the DAM's pricing assumption, so a tree run against it
  measures pure IO counts scaled by a constant.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.storage.device import BlockDevice


class NullDevice(BlockDevice):
    """A device where every IO is free (zero simulated seconds)."""

    def __init__(self, capacity_bytes: int = 2**40, *, trace: bool = False) -> None:
        super().__init__(capacity_bytes, trace=trace)

    def _service_read(self, offset: int, nbytes: int, at: float) -> float:
        return at

    def _service_write(self, offset: int, nbytes: int, at: float) -> float:
        return at


class ConstantLatencyDevice(BlockDevice):
    """A device where every IO takes ``latency_seconds``, as in the DAM."""

    def __init__(
        self,
        latency_seconds: float,
        capacity_bytes: int = 2**40,
        *,
        trace: bool = False,
    ) -> None:
        if latency_seconds < 0:
            raise ConfigurationError(f"latency must be non-negative, got {latency_seconds}")
        super().__init__(capacity_bytes, trace=trace)
        self.latency_seconds = float(latency_seconds)

    def _service_read(self, offset: int, nbytes: int, at: float) -> float:
        return at + self.latency_seconds

    def _service_write(self, offset: int, nbytes: int, at: float) -> float:
        return at + self.latency_seconds
