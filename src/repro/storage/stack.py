"""Bundled storage stack: device + extent allocator + buffer cache.

Every dictionary in :mod:`repro.trees` runs on a :class:`StorageStack`.
The stack is where the DAM triple ``(B, M, device)`` comes together:

* the *device* prices IO time,
* the *allocator* decides where nodes live (and hence seek distances),
* the *cache* is the memory level ``M``.

``io_seconds`` is the simulated-time metric experiments read: the total
device time charged so far, in both directions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Sequence

from repro.errors import ConfigurationError
from repro.storage.allocator import ExtentAllocator
from repro.storage.cache import BufferCache
from repro.storage.device import BlockDevice

if TYPE_CHECKING:  # pragma: no cover - imported lazily to stay layered
    from repro.faults.policy import ResiliencePolicy


class StorageStack:
    """A device, an allocator over its LBA space, and a byte-budget cache.

    Parameters
    ----------
    device:
        Any :class:`~repro.storage.device.BlockDevice`.
    cache_bytes:
        The memory budget ``M``.
    allocator_policy:
        ``"first_fit"`` (fresh file system) or ``"random"`` (aged).
    resilience:
        Optional :class:`~repro.faults.policy.ResiliencePolicy`.  Attached
        to the device's fault layer: a
        :class:`~repro.faults.device.FaultyDevice` adopts it directly; a
        bare device is wrapped in a zero-fault ``FaultyDevice`` so the
        policy still applies if faults are enabled later (a zero plan
        changes no timings).  ``None`` (default) touches nothing.
    """

    def __init__(
        self,
        device: BlockDevice,
        cache_bytes: int,
        *,
        allocator_policy: str = "first_fit",
        allocator_seed: int = 0,
        alignment: int = 512,
        resilience: "ResiliencePolicy | None" = None,
    ) -> None:
        if cache_bytes <= 0:
            raise ConfigurationError(f"cache_bytes must be positive, got {cache_bytes}")
        if resilience is not None:
            from repro.faults import FaultPlan, FaultyDevice

            if isinstance(device, FaultyDevice):
                device.policy = resilience
            else:
                device = FaultyDevice(device, FaultPlan(), policy=resilience)
        self.device = device
        self.allocator = ExtentAllocator(
            device.capacity_bytes,
            policy=allocator_policy,
            seed=allocator_seed,
            alignment=alignment,
        )
        self.cache = BufferCache(device, cache_bytes)

    @property
    def io_seconds(self) -> float:
        """Total simulated device seconds spent so far (reads + writes)."""
        return self.device.stats.busy_seconds

    @property
    def cache_bytes(self) -> int:
        """The memory budget ``M``."""
        return self.cache.capacity_bytes

    # -- node-object helpers used by all trees -------------------------------

    def create(self, node_id: Hashable, obj: object, nbytes: int) -> int:
        """Allocate an extent for a new node and insert it dirty; returns offset."""
        offset = self.allocator.alloc(nbytes)
        self.cache.insert(node_id, obj, offset, nbytes, dirty=True)
        return offset

    def destroy(self, node_id: Hashable) -> None:
        """Free a node's extent and forget it (no write-back)."""
        offset, nbytes = self.cache.extent_of(node_id)
        self.cache.delete(node_id)
        self.allocator.free(offset, nbytes)

    def get(self, node_id: Hashable) -> object:
        """Read-through fetch of a node object."""
        return self.cache.get(node_id)

    def read_many(self, node_ids: "Sequence[Hashable]") -> list[object]:
        """Batched read-through fetch; returns objects in input order.

        Equivalent to ``[self.get(i) for i in node_ids]`` — same objects,
        same hit/miss accounting, same total device traffic — but runs of
        consecutive *misses with equal extent size* are charged through
        :meth:`~repro.storage.device.BlockDevice.read_batch`, which
        vectorizes the per-IO timing math, and are admitted to the cache
        only after the whole run's reads are issued.  Two consequences:

        * the serve layer's batch of ``k`` point lookups pays one Python
          batch call per level instead of ``k`` interpreter round-trips
          per node (first step of the ROADMAP hot-path rewrite);
        * within a run, reads are issued before the write-backs of any
          evictions those admissions trigger.  On devices whose per-IO
          cost is position-independent (affine, PDAM serial) the total is
          bit-identical to the serial loop; on stateful devices (HDD
          head position) a batch may price seeks slightly differently —
          it is a different, better IO schedule, not a different result
          for the same schedule.

        Misses of heterogeneous sizes fall back to one :meth:`get`-style
        read each, so the method is safe for any node population.
        """
        return self.cache.get_many(node_ids)

    def mark_dirty(self, node_id: Hashable) -> None:
        """Record an in-place modification of a node.

        If the node was evicted mid-operation (possible when the cache is
        smaller than one operation's working set), it is re-fetched first —
        modifying an on-disk node requires reading it back in.
        """
        if not self.cache.contains(node_id):
            self.cache.get(node_id)
        self.cache.mark_dirty(node_id)

    def write_many(self, node_ids: "Sequence[Hashable]") -> float:
        """Write back the listed nodes' dirty contents; returns seconds spent.

        The write-side counterpart of :meth:`read_many`: clean or evicted
        entries are skipped and runs of equal-size dirty nodes go through
        :meth:`~repro.storage.device.BlockDevice.write_batch`, which is
        bit-identical to a serial write per node.
        """
        return self.cache.write_many(node_ids)

    def write_back(self, node_id: Hashable) -> float:
        """Write back one node's dirty contents; returns seconds spent.

        The scalar twin of :meth:`write_many`; clean or evicted nodes
        cost nothing.
        """
        return self.cache.write_back(node_id)

    def flush(self) -> float:
        """Write back all dirty nodes; returns simulated seconds spent."""
        return self.cache.flush()

    def drop_cache(self, *, reset_stats: bool = False) -> None:
        """Write back dirty nodes and start cold (between experiment phases).

        With ``reset_stats=True`` the cache's hit/miss/eviction counters are
        zeroed *after* the evictions, so a subsequent measured phase reports
        hit rates unpolluted by the load and warm-up traffic.  The default
        keeps the counters, preserving whole-run accounting.
        """
        self.cache.drop_clean()
        if reset_stats:
            self.cache.stats.reset()
