"""Discrete-event simulation core.

Two primitives power every timing simulation in this package:

* :class:`Resource` — a single-server FIFO timeline.  A job asking for the
  resource at time ``t`` starts at ``max(t, available_at)`` and holds it for
  its duration.  HDD heads, SSD dies, and SSD channel buses are Resources.
* :class:`ClosedLoopRunner` — runs ``k`` closed-loop clients against a
  device: each client keeps exactly one request outstanding and issues the
  next the moment the previous completes.  Requests are serviced in global
  issue-time order (earliest first), which with forward-only Resource
  reservations yields a consistent FCFS discrete-event schedule.

:class:`ResourcePool` stores its timelines as preallocated numpy arrays
(``available_at`` / ``busy_seconds``, one float64 per slot) so occupancy
queries (``free_slots``, ``first_free``, ``next_available_at``) are single
array operations instead of Python loops, and batch services can update
many slots without per-slot attribute traffic.  ``pool[i]`` still returns
a scalar :class:`Resource`-compatible view, so existing per-slot callers
(the serve layer's hedging pokes, the SSD's die/channel chains) are
unchanged.  All scalar arithmetic runs on float64 values, so timings are
bit-identical to the previous list-of-objects layout.

This replaces the paper's "spawn p OS threads" methodology: the threads
exist only to keep ``p`` IOs outstanding, and a closed-loop simulation does
the same thing deterministically (see DESIGN.md section 2).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

import numpy as np

from repro.errors import ConfigurationError, TransientIOError
from repro.obs import OBS

if TYPE_CHECKING:  # pragma: no cover - the engine is below repro.faults
    from repro.faults.policy import ResiliencePolicy


class Resource:
    """A single-server FIFO resource timeline.

    Tracks when the resource next becomes free and how long it has been
    busy in total (for utilization reporting).
    """

    __slots__ = ("available_at", "busy_seconds")

    def __init__(self) -> None:
        self.available_at = 0.0
        self.busy_seconds = 0.0

    def acquire(self, at: float, duration: float) -> float:
        """Serve a job arriving at ``at`` for ``duration`` seconds.

        Returns the completion time.  The job waits if the resource is busy.
        """
        if duration < 0:
            raise ConfigurationError(f"duration must be non-negative, got {duration}")
        start = max(at, self.available_at)
        end = start + duration
        self.available_at = end
        self.busy_seconds += duration
        return end

    def peek_start(self, at: float) -> float:
        """When a job arriving at ``at`` would start, without reserving."""
        return max(at, self.available_at)

    def is_free(self, at: float) -> bool:
        """Whether a job arriving at ``at`` would start immediately."""
        return self.available_at <= at

    def reset(self) -> None:
        """Forget all reservations (new experiment on the same hardware)."""
        self.available_at = 0.0
        self.busy_seconds = 0.0


class _PoolSlot:
    """Scalar :class:`Resource`-compatible view of one pool slot.

    Reads and writes go straight to the pool's arrays; the float64
    arithmetic is identical to a standalone :class:`Resource`.
    """

    __slots__ = ("_pool", "_index")

    def __init__(self, pool: "ResourcePool", index: int) -> None:
        self._pool = pool
        self._index = index

    @property
    def available_at(self) -> float:
        return float(self._pool._available_at[self._index])

    @available_at.setter
    def available_at(self, value: float) -> None:
        self._pool._available_at[self._index] = value

    @property
    def busy_seconds(self) -> float:
        return float(self._pool._busy_seconds[self._index])

    @busy_seconds.setter
    def busy_seconds(self, value: float) -> None:
        self._pool._busy_seconds[self._index] = value

    def acquire(self, at: float, duration: float) -> float:
        return self._pool.acquire(self._index, at, duration)

    def peek_start(self, at: float) -> float:
        avail = self._pool._available_at[self._index]
        return float(avail) if avail > at else at

    def is_free(self, at: float) -> bool:
        return bool(self._pool._available_at[self._index] <= at)

    def reset(self) -> None:
        self._pool._available_at[self._index] = 0.0
        self._pool._busy_seconds[self._index] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"_PoolSlot(index={self._index}, available_at={self.available_at}, "
            f"busy_seconds={self.busy_seconds})"
        )


class ResourcePool:
    """A fixed array of FIFO timelines (e.g. all dies of an SSD).

    Timelines live in two preallocated float64 arrays; ``pool[i]`` returns
    a scalar view object with the :class:`Resource` interface.  Occupancy
    queries are array reductions, so they cost O(1) Python operations
    regardless of pool size.
    """

    def __init__(self, count: int) -> None:
        if count <= 0:
            raise ConfigurationError(f"resource count must be positive, got {count}")
        self._available_at = np.zeros(count, dtype=np.float64)
        self._busy_seconds = np.zeros(count, dtype=np.float64)
        self._slots = [_PoolSlot(self, i) for i in range(count)]

    def __len__(self) -> int:
        return len(self._slots)

    def __getitem__(self, index: int) -> _PoolSlot:
        return self._slots[index]

    def acquire(self, index: int, at: float, duration: float) -> float:
        """Serve a job on slot ``index``; same semantics as Resource.acquire."""
        if duration < 0:
            raise ConfigurationError(f"duration must be non-negative, got {duration}")
        avail = self._available_at
        start = avail[index]
        if at > start:
            start = at
        end = start + duration
        avail[index] = end
        self._busy_seconds[index] += duration
        return float(end)

    def reset(self) -> None:
        self._available_at.fill(0.0)
        self._busy_seconds.fill(0.0)

    # -- array access for vectorized device models ---------------------------

    @property
    def available_at_array(self) -> np.ndarray:
        """The raw ``available_at`` timeline array (mutated by batch services)."""
        return self._available_at

    @property
    def busy_seconds_array(self) -> np.ndarray:
        """The raw ``busy_seconds`` accounting array."""
        return self._busy_seconds

    @property
    def busy_seconds(self) -> float:
        """Total busy time summed over the pool.

        Summed left-to-right exactly like the previous per-object loop
        (``math.fsum``/pairwise would round differently).
        """
        return sum(self._busy_seconds.tolist())

    @property
    def max_available_at(self) -> float:
        """The time the last resource in the pool frees up."""
        return float(self._available_at.max())

    # -- occupancy queries (the public alternative to poking _slots) -----

    def free_slots(self, at: float = 0.0) -> int:
        """How many resources would serve a job arriving at ``at`` immediately.

        This is the pool's *spare capacity* at an instant — the quantity
        hedging policies budget against (a duplicate IO is free only when
        a slot would otherwise idle).  Callers must use this instead of
        reaching into the pool's private arrays.
        """
        return int(np.count_nonzero(self._available_at <= at))

    def first_free(self, at: float, *, exclude: int | None = None) -> int | None:
        """Lowest index of a resource free at ``at``, or ``None`` if all busy.

        ``exclude`` skips one index — a hedger looking for a *second*
        server must not pick the one already serving the primary.
        """
        free = np.flatnonzero(self._available_at <= at)
        for i in free.tolist():
            if i != exclude:
                return i
        return None

    def next_available_at(self) -> float:
        """The earliest time any resource in the pool frees up."""
        return float(self._available_at.min())


class ClosedLoopRunner:
    """Drive closed-loop clients against a service function.

    Parameters
    ----------
    service:
        ``service(request, issue_time) -> completion_time``.  Must only make
        forward-in-time reservations (all provided devices do).
    service_batch:
        Optional ``service_batch(requests, issue_time) -> [completion_time]``
        servicing a *run* of requests that share one issue time, processed
        in list order.  When given (and no policy is attached and
        observability is off), the heap schedule dispatches each run of
        tied events with one call instead of one Python call per request —
        the event order, and therefore every timing, is identical to the
        scalar path because heap ties pop in client-index order, which is
        exactly the batch's list order.
    policy:
        Optional :class:`~repro.faults.policy.ResiliencePolicy`.  With one
        attached, a service call that raises
        :class:`~repro.errors.TransientIOError` is reissued after
        exponential backoff (within the retry/timeout budget), and a
        completion later than the hedge deadline triggers a duplicate
        service call issued *at* the deadline, first completion winning.
        ``None`` (default) leaves the hot loops exactly as before.
    """

    def __init__(
        self,
        service: Callable[[object, float], float],
        *,
        single_server: bool = False,
        policy: "ResiliencePolicy | None" = None,
        service_batch: "Callable[[list, float], Sequence[float]] | None" = None,
    ) -> None:
        self._service = service
        self._service_batch = service_batch
        self._single_server = bool(single_server)
        self._policy = None if policy is None or policy.is_noop else policy
        self.retries = 0
        self.hedges_issued = 0
        self.hedge_wins = 0

    def _resolve_service(self) -> Callable[[object, float], float]:
        """The per-request callable: raw service, or the resilient wrapper."""
        if self._policy is None:
            return self._service
        return self._serve_resilient

    def _serve_resilient(self, request: object, issue_time: float) -> float:
        """Apply retry and hedging around one service call.

        Backoff waits are simulated time: attempt ``i`` is issued
        ``backoff * multiplier**(i-1)`` after the previous failure.  A
        duplicate (hedged) call reserves real resource time, exactly like
        a duplicate IO on hardware would.
        """
        policy = self._policy
        assert policy is not None
        attempt = 0
        backoff = policy.backoff_seconds
        at = issue_time
        while True:
            try:
                done = self._service(request, at)
                break
            except TransientIOError:
                waited = (at + backoff) - issue_time
                if attempt >= policy.max_retries or waited > policy.timeout_seconds:
                    raise
                at += backoff
                backoff *= policy.backoff_multiplier
                attempt += 1
                self.retries += 1
                if OBS.enabled:
                    OBS.counter("io.retries").inc()
        if policy.hedge_enabled and done - issue_time > policy.hedge_deadline_seconds:
            self.hedges_issued += 1
            if OBS.enabled:
                OBS.counter("io.hedges_issued").inc()
            duplicate = self._service(request, issue_time + policy.hedge_deadline_seconds)
            if duplicate < done:
                done = duplicate
                self.hedge_wins += 1
                if OBS.enabled:
                    OBS.counter("io.hedge_wins").inc()
        return done

    def run(self, client_streams: Sequence[Iterator[object]], start_time: float = 0.0) -> list[float]:
        """Run every client to exhaustion; return per-client finish times.

        Each client issues its first request at ``start_time`` and each
        subsequent request at the completion of the previous one.  Global
        ordering is by issue time (ties broken by client index) so resource
        FIFO queues see arrivals in order.
        """
        if not client_streams:
            raise ConfigurationError("need at least one client stream")
        if OBS.enabled:
            OBS.gauge("engine.clients").set(len(client_streams))
        if self._single_server or len(client_streams) == 1:
            return self._run_single_server(client_streams, start_time)
        return self._run_heap(client_streams, start_time)

    def _run_heap(
        self, client_streams: Sequence[Iterator[object]], start_time: float
    ) -> list[float]:
        service = self._resolve_service()
        # Batch dispatch changes neither event order nor arithmetic, but it
        # would change the per-request OBS gauge sequence, so the scalar
        # path stays authoritative whenever observability is recording.
        service_batch = (
            self._service_batch
            if self._policy is None and not OBS.enabled
            else None
        )
        iterators = [iter(s) for s in client_streams]
        finish = [start_time] * len(iterators)
        heap: list[tuple[float, int]] = []
        for idx in range(len(iterators)):
            heapq.heappush(heap, (start_time, idx))
        while heap:
            issue_time, idx = heapq.heappop(heap)
            if service_batch is not None and heap and heap[0][0] == issue_time:
                # A run of tied events: pop them all (ties pop in client
                # index order) and service them with one batched call.
                batch = [idx]
                while heap and heap[0][0] == issue_time:
                    batch.append(heapq.heappop(heap)[1])
                live: list[int] = []
                requests: list[object] = []
                for i in batch:
                    try:
                        requests.append(next(iterators[i]))
                        live.append(i)
                    except StopIteration:
                        finish[i] = issue_time
                if not requests:
                    continue
                dones = service_batch(requests, issue_time)
                for i, done in zip(live, dones):
                    if done < issue_time:
                        raise ConfigurationError(
                            f"service completed before issue ({done} < {issue_time}); "
                            "service functions must be forward-in-time"
                        )
                    heapq.heappush(heap, (done, i))
                continue
            try:
                request = next(iterators[idx])
            except StopIteration:
                finish[idx] = issue_time
                continue
            done = service(request, issue_time)
            if done < issue_time:
                raise ConfigurationError(
                    f"service completed before issue ({done} < {issue_time}); "
                    "service functions must be forward-in-time"
                )
            if OBS.enabled:
                OBS.counter("engine.requests").inc()
                # Clients still in flight: everyone left in the heap plus
                # this one, which is about to re-enter it.
                OBS.gauge("engine.queue_depth").set(len(heap) + 1)
                OBS.histogram("engine.service_seconds").record(done - issue_time)
            heapq.heappush(heap, (done, idx))
        return finish

    def _run_single_server(
        self, client_streams: Sequence[Iterator[object]], start_time: float
    ) -> list[float]:
        """Heap-free schedule for the one-shared-resource case.

        With a single FIFO server and positive service times, completions
        are strictly increasing in service order, so every serviced client
        re-arrives strictly *behind* all currently waiting clients: the
        next client to pop is always the head of a plain FIFO queue, and
        no two queued events ever tie.  That makes the schedule a
        round-robin deque rotation — identical event order to the heap
        (whose ties, which cannot occur here, break by client index) at a
        fraction of the cost.  Strict monotonicity is checked per
        completion; a service function that violates it (multiple
        independent resources, or zero-duration services that re-create
        heap ties) raises rather than silently reordering events.  A
        single client is trivially safe — rotation order is vacuous.
        """
        service = self._resolve_service()
        iterators = [iter(s) for s in client_streams]
        finish = [start_time] * len(iterators)
        queue: deque[tuple[float, int]] = deque(
            (start_time, idx) for idx in range(len(iterators))
        )
        check_order = len(iterators) > 1
        last_done = start_time
        while queue:
            issue_time, idx = queue.popleft()
            try:
                request = next(iterators[idx])
            except StopIteration:
                finish[idx] = issue_time
                continue
            done = service(request, issue_time)
            if done < issue_time:
                raise ConfigurationError(
                    f"service completed before issue ({done} < {issue_time}); "
                    "service functions must be forward-in-time"
                )
            if check_order:
                if done <= last_done:
                    raise ConfigurationError(
                        "single_server fast path needs strictly increasing "
                        f"completions, got {done} after {last_done}; the "
                        "service function is not a single FIFO resource with "
                        "positive service times"
                    )
                last_done = done
            if OBS.enabled:
                OBS.counter("engine.requests").inc()
                OBS.gauge("engine.queue_depth").set(len(queue) + 1)
                OBS.histogram("engine.service_seconds").record(done - issue_time)
            queue.append((done, idx))
        return finish

    def run_makespan(self, client_streams: Sequence[Iterator[object]]) -> float:
        """Convenience: the time at which the *last* client finishes."""
        return max(self.run(client_streams))
