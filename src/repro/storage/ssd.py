"""Simulated solid-state drive.

Implements the internal-parallelism structure the PDAM abstracts (paper
Section 2.2): flash packages are organized into *channels*, each with
several *dies*; a die reads one page at a time, and the pages it produces
must cross its channel's shared bus.  Parallelism comes from independent
dies; *bank conflicts* happen when concurrent requests land on the same die
and serialize — the paper's explanation for why the Figure 1 knee "is not
perfectly sharp."

Address mapping: the LBA space is divided into *stripe units* (default
64 KiB, matching the request size of the paper's Figure 1 benchmark); unit
``u`` lives entirely on die ``u mod D``.  A random stripe-aligned read
therefore occupies exactly one die, and ``p`` concurrent clients engage
``~min(p, D)`` dies — which is exactly the PDAM's flat-then-linear
completion-time curve, with the effective ``P`` emerging from resource
contention rather than being postulated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.obs import OBS
from repro.storage.device import BlockDevice, ReadRequest, WriteRequest
from repro.storage.engine import ClosedLoopRunner, ResourcePool


@dataclass(frozen=True)
class SSDGeometry:
    """Layout and timing parameters of a simulated flash device.

    Defaults approximate a commodity SATA SSD: 4 KiB pages, ~80 us page
    reads, ~600 us page programs, and a channel bus that moves a page in
    ~10 us.
    """

    capacity_bytes: int = 256 * 2**30
    channels: int = 2
    dies_per_channel: int = 2
    page_bytes: int = 4096
    stripe_bytes: int = 65536
    page_read_seconds: float = 80e-6
    page_program_seconds: float = 600e-6
    channel_transfer_seconds: float = 10e-6  # per page, on the shared bus

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError("capacity must be positive")
        if self.channels <= 0 or self.dies_per_channel <= 0:
            raise ConfigurationError("channels and dies_per_channel must be positive")
        if self.page_bytes <= 0:
            raise ConfigurationError("page_bytes must be positive")
        if self.stripe_bytes < self.page_bytes or self.stripe_bytes % self.page_bytes:
            raise ConfigurationError(
                f"stripe_bytes ({self.stripe_bytes}) must be a multiple of "
                f"page_bytes ({self.page_bytes})"
            )
        if min(
            self.page_read_seconds,
            self.page_program_seconds,
            self.channel_transfer_seconds,
        ) <= 0:
            raise ConfigurationError("all timing parameters must be positive")

    @property
    def total_dies(self) -> int:
        """Total independent flash dies — the device's raw parallelism."""
        return self.channels * self.dies_per_channel

    @property
    def single_stream_read_seconds_per_stripe(self) -> float:
        """Latency of one stripe-sized read on an idle device.

        The die reads the stripe's pages back to back; the last page's bus
        transfer trails the last read.
        """
        pages = self.stripe_bytes // self.page_bytes
        return pages * self.page_read_seconds + self.channel_transfer_seconds

    @property
    def saturated_read_bytes_per_second(self) -> float:
        """Aggregate read throughput with all dies busy.

        Bounded by die read rate and by channel bus rate, whichever binds.
        """
        die_rate = self.total_dies * self.page_bytes / self.page_read_seconds
        bus_rate = self.channels * self.page_bytes / self.channel_transfer_seconds
        return min(die_rate, bus_rate)

    @property
    def expected_pdam_parallelism(self) -> float:
        """The ``P`` the PDAM fit should recover: saturation / single-stream."""
        single = self.stripe_bytes / self.single_stream_read_seconds_per_stripe
        return self.saturated_read_bytes_per_second / single


class SimulatedSSD(BlockDevice):
    """Channel/die flash device with FIFO resource timelines.

    The serial :meth:`~repro.storage.device.BlockDevice.read` /
    :meth:`~repro.storage.device.BlockDevice.write` API routes through the
    same resource model as the parallel closed-loop API, so tree workloads
    and microbenchmarks see consistent timing.
    """

    def __init__(self, geometry: SSDGeometry | None = None, *, trace: bool = False) -> None:
        self.geometry = geometry or SSDGeometry()
        super().__init__(self.geometry.capacity_bytes, trace=trace)
        g = self.geometry
        self._dies = ResourcePool(g.total_dies)
        self._channels = ResourcePool(g.channels)

    # -- address mapping ----------------------------------------------------

    def die_of_stripe(self, stripe_index: int) -> int:
        """Die holding stripe unit ``stripe_index``."""
        return stripe_index % self.geometry.total_dies

    def channel_of_die(self, die: int) -> int:
        """Channel whose bus serves ``die``."""
        return die % self.geometry.channels

    def _page_plan(self, offset: int, nbytes: int) -> list[tuple[int, int]]:
        """Decompose an IO into per-die page counts, in address order.

        Returns ``[(die, n_pages), ...]`` with one entry per stripe unit the
        IO touches.
        """
        g = self.geometry
        plan: list[tuple[int, int]] = []
        pos = offset
        end = offset + nbytes
        while pos < end:
            stripe = pos // g.stripe_bytes
            stripe_end = (stripe + 1) * g.stripe_bytes
            chunk = min(end, stripe_end) - pos
            pages = math.ceil(chunk / g.page_bytes)
            plan.append((self.die_of_stripe(stripe), pages))
            pos += chunk
        return plan

    # -- timing -------------------------------------------------------------

    def _read_completion(self, offset: int, nbytes: int, at: float) -> float:
        g = self.geometry
        done = at
        for die_idx, pages in self._page_plan(offset, nbytes):
            die = self._dies[die_idx]
            channel = self._channels[self.channel_of_die(die_idx)]
            arrival = at
            for _ in range(pages):
                read_end = die.acquire(arrival, g.page_read_seconds)
                xfer_end = channel.acquire(read_end, g.channel_transfer_seconds)
                arrival = read_end  # die proceeds to the next page immediately
                done = max(done, xfer_end)
        return done

    def _write_completion(self, offset: int, nbytes: int, at: float) -> float:
        g = self.geometry
        done = at
        for die_idx, pages in self._page_plan(offset, nbytes):
            die = self._dies[die_idx]
            channel = self._channels[self.channel_of_die(die_idx)]
            arrival = at
            for _ in range(pages):
                xfer_end = channel.acquire(arrival, g.channel_transfer_seconds)
                prog_end = die.acquire(xfer_end, g.page_program_seconds)
                arrival = xfer_end  # bus frees up for the next page
                done = max(done, prog_end)
        return done

    def _service_read(self, offset: int, nbytes: int, at: float) -> float:
        return self._read_completion(offset, nbytes, at)

    def _service_write(self, offset: int, nbytes: int, at: float) -> float:
        return self._write_completion(offset, nbytes, at)

    # -- parallel (closed-loop) API ------------------------------------------

    def service_request(self, request: ReadRequest | WriteRequest, at: float) -> float:
        """Service one request issued at ``at``; used by the parallel runner.

        Counters are updated here too, so parallel experiments report the
        same statistics as serial ones.
        """
        if not isinstance(request, (ReadRequest, WriteRequest)):
            raise ConfigurationError(f"unknown request type: {type(request).__name__}")
        self._check(request.offset, request.nbytes)
        if isinstance(request, ReadRequest):
            end = self._read_completion(request.offset, request.nbytes, at)
            self.stats.reads += 1
            self.stats.bytes_read += request.nbytes
            self.stats.read_seconds += end - at
            kind = "read"
        elif isinstance(request, WriteRequest):
            end = self._write_completion(request.offset, request.nbytes, at)
            self.stats.writes += 1
            self.stats.bytes_written += request.nbytes
            self.stats.write_seconds += end - at
            kind = "write"
        self.clock = max(self.clock, end)
        if OBS.enabled:
            OBS.io_event(
                type(self).__name__, kind, request.offset, request.nbytes, at, end
            )
        return end

    def run_closed_loop(self, client_streams) -> float:
        """Run concurrent closed-loop clients; returns the makespan.

        This is the simulated analogue of the paper's "spawn p threads, each
        reads 10 GiB" benchmark: each client keeps one request outstanding.
        A single-die device is one FIFO resource end to end, so it takes the
        runner's heap-free fast path.
        """
        runner = ClosedLoopRunner(
            self.service_request,
            single_server=self.geometry.total_dies == 1,
        )
        return runner.run_makespan(client_streams)

    def describe(self) -> dict[str, object]:
        d = super().describe()
        g = self.geometry
        d.update(
            channels=g.channels,
            dies_per_channel=g.dies_per_channel,
            page_bytes=g.page_bytes,
            stripe_bytes=g.stripe_bytes,
            page_read_seconds=g.page_read_seconds,
            page_program_seconds=g.page_program_seconds,
            channel_transfer_seconds=g.channel_transfer_seconds,
        )
        return d

    def reset(self) -> None:
        """Reset clock, counters and all die/channel timelines."""
        super().reset()
        self._dies.reset()
        self._channels.reset()
