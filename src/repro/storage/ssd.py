"""Simulated solid-state drive.

Implements the internal-parallelism structure the PDAM abstracts (paper
Section 2.2): flash packages are organized into *channels*, each with
several *dies*; a die reads one page at a time, and the pages it produces
must cross its channel's shared bus.  Parallelism comes from independent
dies; *bank conflicts* happen when concurrent requests land on the same die
and serialize — the paper's explanation for why the Figure 1 knee "is not
perfectly sharp."

Address mapping: the LBA space is divided into *stripe units* (default
64 KiB, matching the request size of the paper's Figure 1 benchmark); unit
``u`` lives entirely on die ``u mod D``.  A random stripe-aligned read
therefore occupies exactly one die, and ``p`` concurrent clients engage
``~min(p, D)`` dies — which is exactly the PDAM's flat-then-linear
completion-time curve, with the effective ``P`` emerging from resource
contention rather than being postulated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.obs import OBS
from repro.storage.device import BlockDevice, IORecord, ReadRequest, WriteRequest
from repro.storage.engine import ClosedLoopRunner, ResourcePool


@dataclass(frozen=True)
class SSDGeometry:
    """Layout and timing parameters of a simulated flash device.

    Defaults approximate a commodity SATA SSD: 4 KiB pages, ~80 us page
    reads, ~600 us page programs, and a channel bus that moves a page in
    ~10 us.
    """

    capacity_bytes: int = 256 * 2**30
    channels: int = 2
    dies_per_channel: int = 2
    page_bytes: int = 4096
    stripe_bytes: int = 65536
    page_read_seconds: float = 80e-6
    page_program_seconds: float = 600e-6
    channel_transfer_seconds: float = 10e-6  # per page, on the shared bus

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError("capacity must be positive")
        if self.channels <= 0 or self.dies_per_channel <= 0:
            raise ConfigurationError("channels and dies_per_channel must be positive")
        if self.page_bytes <= 0:
            raise ConfigurationError("page_bytes must be positive")
        if self.stripe_bytes < self.page_bytes or self.stripe_bytes % self.page_bytes:
            raise ConfigurationError(
                f"stripe_bytes ({self.stripe_bytes}) must be a multiple of "
                f"page_bytes ({self.page_bytes})"
            )
        if min(
            self.page_read_seconds,
            self.page_program_seconds,
            self.channel_transfer_seconds,
        ) <= 0:
            raise ConfigurationError("all timing parameters must be positive")

    @property
    def total_dies(self) -> int:
        """Total independent flash dies — the device's raw parallelism."""
        return self.channels * self.dies_per_channel

    @property
    def single_stream_read_seconds_per_stripe(self) -> float:
        """Latency of one stripe-sized read on an idle device.

        The die reads the stripe's pages back to back; the last page's bus
        transfer trails the last read.
        """
        pages = self.stripe_bytes // self.page_bytes
        return pages * self.page_read_seconds + self.channel_transfer_seconds

    @property
    def saturated_read_bytes_per_second(self) -> float:
        """Aggregate read throughput with all dies busy.

        Bounded by die read rate and by channel bus rate, whichever binds.
        """
        die_rate = self.total_dies * self.page_bytes / self.page_read_seconds
        bus_rate = self.channels * self.page_bytes / self.channel_transfer_seconds
        return min(die_rate, bus_rate)

    @property
    def expected_pdam_parallelism(self) -> float:
        """The ``P`` the PDAM fit should recover: saturation / single-stream."""
        single = self.stripe_bytes / self.single_stream_read_seconds_per_stripe
        return self.saturated_read_bytes_per_second / single


class SimulatedSSD(BlockDevice):
    """Channel/die flash device with FIFO resource timelines.

    The serial :meth:`~repro.storage.device.BlockDevice.read` /
    :meth:`~repro.storage.device.BlockDevice.write` API routes through the
    same resource model as the parallel closed-loop API, so tree workloads
    and microbenchmarks see consistent timing.
    """

    def __init__(self, geometry: SSDGeometry | None = None, *, trace: bool = False) -> None:
        self.geometry = geometry or SSDGeometry()
        super().__init__(self.geometry.capacity_bytes, trace=trace)
        g = self.geometry
        self._dies = ResourcePool(g.total_dies)
        self._channels = ResourcePool(g.channels)

    # -- address mapping ----------------------------------------------------

    def die_of_stripe(self, stripe_index: int) -> int:
        """Die holding stripe unit ``stripe_index``."""
        return stripe_index % self.geometry.total_dies

    def channel_of_die(self, die: int) -> int:
        """Channel whose bus serves ``die``."""
        return die % self.geometry.channels

    def _page_plan(self, offset: int, nbytes: int) -> list[tuple[int, int]]:
        """Decompose an IO into per-die page counts, in address order.

        Returns ``[(die, n_pages), ...]`` with one entry per stripe unit the
        IO touches.
        """
        g = self.geometry
        plan: list[tuple[int, int]] = []
        pos = offset
        end = offset + nbytes
        while pos < end:
            stripe = pos // g.stripe_bytes
            stripe_end = (stripe + 1) * g.stripe_bytes
            chunk = min(end, stripe_end) - pos
            pages = math.ceil(chunk / g.page_bytes)
            plan.append((self.die_of_stripe(stripe), pages))
            pos += chunk
        return plan

    # -- timing -------------------------------------------------------------

    def _read_completion(self, offset: int, nbytes: int, at: float) -> float:
        # The die/channel acquire chains, run directly on the pool's
        # timeline arrays with the slot state held in locals: same float64
        # operations in the same order as per-slot ``acquire`` calls
        # (max-then-add, busy accumulated one duration at a time), without
        # a method dispatch per page.
        g = self.geometry
        t_read = g.page_read_seconds
        t_xfer = g.channel_transfer_seconds
        n_ch = g.channels
        dies_av = self._dies.available_at_array
        dies_busy = self._dies.busy_seconds_array
        ch_av = self._channels.available_at_array
        ch_busy = self._channels.busy_seconds_array
        done = at
        for die_idx, pages in self._page_plan(offset, nbytes):
            ch_idx = die_idx % n_ch
            d_av = dies_av[die_idx]
            d_busy = dies_busy[die_idx]
            c_av = ch_av[ch_idx]
            c_busy = ch_busy[ch_idx]
            arrival = at
            for _ in range(pages):
                read_end = (d_av if d_av > arrival else arrival) + t_read
                d_av = read_end
                d_busy = d_busy + t_read
                xfer_end = (c_av if c_av > read_end else read_end) + t_xfer
                c_av = xfer_end
                c_busy = c_busy + t_xfer
                arrival = read_end  # die proceeds to the next page immediately
                if xfer_end > done:
                    done = xfer_end
            dies_av[die_idx] = d_av
            dies_busy[die_idx] = d_busy
            ch_av[ch_idx] = c_av
            ch_busy[ch_idx] = c_busy
        return float(done)

    def _write_completion(self, offset: int, nbytes: int, at: float) -> float:
        g = self.geometry
        t_prog = g.page_program_seconds
        t_xfer = g.channel_transfer_seconds
        n_ch = g.channels
        dies_av = self._dies.available_at_array
        dies_busy = self._dies.busy_seconds_array
        ch_av = self._channels.available_at_array
        ch_busy = self._channels.busy_seconds_array
        done = at
        for die_idx, pages in self._page_plan(offset, nbytes):
            ch_idx = die_idx % n_ch
            d_av = dies_av[die_idx]
            d_busy = dies_busy[die_idx]
            c_av = ch_av[ch_idx]
            c_busy = ch_busy[ch_idx]
            arrival = at
            for _ in range(pages):
                xfer_end = (c_av if c_av > arrival else arrival) + t_xfer
                c_av = xfer_end
                c_busy = c_busy + t_xfer
                prog_end = (d_av if d_av > xfer_end else xfer_end) + t_prog
                d_av = prog_end
                d_busy = d_busy + t_prog
                arrival = xfer_end  # bus frees up for the next page
                if prog_end > done:
                    done = prog_end
            dies_av[die_idx] = d_av
            dies_busy[die_idx] = d_busy
            ch_av[ch_idx] = c_av
            ch_busy[ch_idx] = c_busy
        return float(done)

    def _service_read(self, offset: int, nbytes: int, at: float) -> float:
        return self._read_completion(offset, nbytes, at)

    def _service_write(self, offset: int, nbytes: int, at: float) -> float:
        return self._write_completion(offset, nbytes, at)

    # -- parallel (closed-loop) API ------------------------------------------

    def service_request(self, request: ReadRequest | WriteRequest, at: float) -> float:
        """Service one request issued at ``at``; used by the parallel runner.

        Counters are updated here too, so parallel experiments report the
        same statistics as serial ones.
        """
        if not isinstance(request, (ReadRequest, WriteRequest)):
            raise ConfigurationError(f"unknown request type: {type(request).__name__}")
        self._check(request.offset, request.nbytes)
        if isinstance(request, ReadRequest):
            end = self._read_completion(request.offset, request.nbytes, at)
            self.stats.reads += 1
            self.stats.bytes_read += request.nbytes
            self.stats.read_seconds += end - at
            kind = "read"
        elif isinstance(request, WriteRequest):
            end = self._write_completion(request.offset, request.nbytes, at)
            self.stats.writes += 1
            self.stats.bytes_written += request.nbytes
            self.stats.write_seconds += end - at
            kind = "write"
        self.clock = max(self.clock, end)
        if OBS.enabled:
            OBS.io_event(
                type(self).__name__, kind, request.offset, request.nbytes, at, end
            )
        return end

    def service_request_batch(self, requests, at: float) -> list[float]:
        """Service a run of requests all issued at ``at``, in list order.

        Bit-identical to calling :meth:`service_request` once per request —
        the same dispatch, counters and clock updates run per request, with
        the attribute lookups hoisted out of the loop.  This is the
        ``service_batch`` hook :class:`ClosedLoopRunner` dispatches runs of
        tied events through.
        """
        stats = self.stats
        check = self._check
        read_completion = self._read_completion
        write_completion = self._write_completion
        clock = self.clock
        obs_on = OBS.enabled
        out: list[float] = []
        append = out.append
        # The clock runs in a local and is written back on every exit path
        # (including a mid-batch validation error), so an aborted batch
        # leaves exactly the state a serial loop's partial progress would.
        try:
            for request in requests:
                if isinstance(request, ReadRequest):
                    check(request.offset, request.nbytes)
                    end = read_completion(request.offset, request.nbytes, at)
                    stats.reads += 1
                    stats.bytes_read += request.nbytes
                    stats.read_seconds += end - at
                    kind = "read"
                elif isinstance(request, WriteRequest):
                    check(request.offset, request.nbytes)
                    end = write_completion(request.offset, request.nbytes, at)
                    stats.writes += 1
                    stats.bytes_written += request.nbytes
                    stats.write_seconds += end - at
                    kind = "write"
                else:
                    raise ConfigurationError(
                        f"unknown request type: {type(request).__name__}"
                    )
                if end > clock:
                    clock = end
                if obs_on:
                    OBS.io_event(
                        type(self).__name__, kind,
                        request.offset, request.nbytes, at, end,
                    )
                append(end)
        finally:
            self.clock = clock
        return out

    def run_closed_loop(self, client_streams) -> float:
        """Run concurrent closed-loop clients; returns the makespan.

        This is the simulated analogue of the paper's "spawn p threads, each
        reads 10 GiB" benchmark: each client keeps one request outstanding.
        A single-die device is one FIFO resource end to end, so it takes the
        runner's heap-free fast path; multi-die devices hand runs of tied
        arrivals to :meth:`service_request_batch` in one dispatch.
        """
        runner = ClosedLoopRunner(
            self.service_request,
            single_server=self.geometry.total_dies == 1,
            service_batch=self.service_request_batch,
        )
        return runner.run_makespan(client_streams)

    def read_batch(self, offsets, nbytes: int) -> list[float]:
        """Batched serial reads; bit-identical to a loop of :meth:`read`.

        Offsets are validated up front, then the per-IO bookkeeping runs in
        one loop frame with the completion method bound once.
        """
        offs = [int(o) for o in offsets]
        for off in offs:
            self._check(off, nbytes)
        stats = self.stats
        completion = self._read_completion
        out: list[float] = []
        for off in offs:
            start = self.clock
            end = completion(off, nbytes, start)
            elapsed = end - start
            self.clock = end
            stats.reads += 1
            stats.bytes_read += nbytes
            stats.read_seconds += elapsed
            if self._trace_enabled:
                self.trace.append(IORecord("read", off, nbytes, start, end))
            if self.sampler is not None:
                self.sampler.record(nbytes, elapsed, "read")
            if OBS.enabled:
                self._obs_io("read", off, nbytes, start, end)
            out.append(elapsed)
        return out

    def write_batch(self, offsets, nbytes: int) -> list[float]:
        """Batched serial writes; bit-identical to a loop of :meth:`write`."""
        offs = [int(o) for o in offsets]
        for off in offs:
            self._check(off, nbytes)
        stats = self.stats
        completion = self._write_completion
        out: list[float] = []
        for off in offs:
            start = self.clock
            end = completion(off, nbytes, start)
            elapsed = end - start
            self.clock = end
            stats.writes += 1
            stats.bytes_written += nbytes
            stats.write_seconds += elapsed
            if self._trace_enabled:
                self.trace.append(IORecord("write", off, nbytes, start, end))
            if self.sampler is not None:
                self.sampler.record(nbytes, elapsed, "write")
            if OBS.enabled:
                self._obs_io("write", off, nbytes, start, end)
            out.append(elapsed)
        return out

    def describe(self) -> dict[str, object]:
        d = super().describe()
        g = self.geometry
        d.update(
            channels=g.channels,
            dies_per_channel=g.dies_per_channel,
            page_bytes=g.page_bytes,
            stripe_bytes=g.stripe_bytes,
            page_read_seconds=g.page_read_seconds,
            page_program_seconds=g.page_program_seconds,
            channel_transfer_seconds=g.channel_transfer_seconds,
        )
        return d

    def reset(self) -> None:
        """Reset clock, counters and all die/channel timelines."""
        super().reset()
        self._dies.reset()
        self._channels.reset()
