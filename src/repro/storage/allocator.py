"""Extent allocator: places variable-size nodes on the device's LBA space.

Node *placement* matters under the affine model because seek distance (and
sequential adjacency) determines the setup cost.  Two policies:

* ``"first_fit"`` — classic first-fit over an address-ordered free list
  with coalescing.  Fresh trees loaded in key order end up nearly
  sequential on disk.
* ``"random"`` — picks a uniformly random free extent that fits (seeded).
  This models an *aged* file system where nodes are scattered — the paper's
  Section 5 observation that "as B-trees age, their nodes get spread out
  across disk, and range-query performance degrades."
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.errors import ConfigurationError, InvalidIOError, OutOfSpaceError


class ExtentAllocator:
    """Allocates byte extents from ``[0, capacity_bytes)``.

    The free list is kept sorted by offset and adjacent free extents are
    coalesced on :meth:`free`.
    """

    def __init__(
        self,
        capacity_bytes: int,
        *,
        policy: str = "first_fit",
        seed: int = 0,
        alignment: int = 1,
    ) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity_bytes}")
        if policy not in ("first_fit", "random"):
            raise ConfigurationError(f"unknown policy {policy!r}")
        if alignment <= 0:
            raise ConfigurationError(f"alignment must be positive, got {alignment}")
        self.capacity_bytes = int(capacity_bytes)
        self.policy = policy
        self.alignment = int(alignment)
        self._rng = np.random.default_rng(seed)
        # Parallel sorted lists: free extent offsets and lengths.
        self._free_offsets: list[int] = [0]
        self._free_lengths: list[int] = [capacity_bytes]
        self.used_bytes = 0

    def _round_up(self, nbytes: int) -> int:
        a = self.alignment
        return ((nbytes + a - 1) // a) * a

    def alloc(self, nbytes: int) -> int:
        """Allocate ``nbytes`` (rounded up to alignment); returns the offset."""
        if nbytes <= 0:
            raise InvalidIOError(f"allocation size must be positive, got {nbytes}")
        need = self._round_up(nbytes)
        if self.policy == "first_fit":
            i = next(
                (j for j, length in enumerate(self._free_lengths) if length >= need),
                -1,
            )
            if i < 0:
                raise OutOfSpaceError(
                    f"no free extent of {need} bytes "
                    f"(free={self.free_bytes}, largest={self.largest_free_extent})"
                )
        else:
            candidates = [
                j for j, length in enumerate(self._free_lengths) if length >= need
            ]
            if not candidates:
                raise OutOfSpaceError(
                    f"no free extent of {need} bytes "
                    f"(free={self.free_bytes}, largest={self.largest_free_extent})"
                )
            i = int(self._rng.choice(candidates))
        offset = self._free_offsets[i]
        if self.policy == "random":
            # Carve from a random position inside the chosen extent so aged
            # placement is scattered, not merely extent-ordered.
            slack = self._free_lengths[i] - need
            if slack > 0:
                shift = int(self._rng.integers(0, slack // self.alignment + 1)) * self.alignment
                offset += shift
        self._carve(i, offset, need)
        self.used_bytes += need
        return offset

    def _carve(self, index: int, offset: int, length: int) -> None:
        """Remove ``[offset, offset+length)`` from free extent ``index``."""
        ext_off = self._free_offsets[index]
        ext_len = self._free_lengths[index]
        assert ext_off <= offset and offset + length <= ext_off + ext_len
        del self._free_offsets[index]
        del self._free_lengths[index]
        # Left remainder.
        if offset > ext_off:
            self._free_offsets.insert(index, ext_off)
            self._free_lengths.insert(index, offset - ext_off)
            index += 1
        # Right remainder.
        right_len = (ext_off + ext_len) - (offset + length)
        if right_len > 0:
            self._free_offsets.insert(index, offset + length)
            self._free_lengths.insert(index, right_len)

    def free(self, offset: int, nbytes: int) -> None:
        """Return ``nbytes`` at ``offset`` to the free list (coalescing)."""
        if nbytes <= 0:
            raise InvalidIOError(f"free size must be positive, got {nbytes}")
        length = self._round_up(nbytes)
        if offset < 0 or offset + length > self.capacity_bytes:
            raise InvalidIOError(f"free of [{offset}, {offset + length}) out of range")
        i = bisect.bisect_left(self._free_offsets, offset)
        # Overlap checks against neighbours.
        if i < len(self._free_offsets) and offset + length > self._free_offsets[i]:
            raise InvalidIOError(f"double free overlapping extent at {self._free_offsets[i]}")
        if i > 0 and self._free_offsets[i - 1] + self._free_lengths[i - 1] > offset:
            raise InvalidIOError(f"double free overlapping extent at {self._free_offsets[i - 1]}")
        self._free_offsets.insert(i, offset)
        self._free_lengths.insert(i, length)
        self.used_bytes -= length
        # Coalesce with right neighbour.
        if i + 1 < len(self._free_offsets) and offset + length == self._free_offsets[i + 1]:
            self._free_lengths[i] += self._free_lengths[i + 1]
            del self._free_offsets[i + 1]
            del self._free_lengths[i + 1]
        # Coalesce with left neighbour.
        if i > 0 and self._free_offsets[i - 1] + self._free_lengths[i - 1] == offset:
            self._free_lengths[i - 1] += self._free_lengths[i]
            del self._free_offsets[i]
            del self._free_lengths[i]

    @property
    def free_bytes(self) -> int:
        """Total free space."""
        return sum(self._free_lengths)

    @property
    def largest_free_extent(self) -> int:
        """Size of the largest contiguous free extent (0 if full)."""
        return max(self._free_lengths, default=0)

    @property
    def fragmentation(self) -> float:
        """1 - largest_free/total_free; 0 when free space is contiguous."""
        free = self.free_bytes
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_extent / free

    def check_invariants(self) -> None:
        """Assert free-list well-formedness (used by property tests)."""
        offs, lens = self._free_offsets, self._free_lengths
        assert len(offs) == len(lens)
        for i in range(len(offs)):
            assert lens[i] > 0
            if i + 1 < len(offs):
                # Sorted, non-overlapping, and fully coalesced.
                assert offs[i] + lens[i] < offs[i + 1]
        assert self.used_bytes + self.free_bytes == self.capacity_bytes
