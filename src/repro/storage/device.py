"""The block-device interface and IO accounting.

All simulated devices implement :class:`BlockDevice`:

* ``read(offset, nbytes)`` / ``write(offset, nbytes)`` return the number of
  *simulated device seconds* the IO took and advance the device clock.
  Simulated time is the experiment metric throughout this repository (see
  DESIGN.md section 5) because the paper's models predict device time and
  Python wall-clock time would measure the interpreter instead.
* :class:`DeviceStats` counts IOs and bytes in each direction.  Write
  amplification (paper Definition 3) is computed from these counters by
  :meth:`DeviceStats.write_amplification` given the amount of user data
  actually modified.

Devices do not store data — the data structures keep their nodes in Python
objects — they only account for the *time* data movement would take.  This
is the standard simulator split and it is what lets a pure-Python build
reproduce IO cost-model effects faithfully.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import InvalidIOError
from repro.obs import OBS


@dataclass(frozen=True)
class IORecord:
    """One completed IO, for tracing."""

    kind: str            # "read" or "write"
    offset: int
    nbytes: int
    start: float         # simulated issue time
    end: float           # simulated completion time

    @property
    def duration(self) -> float:
        """Simulated seconds the IO took."""
        return self.end - self.start


@dataclass(frozen=True)
class IOSample:
    """One passively sampled IO: size, simulated duration, direction."""

    nbytes: int
    seconds: float
    kind: str  # "read" or "write"


class IOSampler:
    """Ring buffer of recent :class:`IOSample` pairs for passive re-fits.

    The tuner (:mod:`repro.tuning`) re-fits device parameters from these
    samples without issuing probe IOs.  The buffer is bounded, so a
    long-running workload keeps only its most recent ``capacity`` IOs —
    exactly the recency window an online re-fit wants.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise InvalidIOError(f"sampler capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._buf: deque[IOSample] = deque(maxlen=self.capacity)

    def record(self, nbytes: int, seconds: float, kind: str) -> None:
        """Append one sample, evicting the oldest if the ring is full."""
        self._buf.append(IOSample(nbytes, seconds, kind))

    def samples(self, *, kind: str | None = None) -> list[IOSample]:
        """Current samples oldest-first, optionally one direction only."""
        if kind is None:
            return list(self._buf)
        return [s for s in self._buf if s.kind == kind]

    def clear(self) -> None:
        """Drop all samples (e.g. after a re-fit consumed them)."""
        self._buf.clear()

    def __len__(self) -> int:
        return len(self._buf)


@dataclass
class DeviceStats:
    """IO and byte counters for one device."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_seconds: float = 0.0
    write_seconds: float = 0.0

    @property
    def ios(self) -> int:
        """Total IOs in both directions."""
        return self.reads + self.writes

    @property
    def total_bytes(self) -> int:
        """Total bytes in both directions."""
        return self.bytes_read + self.bytes_written

    @property
    def busy_seconds(self) -> float:
        """Total simulated device time across reads and writes."""
        return self.read_seconds + self.write_seconds

    def write_amplification(self, user_bytes_modified: int) -> float:
        """Paper Definition 3: device bytes written / user bytes modified."""
        if user_bytes_modified <= 0:
            raise InvalidIOError(
                f"user_bytes_modified must be positive, got {user_bytes_modified}"
            )
        return self.bytes_written / user_bytes_modified

    def snapshot(self) -> "DeviceStats":
        """An independent copy (for before/after deltas)."""
        return DeviceStats(**vars(self))

    def delta(self, earlier: "DeviceStats") -> "DeviceStats":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return DeviceStats(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            read_seconds=self.read_seconds - earlier.read_seconds,
            write_seconds=self.write_seconds - earlier.write_seconds,
        )


class BlockDevice(ABC):
    """A device that prices IOs in simulated seconds.

    Subclasses implement :meth:`_service_read` and :meth:`_service_write`
    (pure timing); this base class validates requests, keeps the clock and
    the counters, and optionally records a trace.
    """

    def __init__(self, capacity_bytes: int, *, trace: bool = False) -> None:
        if capacity_bytes <= 0:
            raise InvalidIOError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self.stats = DeviceStats()
        self.clock = 0.0
        self._trace_enabled = bool(trace)
        self.trace: list[IORecord] = []
        # Passive sampling is off by default: the only cost when disabled is
        # one None check per IO.
        self.sampler: IOSampler | None = None
        # Setup-seconds of the IO in flight, published by subclasses that
        # know their seek/bandwidth split (HDD, AffineDevice) and only when
        # observability is enabled; consumed by _obs_io below.
        self._obs_setup: float | None = None

    # -- subclass API ------------------------------------------------------

    @abstractmethod
    def _service_read(self, offset: int, nbytes: int, at: float) -> float:
        """Completion time of a read issued at ``at``."""

    @abstractmethod
    def _service_write(self, offset: int, nbytes: int, at: float) -> float:
        """Completion time of a write issued at ``at``."""

    # -- public API --------------------------------------------------------

    def _check(self, offset: int, nbytes: int) -> None:
        if nbytes <= 0:
            raise InvalidIOError(f"IO size must be positive, got {nbytes}")
        if offset < 0:
            raise InvalidIOError(f"offset must be non-negative, got {offset}")
        if offset + nbytes > self.capacity_bytes:
            raise InvalidIOError(
                f"IO [{offset}, {offset + nbytes}) exceeds capacity {self.capacity_bytes}"
            )

    def read(self, offset: int, nbytes: int) -> float:
        """Serially read ``nbytes`` at ``offset``; returns elapsed seconds."""
        self._check(offset, nbytes)
        start = self.clock
        end = self._service_read(offset, nbytes, start)
        elapsed = end - start
        self.clock = end
        self.stats.reads += 1
        self.stats.bytes_read += nbytes
        self.stats.read_seconds += elapsed
        if self._trace_enabled:
            self.trace.append(IORecord("read", offset, nbytes, start, end))
        if self.sampler is not None:
            self.sampler.record(nbytes, elapsed, "read")
        if OBS.enabled:
            self._obs_io("read", offset, nbytes, start, end)
        return elapsed

    def write(self, offset: int, nbytes: int) -> float:
        """Serially write ``nbytes`` at ``offset``; returns elapsed seconds."""
        self._check(offset, nbytes)
        start = self.clock
        end = self._service_write(offset, nbytes, start)
        elapsed = end - start
        self.clock = end
        self.stats.writes += 1
        self.stats.bytes_written += nbytes
        self.stats.write_seconds += elapsed
        if self._trace_enabled:
            self.trace.append(IORecord("write", offset, nbytes, start, end))
        if self.sampler is not None:
            self.sampler.record(nbytes, elapsed, "write")
        if OBS.enabled:
            self._obs_io("write", offset, nbytes, start, end)
        return elapsed

    def _obs_io(self, kind: str, offset: int, nbytes: int, start: float, end: float) -> None:
        """Publish one completed IO to the observability layer.

        Only called under the ``if OBS.enabled:`` guards in :meth:`read`
        and :meth:`write`, so the call below needs no guard of its own.
        """
        OBS.io_event(  # repro-lint: ignore[OBS001] (guarded at both call sites)
            type(self).__name__, kind, offset, nbytes, start, end, self._obs_setup
        )
        self._obs_setup = None

    def read_batch(self, offsets: "Sequence[int]", nbytes: int) -> list[float]:
        """Serially read ``nbytes`` at each offset; per-IO elapsed seconds.

        Semantically identical to calling :meth:`read` once per offset, in
        order — same clock advance, same counters, same trace, same RNG
        stream on stochastic devices.  Subclasses override it to vectorize
        the homogeneous-size timing math (the probe and E3 hot path) while
        preserving that bit-for-bit equivalence.  Offsets are validated up
        front, so an invalid batch raises before any IO is charged.
        """
        for offset in offsets:
            self._check(offset, nbytes)
        return [self.read(offset, nbytes) for offset in offsets]

    def write_batch(self, offsets: "Sequence[int]", nbytes: int) -> list[float]:
        """Serially write ``nbytes`` at each offset; per-IO elapsed seconds.

        The write-side twin of :meth:`read_batch`: bit-identical to a
        serial loop of :meth:`write` — same clock advance, counters,
        trace, and RNG stream — with offsets validated up front so an
        invalid batch raises before any IO is charged.
        """
        for offset in offsets:
            self._check(offset, nbytes)
        return [self.write(offset, nbytes) for offset in offsets]

    def describe(self) -> dict[str, object]:
        """Stable, JSON-able identity of this device's timing behavior.

        Used to fingerprint calibration results: two devices with equal
        descriptions produce identical IO timings from a fresh reset.
        Subclasses extend the dict with their model/geometry parameters.
        """
        return {
            "type": type(self).__name__,
            "capacity_bytes": self.capacity_bytes,
        }

    def enable_sampling(self, capacity: int = 256) -> IOSampler:
        """Attach (or resize) the passive IO sampler; returns it."""
        self.sampler = IOSampler(capacity)
        return self.sampler

    def disable_sampling(self) -> None:
        """Detach the sampler; per-IO overhead returns to a single None check."""
        self.sampler = None

    def reset(self) -> None:
        """Zero the clock, counters and trace (fresh experiment)."""
        self.stats = DeviceStats()
        self.clock = 0.0
        self.trace = []
        if self.sampler is not None:
            self.sampler.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(capacity={self.capacity_bytes})"


@dataclass(frozen=True)
class ReadRequest:
    """A read request fed to a closed-loop parallel experiment."""

    offset: int
    nbytes: int


@dataclass(frozen=True)
class WriteRequest:
    """A write request fed to a closed-loop parallel experiment."""

    offset: int
    nbytes: int
