"""Lint configuration: rule selection and repo-level exemptions.

The defaults below *are* the repo policy — the CI gate runs with them.
Exemptions are deliberate and narrow: a rule is switched off only for
the files whose job is the thing the rule forbids (the sweep runner and
the tracer measure host wall time; the obs package implements the
registry the guard rule protects).  Everything else must either comply
or carry a visible ``# repro-lint: ignore[RULE]`` at the offending line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

#: Per-rule path fragments (POSIX style) where the rule does not apply.
#: A fragment matches when it is a substring of the linted file's path —
#: end a fragment with ``/`` to exempt a whole directory.
DEFAULT_EXEMPTIONS: Mapping[str, tuple[str, ...]] = {
    # Host wall-clock timing is these modules' purpose: the executor
    # times sweep points, the tracer stamps wall spans, the experiments
    # CLI prints elapsed wall time, and benchmarks measure the host.
    "DET001": (
        "repro/runner/executor.py",
        "repro/obs/tracing.py",
        "repro/experiments/cli.py",
        "benchmarks/",
    ),
    # The obs package implements the registry; its internals are below
    # the enabled-guard, not behind it.
    "OBS001": ("repro/obs/",),
}

#: Decorator spellings that mark a function as a registered sweep kernel
#: (PURE001's subjects).  Matched against the decorator's dotted source
#: text after import-alias resolution.
KERNEL_DECORATORS: tuple[str, ...] = (
    "register",
    "kernels.register",
    "repro.runner.kernels.register",
)

#: Names an obs registry travels under (receiver of recording calls).
OBS_REGISTRY_NAMES: tuple[str, ...] = ("OBS",)

#: Path fragments whose public classes/functions are *simulation entry
#: points* for the whole-program flow pass (FLOW001/FLOW004): the code
#: whose results the determinism contracts cover.  Kernel-decorated
#: functions are entry points everywhere, regardless of this list.
FLOW_ENTRY_FRAGMENTS: tuple[str, ...] = (
    "repro/storage/",
    "repro/trees/",
    "repro/serve/",
    "repro/faults/",
    "repro/recovery/",
    "repro/workloads/",
    "repro/tuning/",
)

#: FLOW003: batch-API method -> the scalar twin it must mirror.  The
#: "batching is semantically invisible" contract (docs/architecture.md)
#: as a checkable shape: the pair must coexist on the class, and the
#: batch body must not touch state the scalar closure never does.
#: Twin names follow the repo's actual API conventions: devices
#: read/write, trees insert/get, the cache layer fetches with get and
#: writes back with write_back.
FLOW_BATCH_PAIRS: Mapping[str, str] = {
    "read_batch": "read",
    "write_batch": "write",
    "read_many": "get",
    "write_many": "write_back",
    "get_many": "get",
    "put_many": "insert",
    "put_bulk": "insert",
}

#: Resolved constructor names that mint a private RNG stream (FLOW002's
#: subjects: attributes assigned from one of these must never escape
#: their component).
FLOW_RNG_CONSTRUCTORS: tuple[str, ...] = (
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
    "random.Random",
)


@dataclass(frozen=True)
class LintConfig:
    """Immutable (and picklable — ``--jobs`` forks) lint run settings."""

    #: Only run these rule codes; ``None`` means all registered rules.
    select: frozenset[str] | None = None
    #: Never run these rule codes.
    ignore: frozenset[str] = frozenset()
    #: Per-rule path-fragment exemptions (see :data:`DEFAULT_EXEMPTIONS`).
    exempt: Mapping[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_EXEMPTIONS)
    )
    #: Decorators marking sweep kernels (PURE001).
    kernel_decorators: tuple[str, ...] = KERNEL_DECORATORS
    #: Registry names whose recording calls OBS001 guards.
    obs_registry_names: tuple[str, ...] = OBS_REGISTRY_NAMES
    #: DET002 strict mode: also treat ``.keys()`` into order-sensitive
    #: sinks as unordered.  On by default (repo policy since PR 10):
    #: dicts preserve insertion order, but ``list(d.keys())`` feeding a
    #: result is exactly where a later switch to a set/unordered source
    #: hides — iterate the dict directly or pin with ``sorted()``.
    det002_flag_dict_keys: bool = True
    #: Include suppressed findings in the report (still non-failing).
    show_suppressed: bool = False
    #: Path fragments marking simulation entry points for FLOW001/004.
    flow_entry_fragments: tuple[str, ...] = FLOW_ENTRY_FRAGMENTS
    #: FLOW003 batch-method -> scalar-twin pairs.
    flow_batch_pairs: Mapping[str, str] = field(
        default_factory=lambda: dict(FLOW_BATCH_PAIRS)
    )
    #: FLOW002: resolved constructors that mint private RNG streams.
    flow_rng_constructors: tuple[str, ...] = FLOW_RNG_CONSTRUCTORS

    def rule_enabled(self, code: str) -> bool:
        """Whether ``code`` survives ``--select`` / ``--ignore``."""
        if code in self.ignore:
            return False
        return self.select is None or code in self.select

    def is_exempt(self, code: str, path: str) -> bool:
        """Whether ``path`` is policy-exempt from rule ``code``."""
        posix = str(path).replace("\\", "/")
        return any(frag in posix for frag in self.exempt.get(code, ()))
