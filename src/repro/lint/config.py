"""Lint configuration: rule selection and repo-level exemptions.

The defaults below *are* the repo policy — the CI gate runs with them.
Exemptions are deliberate and narrow: a rule is switched off only for
the files whose job is the thing the rule forbids (the sweep runner and
the tracer measure host wall time; the obs package implements the
registry the guard rule protects).  Everything else must either comply
or carry a visible ``# repro-lint: ignore[RULE]`` at the offending line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

#: Per-rule path fragments (POSIX style) where the rule does not apply.
#: A fragment matches when it is a substring of the linted file's path —
#: end a fragment with ``/`` to exempt a whole directory.
DEFAULT_EXEMPTIONS: Mapping[str, tuple[str, ...]] = {
    # Host wall-clock timing is these modules' purpose: the executor
    # times sweep points, the tracer stamps wall spans, the experiments
    # CLI prints elapsed wall time, and benchmarks measure the host.
    "DET001": (
        "repro/runner/executor.py",
        "repro/obs/tracing.py",
        "repro/experiments/cli.py",
        "benchmarks/",
    ),
    # The obs package implements the registry; its internals are below
    # the enabled-guard, not behind it.
    "OBS001": ("repro/obs/",),
}

#: Decorator spellings that mark a function as a registered sweep kernel
#: (PURE001's subjects).  Matched against the decorator's dotted source
#: text after import-alias resolution.
KERNEL_DECORATORS: tuple[str, ...] = (
    "register",
    "kernels.register",
    "repro.runner.kernels.register",
)

#: Names an obs registry travels under (receiver of recording calls).
OBS_REGISTRY_NAMES: tuple[str, ...] = ("OBS",)


@dataclass(frozen=True)
class LintConfig:
    """Immutable (and picklable — ``--jobs`` forks) lint run settings."""

    #: Only run these rule codes; ``None`` means all registered rules.
    select: frozenset[str] | None = None
    #: Never run these rule codes.
    ignore: frozenset[str] = frozenset()
    #: Per-rule path-fragment exemptions (see :data:`DEFAULT_EXEMPTIONS`).
    exempt: Mapping[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_EXEMPTIONS)
    )
    #: Decorators marking sweep kernels (PURE001).
    kernel_decorators: tuple[str, ...] = KERNEL_DECORATORS
    #: Registry names whose recording calls OBS001 guards.
    obs_registry_names: tuple[str, ...] = OBS_REGISTRY_NAMES
    #: DET002: also treat ``.keys()`` iteration as unordered.  Off by
    #: default — dicts preserve insertion order since Python 3.7, so the
    #: common case is deterministic; enable for audit sweeps.
    det002_flag_dict_keys: bool = False
    #: Include suppressed findings in the report (still non-failing).
    show_suppressed: bool = False

    def rule_enabled(self, code: str) -> bool:
        """Whether ``code`` survives ``--select`` / ``--ignore``."""
        if code in self.ignore:
            return False
        return self.select is None or code in self.select

    def is_exempt(self, code: str, path: str) -> bool:
        """Whether ``path`` is policy-exempt from rule ``code``."""
        posix = str(path).replace("\\", "/")
        return any(frag in posix for frag in self.exempt.get(code, ()))
