"""repro.lint — AST-based determinism & invariant linter for this repo.

The paper's reproductions are only trustworthy because simulated results
are *bit-identical* across ``jobs=`` counts, with observability on or
off, and under zero fault plans.  Those invariants are enforced
dynamically by exact-equality golden tests — slow, and only after the
fact.  This package enforces them *statically*, at review time, with a
stdlib-:mod:`ast` rule engine (no third-party dependencies):

========  ==============================================================
Rule      Invariant
========  ==============================================================
DET001    No wall-clock or global-RNG calls in simulation code.
DET002    No iteration over unordered collections (sets, directory
          listings) where order reaches results, without ``sorted()``.
OBS001    Every ``OBS.`` recording call sits under ``if OBS.enabled:``
          (the <5% disabled-overhead gate depends on it).
PURE001   Registered sweep kernels are pure: no global/nonlocal writes,
          no closing over module-level open handles.
ERR001    No blind ``except Exception`` that swallows silently — must
          re-raise, log, or record an obs counter.
VAL001    Public constructors validate capacity/count/duration params
          (the PR-4 ``ValueError`` contracts).
FLOW001   Simulation entry points do not reach wall-clock/global-RNG/
          OS-entropy/unordered-iteration sinks *transitively* (whole-
          program taint over the call graph; findings carry the chain).
FLOW002   A component's private RNG stream (``self._rng = ...``) never
          escapes it — not returned, passed out, or stored elsewhere.
FLOW003   Batch APIs (``read_batch``, ``put_many``, ...) have a scalar
          twin and touch no state the twin's closure never does.
FLOW004   OBS001 across the call graph: entry points cannot reach a
          recording call without an ``OBS.enabled`` guard on the path.
========  ==============================================================

The per-file rules run per module (and fork under ``--jobs``); the FLOW
rules run once per invocation over a whole-program index
(:mod:`repro.lint.flow`) — always in the parent process, so reports are
byte-identical at any job count.

Findings are suppressible per line with ``# repro-lint: ignore[RULE]``
(on the reported line or the first line of the enclosing multi-line
statement; flow rules accept it at either chain endpoint); rule/path
exemptions live in :mod:`repro.lint.config`.  Run it as::

    python -m repro.lint src/ [--select A,B] [--ignore C] [--jobs N] [--format json]

Rule catalog, suppression syntax and the how-to-add-a-rule guide:
docs/lint.md.
"""

from repro.lint.config import DEFAULT_EXEMPTIONS, LintConfig
from repro.lint.engine import (
    JSON_SCHEMA_V1,
    JSON_SCHEMA_V2,
    JSON_SCHEMA_VERSION,
    Finding,
    LintReport,
    collect_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.rules import RULE_REGISTRY, Rule, all_rules, register_rule

__all__ = [
    "DEFAULT_EXEMPTIONS",
    "Finding",
    "JSON_SCHEMA_V1",
    "JSON_SCHEMA_V2",
    "JSON_SCHEMA_VERSION",
    "LintConfig",
    "LintReport",
    "RULE_REGISTRY",
    "Rule",
    "all_rules",
    "collect_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register_rule",
]
