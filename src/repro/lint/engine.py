"""The lint engine: per-file fact scan + one dispatch pass over the AST.

Per file the engine does exactly two traversals:

1. a **fact scan** that builds the :class:`ModuleContext` — import-alias
   map, names bound from ``OBS.enabled``, module-level bindings and open
   handles, kernel-decorated functions, suppression comments;
2. the **dispatch pass**: a single walk that sets parent links and calls
   every enabled rule's ``visit_<NodeType>`` hooks per node.

Rules therefore share one walk instead of each re-walking the tree, and
all their cross-cutting questions ("is this name the numpy module?",
"was this flag assigned from ``OBS.enabled``?") are answered from the
pre-computed facts.

A file that cannot be parsed yields a single ``LINT000`` finding — a
broken file must fail the gate, not silently skip it.

On top of the per-file pass, :func:`lint_paths` runs the whole-program
**flow pass** (:mod:`repro.lint.flow`) whenever any project-scoped rule
is enabled: the project is indexed once *in the parent process* (never
in the fork pool), flow findings are computed there, and both passes'
findings are merged per file in a deterministic order — so reports stay
byte-identical at any ``--jobs``.
"""

from __future__ import annotations

import ast
import multiprocessing
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.astutil import (
    PARENT_ATTR,
    SUPPRESS_ALL,
    is_suppressed,
    raw_dotted,
    scan_suppressions,
)
from repro.lint.config import LintConfig
from repro.lint.report import (
    JSON_SCHEMA_V1,
    JSON_SCHEMA_V2,
    JSON_SCHEMA_VERSION,
    Finding,
    LintReport,
)
from repro.lint.rules import RULE_REGISTRY, Rule, hook_table

#: Pseudo-rule code for files the engine cannot parse.
PARSE_ERROR_CODE = "LINT000"

_ALL = SUPPRESS_ALL

__all__ = [
    "Finding",
    "JSON_SCHEMA_V1",
    "JSON_SCHEMA_V2",
    "JSON_SCHEMA_VERSION",
    "LintReport",
    "ModuleContext",
    "PARSE_ERROR_CODE",
    "collect_files",
    "lint_file",
    "lint_paths",
    "lint_source",
]


class ModuleContext:
    """Per-file facts and the findings sink rules report into."""

    def __init__(self, path: str, source: str, tree: ast.Module, config: LintConfig):
        self.path = path
        self.source = source
        self.tree = tree
        self.config = config
        self.findings: list[Finding] = []
        #: local name -> dotted origin (``np`` -> ``numpy``,
        #: ``perf_counter`` -> ``time.perf_counter``).
        self.imports: dict[str, str] = {}
        #: names assigned (anywhere in the file) from ``OBS.enabled``.
        self.enabled_aliases: set[str] = set()
        #: names bound at module top level.
        self.module_names: set[str] = set()
        #: module-level names bound to ``open(...)`` results.
        self.open_handle_names: set[str] = set()
        #: ids of function nodes decorated as sweep kernels.
        self.kernel_function_ids: set[int] = set()
        #: line -> rule codes suppressed there (``{"*"}`` = all).
        self.suppressions, self.skip_file = scan_suppressions(source)
        self._scan_facts()

    # -- fact scan ---------------------------------------------------------

    def _scan_facts(self) -> None:
        for node in self.tree.body:
            for target in self._binding_targets(node):
                self.module_names.add(target)
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if (
                    isinstance(value, ast.Call)
                    and raw_dotted(value.func) in ("open", "io.open")
                ):
                    for target in self._binding_targets(node):
                        self.open_handle_names.add(target)
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                for alias in node.names:
                    origin = f"{base}.{alias.name}" if base else alias.name
                    self.imports[alias.asname or alias.name] = origin
            elif isinstance(node, ast.Assign):
                if self._is_enabled_read(node.value):
                    for t in node.targets:
                        if isinstance(t, ast.Name):
                            self.enabled_aliases.add(t.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._is_kernel(node):
                    self.kernel_function_ids.add(id(node))

    @staticmethod
    def _binding_targets(node: ast.stmt) -> list[str]:
        if isinstance(node, ast.Assign):
            return [t.id for t in node.targets if isinstance(t, ast.Name)]
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            return [node.target.id]
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return [node.name]
        return []

    def _is_enabled_read(self, value: ast.AST) -> bool:
        """Whether ``value`` reads the obs enabled flag (``OBS.enabled``)."""
        if not (isinstance(value, ast.Attribute) and value.attr == "enabled"):
            return False
        owner = raw_dotted(value.value)
        return owner is not None and (
            owner in self.config.obs_registry_names
            or owner.split(".")[-1] in self.config.obs_registry_names
        )

    def _is_kernel(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        for deco in fn.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            dotted = raw_dotted(target)
            if dotted is None:
                continue
            resolved = self.imports.get(
                dotted.split(".")[0], dotted.split(".")[0]
            )
            full = ".".join([resolved] + dotted.split(".")[1:])
            if dotted in self.config.kernel_decorators or full in (
                self.config.kernel_decorators
            ):
                return True
        return False

    # -- findings sink -----------------------------------------------------

    def report(self, code: str, node: ast.AST, message: str) -> None:
        """Record one finding, honouring exemptions and suppressions.

        A suppression comment counts when it sits on the reported line
        *or* on the first physical line of the enclosing statement (so
        multi-line statements can be annotated where they start).
        """
        if self.config.is_exempt(code, self.path):
            return
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        suppressed = is_suppressed(self.suppressions, node, code)
        if suppressed and not self.config.show_suppressed:
            return
        self.findings.append(
            Finding(code, self.path, line, col, message, suppressed=suppressed)
        )


class _Dispatcher:
    """The single walk: parent links + per-node hook dispatch."""

    def __init__(self, rules: Sequence[Rule], ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.table: dict[str, list] = {}
        for rule in rules:
            for node_type, hooks in hook_table(rule).items():
                self.table.setdefault(node_type, []).extend(hooks)

    def walk(self, node: ast.AST) -> None:
        for hook in self.table.get(type(node).__name__, ()):
            hook(node, self.ctx)
        for child in ast.iter_child_nodes(node):
            setattr(child, PARENT_ATTR, node)
            self.walk(child)


def _active_rules(config: LintConfig) -> list[Rule]:
    """Enabled per-file rules (project-scoped flow rules run elsewhere)."""
    return [
        cls(config)
        for code, cls in RULE_REGISTRY.items()
        if cls.scope == "module" and config.rule_enabled(code)
    ]


def _active_flow_rules(config: LintConfig) -> list[Rule]:
    """Enabled project-scoped rules (the whole-program flow pass)."""
    return [
        cls(config)
        for code, cls in RULE_REGISTRY.items()
        if cls.scope == "project" and config.rule_enabled(code)
    ]


def lint_source(
    source: str, path: str = "<string>", config: LintConfig | None = None
) -> list[Finding]:
    """Lint one source string; the unit every API below builds on.

    Per-file rules only — the flow pass needs the whole project and runs
    in :func:`lint_paths`.
    """
    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        col = (getattr(exc, "offset", 1) or 1)
        return [
            Finding(PARSE_ERROR_CODE, path, line, col, f"file does not parse: {exc.msg if isinstance(exc, SyntaxError) else exc}")
        ]
    # Parent-link the whole tree up front: rules report on sub-expressions
    # the dispatcher has not descended into yet, and the multi-line
    # suppression lookup needs their ancestor chain at that moment.
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            setattr(child, PARENT_ATTR, node)
    ctx = ModuleContext(path, source, tree, config)
    if ctx.skip_file:
        return []
    rules = _active_rules(config)
    for rule in rules:
        rule.begin_module(ctx)
    _Dispatcher(rules, ctx).walk(tree)
    for rule in rules:
        rule.end_module(ctx)
    ctx.findings.sort(key=lambda f: (f.line, f.col, f.code))
    return ctx.findings


def lint_file(path: str | Path, config: LintConfig | None = None) -> list[Finding]:
    """Lint one file on disk."""
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p), config)


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.update(p.rglob("*.py"))
        elif p.suffix == ".py":
            out.add(p)
    return sorted(out)


def _lint_one(payload: tuple[str, LintConfig]) -> list[Finding]:
    path, config = payload
    return lint_file(path, config)


def lint_paths(
    paths: Iterable[str | Path],
    config: LintConfig | None = None,
    *,
    jobs: int = 1,
) -> LintReport:
    """Lint every ``.py`` file under ``paths``; deterministic ordering.

    ``jobs > 1`` fans the per-file rule evaluation over a fork pool
    (like the sweep runner).  The flow pass — project indexing plus the
    FLOW rules — always runs once, in the parent; findings from both
    passes are merged per file and sorted, so the report is
    byte-identical at any job count.
    """
    config = config or LintConfig()
    files = collect_files(paths)
    payloads = [(str(p), config) for p in files]
    if jobs > 1 and len(payloads) > 1:
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=min(jobs, len(payloads))) as pool:
            per_file = pool.map(_lint_one, payloads)
    else:
        per_file = [_lint_one(p) for p in payloads]

    by_path: dict[str, list[Finding]] = {str(p): [] for p in files}
    for findings in per_file:
        for f in findings:
            by_path.setdefault(f.path, []).append(f)

    flow_rules = _active_flow_rules(config)
    schema = JSON_SCHEMA_V1
    if flow_rules:
        schema = JSON_SCHEMA_V2
        # Imported lazily: repro.lint.flow pulls in the rule registry,
        # which is still initialising while this module is first loaded.
        from repro.lint.flow import build_project

        project = build_project(files, config)
        for rule in flow_rules:
            for f in rule.run(project):  # type: ignore[attr-defined]
                by_path.setdefault(f.path, []).append(f)

    report = LintReport(n_files=len(files), schema=schema)
    for p in files:
        report.findings.extend(
            sorted(by_path[str(p)], key=lambda f: (f.line, f.col, f.code))
        )
    return report
