"""``python -m repro.lint`` — the CI gate entry point.

Exit codes: 0 clean, 1 unsuppressed findings (or unparsable files),
2 usage errors.  Text output is one ``path:line:col: CODE message`` per
finding (flow findings add an indented ``chain:`` line); ``--format
json`` emits the ``repro.lint/v2`` payload when the whole-program flow
pass ran, ``repro.lint/v1`` for rule-only runs — both documented in
docs/lint.md.  ``--select``/``--ignore`` accept family prefixes:
``--select FLOW`` runs every FLOW rule.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.lint.config import LintConfig
from repro.lint.engine import lint_paths
from repro.lint.rules import all_rules


def _codes(raw: str | None) -> frozenset[str]:
    """Parse a code list, expanding family prefixes (``FLOW``, ``DET``).

    A token that matches no registered code exactly but is a prefix of
    at least one (``--select FLOW``) selects the whole family; unknown
    tokens are kept verbatim so ``main`` can report them.
    """
    if not raw:
        return frozenset()
    known = set(all_rules())
    out: set[str] = set()
    for token in (c.strip() for c in raw.split(",")):
        if not token:
            continue
        if token not in known:
            family = {code for code in known if code.startswith(token)}
            if family:
                out |= family
                continue
        out.add(token)
    return frozenset(out)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based determinism & invariant linter (see docs/lint.md)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="lint files in N forked workers (output is identical at any N)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print suppressed findings (never fail the gate)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for code, cls in sorted(all_rules().items()):
            print(f"{code}  {cls.summary}")
        return 0

    if args.jobs < 0:
        print("error: --jobs must be >= 0", file=sys.stderr)
        return 2

    select = _codes(args.select)
    unknown = (select | _codes(args.ignore)) - set(all_rules())
    if unknown:
        print(
            f"error: unknown rule code(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(all_rules()))})",
            file=sys.stderr,
        )
        return 2

    config = LintConfig(
        select=select or None,
        ignore=_codes(args.ignore),
        show_suppressed=args.show_suppressed,
    )
    report = lint_paths(args.paths, config, jobs=args.jobs or 1)

    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.render())
        counts = report.counts()
        tally = (
            ", ".join(f"{code}: {n}" for code, n in counts.items())
            if counts
            else "clean"
        )
        print(
            f"repro.lint: {report.n_files} files, "
            f"{len(report.failures)} findings ({tally})"
        )
    return 1 if report.failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
