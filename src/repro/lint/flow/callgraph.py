"""A conservative, project-wide call graph over the index.

Resolution is deliberately an **under-approximation**: an edge exists
only when the callee can be named statically, so every reported chain
is a real syntactic path.  Resolved forms:

* direct calls to module-level functions, through import aliases
  (``from repro.x import f as g; g()``);
* ``self.method(...)`` / ``cls.method(...)`` through the enclosing
  class's project MRO (so a ``BlockDevice`` subclass's ``read_batch``
  links to the override actually dispatched);
* constructor calls — ``SimulatedHDD(...)`` edges to ``__init__``
  resolved through the MRO;
* explicit ``ClassName.method(...)`` and ``super().method(...)``.

Calls through arbitrary receivers (``obj.method()`` where ``obj`` is a
parameter or local) produce no edge — static typing is out of scope for
a stdlib-``ast`` linter, and a missed edge only ever *under*-reports.

Each call site records whether an ``OBS.enabled`` guard dominates it
(FLOW004's propagation barrier), using the same dominance logic as the
per-file OBS001 rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.astutil import raw_dotted
from repro.lint.config import LintConfig
from repro.lint.flow.index import FunctionInfo, ProjectIndex
from repro.lint.rules.obs import site_guarded


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge: ``caller`` invokes ``callee`` at a line."""

    caller: str
    callee: str
    lineno: int
    col: int
    #: An ``if OBS.enabled:`` (or hoisted-flag / early-return) guard
    #: dominates this site — blocks FLOW004 propagation, nothing else.
    guarded: bool


class CallGraph:
    """Forward (``calls``) and reverse (``callers``) adjacency by qname."""

    def __init__(self) -> None:
        self.calls: dict[str, list[CallSite]] = {}
        self.callers: dict[str, list[CallSite]] = {}

    def add(self, site: CallSite) -> None:
        self.calls.setdefault(site.caller, []).append(site)
        self.callers.setdefault(site.callee, []).append(site)

    def edges(self) -> list[CallSite]:
        """Every edge, in deterministic (caller, line, col, callee) order."""
        out = [s for sites in self.calls.values() for s in sites]
        out.sort(key=lambda s: (s.caller, s.lineno, s.col, s.callee))
        return out


def resolve_call(
    index: ProjectIndex, fn: FunctionInfo, call: ast.Call
) -> str | None:
    """Qname of the indexed function ``call`` dispatches to, else ``None``."""
    func = call.func
    # super().method(...) — dispatch into the first base that defines it.
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Call)
        and isinstance(func.value.func, ast.Name)
        and func.value.func.id == "super"
        and fn.owner is not None
    ):
        for cls in index.mro(fn.owner)[1:]:
            qname = cls.methods.get(func.attr)
            if qname is not None:
                return qname
        return None

    dotted = raw_dotted(func)
    if dotted is None:
        return None
    parts = dotted.split(".")
    if parts[0] in ("self", "cls") and fn.owner is not None:
        if len(parts) == 2:
            target = index.resolve_method(fn.owner, parts[1])
            return target.qname if target is not None else None
        return None  # self.attr.method — receiver type unknown

    resolved = index.resolve(fn.module, dotted)
    if resolved is None:
        return None
    if resolved in index.functions:
        return resolved
    if resolved in index.classes:
        ctor = index.resolve_method(resolved, "__init__")
        return ctor.qname if ctor is not None else None
    owner, _, method = resolved.rpartition(".")
    if method and owner in index.classes:
        target = index.resolve_method(owner, method)
        return target.qname if target is not None else None
    return None


def build_callgraph(index: ProjectIndex, config: LintConfig) -> CallGraph:
    """One walk per indexed function; edges in deterministic order."""
    graph = CallGraph()
    registry_names = config.obs_registry_names
    for qname in sorted(index.functions):
        fn = index.functions[qname]
        mod = index.modules[fn.module]
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            callee = resolve_call(index, fn, node)
            if callee is None or callee == qname:
                continue
            graph.add(
                CallSite(
                    caller=qname,
                    callee=callee,
                    lineno=node.lineno,
                    col=node.col_offset + 1,
                    guarded=site_guarded(
                        node, mod.enabled_aliases, registry_names
                    ),
                )
            )
    return graph
