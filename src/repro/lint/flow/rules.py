"""The project-scoped FLOW rules.

Unlike the per-file rules these run **once per lint invocation**, in the
parent process, against the shared :class:`~repro.lint.flow.engine.FlowProject`.
Each emits ordinary :class:`~repro.lint.report.Finding` objects, with the
``chain`` field carrying the source→sink call frames.

Suppression attaches at either endpoint: ``# repro-lint: ignore[FLOW00x]``
on the entry point's ``def`` line suppresses at the source; on the sink
line it suppresses every chain rooted there.  A *per-file* suppression at
the sink (``ignore[DET001]`` etc.) means the sink is locally justified
and never taints at all — see :mod:`repro.lint.flow.facts`.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import SUPPRESS_ALL, is_suppressed, raw_dotted
from repro.lint.flow.engine import FlowProject
from repro.lint.flow.facts import (
    KIND_ENTROPY,
    KIND_OBS,
    TAINT_KINDS,
)
from repro.lint.flow.index import FunctionInfo
from repro.lint.report import ChainFrame, Finding
from repro.lint.rules import Rule, register_rule

#: Minimum chain depth before FLOW001 reports a kind.  Kinds with a
#: per-file rule (DET001/DET002) are that rule's job at depth 0; the
#: flow pass only adds the cross-function hole.  OS entropy has no
#: per-file rule, so it reports at any depth.
_MIN_TAINT_DEPTH = {kind: (0 if kind == KIND_ENTROPY else 1) for kind in TAINT_KINDS}


def _plural(n: int) -> str:
    return "call" if n == 1 else "calls"


def _line_suppressed(suppressions: dict[int, set[str]], lineno: int, code: str) -> bool:
    codes = suppressions.get(lineno, set())
    return SUPPRESS_ALL in codes or code in codes


class FlowRule(Rule):
    """Base for project-scoped rules: shared emission policy."""

    scope = "project"

    def run(self, project: FlowProject) -> list[Finding]:
        raise NotImplementedError

    def _emit(
        self,
        out: list[Finding],
        project: FlowProject,
        *,
        path: str,
        line: int,
        col: int,
        message: str,
        chain: tuple[ChainFrame, ...] = (),
        suppressed: bool = False,
    ) -> None:
        if project.config.is_exempt(self.code, path):
            return
        if suppressed and not project.config.show_suppressed:
            return
        out.append(
            Finding(
                self.code,
                path,
                line,
                col,
                message,
                suppressed=suppressed,
                chain=chain,
            )
        )


@register_rule
class TransitiveNondeterminismRule(FlowRule):
    """FLOW001: entry points must not reach nondeterminism transitively.

    The per-file DET rules catch a ``time.time()`` *inside* a kernel;
    this rule catches the helper three frames below it.  One finding per
    (entry point, taint kind), anchored at the entry's ``def`` line,
    carrying the shortest source→sink chain.
    """

    code = "FLOW001"
    summary = (
        "simulation entry point transitively reaches wall-clock, global-RNG, "
        "OS-entropy, or unordered-iteration nondeterminism"
    )

    def run(self, project: FlowProject) -> list[Finding]:
        out: list[Finding] = []
        primary = project.taint_facts()
        shadow = (
            project.taint_facts(suppressed=True)
            if project.config.show_suppressed
            else {}
        )
        for fn in project.entry_points():
            mod = project.index.modules[fn.module]
            at_source = is_suppressed(mod.suppressions, fn.node, self.code)
            for kind in TAINT_KINDS:
                fact = primary.get(fn.qname, {}).get(kind)
                facts = primary
                at_sink = False
                if fact is None:
                    fact = shadow.get(fn.qname, {}).get(kind)
                    facts = shadow
                    at_sink = fact is not None
                if fact is None or fact.depth < _MIN_TAINT_DEPTH[kind]:
                    continue
                seed = fact.seed
                self._emit(
                    out,
                    project,
                    path=fn.path,
                    line=fn.lineno,
                    col=fn.col,
                    message=(
                        f"entry point `{fn.name}` transitively reaches "
                        f"{seed.detail} at {seed.path}:{seed.lineno} "
                        f"({fact.depth} {_plural(fact.depth)} deep)"
                    ),
                    chain=project.chain(fn.qname, kind, facts),
                    suppressed=at_source or at_sink,
                )
        return out


@register_rule
class RngStreamEscapeRule(FlowRule):
    """FLOW002: a component's private RNG stream must not escape it.

    An attribute assigned from an RNG constructor (``self._rng =
    default_rng(seed)``) is that component's private stream: sharing it
    couples the consumers' draw sequences, so adding a draw in one
    component silently reorders another's.  Flagged escapes: returning
    the stream, passing it to anything not resolved to the same class,
    and storing it on another object.
    """

    code = "FLOW002"
    summary = "private RNG stream escapes its owning component"

    def run(self, project: FlowProject) -> list[Finding]:
        index = project.index
        ctors = set(project.config.flow_rng_constructors)

        # Pass 1: where does each class mint a private stream?
        mints: dict[str, dict[str, tuple[str, int]]] = {}
        for qname in sorted(index.functions):
            fn = index.functions[qname]
            if fn.owner is None:
                continue
            for node in ast.walk(fn.node):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                value = node.value
                if not isinstance(value, ast.Call):
                    continue
                resolved = index.resolve(fn.module, raw_dotted(value.func))
                if resolved not in ctors:
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for t in targets:
                    if (
                        isinstance(t, ast.Attribute)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == "self"
                    ):
                        mints.setdefault(fn.owner, {}).setdefault(
                            t.attr, (qname, node.lineno)
                        )

        # Pass 2: do any of those streams escape?
        out: list[Finding] = []
        for qname in sorted(index.functions):
            fn = index.functions[qname]
            if fn.owner is None:
                continue
            family = [c.qname for c in index.mro(fn.owner)]
            attrs: dict[str, tuple[str, int]] = {}
            for cls_qname in family:
                for attr, site in mints.get(cls_qname, {}).items():
                    attrs.setdefault(attr, site)
            if not attrs:
                continue
            mod = index.modules[fn.module]

            def is_stream(node: ast.AST) -> str | None:
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in attrs
                ):
                    return node.attr
                return None

            def report(node: ast.AST, attr: str, how: str) -> None:
                mint_fn, mint_line = attrs[attr]
                mint_path = index.functions[mint_fn].path
                suppressed = is_suppressed(
                    mod.suppressions, node, self.code
                ) or _line_suppressed(
                    index.modules[index.functions[mint_fn].module].suppressions,
                    mint_line,
                    self.code,
                )
                self._emit(
                    out,
                    project,
                    path=fn.path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    message=(
                        f"private RNG stream `self.{attr}` (minted at "
                        f"{mint_path}:{mint_line}) {how}"
                    ),
                    chain=(
                        (fn.qname, fn.path, node.lineno),
                        (mint_fn, mint_path, mint_line),
                    ),
                    suppressed=suppressed,
                )

            for node in ast.walk(fn.node):
                if isinstance(node, ast.Return) and node.value is not None:
                    attr = is_stream(node.value)
                    if attr:
                        report(node, attr, "is returned to the caller")
                elif isinstance(node, ast.Call):
                    from repro.lint.flow.callgraph import resolve_call

                    for arg in list(node.args) + [k.value for k in node.keywords]:
                        attr = is_stream(arg)
                        if attr is None:
                            continue
                        callee = resolve_call(index, fn, node)
                        callee_owner = (
                            index.functions[callee].owner
                            if callee in index.functions
                            else None
                        )
                        if callee_owner in family and callee_owner is not None:
                            continue  # stays inside the component
                        target = raw_dotted(node.func) or "<dynamic>"
                        report(
                            node, attr, f"is passed out of the component to `{target}`"
                        )
                elif isinstance(node, ast.Assign):
                    attr = is_stream(node.value)
                    if attr is None:
                        continue
                    for t in node.targets:
                        owner = (
                            raw_dotted(t.value)
                            if isinstance(t, ast.Attribute)
                            else None
                        )
                        if owner is not None and owner not in ("self", "cls"):
                            report(node, attr, f"is stored on another object `{owner}`")
        return out


@register_rule
class BatchSerialSymmetryRule(FlowRule):
    """FLOW003: batch APIs must mirror their scalar twin.

    The DAM refinements hinge on batching being *semantically invisible*
    — ``read_batch`` is an IO-schedule optimisation of N ``read`` calls,
    never a different operation.  Checked shape: a class defining a
    batch method must expose the scalar twin (possibly inherited), and
    the batch body's transitive ``self.*`` state footprint must stay
    within the scalar twin's.
    """

    code = "FLOW003"
    summary = "batch API lacks a scalar twin or touches state the twin never does"

    def run(self, project: FlowProject) -> list[Finding]:
        index = project.index
        pairs = project.config.flow_batch_pairs
        cache: dict[tuple[str, str], frozenset[str]] = {}
        out: list[Finding] = []
        for cls_qname in sorted(index.classes):
            cls = index.classes[cls_qname]
            family = {c.qname for c in index.mro(cls_qname)}
            for batch_name in sorted(cls.methods):
                scalar_name = pairs.get(batch_name)
                if scalar_name is None:
                    continue
                batch = index.functions[cls.methods[batch_name]]
                mod = index.modules[batch.module]
                suppressed = is_suppressed(mod.suppressions, batch.node, self.code)
                scalar = index.resolve_method(cls_qname, scalar_name)
                if scalar is None:
                    self._emit(
                        out,
                        project,
                        path=batch.path,
                        line=batch.lineno,
                        col=batch.col,
                        message=(
                            f"`{cls.name}.{batch_name}` has no scalar twin "
                            f"`{scalar_name}` — batch APIs must be an "
                            f"IO-schedule optimisation of the scalar op"
                        ),
                        suppressed=suppressed,
                    )
                    continue
                suppressed = suppressed or _line_suppressed(
                    index.modules[scalar.module].suppressions,
                    scalar.lineno,
                    self.code,
                )
                extra = sorted(
                    self._closure(index, batch, cls_qname, family, cache)
                    - self._closure(index, scalar, cls_qname, family, cache)
                )
                if extra:
                    names = ", ".join(f"self.{a}" for a in extra)
                    self._emit(
                        out,
                        project,
                        path=batch.path,
                        line=batch.lineno,
                        col=batch.col,
                        message=(
                            f"`{cls.name}.{batch_name}` touches state its scalar "
                            f"twin `{scalar.qname}` never does: {names}"
                        ),
                        chain=(
                            (batch.qname, batch.path, batch.lineno),
                            (scalar.qname, scalar.path, scalar.lineno),
                        ),
                        suppressed=suppressed,
                    )
        return out

    def _closure(
        self,
        index,
        fn: FunctionInfo,
        concrete: str,
        family: set[str],
        cache: dict[tuple[str, str], frozenset[str]],
        _visiting: set[str] | None = None,
    ) -> frozenset[str]:
        """``self.*`` attributes ``fn`` touches on a ``concrete`` instance.

        ``self.method`` dispatches (calls *and* bound references like
        ``get = self.get``) resolve through the concrete class's MRO —
        a base-class scalar that delegates to ``self._service_read``
        lands on the subclass override actually running — and their
        closures are merged in.  Cycles contribute nothing extra.
        """
        key = (concrete, fn.qname)
        if key in cache:
            return cache[key]
        visiting = _visiting if _visiting is not None else set()
        if key in visiting:
            return frozenset()
        visiting.add(key)
        from repro.lint.astutil import PARENT_ATTR
        from repro.lint.flow.callgraph import resolve_call

        attrs: set[str] = set()
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in ("self", "cls")
            ):
                parent = getattr(node, PARENT_ATTR, None)
                if isinstance(parent, ast.Call) and parent.func is node:
                    continue  # a dispatch — merged via the Call branch
                target = index.resolve_method(concrete, node.attr)
                if target is not None:
                    # Bound-method reference (``get = self.get``): behaves
                    # like a call, not like state.
                    attrs |= self._closure(
                        index, target, concrete, family, cache, visiting
                    )
                    continue
                attrs.add(node.attr)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in ("self", "cls")
                ):
                    target = index.resolve_method(concrete, func.attr)
                    if target is None:
                        # Not a method: an instance-attribute callable
                        # (``self._access(...)``) — that *is* state.
                        attrs.add(func.attr)
                        continue
                else:
                    callee = resolve_call(index, fn, node)
                    target = index.functions.get(callee) if callee else None
                if target is None or target.owner not in family:
                    continue
                attrs |= self._closure(
                    index, target, concrete, family, cache, visiting
                )
        visiting.discard(key)
        result = frozenset(attrs)
        cache[key] = result
        return result


@register_rule
class GuardPropagationRule(FlowRule):
    """FLOW004: OBS001, but across the call graph.

    A recording helper may carry ``ignore[OBS001]`` because "all callers
    guard" — this rule is what makes that claim checkable.  Guarded call
    sites block propagation; an entry point that still reaches an
    unguarded recording call gets the full chain.
    """

    code = "FLOW004"
    summary = "entry point reaches an obs recording call with no enabled-guard on the path"

    def run(self, project: FlowProject) -> list[Finding]:
        out: list[Finding] = []
        primary = project.obs_facts()
        shadow = (
            project.obs_facts(suppressed=True)
            if project.config.show_suppressed
            else {}
        )
        for fn in project.entry_points():
            mod = project.index.modules[fn.module]
            at_source = is_suppressed(mod.suppressions, fn.node, self.code)
            fact = primary.get(fn.qname, {}).get(KIND_OBS)
            facts = primary
            at_sink = False
            if fact is None:
                fact = shadow.get(fn.qname, {}).get(KIND_OBS)
                facts = shadow
                at_sink = fact is not None
            if fact is None or fact.depth < 1:
                continue  # depth 0 is OBS001's per-file job
            seed = fact.seed
            self._emit(
                out,
                project,
                path=fn.path,
                line=fn.lineno,
                col=fn.col,
                message=(
                    f"entry point `{fn.name}` reaches an obs recording call at "
                    f"{seed.path}:{seed.lineno} with no OBS.enabled guard "
                    f"anywhere on the path ({fact.depth} {_plural(fact.depth)} deep)"
                ),
                chain=project.chain(fn.qname, KIND_OBS, facts),
                suppressed=at_source or at_sink,
            )
        return out
