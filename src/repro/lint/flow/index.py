"""The project indexer: one parse of every file into a symbol table.

Everything the flow layer knows about the program comes from here:
module names (derived from the ``__init__.py`` package chain, so the
same indexer works on ``src/repro`` and on test fixture packages),
classes with their method layouts and base-class names, top-level and
method functions, per-module import-alias maps (absolute and relative
imports), ``OBS.enabled`` alias names, and suppression-comment lines.

Pure syntax, like the rest of the linter: nothing is imported or
executed.  Files that do not parse are skipped here — the per-file
engine already turns them into blocking ``LINT000`` findings.

Parent links (:data:`~repro.lint.astutil.PARENT_ATTR`) are set on every
node during the index walk, so downstream guard/suppression analysis
can walk ancestor chains exactly like per-file rules do.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.astutil import PARENT_ATTR, raw_dotted, scan_suppressions
from repro.lint.config import LintConfig


@dataclass
class FunctionInfo:
    """One indexed function or method (nested defs stay inside their owner)."""

    qname: str  #: e.g. ``repro.storage.hdd.SimulatedHDD.read_batch``
    module: str  #: e.g. ``repro.storage.hdd``
    name: str  #: e.g. ``read_batch``
    owner: str | None  #: owning class qname, ``None`` for module level
    path: str
    lineno: int
    col: int
    node: ast.FunctionDef | ast.AsyncFunctionDef = field(repr=False)
    is_kernel: bool = False

    @property
    def is_public(self) -> bool:
        """Public API: not underscore-private; ``__init__`` counts."""
        return not self.name.startswith("_") or self.name == "__init__"


@dataclass
class ClassInfo:
    """One indexed class: layout plus raw base-class spellings."""

    qname: str
    module: str
    name: str
    path: str
    lineno: int
    bases: tuple[str, ...]  #: raw dotted base spellings, pre-resolution
    methods: dict[str, str] = field(default_factory=dict)  #: name -> fn qname


@dataclass
class ModuleInfo:
    """One indexed module and its per-file facts."""

    name: str
    path: str
    tree: ast.Module = field(repr=False)
    imports: dict[str, str] = field(default_factory=dict)
    enabled_aliases: set[str] = field(default_factory=set)
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    skip_file: bool = False


def module_name_for(path: Path) -> str:
    """Dotted module name from the ``__init__.py`` package chain.

    Walks up from the file while ``__init__.py`` exists, so
    ``src/repro/storage/hdd.py`` -> ``repro.storage.hdd`` and a fixture
    tree ``.../fixtures/flowpkg/sinks.py`` -> ``flowpkg.sinks`` without
    either needing to be importable.
    """
    parts: list[str] = [] if path.stem == "__init__" else [path.stem]
    parent = path.resolve().parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) or path.stem


class ProjectIndex:
    """Symbol table over every indexed file; all lookups are by qname."""

    def __init__(self, config: LintConfig) -> None:
        self.config = config
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}

    # -- construction ------------------------------------------------------

    def add_file(self, path: Path) -> None:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, ValueError):
            return  # LINT000 is the per-file engine's job
        name = module_name_for(path)
        suppressions, skip_file = scan_suppressions(source)
        mod = ModuleInfo(
            name=name,
            path=str(path),
            tree=tree,
            suppressions=suppressions,
            skip_file=skip_file,
        )
        self.modules[name] = mod
        self._link_parents(tree)
        self._scan_imports(mod)
        self._scan_symbols(mod)

    @staticmethod
    def _link_parents(tree: ast.Module) -> None:
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                setattr(child, PARENT_ATTR, node)

    def _scan_imports(self, mod: ModuleInfo) -> None:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    mod.imports[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # Relative import: resolve against this module's package.
                    pkg_parts = mod.name.split(".")[: -node.level]
                    base = ".".join(pkg_parts + ([node.module] if node.module else []))
                for alias in node.names:
                    origin = f"{base}.{alias.name}" if base else alias.name
                    mod.imports[alias.asname or alias.name] = origin
            elif isinstance(node, ast.Assign) and self._is_enabled_read(node.value):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        mod.enabled_aliases.add(t.id)

    def _is_enabled_read(self, value: ast.AST) -> bool:
        if not (isinstance(value, ast.Attribute) and value.attr == "enabled"):
            return False
        owner = raw_dotted(value.value)
        return owner is not None and (
            owner in self.config.obs_registry_names
            or owner.split(".")[-1] in self.config.obs_registry_names
        )

    def _scan_symbols(self, mod: ModuleInfo) -> None:
        for node in mod.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, node, owner=None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(mod, node)

    def _add_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        qname = f"{mod.name}.{node.name}"
        bases = tuple(
            dotted for dotted in (raw_dotted(b) for b in node.bases) if dotted
        )
        info = ClassInfo(
            qname=qname,
            module=mod.name,
            name=node.name,
            path=mod.path,
            lineno=node.lineno,
            bases=bases,
        )
        self.classes[qname] = info
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._add_function(mod, item, owner=qname)
                info.methods[item.name] = fn.qname

    def _add_function(
        self,
        mod: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        owner: str | None,
    ) -> FunctionInfo:
        qname = f"{owner or mod.name}.{node.name}"
        info = FunctionInfo(
            qname=qname,
            module=mod.name,
            name=node.name,
            owner=owner,
            path=mod.path,
            lineno=node.lineno,
            col=node.col_offset + 1,
            node=node,
            is_kernel=self._is_kernel(mod, node),
        )
        self.functions[qname] = info
        return info

    def _is_kernel(
        self, mod: ModuleInfo, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> bool:
        for deco in fn.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            dotted = raw_dotted(target)
            if dotted is None:
                continue
            head = dotted.split(".")[0]
            resolved = mod.imports.get(head, head)
            full = ".".join([resolved] + dotted.split(".")[1:])
            if (
                dotted in self.config.kernel_decorators
                or full in self.config.kernel_decorators
            ):
                return True
        return False

    # -- lookups -----------------------------------------------------------

    def resolve(self, module: str, dotted: str | None) -> str | None:
        """Project-qualified name for a dotted spelling seen in ``module``.

        The first segment is rewritten through the module's import map;
        failing that, a module-local symbol of the same name wins; an
        unknown head resolves through itself (external names come back
        as their absolute dotted form, e.g. ``numpy.random.default_rng``).
        """
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        origin = None
        mod = self.modules.get(module)
        if mod is not None:
            origin = mod.imports.get(head)
        if origin is None:
            local = f"{module}.{head}"
            if local in self.functions or local in self.classes:
                origin = local
            else:
                origin = head
        return f"{origin}.{rest}" if rest else origin

    def mro(self, class_qname: str) -> list[ClassInfo]:
        """Project-resolvable linearisation: the class, then bases DFS.

        Not C3 — a deterministic depth-first walk over the bases we can
        resolve inside the project, which matches how this codebase uses
        single inheritance.  External bases contribute nothing.
        """
        out: list[ClassInfo] = []
        seen: set[str] = set()

        def visit(qname: str) -> None:
            info = self.classes.get(qname)
            if info is None or qname in seen:
                return
            seen.add(qname)
            out.append(info)
            for base in info.bases:
                resolved = self.resolve(info.module, base)
                if resolved is not None:
                    visit(resolved)

        visit(class_qname)
        return out

    def resolve_method(self, class_qname: str, name: str) -> FunctionInfo | None:
        """The function a ``self.<name>`` call lands on, through the MRO."""
        for cls in self.mro(class_qname):
            fn_qname = cls.methods.get(name)
            if fn_qname is not None:
                return self.functions.get(fn_qname)
        return None


def build_index(files: list[Path], config: LintConfig) -> ProjectIndex:
    """Index every file (sorted order, so ties resolve deterministically)."""
    index = ProjectIndex(config)
    for path in sorted(files):
        index.add_file(Path(path))
    return index
