"""repro.lint.flow — whole-program determinism flow analysis.

The per-file rules (DET/OBS/PURE/ERR/VAL) are blind to anything that
crosses a function boundary: a helper that calls ``time.time()`` three
frames below a kernel sails through DET001.  This package closes that
hole with three layers:

1. :mod:`~repro.lint.flow.index` — parse every file once and build a
   project-wide symbol table: modules, classes (with layouts and base
   resolution), functions, alias-aware import maps, suppression lines.
2. :mod:`~repro.lint.flow.callgraph` — a conservative call graph over
   the index: module-qualified direct calls, ``self.method`` resolved
   through the class MRO, constructor calls, ``super()`` dispatch.
   Calls whose receiver cannot be resolved statically produce **no**
   edge (under-approximation: no false chains, possible misses).
3. :mod:`~repro.lint.flow.facts` + :mod:`~repro.lint.flow.engine` — a
   fixed-point taint engine: per-function nondeterminism facts seeded
   by the same detectors DET001/DET002 use, propagated caller-ward to
   stability, with shortest source→sink chains recorded for the
   diagnostics.

The FLOW rules themselves (:mod:`~repro.lint.flow.rules`) are ordinary
registry rules with ``scope = "project"``; :func:`repro.lint.lint_paths`
runs them once per invocation, in the parent process, and merges their
findings with the per-file pass.  See docs/lint.md for the rule catalog
and how to read a chain.
"""

from repro.lint.flow.callgraph import CallGraph, CallSite, build_callgraph
from repro.lint.flow.engine import FlowProject, build_project
from repro.lint.flow.facts import (
    KIND_ENTROPY,
    KIND_ORDER,
    KIND_RNG,
    KIND_TIME,
    Seed,
)
from repro.lint.flow.index import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    build_index,
)

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FlowProject",
    "FunctionInfo",
    "KIND_ENTROPY",
    "KIND_ORDER",
    "KIND_RNG",
    "KIND_TIME",
    "ModuleInfo",
    "ProjectIndex",
    "Seed",
    "build_callgraph",
    "build_index",
    "build_project",
]
