"""The fact lattice: what taints a function, and where it enters.

The domain is a flat product lattice: per function, per *kind* of
nondeterminism, either ⊥ (clean) or a :class:`Seed`-rooted fact.  Kinds:

* :data:`KIND_TIME` — wall-clock reads (the DET001 set);
* :data:`KIND_RNG` — process-global RNG calls (the DET001 set);
* :data:`KIND_ENTROPY` — OS entropy: ``os.urandom``, ``uuid.uuid1/4``,
  ``secrets.*`` (no per-file rule covers these, so FLOW001 reports them
  even when the seed sits directly in an entry point);
* :data:`KIND_ORDER` — unordered iteration feeding an order-sensitive
  sink (the DET002 detector, including strict ``.keys()`` mode);
* :data:`KIND_OBS` — an obs recording call not dominated by an
  ``OBS.enabled`` guard *inside its own function* (FLOW004's seed; the
  per-line ``ignore[OBS001]`` helpers are deliberately still seeds —
  the whole point of guard propagation is to verify their call sites).

Seeding reuses the per-file detectors verbatim, and honours the same
policy knobs: a seed in a file that is config-exempt from the matching
per-file rule never taints (the runner's wall-timing is its job), and a
seed whose line carries the matching per-file suppression is treated as
justified (no taint).  A seed whose line carries a ``FLOW00x``
suppression instead marks the resulting finding suppressed-at-sink.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.astutil import is_suppressed, raw_dotted, resolve_dotted
from repro.lint.config import LintConfig
from repro.lint.flow.index import FunctionInfo, ProjectIndex
from repro.lint.rules.determinism import (
    global_rng_violation,
    order_sensitive_sources,
    unordered_reason,
    wall_clock_violation,
)
from repro.lint.rules.obs import recording_call, site_guarded

KIND_TIME = "wall-clock"
KIND_RNG = "global-rng"
KIND_ENTROPY = "os-entropy"
KIND_ORDER = "unordered-iteration"
KIND_OBS = "unguarded-obs"

#: FLOW001 kinds, in reporting order.
TAINT_KINDS = (KIND_TIME, KIND_RNG, KIND_ENTROPY, KIND_ORDER)

#: OS entropy sources: fresh randomness with no seed anywhere.
_ENTROPY_CALLS = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.randbits",
        "secrets.choice",
    }
)

#: Which per-file rule owns each kind (for exemptions + justified
#: suppressions at the sink line).
_PER_FILE_CODE = {
    KIND_TIME: "DET001",
    KIND_RNG: "DET001",
    KIND_ENTROPY: "DET001",  # exemption policy only; DET001 never fires on these
    KIND_ORDER: "DET002",
    KIND_OBS: "OBS001",
}


@dataclass(frozen=True)
class Seed:
    """One nondeterminism entry point inside one function body."""

    kind: str
    detail: str  #: human-readable cause, e.g. "wall-clock call `time.time`"
    path: str
    lineno: int
    col: int
    #: The sink line carries a FLOW suppression — the finding survives
    #: but is marked suppressed (visible with ``--show-suppressed``).
    sink_suppressed: bool = False


def _seed(
    kind: str,
    detail: str,
    node: ast.AST,
    fn: FunctionInfo,
    mod_suppressions: dict[int, set[str]],
    flow_code: str,
) -> Seed | None:
    """Build a seed, applying sink-side policy; ``None`` = justified."""
    if is_suppressed(mod_suppressions, node, _PER_FILE_CODE[kind]):
        return None  # per-file suppression: locally justified, no taint
    return Seed(
        kind=kind,
        detail=detail,
        path=fn.path,
        lineno=node.lineno,
        col=node.col_offset + 1,
        sink_suppressed=is_suppressed(mod_suppressions, node, flow_code),
    )


def taint_seeds(
    fn: FunctionInfo, index: ProjectIndex, config: LintConfig
) -> list[Seed]:
    """FLOW001 seeds in one function body (nested defs included)."""
    mod = index.modules[fn.module]
    if mod.skip_file:
        return []
    det001_exempt = config.is_exempt("DET001", fn.path)
    det002_exempt = config.is_exempt("DET002", fn.path)
    seeds: list[Seed] = []
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call) and not det001_exempt:
            dotted = resolve_dotted(raw_dotted(node.func), mod.imports)
            detail = wall_clock_violation(dotted)
            if detail is not None:
                s = _seed(KIND_TIME, f"wall-clock call `{dotted}`", node, fn,
                          mod.suppressions, "FLOW001")
                if s:
                    seeds.append(s)
                continue
            detail = global_rng_violation(dotted)
            if detail is not None:
                s = _seed(KIND_RNG, f"global-RNG call `{dotted}`", node, fn,
                          mod.suppressions, "FLOW001")
                if s:
                    seeds.append(s)
                continue
            if dotted in _ENTROPY_CALLS:
                s = _seed(KIND_ENTROPY, f"OS-entropy call `{dotted}`", node, fn,
                          mod.suppressions, "FLOW001")
                if s:
                    seeds.append(s)
                continue
        if not det002_exempt:
            for source in order_sensitive_sources(node):
                reason = unordered_reason(
                    source,
                    mod.imports,
                    flag_dict_keys=config.det002_flag_dict_keys,
                )
                if reason is not None:
                    s = _seed(
                        KIND_ORDER,
                        f"order-sensitive iteration over {reason}",
                        source,
                        fn,
                        mod.suppressions,
                        "FLOW001",
                    )
                    if s:
                        seeds.append(s)
    seeds.sort(key=lambda s: (s.lineno, s.col, s.kind))
    return seeds


def obs_seeds(
    fn: FunctionInfo, index: ProjectIndex, config: LintConfig
) -> list[Seed]:
    """FLOW004 seeds: recording calls with no local enabled-guard.

    ``ignore[OBS001]`` lines still seed — those are exactly the guarded
    helpers whose call chains FLOW004 exists to verify.  The obs package
    itself is policy-exempt (registry internals sit below the guard).
    """
    mod = index.modules[fn.module]
    if mod.skip_file or config.is_exempt("OBS001", fn.path):
        return []
    seeds: list[Seed] = []
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        if not recording_call(node, config.obs_registry_names):
            continue
        if site_guarded(node, mod.enabled_aliases, config.obs_registry_names):
            continue
        seeds.append(
            Seed(
                kind=KIND_OBS,
                detail="obs recording call",
                path=fn.path,
                lineno=node.lineno,
                col=node.col_offset + 1,
                sink_suppressed=is_suppressed(mod.suppressions, node, "FLOW004"),
            )
        )
    seeds.sort(key=lambda s: (s.lineno, s.col))
    return seeds
