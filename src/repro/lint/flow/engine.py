"""Fixed-point fact propagation over the call graph.

Facts flow **caller-ward**: a function is tainted with a kind of
nondeterminism iff its own body seeds it or it calls (resolvably) a
tainted function.  Because the domain is a flat lattice per (function,
kind) and edges only ever add facts, a breadth-first worklist from the
seed set reaches the fixed point in one pass — and BFS order doubles as
a shortest-chain witness: each fact records the callee and call site it
arrived through, so reconstructing source→sink diagnostics is a pointer
walk, no second search.

Determinism: seeds enter the queue in sorted qname order, caller edges
are visited in sorted (caller, line, col) order, and first-writer-wins —
so chains, and therefore reports, are byte-identical run to run.

FLOW004 uses the same engine with two twists: its seed set is the
unguarded obs-recording sites, and guarded call sites do not propagate
(an ``if OBS.enabled:`` around the call *is* the contract being
checked).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from pathlib import Path

from repro.lint.config import LintConfig
from repro.lint.flow.callgraph import CallGraph, build_callgraph
from repro.lint.flow.facts import Seed, obs_seeds, taint_seeds
from repro.lint.flow.index import FunctionInfo, ProjectIndex, build_index
from repro.lint.report import ChainFrame


@dataclass(frozen=True)
class Fact:
    """Why one function carries one kind of taint."""

    kind: str
    depth: int  #: call hops between this function and the seed
    seed: Seed  #: the sink this fact is rooted at
    via: str | None  #: callee qname the taint arrived through (None at depth 0)
    lineno: int | None  #: call-site line in *this* function (None at depth 0)


#: facts[function qname][kind] -> Fact
FactMap = dict[str, dict[str, "Fact"]]


class FlowProject:
    """Index + call graph + lazily computed fact maps for one lint run."""

    def __init__(
        self, index: ProjectIndex, graph: CallGraph, config: LintConfig
    ) -> None:
        self.index = index
        self.graph = graph
        self.config = config
        self._taint: FactMap | None = None
        self._taint_suppressed: FactMap | None = None
        self._obs: FactMap | None = None
        self._obs_suppressed: FactMap | None = None

    # -- entry points ------------------------------------------------------

    def entry_points(self) -> list[FunctionInfo]:
        """Simulation entry points, sorted by qname.

        Kernel-decorated functions everywhere, plus public functions and
        public-class methods in modules matching the configured entry
        path fragments.
        """
        out: list[FunctionInfo] = []
        for qname in sorted(self.index.functions):
            fn = self.index.functions[qname]
            if self.index.modules[fn.module].skip_file:
                continue
            if fn.is_kernel:
                out.append(fn)
                continue
            posix = fn.path.replace("\\", "/")
            if not any(frag in posix for frag in self.config.flow_entry_fragments):
                continue
            if not fn.is_public:
                continue
            if fn.owner is not None:
                cls = self.index.classes.get(fn.owner)
                if cls is None or cls.name.startswith("_"):
                    continue
            out.append(fn)
        return out

    # -- fact maps ---------------------------------------------------------

    def taint_facts(self, *, suppressed: bool = False) -> FactMap:
        """FLOW001 facts (``suppressed=True``: sink-suppressed seeds only)."""
        if suppressed:
            if self._taint_suppressed is None:
                self._taint_suppressed = self._propagate(
                    taint_seeds, want_suppressed=True, block_guarded=False
                )
            return self._taint_suppressed
        if self._taint is None:
            self._taint = self._propagate(
                taint_seeds, want_suppressed=False, block_guarded=False
            )
        return self._taint

    def obs_facts(self, *, suppressed: bool = False) -> FactMap:
        """FLOW004 facts: unguarded-obs reach, guard sites block edges."""
        if suppressed:
            if self._obs_suppressed is None:
                self._obs_suppressed = self._propagate(
                    obs_seeds, want_suppressed=True, block_guarded=True
                )
            return self._obs_suppressed
        if self._obs is None:
            self._obs = self._propagate(
                obs_seeds, want_suppressed=False, block_guarded=True
            )
        return self._obs

    def _propagate(self, seed_fn, *, want_suppressed: bool, block_guarded: bool) -> FactMap:
        facts: FactMap = {}
        queue: deque[tuple[str, str]] = deque()
        for qname in sorted(self.index.functions):
            fn = self.index.functions[qname]
            per_kind: dict[str, Seed] = {}
            for seed in seed_fn(fn, self.index, self.config):
                if seed.sink_suppressed != want_suppressed:
                    continue
                per_kind.setdefault(seed.kind, seed)  # first = min (line, col)
            for kind in sorted(per_kind):
                facts.setdefault(qname, {})[kind] = Fact(
                    kind=kind, depth=0, seed=per_kind[kind], via=None, lineno=None
                )
                queue.append((qname, kind))
        while queue:
            qname, kind = queue.popleft()
            fact = facts[qname][kind]
            sites = sorted(
                self.graph.callers.get(qname, ()),
                key=lambda s: (s.caller, s.lineno, s.col),
            )
            for site in sites:
                if block_guarded and site.guarded:
                    continue
                caller_facts = facts.setdefault(site.caller, {})
                if kind in caller_facts:
                    continue
                caller_facts[kind] = Fact(
                    kind=kind,
                    depth=fact.depth + 1,
                    seed=fact.seed,
                    via=qname,
                    lineno=site.lineno,
                )
                queue.append((site.caller, kind))
        return facts

    # -- diagnostics -------------------------------------------------------

    def chain(self, qname: str, kind: str, facts: FactMap) -> tuple[ChainFrame, ...]:
        """Source→sink frames: each hop's call-site line, then the seed."""
        frames: list[ChainFrame] = []
        cur = qname
        fact = facts[cur][kind]
        while fact.via is not None:
            frames.append((cur, self.index.functions[cur].path, fact.lineno or 0))
            cur = fact.via
            fact = facts[cur][kind]
        frames.append((cur, fact.seed.path, fact.seed.lineno))
        return tuple(frames)


def build_project(files: list[str | Path], config: LintConfig) -> FlowProject:
    """Index the files once and wire up the call graph (parent process)."""
    index = build_index([Path(f) for f in files], config)
    return FlowProject(index, build_callgraph(index, config), config)
