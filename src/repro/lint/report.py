"""Findings and reports — the data the engine and the flow layer share.

Lives in its own dependency-free module so that both the per-file engine
and :mod:`repro.lint.flow` (which the rule registry imports while the
engine module is still initialising) can construct findings without a
circular import.

Two JSON schemas:

* ``repro.lint/v1`` — rule-only runs; findings carry no call chains.
* ``repro.lint/v2`` — runs that include the whole-program flow pass;
  every finding additionally carries a ``chain`` list (possibly empty)
  of ``{function, path, line}`` frames from source to sink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: v1: per-file rules only (kept for ``--select`` runs without FLOW rules).
JSON_SCHEMA_V1 = "repro.lint/v1"
#: v2: rule + flow pass; findings gain the ``chain`` field.
JSON_SCHEMA_V2 = "repro.lint/v2"
#: Backwards-compatible alias (rule-only schema, the pre-flow default).
JSON_SCHEMA_VERSION = JSON_SCHEMA_V1

#: One source→sink call-chain frame: (function qname, path, line).
ChainFrame = tuple[str, str, int]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``chain`` is empty for per-file rules; flow rules fill it with the
    source→sink frames: the entry point first (its frame's line is the
    call site inside it), the sink call last.
    """

    code: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    chain: tuple[ChainFrame, ...] = ()

    def render(self) -> str:
        mark = "  (suppressed)" if self.suppressed else ""
        out = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}{mark}"
        if self.chain:
            hops = " -> ".join(f"{fn} ({path}:{line})" for fn, path, line in self.chain)
            out += f"\n    chain: {hops}"
        return out


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    n_files: int = 0
    #: Which JSON schema this run's output follows (v2 iff flow ran).
    schema: str = JSON_SCHEMA_V1

    @property
    def failures(self) -> list[Finding]:
        """Findings that fail the gate (suppressed ones do not)."""
        return [f for f in self.findings if not f.suppressed]

    def counts(self) -> dict[str, int]:
        """Unsuppressed finding count per rule code."""
        out: dict[str, int] = {}
        for f in self.failures:
            out[f.code] = out.get(f.code, 0) + 1
        return dict(sorted(out.items()))

    def to_json(self) -> dict[str, Any]:
        """The ``repro.lint/v1`` or ``/v2`` JSON payload (docs/lint.md)."""
        payload: dict[str, Any] = {
            "version": self.schema,
            "n_files": self.n_files,
            "n_findings": len(self.failures),
            "counts": self.counts(),
            "findings": [],
        }
        for f in self.findings:
            entry: dict[str, Any] = {
                "code": f.code,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "suppressed": f.suppressed,
            }
            if self.schema == JSON_SCHEMA_V2:
                entry["chain"] = [
                    {"function": fn, "path": path, "line": line}
                    for fn, path, line in f.chain
                ]
            payload["findings"].append(entry)
        return payload
