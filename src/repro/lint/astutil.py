"""Small AST helpers shared by the engine and the rules.

Everything here is pure syntax analysis: no imports are executed, no
types are inferred.  Rules that need "what does this name mean" answer
it through the per-module import map built by the engine's fact scan.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

#: Attribute set on every visited node pointing at its parent (engine walk).
PARENT_ATTR = "_repro_lint_parent"

#: Marker meaning "suppress every rule on this line".
SUPPRESS_ALL = "*"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>ignore|skip-file)(?:\[(?P<codes>[^\]]*)\])?"
)


def scan_suppressions(source: str) -> tuple[dict[int, set[str]], bool]:
    """``(line -> suppressed codes, skip_file)`` from suppression comments.

    Shared by the per-file engine and the project indexer so both layers
    agree on exactly which lines a ``# repro-lint: ignore[RULE]`` covers.
    """
    suppressions: dict[int, set[str]] = {}
    skip_file = False
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if not m:
            continue
        if m.group("kind") == "skip-file":
            skip_file = True
            continue
        codes = m.group("codes")
        tags = (
            {c.strip() for c in codes.split(",") if c.strip()}
            if codes
            else {SUPPRESS_ALL}
        )
        suppressions.setdefault(lineno, set()).update(tags)
    return suppressions, skip_file


def suppression_lines(node: ast.AST) -> set[int]:
    """Lines where a suppression comment covers findings on ``node``.

    The reported line itself, plus the **first physical line of the
    enclosing statement** — so a multi-line call can be suppressed at
    the line a reader naturally annotates (``x = compute(  # ignore[..]``)
    even when the flagged sub-expression sits lines below.
    Requires parent links (set during the engine/indexer walk).
    """
    lines = {getattr(node, "lineno", 1)}
    if isinstance(node, ast.stmt):
        return lines
    for anc, _ in ancestors(node):
        if isinstance(anc, ast.stmt):
            lines.add(anc.lineno)
            break
    return lines


def is_suppressed(
    suppressions: dict[int, set[str]], node: ast.AST, code: str
) -> bool:
    """Whether ``code`` is suppressed at ``node`` (either endpoint line)."""
    for line in suppression_lines(node):
        tags = suppressions.get(line, ())
        if SUPPRESS_ALL in tags or code in tags:
            return True
    return False


def raw_dotted(node: ast.AST) -> str | None:
    """The dotted source text of a Name/Attribute chain, else ``None``.

    ``np.random.randint`` -> ``"np.random.randint"``; chains rooted in a
    call or subscript (``super().__init__``) have no stable dotted form.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_dotted(dotted: str | None, imports: dict[str, str]) -> str | None:
    """Rewrite the chain's first segment through the module's import map.

    With ``import numpy as np``, ``"np.random.randint"`` resolves to
    ``"numpy.random.randint"``; with ``from time import perf_counter``,
    ``"perf_counter"`` resolves to ``"time.perf_counter"``.  Unknown
    first segments resolve to themselves (local names stay local).
    """
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    origin = imports.get(head, head)
    return f"{origin}.{rest}" if rest else origin


def parent(node: ast.AST) -> ast.AST | None:
    """The node's parent in the engine walk (``None`` at the module root)."""
    return getattr(node, PARENT_ATTR, None)


def ancestors(node: ast.AST) -> Iterator[tuple[ast.AST, ast.AST]]:
    """Yield ``(ancestor, child-on-the-path)`` pairs walking to the root."""
    child = node
    up = parent(node)
    while up is not None:
        yield up, child
        child = up
        up = parent(up)


def enclosing_function(node: ast.AST) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """The innermost function the node sits in, if any."""
    for anc, _ in ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return anc
    return None


def node_in_field(container: ast.AST, child: ast.AST, field: str) -> bool:
    """Whether ``child`` hangs (directly) off ``container.<field>``."""
    value = getattr(container, field, None)
    if isinstance(value, list):
        return child in value
    return value is child


def call_name(node: ast.Call, imports: dict[str, str]) -> str | None:
    """Resolved dotted name of a call's target, else ``None``."""
    return resolve_dotted(raw_dotted(node.func), imports)


def local_bindings(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Every name the function binds locally (args, assigns, loops, ...).

    Over-approximates by including bindings from nested scopes — fine
    for PURE001, which only uses this to tell local writes from writes
    that escape the function.
    """
    names: set[str] = set()
    a = fn.args
    for arg in (*a.posonlyargs, *a.args, *a.kwonlyargs):
        names.add(arg.arg)
    if a.vararg:
        names.add(a.vararg.arg)
    if a.kwarg:
        names.add(a.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node is not fn:
                names.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, ast.alias):
            names.add(node.asname or node.name.split(".")[0])
    return names
