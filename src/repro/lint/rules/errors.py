"""ERR001 — no blind ``except Exception`` that swallows silently.

A broad handler is sometimes the right tool (the result cache must treat
*any* unpickling failure as a miss), but a handler that neither
re-raises, logs, nor records an obs counter erases the only evidence a
fault ever happened — precisely what made the PR-4 quarantine path
undiagnosable.  The rule accepts any one of:

* a ``raise`` anywhere in the handler (bare or new exception);
* a logging call (``logging.*``, ``log/logger/LOG.*`` levels,
  ``warnings.warn``);
* an obs recording call (shared detector with OBS001).

Narrow handlers (``except OSError``) are out of scope: catching a named
exception is a statement about *which* failure is expected, which is the
documentation this rule exists to force.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import raw_dotted
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.lint.engine import ModuleContext
from repro.lint.rules import Rule, register_rule
from repro.lint.rules.obs import is_recording_call

#: Exception names whose handlers are "blind" (catch ~everything).
_BLIND = frozenset({"Exception", "BaseException"})

#: Logger method names that count as "evidence was recorded".
_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log", "warn"}
)

#: Receiver names conventionally bound to loggers.
_LOGGER_NAMES = frozenset({"log", "logger", "logging", "LOG", "LOGGER"})


def _is_blind(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True  # bare `except:`
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for t in types:
        dotted = raw_dotted(t)
        if dotted is not None and dotted.split(".")[-1] in _BLIND:
            return True
    return False


def _is_log_call(node: ast.Call) -> bool:
    dotted = raw_dotted(node.func)
    if dotted is None:
        return False
    parts = dotted.split(".")
    if dotted == "warnings.warn":
        return True
    return len(parts) >= 2 and parts[-1] in _LOG_METHODS and (
        parts[0] in _LOGGER_NAMES or parts[-2] in _LOGGER_NAMES
    )


@register_rule
class SilentBlindExcept(Rule):
    """ERR001: blind handlers must re-raise, log, or count the failure."""

    code = "ERR001"
    summary = (
        "bare/`except Exception` handlers must re-raise, log, or record "
        "an obs counter — silent swallowing erases fault evidence"
    )

    def visit_ExceptHandler(self, node: ast.ExceptHandler, ctx: ModuleContext) -> None:
        if not _is_blind(node):
            return
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Raise):
                    return
                if isinstance(sub, ast.Call) and (
                    _is_log_call(sub) or is_recording_call(sub, ctx)
                ):
                    return
        what = "bare `except:`" if node.type is None else "`except Exception`"
        ctx.report(
            self.code,
            node,
            f"{what} swallows silently — re-raise, log the failure, or "
            "record an obs counter so the fault stays diagnosable",
        )
