"""Rule base class and registry.

A rule is a class with a unique ``code``, a one-line ``summary``, and
``visit_<NodeType>`` hooks.  The engine instantiates every enabled rule
once per file and walks the module AST **once**, dispatching each node
to the hooks whose name matches — rules never re-walk the tree
themselves (sub-walks *inside* a hook, e.g. over one function body, are
fine and occasionally necessary).

To add a rule: subclass :class:`Rule`, decorate with
:func:`register_rule`, implement hooks that call
``ctx.report(self.code, node, message)``, and import the module below so
it self-registers.  Full walkthrough: docs/lint.md.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Type

if TYPE_CHECKING:  # circular: engine imports rules for the registry
    from repro.lint.config import LintConfig
    from repro.lint.engine import ModuleContext


class Rule:
    """Base class: one invariant, one code, hooks on AST node types."""

    #: Unique rule code, e.g. ``"DET001"`` (what suppressions name).
    code: str = ""
    #: One-line description shown by ``--list-rules`` and docs.
    summary: str = ""
    #: ``"module"`` rules run per file via ``visit_*`` hooks;
    #: ``"project"`` rules (repro.lint.flow) run once over the whole
    #: indexed project via ``run(project)`` and may emit call chains.
    scope: str = "module"

    def __init__(self, config: "LintConfig") -> None:
        self.config = config

    def begin_module(self, ctx: "ModuleContext") -> None:
        """Called once before the walk (reset per-file state here)."""

    def end_module(self, ctx: "ModuleContext") -> None:
        """Called once after the walk (emit deferred findings here)."""


#: All registered rule classes, by code.
RULE_REGISTRY: dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to :data:`RULE_REGISTRY`."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in RULE_REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code!r}")
    RULE_REGISTRY[cls.code] = cls
    return cls


def all_rules() -> dict[str, Type[Rule]]:
    """Registered rules, by code (insertion order: module import order)."""
    return dict(RULE_REGISTRY)


def hook_table(rule: Rule) -> dict[str, list]:
    """Map node-type name -> bound ``visit_*`` hooks for one rule."""
    table: dict[str, list] = {}
    for name in dir(rule):
        if name.startswith("visit_"):
            node_type = name[len("visit_") :]
            if hasattr(ast, node_type):
                table.setdefault(node_type, []).append(getattr(rule, name))
    return table


# Self-registration: importing the package loads the built-in rule set.
# Order matters: the flow rules reuse detectors from determinism/obs, so
# those modules must be fully loaded first.
from repro.lint.rules import (  # noqa: E402  (registry must exist first)
    determinism,
    errors,
    obs,
    purity,
    validation,
)
from repro.lint.flow import rules as flow  # noqa: E402  (project-scoped rules)

__all__ = [
    "RULE_REGISTRY",
    "Rule",
    "all_rules",
    "determinism",
    "errors",
    "flow",
    "hook_table",
    "obs",
    "purity",
    "register_rule",
    "validation",
]
