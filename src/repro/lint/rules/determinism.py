"""DET001/DET002 — the bit-identical-results invariants.

Simulation code must draw *all* randomness from explicitly seeded
generators and *all* time from the simulated device clock; any wall
clock or process-global RNG makes results differ run to run, which the
golden tests (and the paper's R² ≈ 1 fits) cannot tolerate.  Order must
come from data, never from hash order or the filesystem.

The detectors (:func:`wall_clock_violation`, :func:`global_rng_violation`,
:func:`unordered_reason`, :func:`order_sensitive_sources`) are module
functions so the whole-program flow layer (FLOW001) can reuse the exact
same definition of "nondeterministic" when seeding its taint analysis.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import call_name, raw_dotted, resolve_dotted
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.lint.engine import ModuleContext
from repro.lint.rules import Rule, register_rule

#: Wall-clock reads.  Simulated time lives on ``device.clock``; host
#: timing belongs only in the runner/tracer/benchmarks (config-exempt).
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``numpy.random.<name>`` attributes that are *not* the legacy global
#: RNG: explicit-seeded constructors and generator machinery.
_NP_RANDOM_OK = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
        "RandomState",  # legacy but explicitly seeded at construction
    }
)

#: ``random.<name>`` that are fine: seeded-instance constructors.
_STDLIB_RANDOM_OK = frozenset({"Random", "SystemRandom"})

#: Set-producing expressions: calls whose very name means "unordered".
_UNORDERED_CALLS = frozenset({"set", "frozenset"})

#: Method names that (on sets) return sets; no other builtin container
#: has them, so matching the attribute name alone is safe.
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)

#: Filesystem listings: OS-dependent order, a classic repro breaker.
_FS_LIST_CALLS = frozenset({"os.listdir", "os.scandir", "glob.glob", "glob.iglob"})
_FS_LIST_METHODS = frozenset({"iterdir", "glob", "rglob"})

#: Builtins that materialize their argument *in iteration order*.
_ORDER_SENSITIVE_WRAPPERS = frozenset({"list", "tuple", "enumerate", "reversed", "iter"})


def wall_clock_violation(dotted: str | None) -> str | None:
    """DET001 message for a resolved call name reading the wall clock."""
    if dotted in _WALL_CLOCK:
        return (
            f"wall-clock call `{dotted}` — simulation time must come from "
            "the device clock (host timing is runner/benchmark-only)"
        )
    return None


def global_rng_violation(dotted: str | None) -> str | None:
    """DET001 message for a resolved call name using a global RNG."""
    if dotted is None:
        return None
    head, _, tail = dotted.partition(".")
    if head == "random" and tail and "." not in tail:
        if tail not in _STDLIB_RANDOM_OK:
            return (
                f"global-RNG call `{dotted}` — use a seeded "
                "`np.random.default_rng(seed)` (or `random.Random(seed)`)"
            )
        return None
    if dotted.startswith("numpy.random."):
        fn = dotted.rsplit(".", 1)[-1]
        if fn not in _NP_RANDOM_OK:
            return (
                f"module-level numpy RNG call `{dotted}` — draw from a "
                "seeded `np.random.default_rng(seed)` instance instead"
            )
    return None


def order_sensitive_sources(node: ast.AST) -> list[ast.AST]:
    """Iteration sources ``node`` consumes in an order-sensitive way.

    ``for``/comprehension iterators, the argument of a materialising
    wrapper (``list``/``tuple``/``enumerate``/``reversed``/``iter``),
    and the argument of a ``.join(...)`` call.
    """
    if isinstance(node, ast.For):
        return [node.iter]
    if isinstance(node, ast.comprehension):
        return [node.iter]
    if isinstance(node, ast.Call):
        dotted = raw_dotted(node.func)
        if dotted in _ORDER_SENSITIVE_WRAPPERS and node.args:
            return [node.args[0]]
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and node.args
        ):
            return [node.args[0]]
    return []


def unordered_reason(
    node: ast.AST, imports: dict[str, str], *, flag_dict_keys: bool = False
) -> str | None:
    """Why ``node`` yields elements in nondeterministic order, if so."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set literal/comprehension (hash order)"
    if isinstance(node, ast.Call):
        dotted = resolve_dotted(raw_dotted(node.func), imports)
        if dotted in _UNORDERED_CALLS:
            return f"`{dotted}(...)` (hash order)"
        if dotted in _FS_LIST_CALLS:
            return f"`{dotted}(...)` (filesystem order)"
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in _SET_METHODS:
                return f"`.{node.func.attr}(...)` (set method, hash order)"
            if node.func.attr in _FS_LIST_METHODS and _is_pathlike(
                node.func.value, imports
            ):
                return f"`.{node.func.attr}(...)` (filesystem order)"
            if flag_dict_keys and node.func.attr == "keys":
                return "`.keys()` (strict mode)"
    return None


def _is_pathlike(node: ast.AST, imports: dict[str, str]) -> bool:
    """Whether the receiver is plausibly a ``pathlib.Path``.

    ``.glob``/``.rglob``/``.iterdir`` also exist on other objects;
    require the receiver to be a ``Path(...)``/``PurePath`` call or
    a name containing "path"/"dir" to keep false positives near zero.
    """
    if isinstance(node, ast.Call):
        dotted = resolve_dotted(raw_dotted(node.func), imports)
        return dotted is not None and dotted.rsplit(".", 1)[-1].endswith("Path")
    dotted = raw_dotted(node)
    if dotted is None:
        return False
    tail = dotted.rsplit(".", 1)[-1].lower()
    return "path" in tail or "dir" in tail or "root" in tail


@register_rule
class WallClockGlobalRNG(Rule):
    """DET001: no wall-clock or global-RNG calls in simulation code."""

    code = "DET001"
    summary = (
        "wall-clock (`time.time`, `datetime.now`, ...) and global-RNG "
        "(`random.*`, module-level `np.random.*`) calls are banned in "
        "simulation code; use the device clock and seeded `default_rng`"
    )

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        dotted = call_name(node, ctx.imports)
        if dotted is None:
            return
        message = wall_clock_violation(dotted) or global_rng_violation(dotted)
        if message is not None:
            ctx.report(self.code, node, message)


@register_rule
class UnorderedIteration(Rule):
    """DET002: no hash-order/filesystem-order iteration reaching results."""

    code = "DET002"
    summary = (
        "iterating a set / directory listing in an order-sensitive "
        "position without `sorted()` leaks nondeterministic order into "
        "results"
    )

    def visit_For(self, node: ast.For, ctx: ModuleContext) -> None:
        self._check_sources(node, ctx)

    def visit_comprehension(self, node: ast.comprehension, ctx: ModuleContext) -> None:
        self._check_sources(node, ctx)

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        """Order-sensitive wrappers: ``list(set(...))`` and friends."""
        self._check_sources(node, ctx)

    def _check_sources(self, node: ast.AST, ctx: ModuleContext) -> None:
        for source in order_sensitive_sources(node):
            reason = unordered_reason(
                source,
                ctx.imports,
                flag_dict_keys=self.config.det002_flag_dict_keys,
            )
            if reason is not None:
                ctx.report(
                    self.code,
                    source,
                    f"iteration over {reason} feeds an order-sensitive result — "
                    "wrap the source in `sorted(...)` to pin the order",
                )
