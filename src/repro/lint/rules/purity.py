"""PURE001 — registered sweep kernels must be pure.

The sweep runner's whole determinism story (docs/runner.md) rests on
kernels being pure functions of their keyword parameters: results are
then bit-identical in any process, in any order, with or without the
result cache.  Three statically checkable ways a kernel breaks that:

* ``global``/``nonlocal`` declarations — the kernel writes state that
  outlives the call, so fork-pool workers and in-process runs diverge;
* stores through attributes/subscripts whose root name is not local —
  ``STATE["x"] = ...`` mutates module state the fingerprint cannot see;
* referencing a module-level name bound to ``open(...)`` — an open
  handle captured at import time does not survive the fork-pool pickle
  boundary and aliases file position across workers.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import local_bindings
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.lint.engine import ModuleContext
from repro.lint.rules import Rule, register_rule


@register_rule
class ImpureKernel(Rule):
    """PURE001: sweep kernels write no enclosing state, hold no handles."""

    code = "PURE001"
    summary = (
        "functions registered as sweep kernels must not write globals/"
        "nonlocals or close over open file handles (fork-pool purity)"
    )

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: ModuleContext) -> None:
        self._check(node, ctx)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, ctx: ModuleContext
    ) -> None:
        self._check(node, ctx)

    def _check(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef, ctx: ModuleContext
    ) -> None:
        if id(fn) not in ctx.kernel_function_ids:
            return
        locals_ = local_bindings(fn)
        for node in ast.walk(fn):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                kind = "global" if isinstance(node, ast.Global) else "nonlocal"
                ctx.report(
                    self.code,
                    node,
                    f"kernel `{fn.name}` declares `{kind} "
                    f"{', '.join(node.names)}` — kernels must be pure "
                    "functions of their parameters",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    root = self._store_root(target)
                    if root is not None and root not in locals_:
                        ctx.report(
                            self.code,
                            node,
                            f"kernel `{fn.name}` writes through non-local "
                            f"name `{root}` — mutating enclosing state "
                            "breaks fork-pool determinism",
                        )
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in ctx.open_handle_names
            ):
                ctx.report(
                    self.code,
                    node,
                    f"kernel `{fn.name}` references module-level open "
                    f"handle `{node.id}` — open files do not survive the "
                    "fork-pool boundary; open inside the kernel",
                )

    @staticmethod
    def _store_root(target: ast.AST) -> str | None:
        """Root name of an attribute/subscript store (``a.b[0].c = ...``)."""
        seen_deref = False
        while isinstance(target, (ast.Attribute, ast.Subscript)):
            seen_deref = True
            target = target.value
        if seen_deref and isinstance(target, ast.Name):
            return target.id
        return None
