"""OBS001 — every obs recording call sits under an enabled-guard.

The observability layer's contract (docs/observability.md) is that a
disabled run pays **one boolean test per event** — that is what keeps
the measured overhead under the 5% gate in ``BENCH_obs_overhead.json``
and simulated results byte-identical with obs on or off.  The contract
only holds if *call sites* check ``OBS.enabled`` before touching the
registry: `OBS.counter("x").inc()` on an unguarded path still pays the
dict lookup and object churn even when disabled.

Recognised guards:

* ``if OBS.enabled:`` (the call hangs off the ``body``, not ``orelse``);
* ``if observe:`` where ``observe = OBS.enabled`` anywhere in the file
  (the sweep executor's hoisted-flag pattern);
* ``and``-conjunctions containing either of the above;
* an early return ``if not OBS.enabled: return`` earlier in the same
  function.

Helpers that are *only called* under a guard (e.g. ``_obs_io``) are
invisible to this per-site analysis — mark the call inside them with
``# repro-lint: ignore[OBS001]`` and a comment naming the guard site.
The whole-program layer (FLOW004) then verifies the other half of that
contract: every transitive call path into such a helper is guarded.

The guard detectors take explicit ``enabled_aliases``/``registry_names``
parameters so the flow layer can apply the exact same dominance logic
to arbitrary call sites; the ``ModuleContext``-based wrappers are what
the per-file rule uses.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import ancestors, enclosing_function, node_in_field, raw_dotted
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:
    from repro.lint.engine import ModuleContext
from repro.lint.rules import Rule, register_rule

#: Registry methods that record (everything else — enable/disable/
#: reset/snapshot/render — is control plane, not per-event hot path).
_RECORDING_METHODS = frozenset(
    {"counter", "gauge", "histogram", "io_event", "op_event"}
)

#: Tracer methods that record.
_TRACER_METHODS = frozenset({"record", "record_span", "span"})


def registry_owner(node: ast.AST, registry_names: Iterable[str]) -> bool:
    """Whether ``node`` denotes the process-wide obs registry."""
    dotted = raw_dotted(node)
    if dotted is None:
        return False
    names = tuple(registry_names)
    return dotted in names or dotted.split(".")[-1] in names


def recording_call(node: ast.Call, registry_names: Iterable[str]) -> bool:
    """Whether this call records into the obs registry or its tracer."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr in _RECORDING_METHODS and registry_owner(func.value, registry_names):
        return True
    if (
        func.attr in _TRACER_METHODS
        and isinstance(func.value, ast.Attribute)
        and func.value.attr == "tracer"
        and registry_owner(func.value.value, registry_names)
    ):
        return True
    return False


def is_recording_call(node: ast.Call, ctx: ModuleContext) -> bool:
    """ModuleContext wrapper around :func:`recording_call`.

    Shared with ERR001, which accepts an obs counter as a legitimate way
    for an ``except`` handler to avoid swallowing silently.
    """
    return recording_call(node, ctx.config.obs_registry_names)


def test_guards(
    test: ast.AST, enabled_aliases: set[str], registry_names: Iterable[str]
) -> bool:
    """Whether an ``if`` test guarantees obs is enabled when true."""
    if isinstance(test, ast.Attribute) and test.attr == "enabled":
        return registry_owner(test.value, registry_names)
    if isinstance(test, ast.Name):
        return test.id in enabled_aliases
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(test_guards(v, enabled_aliases, registry_names) for v in test.values)
    return False


def test_rejects(
    test: ast.AST, enabled_aliases: set[str], registry_names: Iterable[str]
) -> bool:
    """Whether an ``if`` test is ``not <enabled>`` (early-return guard)."""
    return (
        isinstance(test, ast.UnaryOp)
        and isinstance(test.op, ast.Not)
        and test_guards(test.operand, enabled_aliases, registry_names)
    )


def _terminates(stmts: list[ast.stmt]) -> bool:
    return bool(stmts) and isinstance(
        stmts[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


def guarded_by_ancestor(
    node: ast.AST, enabled_aliases: set[str], registry_names: Iterable[str]
) -> bool:
    """Whether an enclosing ``if <enabled>:`` dominates ``node``."""
    for anc, child in ancestors(node):
        if isinstance(anc, ast.If) and node_in_field(anc, child, "body"):
            if test_guards(anc.test, enabled_aliases, registry_names):
                return True
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break  # guards outside the enclosing function don't count
    return False


def guarded_by_early_return(
    node: ast.AST, enabled_aliases: set[str], registry_names: Iterable[str]
) -> bool:
    """Whether ``if not <enabled>: return`` earlier in the function guards."""
    fn = enclosing_function(node)
    if fn is None:
        return False
    lineno = getattr(node, "lineno", 0)
    for stmt in ast.walk(fn):
        if (
            isinstance(stmt, ast.If)
            and stmt.lineno < lineno
            and test_rejects(stmt.test, enabled_aliases, registry_names)
            and _terminates(stmt.body)
        ):
            return True
    return False


def site_guarded(
    node: ast.AST, enabled_aliases: set[str], registry_names: Iterable[str]
) -> bool:
    """Whether an enabled-guard dominates ``node`` (either guard form)."""
    return guarded_by_ancestor(
        node, enabled_aliases, registry_names
    ) or guarded_by_early_return(node, enabled_aliases, registry_names)


@register_rule
class UnguardedObsCall(Rule):
    """OBS001: obs recording calls must sit under ``if OBS.enabled:``."""

    code = "OBS001"
    summary = (
        "`OBS.` recording calls (counter/gauge/histogram/io_event/"
        "op_event/tracer.record) must be guarded by `if OBS.enabled:` — "
        "the <5% disabled-overhead gate depends on it"
    )

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        if not is_recording_call(node, ctx):
            return
        if site_guarded(
            node, ctx.enabled_aliases, ctx.config.obs_registry_names
        ):
            return
        ctx.report(
            self.code,
            node,
            "obs recording call outside an `if OBS.enabled:` guard "
            "(guarded helpers: suppress with `# repro-lint: ignore[OBS001]` "
            "and name the guard site)",
        )
