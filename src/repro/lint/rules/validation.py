"""VAL001 — public constructors validate capacity/count/duration params.

PR 4 established the contract: components reject impossible
configurations at construction time with a ``ValueError`` (usually the
:class:`~repro.errors.ConfigurationError` subclass), not ten stack
frames later as a numpy broadcast error.  This rule keeps new
constructors honest: every parameter whose *name* says it is a
capacity, count, size or duration must show validation evidence inside
``__init__``:

* it appears in the test of an ``if`` whose body raises, or in an
  ``assert``; or
* it is forwarded to ``super().__init__`` / another class constructor /
  a ``validate*``/``check*``/``require*`` helper (the callee owns the
  contract then).

Parameters defaulting to ``None`` are skipped (``None`` legitimately
means "unlimited" and is validated only on the non-None branch, which
is beyond static reach).  Dataclass field validation happens in
``__post_init__`` and is out of scope — noted in docs/lint.md.
"""

from __future__ import annotations

import ast
import re

from repro.lint.astutil import parent, raw_dotted
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.lint.engine import ModuleContext
from repro.lint.rules import Rule, register_rule

#: Parameter names that carry a capacity/count/size/duration contract.
PARAM_PATTERN = re.compile(
    r"(^capacity)|(_bytes$)|(_seconds$)|(_ms$)|(^n_)|(_count$)|(^count$)"
    r"|(^max_)|(^parallelism$)|(^jobs$)|(^universe$)|(_budget$)|(_size$)"
)

_VALIDATOR_CALL = re.compile(r"^_?(validate|check|require|clamp)")


def _param_names(fn: ast.FunctionDef) -> list[tuple[str, ast.expr | None]]:
    """(name, default) pairs for every parameter after ``self``."""
    a = fn.args
    positional = [*a.posonlyargs, *a.args]
    defaults: list[ast.expr | None] = [None] * (
        len(positional) - len(a.defaults)
    ) + list(a.defaults)
    out = list(zip((p.arg for p in positional), defaults))
    out.extend(zip((p.arg for p in a.kwonlyargs), a.kw_defaults))
    return [(name, default) for name, default in out if name != "self"]


def _mentions(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == name for sub in ast.walk(node)
    )


def _is_delegating_call(node: ast.Call) -> bool:
    """Calls that take over the validation contract for their arguments."""
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr == "__init__":  # super().__init__(...)
            return True
        if _VALIDATOR_CALL.match(func.attr):
            return True
        dotted = raw_dotted(func)
        if dotted is not None:
            tail = dotted.split(".")[-1]
            return bool(tail[:1].isupper())  # module.ClassName(...)
        return False
    if isinstance(func, ast.Name):
        return bool(_VALIDATOR_CALL.match(func.id)) or func.id[:1].isupper()
    return False


@register_rule
class UnvalidatedConstructorParam(Rule):
    """VAL001: capacity/count/duration ctor params show validation."""

    code = "VAL001"
    summary = (
        "public `__init__` parameters named like capacities/counts/"
        "durations must be validated (raise-on-bad-value, assert, or "
        "delegation to a constructor/validator)"
    )

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: ModuleContext) -> None:
        if node.name != "__init__":
            return
        cls = parent(node)
        if not isinstance(cls, ast.ClassDef) or cls.name.startswith("_"):
            return
        checked = self._evidenced_names(node)
        for name, default in _param_names(node):
            if not PARAM_PATTERN.search(name):
                continue
            if isinstance(default, ast.Constant) and default.value is None:
                continue
            if name not in checked:
                ctx.report(
                    self.code,
                    node,
                    f"`{cls.name}.__init__` parameter `{name}` is never "
                    "validated — raise ConfigurationError on bad values "
                    "(see the PR-4 ValueError contracts)",
                )

    @staticmethod
    def _evidenced_names(fn: ast.FunctionDef) -> set[str]:
        """Parameter names with validation evidence in the body."""
        evidenced: set[str] = set()
        raising_ifs = [
            stmt
            for stmt in ast.walk(fn)
            if isinstance(stmt, ast.If)
            and any(isinstance(s, ast.Raise) for s in ast.walk(stmt))
        ]
        for node in ast.walk(fn):
            if isinstance(node, ast.Assert):
                evidenced.update(
                    sub.id
                    for sub in ast.walk(node.test)
                    if isinstance(sub, ast.Name)
                )
            elif isinstance(node, ast.Call) and _is_delegating_call(node):
                for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                    evidenced.update(
                        sub.id
                        for sub in ast.walk(arg)
                        if isinstance(sub, ast.Name)
                    )
        for stmt in raising_ifs:
            evidenced.update(
                sub.id
                for sub in ast.walk(stmt.test)
                if isinstance(sub, ast.Name)
            )
        return evidenced
