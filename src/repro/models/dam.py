"""The Disk-Access Machine (DAM) model [Aggarwal & Vitter 1988].

The DAM assumes the device transfers data in blocks of size ``B`` and that
every block transfer costs exactly one unit, regardless of how much of the
block is useful.  An IO of ``x`` bytes therefore costs ``ceil(x / B)``.

The DAM deliberately ignores (a) the cheaper marginal cost of large
sequential transfers on HDDs and (b) internal parallelism on SSDs.  The
paper's point (its Lemma 1) is that with ``B`` set to the *half-bandwidth
point* the DAM is within a factor of 2 of the affine model — close enough
for asymptotics, too blunt for parameter tuning.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.models.base import CostModel


class DAMModel(CostModel):
    """Unit cost per size-``block_bytes`` block transfer.

    Parameters
    ----------
    block_bytes:
        The DAM block size ``B`` in bytes.
    setup_seconds:
        Seconds per block transfer (used to convert costs to seconds so DAM
        predictions can be overlaid on affine/PDAM ones).  Defaults to 1.0.
    """

    def __init__(self, block_bytes: int, setup_seconds: float = 1.0) -> None:
        if block_bytes <= 0:
            raise ConfigurationError(f"block_bytes must be positive, got {block_bytes}")
        if setup_seconds <= 0:
            raise ConfigurationError(f"setup_seconds must be positive, got {setup_seconds}")
        self.block_bytes = int(block_bytes)
        self.setup_seconds = float(setup_seconds)

    def blocks(self, nbytes: int) -> int:
        """Number of size-``B`` blocks an IO of ``nbytes`` occupies."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be non-negative, got {nbytes}")
        return max(1, math.ceil(nbytes / self.block_bytes)) if nbytes else 0

    def cost(self, nbytes: int) -> float:
        """DAM cost of one IO: the number of blocks it spans."""
        return float(self.blocks(nbytes))

    @classmethod
    def at_half_bandwidth_point(
        cls, setup_seconds: float, bandwidth_seconds_per_byte: float
    ) -> "DAMModel":
        """DAM with ``B`` at the half-bandwidth point ``s / t``.

        At this block size an IO spends equal time in setup and in transfer,
        which is the choice that makes the DAM 2-competitive with the affine
        model (the paper's Lemma 1).  Each block then takes ``2 s`` seconds.
        """
        if setup_seconds <= 0 or bandwidth_seconds_per_byte <= 0:
            raise ConfigurationError("setup and bandwidth costs must be positive")
        block = max(1, round(setup_seconds / bandwidth_seconds_per_byte))
        return cls(block_bytes=block, setup_seconds=2.0 * setup_seconds)
