"""The PDAM model (paper Definition 1) — most predictive of SSDs/NVMe.

In each *time step* the device serves up to ``P`` IOs, each of size at most
``B``.  Slots not presented with an IO are wasted.  Performance is measured
in time steps, not in IOs: a sequential scan of ``N`` bytes costs
``N / (P B)`` steps even though it issues ``N / B`` IOs.

``P`` models the internal parallelism of flash devices (channels x packages
x dies); the paper's Table 1 recovers ``P`` between 2.9 and 5.5 for
commodity SATA SSDs via segmented linear regression.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.models.base import CostModel


class PDAMModel(CostModel):
    """``P`` parallel size-``B`` IO slots per time step.

    Parameters
    ----------
    parallelism:
        ``P`` — the number of block IOs served per time step.  The paper
        allows fractional fitted values (e.g. 3.3 for a Samsung 860 pro);
        we accept any positive float, and :meth:`steps` rounds up.
    block_bytes:
        ``B`` — the block size in bytes.
    step_seconds:
        Duration of one time step (one block-IO latency) in seconds.
    """

    def __init__(
        self, parallelism: float, block_bytes: int, step_seconds: float = 1.0
    ) -> None:
        if parallelism <= 0:
            raise ConfigurationError(f"parallelism must be positive, got {parallelism}")
        if block_bytes <= 0:
            raise ConfigurationError(f"block_bytes must be positive, got {block_bytes}")
        if step_seconds <= 0:
            raise ConfigurationError(f"step_seconds must be positive, got {step_seconds}")
        self.parallelism = float(parallelism)
        self.block_bytes = int(block_bytes)
        self.setup_seconds = float(step_seconds)

    @property
    def step_seconds(self) -> float:
        """Alias for :attr:`setup_seconds` in PDAM vocabulary."""
        return self.setup_seconds

    @property
    def saturation_bytes_per_second(self) -> float:
        """Peak device throughput ``P B / step`` — the paper's ``∝ PB``."""
        return self.parallelism * self.block_bytes / self.setup_seconds

    def blocks(self, nbytes: int) -> int:
        """Block IOs needed for ``nbytes`` of data."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be non-negative, got {nbytes}")
        return math.ceil(nbytes / self.block_bytes) if nbytes else 0

    def cost(self, nbytes: int) -> float:
        """Time steps for a *single* request of ``nbytes``.

        A lone request larger than ``B`` can be striped across the ``P``
        slots, so it completes in ``ceil(blocks / P)`` steps.
        """
        return float(math.ceil(self.blocks(nbytes) / self.parallelism)) if nbytes else 0.0

    def steps(self, n_block_ios: int) -> int:
        """Time steps to serve ``n_block_ios`` independent block IOs."""
        if n_block_ios < 0:
            raise ConfigurationError(f"n_block_ios must be non-negative, got {n_block_ios}")
        return math.ceil(n_block_ios / self.parallelism)

    def batch_cost(self, sizes: Sequence[int] | Iterable[int]) -> float:
        """Steps to serve a batch of concurrent IOs.

        The batch is decomposed into block IOs which fill the ``P`` slots of
        successive steps (work-conserving, order-free — valid because PDAM
        block IOs are interchangeable within a step).
        """
        total_blocks = sum(self.blocks(n) for n in sizes)
        return float(self.steps(total_blocks))

    def dependent_chain_steps(self, chain_length: int) -> int:
        """Steps for ``chain_length`` IOs that must be issued sequentially.

        A root-to-leaf tree walk is such a chain: each IO's target depends on
        the previous IO's contents, so parallel slots cannot help and the
        chain takes one step per IO.  This is the effect behind the paper's
        Section 8 discussion of single-client B-tree queries.
        """
        if chain_length < 0:
            raise ConfigurationError(f"chain_length must be non-negative, got {chain_length}")
        return chain_length
