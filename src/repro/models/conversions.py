"""Lemma 1 of the paper: affine <-> DAM transfer results.

An affine algorithm with cost ``C`` can be transformed into a DAM algorithm
with cost ``2C`` when blocks have size ``B = 1/alpha`` (the half-bandwidth
point), and vice versa.  These helpers make the factor-of-2 relationship
executable so tests and experiments can check it numerically.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.models.affine import AffineModel
from repro.models.dam import DAMModel


def half_bandwidth_point(alpha: float) -> float:
    """The IO size ``1/alpha`` where setup time equals transfer time."""
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be positive, got {alpha}")
    return 1.0 / alpha


def dam_model_for(affine: AffineModel) -> DAMModel:
    """The DAM the paper's Lemma 1 pairs with a given affine model."""
    return DAMModel(
        block_bytes=max(1, round(affine.half_bandwidth_bytes)),
        setup_seconds=affine.setup_seconds,
    )


def dam_cost_of_affine_algorithm(io_sizes: Sequence[int] | Iterable[int], alpha: float) -> float:
    """DAM cost after replacing each affine IO with half-bandwidth blocks.

    Each affine IO of size ``x`` becomes ``ceil(x / (1/alpha))`` unit-cost
    block IOs, but at least one.  Lemma 1 guarantees this is at most twice
    the affine cost of the original IO sequence.
    """
    b = half_bandwidth_point(alpha)
    total = 0.0
    for x in io_sizes:
        if x < 0:
            raise ConfigurationError(f"IO sizes must be non-negative, got {x}")
        total += max(1.0, math.ceil(x / b))
    return total


def affine_cost_of_dam_algorithm(n_block_ios: int, alpha: float) -> float:
    """Affine cost of a DAM algorithm run with half-bandwidth blocks.

    Each unit-cost DAM block IO of size ``B = 1/alpha`` costs
    ``1 + alpha*B = 2`` in the affine model, hence cost ``2C`` (Lemma 1).
    """
    if n_block_ios < 0:
        raise ConfigurationError(f"n_block_ios must be non-negative, got {n_block_ios}")
    b = half_bandwidth_point(alpha)
    return n_block_ios * (1.0 + alpha * b)


def affine_cost(io_sizes: Sequence[int] | Iterable[int], alpha: float) -> float:
    """Total affine cost ``sum(1 + alpha*x)`` of an IO sequence."""
    model = AffineModel(alpha=alpha)
    return model.batch_cost(list(io_sizes))
