"""The affine model (paper Definition 2) — most predictive of hard disks.

IOs may have any size.  An IO of ``x`` bytes costs ``1 + alpha * x`` in
normalized units, where the ``1`` is the setup (seek + rotation) cost and
``alpha <= 1`` is the normalized bandwidth cost.  For a hard disk with seek
time ``s`` seconds and transfer cost ``t`` seconds/byte, ``alpha = t / s``.

The model's power comes from pricing *partial* and *variable-size* IOs:
that is exactly what the DAM cannot do, and what drives the node-size
results in the paper's Sections 5-6.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.models.base import CostModel


class AffineModel(CostModel):
    """Affine IO cost ``1 + alpha * nbytes`` (normalized units).

    Parameters
    ----------
    alpha:
        Normalized per-byte bandwidth cost (``t / s``).  Must be positive;
        in practice ``alpha << 1`` when sizes are measured in bytes.
    setup_seconds:
        The seek/setup time ``s`` in seconds.  ``seconds(x)`` then equals
        ``s + t*x`` with ``t = alpha * s``.
    """

    def __init__(self, alpha: float, setup_seconds: float = 1.0) -> None:
        if alpha <= 0:
            raise ConfigurationError(f"alpha must be positive, got {alpha}")
        if setup_seconds <= 0:
            raise ConfigurationError(f"setup_seconds must be positive, got {setup_seconds}")
        self.alpha = float(alpha)
        self.setup_seconds = float(setup_seconds)

    @classmethod
    def from_hardware(cls, seek_seconds: float, seconds_per_byte: float) -> "AffineModel":
        """Build the model from measured hardware parameters ``s`` and ``t``.

        This is the direction used when fitting Table 2: regression recovers
        ``s`` (intercept) and ``t`` (slope), and ``alpha = t / s``.
        """
        if seek_seconds <= 0 or seconds_per_byte <= 0:
            raise ConfigurationError("seek_seconds and seconds_per_byte must be positive")
        return cls(alpha=seconds_per_byte / seek_seconds, setup_seconds=seek_seconds)

    @property
    def seconds_per_byte(self) -> float:
        """The bandwidth cost ``t`` in seconds per byte."""
        return self.alpha * self.setup_seconds

    @property
    def half_bandwidth_bytes(self) -> float:
        """IO size where setup time equals transfer time: ``1 / alpha``."""
        return 1.0 / self.alpha

    def cost(self, nbytes: int) -> float:
        """Normalized cost ``1 + alpha * nbytes`` of a single IO."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be non-negative, got {nbytes}")
        return 1.0 + self.alpha * nbytes
