"""Abstract interface shared by the DAM, affine and PDAM cost models.

A *cost model* assigns a cost to IOs.  Costs are reported in two unit
systems:

* **normalized cost** (:meth:`CostModel.cost`): the paper's convention, in
  which one IO setup costs ``1``.  The affine model's ``1 + alpha*x`` and the
  DAM's "count the blocks" are both normalized costs.
* **seconds** (:meth:`CostModel.seconds`): wall-clock-style device time,
  obtained by scaling normalized cost by the model's setup time.  The
  microbenchmark experiments (Figures 1-3, Tables 1-2) report seconds so the
  regression recovers the hardware parameters ``s`` and ``t`` directly.

Models also price *batches* of concurrently-issued IOs
(:meth:`CostModel.batch_seconds`); this is where the PDAM's parallelism
shows up and where the serial models simply sum.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence


class CostModel(ABC):
    """Prices IOs in normalized cost units and in seconds.

    Subclasses must define :meth:`cost` (normalized units) and
    :attr:`setup_seconds` (the duration of one normalized cost unit).
    """

    #: Seconds corresponding to one normalized cost unit (the IO setup time).
    setup_seconds: float = 1.0

    @abstractmethod
    def cost(self, nbytes: int) -> float:
        """Normalized cost of a single IO of ``nbytes`` bytes."""

    def seconds(self, nbytes: int) -> float:
        """Device seconds consumed by a single IO of ``nbytes`` bytes."""
        return self.cost(nbytes) * self.setup_seconds

    def batch_cost(self, sizes: Sequence[int] | Iterable[int]) -> float:
        """Normalized cost of a batch of IOs issued *concurrently*.

        Serial models (DAM, affine) sum the per-IO costs; the PDAM
        overrides this to account for its ``P`` parallel slots.
        """
        return float(sum(self.cost(n) for n in sizes))

    def batch_seconds(self, sizes: Sequence[int] | Iterable[int]) -> float:
        """Device seconds consumed by a concurrently-issued batch of IOs."""
        return self.batch_cost(sizes) * self.setup_seconds

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(
            f"{k}={v!r}" for k, v in sorted(vars(self).items()) if not k.startswith("_")
        )
        return f"{type(self).__name__}({params})"
