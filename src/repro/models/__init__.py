"""Storage cost models: DAM, affine, and PDAM.

This subpackage implements the three models the paper contrasts:

* :class:`~repro.models.dam.DAMModel` — the classic Disk-Access Machine
  [Aggarwal & Vitter 1988]: unit cost per size-``B`` block transfer.
* :class:`~repro.models.affine.AffineModel` — an IO of ``x`` bytes costs
  ``1 + alpha * x`` (setup-normalized); most predictive of hard disks.
* :class:`~repro.models.pdam.PDAMModel` — up to ``P`` size-``B`` IOs are
  served per time step; most predictive of SSDs/NVMe.

:mod:`repro.models.analysis` contains the closed-form cost functions of the
paper's Table 3 and the optimal-node-size corollaries; and
:mod:`repro.models.conversions` contains the Lemma 1 affine<->DAM transfer
results and the half-bandwidth point.
"""

from repro.models.base import CostModel
from repro.models.dam import DAMModel
from repro.models.affine import AffineModel
from repro.models.pdam import PDAMModel
from repro.models.conversions import (
    half_bandwidth_point,
    dam_cost_of_affine_algorithm,
    affine_cost_of_dam_algorithm,
)

__all__ = [
    "CostModel",
    "DAMModel",
    "AffineModel",
    "PDAMModel",
    "half_bandwidth_point",
    "dam_cost_of_affine_algorithm",
    "affine_cost_of_dam_algorithm",
]
