"""Closed-form affine-model cost functions (paper Table 3, Sections 5-6).

Conventions
-----------
* Node size ``B`` and cache size ``M`` are measured in *entries* (unit-size
  key-value pairs), matching the paper's convention that an element has
  unit size.
* ``alpha`` is the normalized per-entry bandwidth cost, so one IO of a
  size-``B`` node costs ``1 + alpha * B``.
* All costs are per operation, in normalized affine units, and include the
  ``log(N/M)`` uncached-height factor from the paper's lemmas (the top
  ``log M`` levels of any of these trees are assumed cached).

The functions here are what experiment E4 (Table 3) evaluates and what the
fitted "Affine" overlay lines in Figures 2-3 are drawn from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import optimize

from repro.errors import ConfigurationError


def _check_common(B: float, N: float, M: float, alpha: float) -> None:
    if B <= 1:
        raise ConfigurationError(f"node size B must exceed 1 entry, got {B}")
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be positive, got {alpha}")
    if N <= M:
        raise ConfigurationError(f"need N > M for an out-of-cache analysis, got N={N}, M={M}")
    if M <= 0:
        raise ConfigurationError(f"M must be positive, got {M}")


def uncached_height(N: float, M: float, fanout: float) -> float:
    """Number of non-cached levels, ``log_fanout(N / M)`` (at least 1)."""
    if fanout <= 1:
        raise ConfigurationError(f"fanout must exceed 1, got {fanout}")
    return max(1.0, math.log(N / M) / math.log(fanout))


# ---------------------------------------------------------------------------
# B-tree (paper Lemma 5)
# ---------------------------------------------------------------------------

def btree_op_cost(B: float, alpha: float, N: float, M: float) -> float:
    """Affine cost of a B-tree point query / insert / delete (Lemma 5).

    ``(1 + alpha*B) * log_{B+1}(N/M)``.
    """
    _check_common(B, N, M, alpha)
    return (1.0 + alpha * B) * uncached_height(N, M, B + 1.0)


def btree_range_cost(B: float, alpha: float, N: float, M: float, ell: float) -> float:
    """Affine cost of a B-tree range query returning ``ell`` items (Lemma 5).

    ``(1 + ceil(ell/B)) * (1 + alpha*B)`` leaf IOs plus the point-query
    descent.
    """
    _check_common(B, N, M, alpha)
    if ell < 0:
        raise ConfigurationError(f"ell must be non-negative, got {ell}")
    leaves = 1.0 + math.ceil(ell / B)
    return leaves * (1.0 + alpha * B) + btree_op_cost(B, alpha, N, M)


def btree_write_amplification(B: float) -> float:
    """Worst-case B-tree write amplification, ``Theta(B)`` (Lemma 3).

    Under random updates a size-``B`` leaf is written back after ``O(1)``
    unit-size modifications.
    """
    if B <= 0:
        raise ConfigurationError(f"B must be positive, got {B}")
    return float(B)


# ---------------------------------------------------------------------------
# B^epsilon-tree, naive whole-node IOs (paper Lemma 8)
# ---------------------------------------------------------------------------

def betree_insert_cost(B: float, F: float, alpha: float, N: float, M: float) -> float:
    """Amortized affine insert cost of a naive Bε-tree (Lemma 8).

    ``(F/B + alpha*F) * log_F(N/M)`` — flushing an element down one level
    moves ``Theta(B)`` messages with ``Theta(F)`` IOs touching ``Theta(FB)``
    bytes.
    """
    _check_common(B, N, M, alpha)
    if not 1 < F <= B:
        raise ConfigurationError(f"need 1 < F <= B, got F={F}, B={B}")
    return (F / B + alpha * F) * uncached_height(N, M, F)


def betree_query_cost_naive(B: float, F: float, alpha: float, N: float, M: float) -> float:
    """Affine point-query cost of a naive Bε-tree (Lemma 8).

    ``(1 + alpha*B) * log_F(N/M)`` — each level reads a whole node.
    """
    _check_common(B, N, M, alpha)
    if not 1 < F <= B:
        raise ConfigurationError(f"need 1 < F <= B, got F={F}, B={B}")
    return (1.0 + alpha * B) * uncached_height(N, M, F)


def betree_query_cost_optimized(B: float, F: float, alpha: float, N: float, M: float) -> float:
    """Affine point-query cost of the Theorem 9 Bε-tree.

    ``(1 + alpha*B/F + alpha*F) * log_F(N/M) * (1 + 1/log F)`` — per level,
    one IO reads the relevant per-child buffer segment (``<= B/F`` entries)
    plus the child's pivot set (``~F`` entries), not the whole node.
    """
    _check_common(B, N, M, alpha)
    if not 1 < F <= B:
        raise ConfigurationError(f"need 1 < F <= B, got F={F}, B={B}")
    per_level = 1.0 + alpha * B / F + alpha * F
    slack = 1.0 + 1.0 / math.log(F)
    return per_level * uncached_height(N, M, F) * slack


def betree_range_cost(
    B: float, F: float, alpha: float, N: float, M: float, ell: float
) -> float:
    """Affine range-query cost returning ``ell`` items (Lemma 8 / Theorem 9)."""
    _check_common(B, N, M, alpha)
    if ell < 0:
        raise ConfigurationError(f"ell must be non-negative, got {ell}")
    leaves = 1.0 + math.ceil(ell / B)
    return leaves * (1.0 + alpha * B) + betree_query_cost_optimized(B, F, alpha, N, M)


def betree_write_amplification(B: float, F: float, N: float, M: float) -> float:
    """Bε-tree write amplification ``O(F log_F(N/M))`` (Theorem 4(4)).

    Each element is rewritten once per level it is flushed through, and a
    flush rewrites ``Theta(FB)`` bytes to move ``Theta(B)`` elements.
    """
    if not 1 < F <= B:
        raise ConfigurationError(f"need 1 < F <= B, got F={F}, B={B}")
    return F * uncached_height(N, M, F)


# ---------------------------------------------------------------------------
# Table 3 rows
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SensitivityRow:
    """One row of the paper's Table 3, evaluated at concrete parameters."""

    structure: str
    node_entries: float
    insert_cost: float
    query_cost: float


def table3_row_btree(B: float, alpha: float, N: float, M: float) -> SensitivityRow:
    """Table 3, B-tree row: insert and query both cost ``(1+aB)/log B``-ish."""
    c = btree_op_cost(B, alpha, N, M)
    return SensitivityRow("B-tree", B, c, c)


def table3_row_betree_sqrtB(B: float, alpha: float, N: float, M: float) -> SensitivityRow:
    """Table 3, Bε-tree with ``F = sqrt(B)`` (ε = 1/2) row."""
    F = math.sqrt(B)
    return SensitivityRow(
        "Bε-tree (F=√B)",
        B,
        betree_insert_cost(B, F, alpha, N, M),
        betree_query_cost_optimized(B, F, alpha, N, M),
    )


def table3_row_betree(B: float, F: float, alpha: float, N: float, M: float) -> SensitivityRow:
    """Table 3, general-fanout Bε-tree row."""
    return SensitivityRow(
        f"Bε-tree (F={F:g})",
        B,
        betree_insert_cost(B, F, alpha, N, M),
        betree_query_cost_optimized(B, F, alpha, N, M),
    )


# ---------------------------------------------------------------------------
# Optimal node sizes (Corollaries 6, 7, 11, 12)
# ---------------------------------------------------------------------------

def optimal_btree_node_size(alpha: float, *, bracket_hi: float | None = None) -> float:
    """Numeric argmin of the B-tree per-op cost ``(1+alpha*x)/ln(x+1)``.

    Corollary 7 proves the optimum is ``Theta(1/(alpha * ln(1/alpha)))`` —
    strictly *below* the half-bandwidth point ``1/alpha``.  This solver
    returns the exact numeric optimum for a concrete ``alpha``.
    """
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be positive, got {alpha}")
    hi = bracket_hi if bracket_hi is not None else 10.0 / alpha
    result = optimize.minimize_scalar(
        lambda x: (1.0 + alpha * x) / math.log(x + 1.0),
        bounds=(1.0 + 1e-9, hi),
        method="bounded",
        options={"xatol": 1e-9 * hi},
    )
    return float(result.x)


def btree_node_size_closed_form(alpha: float) -> float:
    """Corollary 7's closed form ``1 / (alpha * ln(1/alpha))``.

    Valid (positive) only for ``alpha < 1``; matches the numeric optimum up
    to a constant factor.
    """
    if not 0 < alpha < 1:
        raise ConfigurationError(f"closed form requires 0 < alpha < 1, got {alpha}")
    return 1.0 / (alpha * math.log(1.0 / alpha))


def corollary7_stationarity_residual(x: float, alpha: float) -> float:
    """Residual of Corollary 7's stationarity condition at ``x``.

    The optimum satisfies ``1 + alpha*x = alpha * ln(x+1) * (1+x)``; the
    returned value is the (relative) difference between the two sides and is
    ~0 at the true optimum.
    """
    if x <= 0 or alpha <= 0:
        raise ConfigurationError("x and alpha must be positive")
    lhs = 1.0 + alpha * x
    rhs = alpha * math.log(x + 1.0) * (1.0 + x)
    return (lhs - rhs) / lhs


def optimal_betree_params(alpha: float) -> tuple[float, float]:
    """Corollary 12's simultaneously-optimal Bε-tree parameters.

    Returns ``(F, B)`` with ``F = Theta(1/(alpha*ln(1/alpha)))`` and
    ``B = F**2``.  With these settings the Theorem 9 tree's query cost
    matches the optimal B-tree up to low-order terms while inserts are a
    ``Theta(log(1/alpha))`` factor faster.
    """
    if not 0 < alpha < 1:
        raise ConfigurationError(f"requires 0 < alpha < 1, got {alpha}")
    F = 1.0 / (alpha * math.log(1.0 / alpha))
    return F, F * F


def corollary11_io_overhead(B: float, F: float, alpha: float) -> float:
    """Per-node query IO overhead ``alpha*B/F + alpha*F`` of Corollary 11.

    When ``B = Omega(F^2)`` and ``B = o(F/alpha)`` this is ``o(1)``, i.e.
    each per-level IO costs ``1 + o(1)`` and searches are optimal to within
    low-order terms.
    """
    if B <= 0 or F <= 1 or alpha <= 0:
        raise ConfigurationError("need B > 0, F > 1, alpha > 0")
    return alpha * B / F + alpha * F


def mixed_workload_cost(
    B: float,
    F: float,
    alpha: float,
    N: float,
    M: float,
    *,
    query_fraction: float = 0.5,
    write_cost_multiplier: float = 1.0,
) -> float:
    """Affine cost of a query/insert mix on read/write-asymmetric hardware.

    Queries are reads; the data movement of flush cascades is write-
    dominated, so insert cost scales with the device's write multiplier
    (paper Section 3: on NVMe "writes are more expensive than reads, and
    this has algorithmic consequences").
    """
    if not 0.0 <= query_fraction <= 1.0:
        raise ConfigurationError(f"query_fraction must be in [0, 1], got {query_fraction}")
    if write_cost_multiplier <= 0:
        raise ConfigurationError(
            f"write_cost_multiplier must be positive, got {write_cost_multiplier}"
        )
    q = betree_query_cost_optimized(B, F, alpha, N, M)
    i = betree_insert_cost(B, F, alpha, N, M) * write_cost_multiplier
    return query_fraction * q + (1.0 - query_fraction) * i


def optimal_fanout_asymmetric(
    B: float,
    alpha: float,
    N: float,
    M: float,
    *,
    query_fraction: float = 0.5,
    write_cost_multiplier: float = 1.0,
) -> float:
    """Fanout minimizing :func:`mixed_workload_cost` at fixed node size.

    As writes get more expensive, the optimum shifts toward *smaller*
    fanouts (more write-optimization): flush write traffic scales with
    ``F`` while query read cost shrinks only logarithmically in it.
    """
    _check_common(B, N, M, alpha)
    lo, hi = 2.0, max(2.0 + 1e-6, min(B, math.sqrt(B) * 8))
    result = optimize.minimize_scalar(
        lambda f: mixed_workload_cost(
            B, f, alpha, N, M,
            query_fraction=query_fraction,
            write_cost_multiplier=write_cost_multiplier,
        ),
        bounds=(lo, hi),
        method="bounded",
        options={"xatol": 1e-6 * hi},
    )
    return float(result.x)


def optimal_mixed_betree_params(
    alpha: float,
    N: float,
    M: float,
    *,
    query_fraction: float = 0.5,
    write_cost_multiplier: float = 1.0,
    fanout_bounds: tuple[float, float] | None = None,
    node_cap: float | None = None,
) -> tuple[float, float]:
    """Jointly optimal ``(F, B)`` for :func:`mixed_workload_cost`.

    Generalizes Corollary 12 to a query/insert mix on possibly
    read/write-asymmetric hardware: minimizes
    ``w * query(B, F) + (1-w) * insert(B, F) * write_mult`` over the domain
    ``2 <= F <= B <= node_cap``.  At ``w = 1`` this collapses toward the
    query-optimal (Corollary 11/12) setting; at ``w = 0`` toward the
    write-optimized end of the WOD tradeoff (larger B, the cap binding).

    For fixed ``F`` the mixed cost is convex in ``B`` (a linear query term
    plus a convex ``F/B`` insert term), so the inner argmin is a bounded
    scalar minimize; the outer minimize over ``F`` runs a log-spaced grid
    refined by a bounded search around the best cell, which is robust to
    the objective's plateaus.
    """
    if not 0 < alpha < 1:
        raise ConfigurationError(f"requires 0 < alpha < 1, got {alpha}")
    if not 0.0 <= query_fraction <= 1.0:
        raise ConfigurationError(f"query_fraction must be in [0, 1], got {query_fraction}")
    if N <= M or M <= 0:
        raise ConfigurationError(f"need N > M > 0, got N={N}, M={M}")
    cap = node_cap if node_cap is not None else 10.0 / alpha
    if fanout_bounds is None:
        f_lo, f_hi = 2.0, max(4.0, math.sqrt(cap))
    else:
        f_lo, f_hi = fanout_bounds
    if not 1 < f_lo < f_hi or f_hi > cap:
        raise ConfigurationError(
            f"need 1 < f_lo < f_hi <= node_cap, got ({f_lo}, {f_hi}), cap {cap}"
        )

    def best_B_for(F: float) -> tuple[float, float]:
        result = optimize.minimize_scalar(
            lambda logB: mixed_workload_cost(
                math.exp(logB), F, alpha, N, M,
                query_fraction=query_fraction,
                write_cost_multiplier=write_cost_multiplier,
            ),
            bounds=(math.log(F * (1 + 1e-9)), math.log(cap)),
            method="bounded",
            options={"xatol": 1e-8},
        )
        return math.exp(float(result.x)), float(result.fun)

    # Coarse log-grid over F, then polish within the winning cell.
    grid = [math.exp(v) for v in
            _linspace(math.log(f_lo), math.log(f_hi), 65)]
    costs = [best_B_for(F)[1] for F in grid]
    k = min(range(len(grid)), key=costs.__getitem__)
    lo = grid[max(0, k - 1)]
    hi = grid[min(len(grid) - 1, k + 1)]
    refine = optimize.minimize_scalar(
        lambda logF: best_B_for(math.exp(logF))[1],
        bounds=(math.log(lo), math.log(hi)),
        method="bounded",
        options={"xatol": 1e-8},
    )
    F_best = math.exp(float(refine.x))
    if float(refine.fun) > costs[k]:
        F_best = grid[k]
    B_best, _ = best_B_for(F_best)
    return F_best, B_best


def _linspace(lo: float, hi: float, n: int) -> list[float]:
    step = (hi - lo) / (n - 1)
    return [lo + i * step for i in range(n)]


def betree_speedup_over_btree(alpha: float, N: float, M: float) -> float:
    """Insert speedup of the Corollary 12 Bε-tree over the optimal B-tree.

    Evaluates both closed-form costs at their respective optima; the ratio
    is ``Theta(log(1/alpha))``.
    """
    if N <= M:
        raise ConfigurationError(f"need N > M, got N={N}, M={M}")
    x_bt = optimal_btree_node_size(alpha)
    F, B = optimal_betree_params(alpha)
    bt = btree_op_cost(x_bt, alpha, N, M)
    be = betree_insert_cost(B, F, alpha, N, M)
    return bt / be
