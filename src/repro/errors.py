"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError, ValueError):
    """A component was constructed with invalid or inconsistent parameters.

    Also a :class:`ValueError`: bad constructor arguments are value errors,
    and callers outside this package reasonably write ``except ValueError``.
    """


class StorageError(ReproError):
    """Base class for storage-stack errors."""


class OutOfSpaceError(StorageError):
    """The extent allocator could not satisfy an allocation request."""


class InvalidIOError(StorageError, ValueError):
    """An IO request was malformed (bad offset, zero length, out of range).

    Also a :class:`ValueError` for the same reason as
    :class:`ConfigurationError`.
    """


class TransientIOError(StorageError):
    """An injected transient device failure (see :mod:`repro.faults`).

    Retrying the same IO may succeed; resilience policies do exactly that.
    Fault-free devices never raise it.
    """


class CacheError(StorageError):
    """Buffer-cache invariant violation (e.g. unpinning an unpinned block)."""


class TreeError(ReproError):
    """Base class for dictionary (tree) errors."""


class KeyOrderError(TreeError):
    """Keys were supplied out of order where sorted order is required."""


class NodeOverflowError(TreeError):
    """A node exceeded its byte budget and could not be split."""


class FitError(ReproError):
    """A regression/fitting routine could not produce a valid fit."""
