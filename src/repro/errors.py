"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError, ValueError):
    """A component was constructed with invalid or inconsistent parameters.

    Also a :class:`ValueError`: bad constructor arguments are value errors,
    and callers outside this package reasonably write ``except ValueError``.
    """


class StorageError(ReproError):
    """Base class for storage-stack errors."""


class OutOfSpaceError(StorageError):
    """The extent allocator could not satisfy an allocation request."""


class InvalidIOError(StorageError, ValueError):
    """An IO request was malformed (bad offset, zero length, out of range).

    Also a :class:`ValueError` for the same reason as
    :class:`ConfigurationError`.
    """


class TransientIOError(StorageError):
    """An injected transient device failure (see :mod:`repro.faults`).

    Retrying the same IO may succeed; resilience policies do exactly that.
    Fault-free devices never raise it.
    """


class DeviceCrashed(StorageError):
    """The device died mid-run (see :mod:`repro.faults.crash`).

    Carries the frozen crash state (``.state``) describing the IO that was
    in flight — including how many of its bytes persisted (torn writes).
    Unlike :class:`TransientIOError`, retrying cannot help: the device
    refuses all IO until its ``recover()`` method is called.
    """

    def __init__(self, message: str, state: object = None) -> None:
        super().__init__(message)
        self.state = state


class WALError(StorageError):
    """The write-ahead log hit an unrecoverable condition (e.g. extent full)."""


class CacheError(StorageError):
    """Buffer-cache invariant violation (e.g. unpinning an unpinned block)."""


class TreeError(ReproError):
    """Base class for dictionary (tree) errors."""


class KeyOrderError(TreeError):
    """Keys were supplied out of order where sorted order is required."""


class NodeOverflowError(TreeError):
    """A node exceeded its byte budget and could not be split."""


class FitError(ReproError):
    """A regression/fitting routine could not produce a valid fit."""
