"""Key-to-shard routing for the serving layer.

A :class:`ShardMap` is a pure function from key to shard index — it holds
no per-shard state, so the router can live in the request engine, in a
test, or in a workload generator and always agree.  Two policies:

* ``"hash"`` — a SplitMix64-style bit mix of the key, reduced mod the
  shard count.  Spreads any key population (including the sequential and
  clustered ones) evenly; destroys range locality, which is the classic
  serving trade.
* ``"range"`` — equal-width slices of the key universe, preserving range
  locality (and therefore hot-range imbalance under Zipf traffic — the
  imbalance is the point of having the policy).

Both are deterministic and seed-free: routing is part of the cluster's
identity, not of any experiment's randomness.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

#: Routing policies understood by :class:`ShardMap`.
SHARD_POLICIES = ("hash", "range")

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def _mix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer: a fixed bijection of the 64-bit integers."""
    x = (x + np.uint64(0x9E3779B97F4A7C15)) & _MASK64
    x = ((x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _MASK64
    x = ((x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _MASK64
    return x ^ (x >> np.uint64(31))


class ShardMap:
    """Route keys in ``[0, universe)`` to ``n_shards`` shards.

    Parameters
    ----------
    n_shards:
        Number of shards (positive).
    universe:
        Exclusive upper bound of the key space (positive; range policy
        slices it, hash policy only validates against it).
    policy:
        One of :data:`SHARD_POLICIES`.
    """

    def __init__(self, n_shards: int, universe: int, *, policy: str = "hash") -> None:
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be positive, got {n_shards}")
        if universe <= 0:
            raise ConfigurationError(f"universe must be positive, got {universe}")
        if policy not in SHARD_POLICIES:
            raise ConfigurationError(
                f"unknown shard policy {policy!r}; expected one of {SHARD_POLICIES}"
            )
        self.n_shards = int(n_shards)
        self.universe = int(universe)
        self.policy = policy

    def shard_of(self, key: int) -> int:
        """Shard index of one key."""
        if not 0 <= key < self.universe:
            raise ConfigurationError(
                f"key {key} outside universe [0, {self.universe})"
            )
        if self.policy == "hash":
            # Via the array path: numpy warns on *scalar* uint64 overflow
            # even though the wrap-around is exactly what SplitMix64 wants.
            mixed = _mix64(np.array([key], dtype=np.uint64))[0]
            return int(mixed % np.uint64(self.n_shards))
        return key * self.n_shards // self.universe

    def shards_of(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`shard_of` (dtype int64)."""
        arr = np.asarray(keys, dtype=np.int64)
        if arr.size and (int(arr.min()) < 0 or int(arr.max()) >= self.universe):
            raise ConfigurationError("keys outside universe")
        if self.policy == "hash":
            return (_mix64(arr.astype(np.uint64)) % np.uint64(self.n_shards)).astype(
                np.int64
            )
        return arr * self.n_shards // self.universe

    def partition(self, keys: np.ndarray) -> list[np.ndarray]:
        """Split ``keys`` into ``n_shards`` arrays, order preserved per shard."""
        arr = np.asarray(keys, dtype=np.int64)
        owners = self.shards_of(arr)
        return [arr[owners == s] for s in range(self.n_shards)]

    def describe(self) -> dict[str, object]:
        """Stable JSON-able identity."""
        return {
            "n_shards": self.n_shards,
            "universe": self.universe,
            "policy": self.policy,
        }
