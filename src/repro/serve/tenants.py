"""Multi-tenant open-loop traffic: who asks for what, when.

Every tenant owns two private RNG streams — one for arrival times, one
for keys — derived from ``(base_seed, tenant name)`` by a stable CRC mix.
Streams therefore depend only on the tenant's own identity: adding,
removing or reordering *other* tenants never changes a tenant's draws
(pinned by ``tests/serve``), which is what makes A/B comparisons between
tenant mixes meaningful.

Arrivals are an open-loop Poisson process per tenant (exponential
inter-arrival times at the tenant's offered rate): requests keep coming
whether or not the cluster keeps up.  That is the defining difference
from every closed-loop experiment in this repository — queues can grow,
and tail latency at high load is mostly *waiting*, which is exactly the
regime the serving layer exists to manage.

Keys are drawn Zipf-skewed over the loaded key population through
:class:`~repro.workloads.distributions.ZipfKeys`, whose keyed-Feistel
scatter gives each tenant its own hot set (two tenants with the same
``theta`` but different names hammer different keys).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.distributions import ZipfKeys


def derive_seed(base_seed: int, *parts: object) -> int:
    """A stable 31-bit seed from a base seed and any identity parts.

    Uses CRC32 over the repr of the parts — deterministic across
    processes and Python versions (unlike builtin ``hash``), and
    insensitive to everything except ``(base_seed, parts)`` itself.
    """
    text = repr((int(base_seed),) + tuple(parts)).encode("utf-8")
    return zlib.crc32(text) & 0x7FFFFFFF


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's identity, traffic shape and QoS contract.

    Parameters
    ----------
    name:
        Unique tenant identity; seeds the tenant's private RNG streams.
    rate:
        Offered load in requests per simulated second (positive).
    weight:
        Weighted-fair share of service slots (positive; relative).
    theta:
        Zipf skew of the tenant's key popularity (> 1 for numpy zipf).
    rate_limit:
        Admission token-bucket refill rate in requests/second, or ``None``
        for no limit.  Tokens cap at ``burst``.
    burst:
        Token-bucket depth (maximum burst admitted at once).
    """

    name: str
    rate: float
    weight: float = 1.0
    theta: float = 1.2
    rate_limit: float | None = None
    burst: float = 16.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if self.rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.rate}")
        if self.weight <= 0:
            raise ConfigurationError(f"weight must be positive, got {self.weight}")
        if self.theta <= 1.0:
            raise ConfigurationError(f"theta must exceed 1, got {self.theta}")
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ConfigurationError(
                f"rate_limit must be positive or None, got {self.rate_limit}"
            )
        if self.burst < 1.0:
            raise ConfigurationError(f"burst must be >= 1, got {self.burst}")

    def describe(self) -> dict[str, object]:
        """Stable JSON-able identity."""
        return {
            "name": self.name,
            "rate": self.rate,
            "weight": self.weight,
            "theta": self.theta,
            "rate_limit": self.rate_limit,
            "burst": self.burst,
        }


def tenant_arrivals(
    spec: TenantSpec, duration_seconds: float, base_seed: int
) -> np.ndarray:
    """This tenant's arrival times in ``[0, duration)``, sorted ascending.

    A Poisson process at ``spec.rate``: cumulative sums of exponential
    inter-arrival draws from the tenant's private arrival stream.  The
    number of draws depends only on the tenant's own stream, never on
    other tenants.
    """
    if duration_seconds <= 0:
        raise ConfigurationError(
            f"duration_seconds must be positive, got {duration_seconds}"
        )
    rng = np.random.default_rng(derive_seed(base_seed, "arrivals", spec.name))
    mean_gap = 1.0 / spec.rate
    expected = spec.rate * duration_seconds
    # Draw in deterministic fixed-size chunks until the horizon is passed.
    chunk = max(64, int(expected * 1.25) + 1)
    times: list[np.ndarray] = []
    total = 0.0
    while total < duration_seconds:
        gaps = rng.exponential(mean_gap, size=chunk)
        cum = total + np.cumsum(gaps)
        times.append(cum)
        total = float(cum[-1])
    arrivals = np.concatenate(times)
    return arrivals[arrivals < duration_seconds]


def tenant_keys(spec: TenantSpec, n: int, n_keys: int, base_seed: int) -> np.ndarray:
    """``n`` key *indices* in ``[0, n_keys)`` from the tenant's Zipf stream.

    Indices, not keys: the engine resolves them against the loaded key
    list, so the same tenant stream replays identically on any dataset of
    the same size.  The per-tenant scatter seed gives each tenant its own
    hot set.
    """
    if n_keys < 2:
        raise ConfigurationError(f"need at least 2 loaded keys, got {n_keys}")
    dist = ZipfKeys(
        n_keys, seed=derive_seed(base_seed, "keys", spec.name), theta=spec.theta
    )
    return dist.sample(n)


def check_unique_names(tenants: tuple[TenantSpec, ...]) -> tuple[TenantSpec, ...]:
    """Validate a tenant set (non-empty, unique names); returns it."""
    if not tenants:
        raise ConfigurationError("need at least one tenant")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate tenant names in {names}")
    return tuple(tenants)
