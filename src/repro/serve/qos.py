"""Admission control and weighted-fair scheduling for the serving layer.

Two QoS mechanisms, both deterministic functions of simulated time:

* :class:`TokenBucket` / :class:`AdmissionController` — per-tenant rate
  limiting at the front door.  An open-loop tenant offering more than its
  contracted rate sees *drops* instead of pushing the shared queues into
  the unbounded-latency regime; the drop counter is the visible price,
  bounded queueing delay for everyone is the product.
* :class:`WeightedFairQueue` — which queued request a freed service slot
  takes next.  Start-time fair queuing over virtual time: each request is
  tagged ``max(V, last_finish(tenant)) + 1/weight`` at enqueue, slots
  serve the smallest tag.  A tenant with weight 2 drains twice as fast as
  a tenant with weight 1 under contention, and an idle tenant's unused
  share redistributes automatically (the ``max`` with the queue's virtual
  time forgives idleness without banking it).

Neither mechanism draws randomness; both are exactly reproducible from
the sequence of (tenant, time) calls.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import ConfigurationError
from repro.obs import OBS
from repro.serve.tenants import TenantSpec


class TokenBucket:
    """A classic token bucket over simulated time.

    Starts full.  ``admit(at)`` refills ``rate * dt`` tokens (capped at
    ``burst``), then spends one token if available.  Calls must come in
    non-decreasing time order — the engine's event loop guarantees that.
    """

    __slots__ = ("rate", "burst", "tokens", "_last")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate}")
        if burst < 1.0:
            raise ConfigurationError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last = 0.0

    def admit(self, at: float) -> bool:
        """Whether a request arriving at ``at`` gets a token."""
        if at < self._last:
            raise ConfigurationError(
                f"token bucket time went backwards: {at} < {self._last}"
            )
        self.tokens = min(self.burst, self.tokens + (at - self._last) * self.rate)
        self._last = at
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Per-tenant token buckets; tenants without a limit always admit."""

    def __init__(self, tenants: tuple[TenantSpec, ...], *, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._buckets: dict[str, TokenBucket] = {
            t.name: TokenBucket(t.rate_limit, t.burst)
            for t in tenants
            if t.rate_limit is not None
        }

    def admit(self, tenant: str, at: float) -> bool:
        """Whether ``tenant``'s request arriving at ``at`` enters the system."""
        if not self.enabled:
            return True
        bucket = self._buckets.get(tenant)
        return bucket is None or bucket.admit(at)


class WeightedFairQueue:
    """Start-time fair queue over a fixed tenant set.

    Items are arbitrary payloads; cost is one slot per request.  Pops are
    by smallest virtual finish tag, ties broken by tenant registration
    order then FIFO — fully deterministic.
    """

    def __init__(self, tenants: tuple[TenantSpec, ...]) -> None:
        check_names = [t.name for t in tenants]
        if len(set(check_names)) != len(check_names) or not tenants:
            raise ConfigurationError("tenants must be non-empty with unique names")
        self._order: list[str] = [t.name for t in tenants]
        self._weight: dict[str, float] = {t.name: t.weight for t in tenants}
        self._queues: dict[str, deque[tuple[float, Any]]] = {
            t.name: deque() for t in tenants
        }
        self._last_finish: dict[str, float] = {t.name: 0.0 for t in tenants}
        self._vtime = 0.0
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def depth(self, tenant: str) -> int:
        """Queued requests of one tenant."""
        return len(self._queues[tenant])

    def push(self, tenant: str, item: Any) -> None:
        """Enqueue ``item`` for ``tenant`` (one slot of cost)."""
        queue = self._queues.get(tenant)
        if queue is None:
            raise ConfigurationError(f"unknown tenant {tenant!r}")
        tag = max(self._vtime, self._last_finish[tenant]) + 1.0 / self._weight[tenant]
        self._last_finish[tenant] = tag
        queue.append((tag, item))
        self._len += 1

    def pop(self) -> tuple[str, Any]:
        """Dequeue the request with the smallest virtual finish tag."""
        best: str | None = None
        best_tag = 0.0
        for name in self._order:  # registration order breaks ties
            queue = self._queues[name]
            if queue and (best is None or queue[0][0] < best_tag):
                best = name
                best_tag = queue[0][0]
        if best is None:
            raise ConfigurationError("pop from an empty WeightedFairQueue")
        tag, item = self._queues[best].popleft()
        self._vtime = tag
        self._len -= 1
        if OBS.enabled:
            OBS.gauge("serve.wfq.depth").set(self._len)
        return best, item
