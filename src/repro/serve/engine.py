"""The request engine: a deterministic discrete-event serving simulation.

:class:`RequestEngine` admits open-loop multi-tenant traffic (pre-drawn
per-tenant Poisson arrivals and Zipf keys from :mod:`repro.serve.tenants`),
routes each request to its shard through a :class:`~repro.serve.shardmap.ShardMap`,
queues it in the shard's :class:`~repro.serve.qos.WeightedFairQueue`, and
serves it on the first free replica in batched rounds.  The only clocks
are the simulated arrival times and the replicas' simulated device
seconds; the only randomness is the pre-drawn traffic and the replicas'
seeded devices — re-running with the same seed replays every event in
the same order, bit for bit.

Mechanics per event:

* **arrival** — the tenant's token bucket either admits the request into
  its shard's queue or drops it (the admission-control price); then the
  shard tries to dispatch.
* **dispatch** — while a replica is free and the queue is non-empty, pop
  up to ``batch`` requests in weighted-fair order and serve them as one
  round (:meth:`Replica.lookup_many` — batched tree reads).  The round's
  measured device seconds occupy the replica on the shard's
  :class:`~repro.storage.engine.ResourcePool`; every request in the
  round completes together when the round does.
* **hedging** — if the round runs past the policy's deadline and a spare
  replica is free at ``start + deadline``, the same keys are served
  again there and the earlier finish wins (the primary stays busy — its
  work is not recalled, merely beaten).  This reuses
  :class:`~repro.faults.policy.ResiliencePolicy`'s hedge contract at the
  replica level rather than the device level.

Latency is ``completion - arrival``: at high offered load it is
dominated by queueing delay, which is why admission control (bounding the
queues) and hedging (cutting slow rounds) attack the tail from opposite
ends.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigurationError, DeviceCrashed
from repro.faults.policy import ResiliencePolicy
from repro.obs import OBS
from repro.serve.qos import AdmissionController, WeightedFairQueue
from repro.serve.shard import Shard
from repro.serve.shardmap import ShardMap
from repro.serve.tenants import (
    TenantSpec,
    check_unique_names,
    tenant_arrivals,
    tenant_keys,
)

#: Percentiles every tenant's SLO report carries.
SLO_PERCENTILES = (50.0, 99.0, 99.9)


@dataclass
class TenantStats:
    """One tenant's SLO accounting over a run."""

    offered: int = 0
    admitted: int = 0
    dropped: int = 0
    served: int = 0
    failovers: int = 0
    latencies: list[float] = field(default_factory=list)

    def percentiles(self) -> dict[str, float]:
        """``{"p50": ..., "p99": ..., "p999": ...}`` (0.0 when unserved)."""
        if not self.latencies:
            return {"p50": 0.0, "p99": 0.0, "p999": 0.0}
        arr = np.asarray(self.latencies)
        p50, p99, p999 = np.percentile(arr, SLO_PERCENTILES)
        return {"p50": float(p50), "p99": float(p99), "p999": float(p999)}

    def describe(self) -> dict[str, Any]:
        """JSON-able summary (counts, mean, percentiles)."""
        out: dict[str, Any] = {
            "offered": self.offered,
            "admitted": self.admitted,
            "dropped": self.dropped,
            "served": self.served,
            "failovers": self.failovers,
            "mean": float(np.mean(self.latencies)) if self.latencies else 0.0,
        }
        out.update(self.percentiles())
        return out


@dataclass
class ServeResult:
    """Everything a run produced, exact and JSON-able on demand."""

    duration_seconds: float
    tenants: dict[str, TenantStats]
    rounds: int
    hedges_issued: int
    hedges_won: int
    max_queue_depth: int
    io_seconds: float
    crashes: int = 0
    recoveries: int = 0
    recovery_seconds: float = 0.0

    @property
    def served(self) -> int:
        """Requests completed across all tenants."""
        return sum(t.served for t in self.tenants.values())

    @property
    def dropped(self) -> int:
        """Requests refused admission across all tenants."""
        return sum(t.dropped for t in self.tenants.values())

    def latency_array(self, tenant: str) -> np.ndarray:
        """The tenant's exact completion latencies in service order."""
        return np.asarray(self.tenants[tenant].latencies)

    def describe(self) -> dict[str, Any]:
        """JSON-able summary of the whole run."""
        return {
            "duration_seconds": self.duration_seconds,
            "rounds": self.rounds,
            "served": self.served,
            "dropped": self.dropped,
            "hedges_issued": self.hedges_issued,
            "hedges_won": self.hedges_won,
            "max_queue_depth": self.max_queue_depth,
            "io_seconds": self.io_seconds,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "recovery_seconds": self.recovery_seconds,
            "tenants": {name: s.describe() for name, s in self.tenants.items()},
        }


class RequestEngine:
    """Drive multi-tenant open-loop traffic through a shard set.

    Parameters
    ----------
    shards:
        The shard set (replicas already loaded and warmed).
    shard_map:
        Key router; must cover the engine's key universe.
    tenants:
        Tenant set (unique names).
    keys:
        The loaded key population, as an int64 array; tenant key indices
        resolve against it.
    batch:
        Maximum requests one service round serves.
    admission:
        Front-door rate limiting (default: a disabled controller).
    policy:
        Replica-level hedging contract; only ``hedge_enabled`` and
        ``hedge_deadline_seconds`` are consulted here (device-level
        retries belong to the replicas' own devices).
    """

    def __init__(
        self,
        shards: list[Shard],
        shard_map: ShardMap,
        tenants: tuple[TenantSpec, ...],
        keys: np.ndarray,
        *,
        batch: int = 8,
        admission: AdmissionController | None = None,
        policy: ResiliencePolicy | None = None,
    ) -> None:
        if not shards:
            raise ConfigurationError("need at least one shard")
        if shard_map.n_shards != len(shards):
            raise ConfigurationError(
                f"shard map routes to {shard_map.n_shards} shards, got {len(shards)}"
            )
        if batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {batch}")
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size < 2:
            raise ConfigurationError("need at least 2 loaded keys")
        self.shards = shards
        self.shard_map = shard_map
        self.tenants = check_unique_names(tenants)
        self.keys = keys
        self.batch = int(batch)
        self.admission = (
            admission
            if admission is not None
            else AdmissionController(self.tenants, enabled=False)
        )
        self.policy = policy if policy is not None else ResiliencePolicy.none()

    # -- traffic -------------------------------------------------------------

    def _draw_traffic(
        self, duration_seconds: float, seed: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Merged arrival stream: (times, tenant indices, key values).

        Each tenant's draws come from its own private streams; the merge
        is a stable lexsort on (time, tenant index), so the global order
        is a pure function of the per-tenant streams.
        """
        times_parts: list[np.ndarray] = []
        tenant_parts: list[np.ndarray] = []
        key_parts: list[np.ndarray] = []
        for ti, spec in enumerate(self.tenants):
            arrivals = tenant_arrivals(spec, duration_seconds, seed)
            idx = tenant_keys(spec, len(arrivals), len(self.keys), seed)
            times_parts.append(arrivals)
            tenant_parts.append(np.full(len(arrivals), ti, dtype=np.int64))
            key_parts.append(self.keys[idx])
        times = np.concatenate(times_parts)
        tenant_idx = np.concatenate(tenant_parts)
        key_vals = np.concatenate(key_parts)
        order = np.lexsort((tenant_idx, times))
        return times[order], tenant_idx[order], key_vals[order]

    # -- the event loop ------------------------------------------------------

    def run(self, duration_seconds: float, seed: int) -> ServeResult:
        """Simulate ``duration_seconds`` of offered traffic; drain fully.

        Arrivals stop at the horizon; queued work is still served to
        completion so every admitted request gets a latency.
        """
        if duration_seconds <= 0:
            raise ConfigurationError(
                f"duration_seconds must be positive, got {duration_seconds}"
            )
        times, tenant_idx, key_vals = self._draw_traffic(duration_seconds, seed)
        owners = self.shard_map.shards_of(key_vals)

        queues = [WeightedFairQueue(self.tenants) for _ in self.shards]
        stats = {t.name: TenantStats() for t in self.tenants}
        pending: list[float | None] = [None] * len(self.shards)
        heap: list[tuple[float, int, int]] = []  # (time, seq, shard)
        seq = 0

        state = _RunState()
        deadline = self.policy.hedge_deadline_seconds
        hedge = self.policy.hedge_enabled

        def dispatch(s: int, now: float) -> None:
            nonlocal seq
            shard = self.shards[s]
            queue = queues[s]
            while len(queue):
                replica_idx = shard.pool.first_free(now)
                if replica_idx is None:
                    wake = shard.pool.next_available_at()
                    if pending[s] is None:
                        pending[s] = wake
                        heapq.heappush(heap, (wake, seq, s))
                        seq += 1
                    return
                round_tenants: list[str] = []
                round_arrivals: list[float] = []
                round_keys: list[int] = []
                while len(queue) and len(round_keys) < self.batch:
                    tenant, (arrived, key) = queue.pop()
                    round_tenants.append(tenant)
                    round_arrivals.append(arrived)
                    round_keys.append(key)
                try:
                    duration = shard.replicas[replica_idx].lookup_many(round_keys)
                except DeviceCrashed:
                    # Failover: the crashed replica occupies its pool slot
                    # for the WAL-replay recovery (it leaves the hedging
                    # pool exactly that long), and the round's requests
                    # requeue with their original arrivals — the recovery
                    # time lands in their tail latency.
                    recovery = shard.replicas[replica_idx].recover()
                    shard.pool[replica_idx].acquire(now, recovery)
                    state.crashes += 1
                    state.recoveries += 1
                    state.recovery_seconds += recovery
                    for tenant, arrived, key in zip(
                        round_tenants, round_arrivals, round_keys
                    ):
                        stats[tenant].failovers += 1
                        queue.push(tenant, (arrived, key))
                        if OBS.enabled:
                            OBS.counter(f"serve.failovers.{tenant}").inc()
                    continue
                shard.pool[replica_idx].acquire(now, duration)
                completion = now + duration
                # Hedge only when the shard has no backlog: a duplicate on
                # the spare is free capacity then (Definition 1: unused
                # slots are wasted anyway), but with requests queued the
                # spare is NOT spare — stealing it trades everyone's
                # queueing delay for one round's service tail and loses.
                if hedge and duration > deadline and not len(queue):
                    spare = shard.pool.first_free(now + deadline, exclude=replica_idx)
                    if spare is not None:
                        try:
                            dup = shard.replicas[spare].lookup_many(round_keys)
                        except DeviceCrashed:
                            # The hedge dies, the primary's result stands;
                            # the spare sits out its own recovery.
                            recovery = shard.replicas[spare].recover()
                            shard.pool[spare].acquire(now + deadline, recovery)
                            state.crashes += 1
                            state.recoveries += 1
                            state.recovery_seconds += recovery
                        else:
                            shard.pool[spare].acquire(now + deadline, dup)
                            state.hedges_issued += 1
                            hedged = now + deadline + dup
                            if hedged < completion:
                                completion = hedged
                                state.hedges_won += 1
                state.rounds += 1
                for tenant, arrived in zip(round_tenants, round_arrivals):
                    latency = completion - arrived
                    st = stats[tenant]
                    st.served += 1
                    st.latencies.append(latency)
                    if OBS.enabled:
                        OBS.histogram(f"serve.latency.{tenant}").record(latency)

        n = len(times)
        i = 0
        while i < n or heap:
            if heap and (i >= n or heap[0][0] <= times[i]):
                when, _, s = heapq.heappop(heap)
                pending[s] = None
                dispatch(s, when)
                continue
            now = float(times[i])
            tenant = self.tenants[int(tenant_idx[i])].name
            key = int(key_vals[i])
            s = int(owners[i])
            i += 1
            st = stats[tenant]
            st.offered += 1
            if not self.admission.admit(tenant, now):
                st.dropped += 1
                if OBS.enabled:
                    OBS.counter(f"serve.dropped.{tenant}").inc()
                continue
            st.admitted += 1
            queues[s].push(tenant, (now, key))
            depth = sum(len(q) for q in queues)
            if depth > state.max_queue_depth:
                state.max_queue_depth = depth
                if OBS.enabled:
                    OBS.gauge("serve.queue.max_depth").set(depth)
            dispatch(s, now)

        io_total = sum(r.io_seconds for shard in self.shards for r in shard.replicas)
        return ServeResult(
            duration_seconds=float(duration_seconds),
            tenants=stats,
            rounds=state.rounds,
            hedges_issued=state.hedges_issued,
            hedges_won=state.hedges_won,
            max_queue_depth=state.max_queue_depth,
            io_seconds=io_total,
            crashes=state.crashes,
            recoveries=state.recoveries,
            recovery_seconds=state.recovery_seconds,
        )


@dataclass
class _RunState:
    """Mutable counters of one :meth:`RequestEngine.run`."""

    rounds: int = 0
    hedges_issued: int = 0
    hedges_won: int = 0
    max_queue_depth: int = 0
    crashes: int = 0
    recoveries: int = 0
    recovery_seconds: float = 0.0
