"""repro.serve — sharded, multi-tenant key-value serving over the trees.

The serving layer turns the repository's single-client tree experiments
into a small cluster simulation: a :class:`~repro.serve.shardmap.ShardMap`
routes keys to shards, each shard runs replicated trees on their own
storage stacks (:mod:`repro.serve.shard`), open-loop tenants offer
Poisson/Zipf traffic (:mod:`repro.serve.tenants`), QoS mechanisms guard
the queues (:mod:`repro.serve.qos`), and the discrete-event
:class:`~repro.serve.engine.RequestEngine` ties it together with exact,
seeded determinism.
"""

from repro.serve.engine import RequestEngine, ServeResult, TenantStats
from repro.serve.qos import AdmissionController, TokenBucket, WeightedFairQueue
from repro.serve.shard import SERVE_TREES, Replica, Shard, ShardConfig, build_shards
from repro.serve.shardmap import SHARD_POLICIES, ShardMap
from repro.serve.tenants import (
    TenantSpec,
    check_unique_names,
    derive_seed,
    tenant_arrivals,
    tenant_keys,
)

__all__ = [
    "AdmissionController",
    "Replica",
    "RequestEngine",
    "SERVE_TREES",
    "SHARD_POLICIES",
    "ServeResult",
    "Shard",
    "ShardConfig",
    "ShardMap",
    "TenantSpec",
    "TenantStats",
    "TokenBucket",
    "WeightedFairQueue",
    "build_shards",
    "check_unique_names",
    "derive_seed",
    "tenant_arrivals",
    "tenant_keys",
]
