"""Shards and replicas: the storage side of the serving layer.

A *shard* owns a slice of the key space and some number of *replicas*;
each replica is a full copy of the shard's data on its own
:class:`~repro.storage.stack.StorageStack` (own device, own cache, own
fault stream).  The replica is the unit of service: one replica runs one
service round (a batch of point lookups) at a time, and the shard's
:class:`~repro.storage.engine.ResourcePool` of replica timelines is where
"is there a spare slot to hedge on?" gets answered — via the pool's
``free_slots``/``first_free`` occupancy accessors, never by poking its
private state.

Service cost is measured, not modeled: a round calls the replica's tree
and reads the simulated device seconds it charged.  B-trees use the
batched :meth:`~repro.trees.btree.tree.BTree.get_many` descent (one
:meth:`~repro.storage.stack.StorageStack.read_many` per level); Bε-trees
and LSMs fall back to a per-key loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.faults import CrashPlan, FaultPlan, FaultyDevice, ResiliencePolicy
from repro.serve.tenants import derive_seed
from repro.storage.engine import ResourcePool
from repro.storage.stack import StorageStack

#: Tree kinds a shard replica can run.
SERVE_TREES = ("btree", "betree", "lsm")


@dataclass(frozen=True)
class ShardConfig:
    """How every replica of every shard is built.

    Parameters
    ----------
    tree:
        One of :data:`SERVE_TREES`.
    node_bytes:
        Tree node size (B-tree/Bε-tree) or LSM block size.
    cache_bytes:
        Buffer-cache budget per replica.
    replicas:
        Copies of each shard (>= 1; hedging needs >= 2 to ever win).
    batch:
        Maximum requests one service round serves — the replica's
        "channel count" in the PDAM sense: a round moves up to ``batch``
        lookups through the device as one batched schedule.
    warm_queries:
        Per-replica warm-up lookups after loading (seeded per replica),
        so measured traffic starts from a realistically warm cache.
    durable:
        Build each replica behind a
        :class:`~repro.recovery.durable.DurableTree` (WAL + checkpoints),
        so it can crash and recover mid-run.  Required when
        :func:`build_shards` arms a crash plan.
    group_commit, checkpoint_every, wal_bytes:
        The durable replicas' WAL knobs (ignored when ``durable`` is
        off); see :class:`~repro.recovery.durable.DurableConfig`.
    """

    tree: str = "btree"
    node_bytes: int = 4096
    cache_bytes: int = 256 << 10
    replicas: int = 2
    batch: int = 8
    warm_queries: int = 64
    durable: bool = False
    group_commit: int = 8
    checkpoint_every: int = 0
    wal_bytes: int = 4 << 20

    def __post_init__(self) -> None:
        if self.tree not in SERVE_TREES:
            raise ConfigurationError(
                f"unknown tree {self.tree!r}; expected one of {SERVE_TREES}"
            )
        if self.node_bytes <= 0 or self.cache_bytes <= 0:
            raise ConfigurationError("node_bytes and cache_bytes must be positive")
        if self.replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {self.replicas}")
        if self.batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {self.batch}")
        if self.warm_queries < 0:
            raise ConfigurationError(
                f"warm_queries must be >= 0, got {self.warm_queries}"
            )
        if self.group_commit < 1:
            raise ConfigurationError(
                f"group_commit must be >= 1, got {self.group_commit}"
            )
        if self.checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.wal_bytes <= 0:
            raise ConfigurationError(f"wal_bytes must be positive, got {self.wal_bytes}")

    def describe(self) -> dict[str, Any]:
        """Stable JSON-able identity."""
        return {
            "tree": self.tree,
            "node_bytes": self.node_bytes,
            "cache_bytes": self.cache_bytes,
            "replicas": self.replicas,
            "batch": self.batch,
            "warm_queries": self.warm_queries,
            "durable": self.durable,
            "group_commit": self.group_commit,
            "checkpoint_every": self.checkpoint_every,
            "wal_bytes": self.wal_bytes,
        }


class Replica:
    """One copy of a shard's data on its own device and cache.

    A *durable* replica routes through a
    :class:`~repro.recovery.durable.DurableTree` instead of a bare tree:
    its device may carry an armed crash plan, a round that hits the crash
    raises :class:`~repro.errors.DeviceCrashed`, and :meth:`recover`
    replays the WAL over the latest checkpoint so the replica can rejoin
    the shard's pool.
    """

    def __init__(
        self, tree_kind: str, tree: Any, io_source: Any, *, durable: Any = None
    ) -> None:
        self.tree_kind = tree_kind
        self.tree = tree
        self._io_source = io_source  # StorageStack or BlockDevice (LSM)
        self.durable = durable  # DurableTree | None
        self.rounds = 0
        self.lookups = 0
        self.recoveries = 0
        self.recovery_seconds = 0.0

    @property
    def io_seconds(self) -> float:
        """Simulated device seconds this replica has charged so far."""
        if self.durable is not None:
            return self.durable.io_seconds
        if isinstance(self._io_source, StorageStack):
            return self._io_source.io_seconds
        return self._io_source.stats.busy_seconds

    def lookup_many(self, keys: list[int]) -> float:
        """Serve one round of point lookups; returns its device seconds.

        On a durable replica whose crash plan fires mid-round the
        :class:`~repro.errors.DeviceCrashed` propagates — the engine is
        the failover layer, not this method.
        """
        start = self.io_seconds
        if self.durable is not None:
            self.durable.get_many(keys)
        elif self.tree_kind == "btree":
            self.tree.get_many(keys)
        else:
            for key in keys:
                self.tree.get(key)
        self.rounds += 1
        self.lookups += len(keys)
        return self.io_seconds - start

    def recover(self) -> float:
        """Recover a crashed durable replica; returns the recovery seconds.

        WAL replay over the latest checkpoint rebuilds the tree from
        scratch (:meth:`~repro.recovery.durable.DurableTree.recover`);
        the returned simulated seconds are what the replica's pool slot
        must stay occupied for before it rejoins service.
        """
        if self.durable is None:
            raise ConfigurationError(
                "replica is not durable; build shards with ShardConfig(durable=True)"
            )
        report = self.durable.recover()
        self.tree = self.durable.tree
        self.recoveries += 1
        self.recovery_seconds += report.recovery_seconds
        return report.recovery_seconds


class Shard:
    """Replica set plus the service timeline pool over it."""

    def __init__(self, index: int, replicas: list[Replica]) -> None:
        if not replicas:
            raise ConfigurationError("a shard needs at least one replica")
        self.index = index
        self.replicas = replicas
        self.pool = ResourcePool(len(replicas))


def build_shards(
    n_shards: int,
    partitions: list[list[tuple[int, int]]],
    config: ShardConfig,
    *,
    seed: int,
    plan: FaultPlan | None = None,
    device_policy: ResiliencePolicy | None = None,
    crash: CrashPlan | None = None,
) -> list[Shard]:
    """Construct ``n_shards`` shards, each with ``config.replicas`` replicas.

    ``partitions[s]`` is shard ``s``'s sorted ``(key, value)`` load.  Each
    replica gets its own device seed and its own fault-plan seed (both
    derived from ``seed`` and the shard/replica indices), so replicas see
    independent mechanical noise and independent fault draws — which is
    why hedging across them can win.

    ``crash`` arms a per-shard crash plan (seed derived from the plan's
    seed and the shard index) on **replica 0** of every shard, counting
    IO ordinals from the start of measured traffic (load and warm-up are
    crash-free).  Requires ``config.durable`` — a crashed replica must
    have a WAL to come back.
    """
    if len(partitions) != n_shards:
        raise ConfigurationError(
            f"expected {n_shards} partitions, got {len(partitions)}"
        )
    if crash is not None and not config.durable:
        raise ConfigurationError(
            "crash plans need durable replicas; set ShardConfig(durable=True)"
        )
    shards: list[Shard] = []
    for s in range(n_shards):
        replicas = [
            _build_replica(
                config,
                partitions[s],
                device_seed=derive_seed(seed, "device", s, r),
                plan=plan,
                device_policy=device_policy,
            )
            for r in range(config.replicas)
        ]
        if crash is not None:
            armed_crash = CrashPlan(
                seed=derive_seed(crash.seed, "crash", s),
                at_io=crash.at_io,
                at_seconds=crash.at_seconds,
                torn=crash.torn,
            )
            device = replicas[0].durable.device
            assert isinstance(device, FaultyDevice)
            device.arm_crash(armed_crash)  # ordinals count from here
        shards.append(Shard(s, replicas))
    return shards


def _build_replica(
    config: ShardConfig,
    pairs: list[tuple[int, int]],
    *,
    device_seed: int,
    plan: FaultPlan | None,
    device_policy: ResiliencePolicy | None,
) -> Replica:
    from repro.experiments.devices import default_hdd

    device = default_hdd(seed=device_seed)
    if plan is not None:
        armed = FaultPlan(
            seed=derive_seed(plan.seed, "plan", device_seed),
            spike_prob=plan.spike_prob,
            spike_seconds=plan.spike_seconds,
            spike_alpha=plan.spike_alpha,
            error_prob=plan.error_prob,
            degraded=plan.degraded,
            stall_prob=plan.stall_prob,
            stall_steps=plan.stall_steps,
        )
        device = FaultyDevice(device, FaultPlan(seed=armed.seed), policy=device_policy)
    else:
        armed = None

    if config.durable:
        from repro.recovery.durable import DurableConfig, DurableTree

        if not isinstance(device, FaultyDevice):
            # Crash arming needs the faulty wrapper even with no fault plan;
            # an empty plan is transparent, so fault-free runs stay exact.
            device = FaultyDevice(device, FaultPlan(), policy=device_policy)
        durable = DurableTree(
            device,
            DurableConfig(
                tree=config.tree,
                node_bytes=config.node_bytes,
                cache_bytes=config.cache_bytes,
                wal_bytes=config.wal_bytes,
                group_commit=config.group_commit,
                checkpoint_every=config.checkpoint_every,
            ),
        )
        durable.load(list(pairs))
        if durable.stack is not None:
            durable.stack.drop_cache()
        replica = Replica(config.tree, durable.tree, device, durable=durable)
        _warm(replica, pairs, device_seed, config.warm_queries)
        device.reset()
        if durable.stack is not None:
            durable.stack.cache.stats.reset()
        if armed is not None:
            device.plan = armed  # faults start with measured traffic
        return replica

    if config.tree == "lsm":
        from repro.trees.lsm import LSMConfig, LSMTree

        lsm_cfg = LSMConfig(
            sstable_bytes=max(16 * config.node_bytes, 64 << 10),
            memtable_bytes=max(16 * config.node_bytes, 64 << 10),
            level1_bytes=max(64 * config.node_bytes, 256 << 10),
            block_bytes=config.node_bytes,
        )
        tree = LSMTree(device, lsm_cfg)
        tree.put_many(pairs)
        tree.flush_memtable()
        replica = Replica("lsm", tree, device)
        _warm(replica, pairs, device_seed, config.warm_queries)
        device.reset()
        if armed is not None:
            assert isinstance(device, FaultyDevice)
            device.plan = armed  # faults start with measured traffic
        return replica

    stack = StorageStack(device, config.cache_bytes)
    if config.tree == "btree":
        from repro.trees.btree import BTree, BTreeConfig

        tree = BTree(stack, BTreeConfig(node_bytes=config.node_bytes))
    else:
        from repro.trees.betree import BeTreeConfig, OptimizedBeTree

        tree = OptimizedBeTree(stack, BeTreeConfig(node_bytes=config.node_bytes))
    tree.bulk_load(pairs)
    stack.drop_cache()
    replica = Replica(config.tree, tree, stack)
    _warm(replica, pairs, device_seed, config.warm_queries)
    device.reset()
    stack.cache.stats.reset()
    if armed is not None:
        assert isinstance(device, FaultyDevice)
        device.plan = armed  # faults start with measured traffic
    return replica


def _warm(replica: Replica, pairs: list[tuple[int, int]], seed: int, n: int) -> None:
    """Warm the replica's cache with seeded lookups over its own data."""
    if not pairs or n <= 0:
        return
    rng = np.random.default_rng(derive_seed(seed, "warm"))
    idx = rng.integers(0, len(pairs), size=n)
    keys = [pairs[int(i)][0] for i in idx]
    replica.lookup_many(keys)
    replica.rounds = 0
    replica.lookups = 0
