"""E15 (extension) — YCSB-style workload mixes across the dictionary zoo.

The paper's Section 5 closes with the OLTP/OLAP dichotomy and the claim
that "the distinction between OLAP and OLTP databases is not driven by
user need but by the inability of B-trees to keep up with high insertion
rates."  This experiment puts the claim on one table using YCSB-flavoured
mixes (scaled):

========  ==========================================  =================
workload  operation mix                               YCSB analogue
========  ==========================================  =================
A         50% point reads / 50% updates               update heavy
B         95% point reads / 5% updates                read mostly
C         100% point reads                            read only
E         95% short range scans / 5% inserts          scan heavy
F         100% read-modify-write                      RMW
========  ==========================================  =================

Structures: a point-query-tuned B-tree, the Theorem 9 Bε-tree, and the
LSM-tree, all on the same simulated HDD and cache.  Workload F is where
the Bε-tree's *upsert* messages shine: the B-tree and LSM must read before
writing, the Bε-tree just enqueues a delta (paper Table 3 lists upserts
alongside inserts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import report
from repro.experiments.common import build_load
from repro.experiments.devices import default_hdd
from repro.storage.stack import StorageStack
from repro.trees.betree import BeTreeConfig, OptimizedBeTree
from repro.trees.btree import BTree, BTreeConfig
from repro.trees.lsm import LSMConfig, LSMTree
from repro.workloads.generators import (
    mixed_stream,
    OpKind,
)

WORKLOADS: dict[str, dict] = {
    "A (50r/50u)": dict(insert_frac=0.5),
    "B (95r/5u)": dict(insert_frac=0.05),
    "C (100r)": dict(insert_frac=0.0),
    "E (95scan/5u)": dict(insert_frac=0.05, range_frac=0.95, range_span=50),
    "F (100 rmw)": dict(rmw=True),
}

STRUCTURES = ("btree", "betree", "lsm")


@dataclass
class YCSBResult:
    """ms/op per workload and structure."""

    n_entries: int
    n_ops: int
    cache_bytes: int
    cost_ms: dict[str, dict[str, float]] = field(default_factory=dict)

    def render(self) -> str:
        rows = []
        for wl, per_structure in self.cost_ms.items():
            rows.append([wl] + [f"{per_structure[s]:.3f}" for s in STRUCTURES])
        return report.render_table(
            f"YCSB-style mixes, ms/op (N={self.n_entries}, {self.n_ops} ops, "
            f"M={report.format_bytes(self.cache_bytes)})",
            ["workload"] + list(STRUCTURES),
            rows,
            note=(
                "Write-optimized structures dominate update-heavy mixes; "
                "the B-tree holds its ground only when reads dominate.  "
                "Workload F uses Bε upsert messages (blind delta) vs "
                "read-modify-write on the others."
            ),
        )

    def winner(self, workload: str) -> str:
        """Structure with the lowest cost on a workload."""
        per = self.cost_ms[workload]
        return min(per, key=per.__getitem__)


def _build(structure: str, pairs, cache_bytes: int, seed: int):
    if structure == "btree":
        device = default_hdd(seed=seed)
        stack = StorageStack(device, cache_bytes)
        tree = BTree(stack, BTreeConfig(node_bytes=64 << 10))
        tree.bulk_load(pairs)
        return tree, device
    if structure == "betree":
        device = default_hdd(seed=seed)
        stack = StorageStack(device, cache_bytes)
        tree = OptimizedBeTree(stack, BeTreeConfig(node_bytes=1 << 20, fanout=16))
        tree.bulk_load(pairs)
        return tree, device
    if structure == "lsm":
        device = default_hdd(seed=seed)
        tree = LSMTree(device, LSMConfig(l0_trigger=2))
        for k, v in pairs:
            tree.insert(k, v)
        tree.flush_memtable()
        return tree, device
    raise ValueError(structure)


def _run_mix(tree, device, keys, universe, n_ops, spec: dict, seed: int) -> float:
    if spec.get("rmw"):
        # Read-modify-write: Bε-trees use a blind upsert; others must read.
        t0 = device.stats.busy_seconds
        import numpy as np

        rng = np.random.default_rng(seed)
        sel = rng.integers(0, len(keys), size=n_ops)
        for i in range(n_ops):
            k = keys[int(sel[i])]
            if hasattr(tree, "upsert"):
                tree.upsert(k, 1)
            else:
                v = tree.get(k)
                tree.insert(k, (v or 0) if isinstance(v, int) else 0)
        if hasattr(tree, "storage"):
            tree.storage.flush()
        elif hasattr(tree, "flush_memtable"):
            tree.flush_memtable()
        return (device.stats.busy_seconds - t0) * 1e3 / n_ops

    t0 = device.stats.busy_seconds
    for op in mixed_stream(keys, universe, n_ops, seed=seed, **spec):
        if op.kind is OpKind.INSERT:
            tree.insert(op.key, op.value)
        elif op.kind is OpKind.RANGE:
            tree.range(op.key, op.hi)
        else:
            tree.get(op.key)
    if hasattr(tree, "storage"):
        tree.storage.flush()
    elif hasattr(tree, "flush_memtable"):
        tree.flush_memtable()
    return (device.stats.busy_seconds - t0) * 1e3 / n_ops


def run(
    *,
    n_entries: int = 120_000,
    n_ops: int = 3000,
    cache_bytes: int = 4 << 20,
    universe: int = 1 << 31,
    seed: int = 0,
) -> YCSBResult:
    """Run every workload on every structure."""
    pairs, keys = build_load(n_entries, universe, seed=seed)
    result = YCSBResult(n_entries=n_entries, n_ops=n_ops, cache_bytes=cache_bytes)
    for wl, spec in WORKLOADS.items():
        result.cost_ms[wl] = {}
        for structure in STRUCTURES:
            tree, device = _build(structure, pairs, cache_bytes, seed)
            # Warm the cache a little so each structure starts comparable.
            for k in keys[:: max(1, len(keys) // 200)]:
                tree.get(k)
            result.cost_ms[wl][structure] = _run_mix(
                tree, device, keys, universe, n_ops, dict(spec), seed + 1
            )
    return result


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
