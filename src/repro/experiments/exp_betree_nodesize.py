"""E6 — Figure 3: Bε-tree node-size sensitivity on a simulated HDD.

Paper protocol (Section 7, TokuDB with compression off): same load and
machine as Figure 2, sweeping node sizes 64 KiB to 4 MiB with the fanout
fixed near TokuDB's target of 16.

Expected shape (paper): much flatter than the B-tree.  "The optimal node
size is around 512 KiB for queries and 4 MiB for inserts.  In both cases,
the next few larger node sizes decrease performance, but only slightly
compared to the BerkeleyDB results."

Inserts are measured over a much longer stream than the paper's per-size
op count: Bε-tree insert cost is amortized over flush cascades, so the
measured phase must cover several root-buffer fills (see DESIGN.md).  The
tree here is the Theorem 9 (TokuDB-like, basement-node) variant, matching
the system the paper measured; the naive whole-node tree appears in the
E9 ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.fitting import OverlayFit, fit_affine_overlay
from repro.experiments import report
from repro.runner import ResultCache, SweepPoint, SweepSpec, run_sweep

DEFAULT_NODE_SIZES = (64 << 10, 256 << 10, 1 << 20, 4 << 20)


@dataclass
class BeTreeNodeSizeResult:
    """Per-node-size op times plus affine overlay fits."""

    node_sizes: tuple[int, ...]
    n_entries: int
    cache_bytes: int
    fanout: int
    query_ms: list[float] = field(default_factory=list)
    insert_ms: list[float] = field(default_factory=list)
    query_fit: OverlayFit | None = None
    insert_fit: OverlayFit | None = None

    def render(self) -> str:
        labels = [report.format_bytes(b) for b in self.node_sizes]
        note = None
        if self.query_fit is not None and self.insert_fit is not None:
            note = (
                f"Affine overlays (F=sqrt(B) shapes): query alpha="
                f"{self.query_fit.alpha:.3g}, insert alpha={self.insert_fit.alpha:.3g}."
            )
        return report.render_series(
            f"Figure 3 (simulated): Bε-tree ms/op vs node size "
            f"(N={self.n_entries}, F={self.fanout}, "
            f"M={report.format_bytes(self.cache_bytes)})",
            "node size",
            labels,
            {
                "query (ms/op)": self.query_ms,
                "insert (ms/op)": self.insert_ms,
            },
            note=note,
        )

    def render_plot(self) -> str:
        from repro.experiments.plot import ascii_plot

        return ascii_plot(
            "Figure 3 (simulated): Bε-tree ms/op vs node size",
            list(self.node_sizes),
            {"query": self.query_ms, "insert": self.insert_ms},
            log_x=True,
            log_y=True,
            x_label="node bytes",
            y_label="ms/op",
        )

    @property
    def best_query_node(self) -> int:
        """Node size minimizing query time."""
        return self.node_sizes[min(range(len(self.query_ms)), key=self.query_ms.__getitem__)]

    @property
    def best_insert_node(self) -> int:
        """Node size minimizing insert time."""
        return self.node_sizes[min(range(len(self.insert_ms)), key=self.insert_ms.__getitem__)]

    def sensitivity(self, series: str = "query") -> float:
        """max/min ratio of a series — the 'how V-shaped is it' metric."""
        values = self.query_ms if series == "query" else self.insert_ms
        return max(values) / min(values)


def sweep_spec(
    *,
    node_sizes: tuple[int, ...] = DEFAULT_NODE_SIZES,
    n_entries: int = 300_000,
    cache_bytes: int = 8 << 20,
    fanout: int = 16,
    universe: int = 1 << 31,
    n_queries: int = 300,
    inserts_per_buffer_fill: float = 4.0,
    max_inserts: int = 100_000,
    warmup_queries: int = 200,
    seed: int = 0,
) -> SweepSpec:
    """The E6 sweep: one ``betree_nodesize_point`` per node size."""
    return SweepSpec.make(
        "betree_nodesize",
        [
            SweepPoint.make(
                "betree_nodesize_point",
                node_bytes=node_bytes,
                n_entries=n_entries,
                cache_bytes=cache_bytes,
                fanout=fanout,
                universe=universe,
                n_queries=n_queries,
                inserts_per_buffer_fill=inserts_per_buffer_fill,
                max_inserts=max_inserts,
                warmup_queries=warmup_queries,
                seed=seed,
            )
            for node_bytes in node_sizes
        ],
    )


def run(
    *,
    node_sizes: tuple[int, ...] = DEFAULT_NODE_SIZES,
    n_entries: int = 300_000,
    cache_bytes: int = 8 << 20,
    fanout: int = 16,
    universe: int = 1 << 31,
    n_queries: int = 300,
    inserts_per_buffer_fill: float = 4.0,
    max_inserts: int = 100_000,
    warmup_queries: int = 200,
    seed: int = 0,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> BeTreeNodeSizeResult:
    """Sweep node sizes over a freshly loaded Bε-tree on the default HDD."""
    spec = sweep_spec(
        node_sizes=tuple(node_sizes),
        n_entries=n_entries,
        cache_bytes=cache_bytes,
        fanout=fanout,
        universe=universe,
        n_queries=n_queries,
        inserts_per_buffer_fill=inserts_per_buffer_fill,
        max_inserts=max_inserts,
        warmup_queries=warmup_queries,
        seed=seed,
    )
    result = BeTreeNodeSizeResult(
        node_sizes=tuple(node_sizes),
        n_entries=n_entries,
        cache_bytes=cache_bytes,
        fanout=fanout,
    )
    for point in run_sweep(spec, jobs=jobs, cache=cache):
        result.query_ms.append(point["query_ms"])
        result.insert_ms.append(point["insert_ms"])
    result.query_fit = fit_affine_overlay(
        list(node_sizes), [v / 1e3 for v in result.query_ms], kind="betree_query"
    )
    result.insert_fit = fit_affine_overlay(
        list(node_sizes), [v / 1e3 for v in result.insert_ms], kind="betree_insert"
    )
    return result


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
