"""E3 — Table 2: validating the affine model on simulated hard disks.

Protocol (paper Section 4.2, scaled):

    "we chose an IO size, I, and issued 64 I-sized reads to block-aligned
    offsets chosen randomly within the device's full LBA range.  We
    repeated this experiment for a variety of IO sizes, with I ranging
    from 1 disk block up to 16 MiB."

We regress the per-size *mean* IO time against IO size: the intercept is
the setup cost ``s``, the slope the bandwidth cost ``t``, and
``alpha = t/s`` (quoted per 4 KiB, as in the paper's table).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.fitting import AffineFit, fit_affine_model
from repro.experiments import report
from repro.experiments.devices import HDD_ZOO
from repro.runner import ResultCache, SweepPoint, SweepSpec, run_sweep

DEFAULT_IO_SIZES = tuple(4096 * 4**k for k in range(7))  # 4 KiB .. 16 MiB


@dataclass
class AffineValidationResult:
    """Table 2 fits plus the configured ground truth."""

    io_sizes: tuple[int, ...]
    reads_per_size: int
    fits: dict[str, AffineFit] = field(default_factory=dict)
    truth: dict[str, tuple[float, float]] = field(default_factory=dict)  # (s, t/4K)

    def rows(self) -> list[list[object]]:
        rows = []
        for name, fit in self.fits.items():
            year = HDD_ZOO[name][0]
            s_true, t4k_true = self.truth[name]
            rows.append(
                [
                    name,
                    year,
                    f"{fit.setup_seconds:.4f}",
                    f"{fit.seconds_per_byte * 4096:.6f}",
                    f"{fit.alpha:.4f}",
                    f"{fit.r2:.4f}",
                    f"{s_true:.4f}",
                    f"{t4k_true:.6f}",
                ]
            )
        return rows

    def render(self) -> str:
        return report.render_table(
            "Table 2 (simulated): affine fits for the HDD zoo",
            ["device", "year", "s (s)", "t (s/4K)", "alpha", "R^2", "s true", "t true"],
            self.rows(),
            note=(
                f"Fit on per-size mean of {self.reads_per_size} random reads, "
                f"IO sizes {report.format_bytes(self.io_sizes[0])}.."
                f"{report.format_bytes(self.io_sizes[-1])}.  alpha = t/s per 4 KiB."
            ),
        )


def sweep_spec(
    *,
    io_sizes: tuple[int, ...] = DEFAULT_IO_SIZES,
    reads_per_size: int = 64,
    devices: tuple[str, ...] | None = None,
    seed: int = 0,
) -> SweepSpec:
    """The E3 sweep: one ``affine_validation_device`` point per zoo disk."""
    names = devices if devices is not None else tuple(sorted(HDD_ZOO))
    return SweepSpec.make(
        "affine_validation",
        [
            SweepPoint.make(
                "affine_validation_device",
                device=name,
                io_sizes=tuple(io_sizes),
                reads_per_size=reads_per_size,
                seed=seed,
            )
            for name in names
        ],
    )


def run(
    *,
    io_sizes: tuple[int, ...] = DEFAULT_IO_SIZES,
    reads_per_size: int = 64,
    devices: tuple[str, ...] | None = None,
    seed: int = 0,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> AffineValidationResult:
    """Issue the random-read sweep on each zoo disk and fit (s, t, alpha)."""
    names = devices if devices is not None else tuple(sorted(HDD_ZOO))
    spec = sweep_spec(
        io_sizes=tuple(io_sizes),
        reads_per_size=reads_per_size,
        devices=names,
        seed=seed,
    )
    result = AffineValidationResult(io_sizes=tuple(io_sizes), reads_per_size=reads_per_size)
    for name, point in zip(names, run_sweep(spec, jobs=jobs, cache=cache)):
        result.fits[name] = fit_affine_model(point["mean_sizes"], point["mean_times"])
        _, s_true, t4k_true = HDD_ZOO[name]
        result.truth[name] = (s_true, t4k_true)
    return result


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
