"""E4 — Table 3: analytical node-size sensitivity of B-trees vs Bε-trees.

Evaluates the paper's Table 3 cost functions over a node-size grid at a
concrete ``(alpha, N, M)``:

* B-tree insert/query: ``(1 + alpha*B) / log(B)`` — grows nearly linearly
  in ``B`` once ``B >> 1/alpha``.
* Bε-tree (F = sqrt(B)) insert: ``~(1 + alpha*B) / (sqrt(B) log B)`` —
  grows like ``sqrt(B)``.
* Bε-tree (F = sqrt(B)) query: ``~(1 + alpha*sqrt(B)) / log B``.

The rendered table includes each structure's cost *relative to its own
minimum* over the grid, which is the sensitivity claim in one number: the
B-tree's worst/best ratio is much larger than the Bε-tree's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.experiments import report
from repro.models.analysis import (
    betree_insert_cost,
    betree_query_cost_optimized,
    btree_op_cost,
)

DEFAULT_NODE_ENTRIES = tuple(2**k for k in range(5, 21, 2))  # 32 .. 1M entries


@dataclass
class SensitivityResult:
    """Table 3 cost curves over the node-size grid."""

    node_entries: tuple[int, ...]
    alpha: float
    N: float
    M: float
    btree: list[float] = field(default_factory=list)
    betree_insert: list[float] = field(default_factory=list)
    betree_query: list[float] = field(default_factory=list)

    def sensitivity(self, series: list[float]) -> float:
        """max/min cost ratio over the swept grid."""
        return max(series) / min(series)

    def optimum_entries(self, series: list[float]) -> int:
        """Grid point minimizing a series."""
        return self.node_entries[min(range(len(series)), key=series.__getitem__)]

    def render(self) -> str:
        rows = []
        for i, b in enumerate(self.node_entries):
            rows.append(
                [
                    b,
                    f"{self.btree[i]:.3f}",
                    f"{self.betree_insert[i]:.4f}",
                    f"{self.betree_query[i]:.3f}",
                ]
            )
        note = (
            f"alpha={self.alpha:g}/entry, N={self.N:g}, M={self.M:g}.  "
            f"Sensitivity (max/min over grid): B-tree "
            f"{self.sensitivity(self.btree):.1f}x, Bε insert "
            f"{self.sensitivity(self.betree_insert):.1f}x, Bε query "
            f"{self.sensitivity(self.betree_query):.1f}x."
        )
        return report.render_table(
            "Table 3 (evaluated): affine per-op costs vs node size (entries)",
            ["B (entries)", "B-tree op", "Bε insert (F=√B)", "Bε query (F=√B)"],
            rows,
            note=note,
        )


def run(
    *,
    node_entries: tuple[int, ...] = DEFAULT_NODE_ENTRIES,
    alpha: float = 1e-4,
    N: float = 1e9,
    M: float = 1e6,
) -> SensitivityResult:
    """Evaluate the Table 3 formulas over the grid."""
    result = SensitivityResult(node_entries=tuple(node_entries), alpha=alpha, N=N, M=M)
    for b in node_entries:
        result.btree.append(btree_op_cost(b, alpha, N, M))
        f = math.sqrt(b)
        if f >= 2:
            result.betree_insert.append(betree_insert_cost(b, f, alpha, N, M))
            result.betree_query.append(betree_query_cost_optimized(b, f, alpha, N, M))
        else:  # degenerate tiny nodes: fall back to the B-tree cost
            result.betree_insert.append(btree_op_cost(b, alpha, N, M))
            result.betree_query.append(btree_op_cost(b, alpha, N, M))
    return result


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
