"""E1/E2 — Figure 1 and Table 1: validating the PDAM on simulated SSDs.

Protocol (paper Section 4.1, scaled):

    "we spawned p = 1, 2, 4, 8, ..., 64 OS threads that each read 10 GiB of
    data.  We selected ... random logical block address (LBA) offsets and
    read 64 KiB starting from each."

Here each closed-loop client reads ``bytes_per_thread`` (default 8 MiB —
a 1280x scale-down; completion times scale linearly so the flat-then-
linear shape and the fitted ``P`` are unaffected).  We add intermediate
thread counts to the paper's powers of two so the segmented regression can
place the knee precisely.

Outputs: the Figure 1 series (time vs p per device) and the Table 1 rows
(fitted P, saturation throughput ∝PB, R²).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.fitting import PDAMFit, fit_pdam_model
from repro.experiments import report
from repro.experiments.devices import SSD_ZOO, make_ssd
from repro.storage.device import ReadRequest, WriteRequest

DEFAULT_THREADS = (1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 24, 32, 48, 64)


@dataclass
class PDAMValidationResult:
    """Figure 1 series and Table 1 fits for every device."""

    threads: tuple[int, ...]
    bytes_per_thread: int
    times: dict[str, list[float]] = field(default_factory=dict)
    fits: dict[str, PDAMFit] = field(default_factory=dict)
    expected_parallelism: dict[str, float] = field(default_factory=dict)

    def table1_rows(self) -> list[list[object]]:
        """Rows shaped like the paper's Table 1 (plus ground truth)."""
        rows = []
        for name, fit in self.fits.items():
            rows.append(
                [
                    name,
                    f"{fit.parallelism:.1f}",
                    f"{self.expected_parallelism[name]:.1f}",
                    f"{fit.saturation_bytes_per_second / 1e6:.0f}",
                    f"{fit.r2:.4f}",
                ]
            )
        return rows

    def render(self) -> str:
        """Figure 1 series plus the Table 1 fit table."""
        fig = report.render_series(
            "Figure 1 (simulated): time to read "
            f"{report.format_bytes(self.bytes_per_thread)} per thread",
            "p",
            list(self.threads),
            {name: times for name, times in self.times.items()},
            note=(
                "DAM predicts time growing linearly from p=1; instead it is "
                "flat until p ~ P (the knee softens with bank conflicts)."
            ),
        )
        table = report.render_table(
            "Table 1 (simulated): PDAM fits via segmented linear regression",
            ["device", "P (fit)", "P (geometry)", "~PB (MB/s)", "R^2"],
            self.table1_rows(),
            note="P (geometry) is the device model's saturation/single-stream ratio.",
        )
        return fig + "\n\n" + table

    def render_plot(self) -> str:
        from repro.experiments.plot import ascii_plot

        return ascii_plot(
            "Figure 1 (simulated): completion time vs threads",
            list(self.threads),
            {name: times for name, times in self.times.items()},
            log_x=True,
            log_y=True,
            x_label="p threads",
            y_label="seconds",
        )

    def dam_overestimate_factor(self, device: str) -> float:
        """How badly the DAM over-predicts the largest-p completion time.

        The DAM (serial unit-cost IOs) predicts time growing linearly from
        p=1; the ratio of that prediction to the measured time at max p is
        ~P, the paper's "overestimates ... by roughly P".
        """
        times = self.times[device]
        dam_prediction = times[0] * self.threads[-1] / self.threads[0]
        return dam_prediction / times[-1]


def run(
    *,
    threads: tuple[int, ...] = DEFAULT_THREADS,
    bytes_per_thread: int = 8 << 20,
    request_bytes: int = 64 << 10,
    devices: tuple[str, ...] | None = None,
    write_fraction: float = 0.0,
    seed: int = 0,
) -> PDAMValidationResult:
    """Run the thread-scaling benchmark on each zoo SSD and fit it.

    ``write_fraction`` mixes writes into the request stream (the paper's
    Definition 1 allows any combination of reads and writes per step; the
    Figure 1 benchmark itself is read-only).  Writes saturate the dies at
    the slower program rate, so the fitted ``PB`` falls as the fraction
    rises while the flat-then-linear shape is preserved.
    """
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError(f"write_fraction must be in [0, 1], got {write_fraction}")
    names = devices if devices is not None else tuple(sorted(SSD_ZOO))
    result = PDAMValidationResult(threads=tuple(threads), bytes_per_thread=bytes_per_thread)
    n_requests = max(1, bytes_per_thread // request_bytes)
    for name in names:
        times = []
        for p in threads:
            ssd = make_ssd(name)
            rng = np.random.default_rng(seed + p)
            n_stripes = ssd.capacity_bytes // request_bytes
            streams = []
            for _ in range(p):
                offsets = rng.integers(0, n_stripes, size=n_requests) * request_bytes
                kinds = rng.random(n_requests) < write_fraction
                streams.append(
                    [
                        WriteRequest(int(o), request_bytes)
                        if w
                        else ReadRequest(int(o), request_bytes)
                        for o, w in zip(offsets, kinds)
                    ]
                )
            times.append(ssd.run_closed_loop(streams))
        result.times[name] = times
        result.fits[name] = fit_pdam_model(
            list(threads), times, bytes_per_thread=bytes_per_thread
        )
        result.expected_parallelism[name] = SSD_ZOO[name].expected_pdam_parallelism
    return result


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
