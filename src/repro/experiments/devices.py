"""The device zoo: simulated stand-ins for the paper's benchmark hardware.

The SSD configs target the saturation throughputs of Table 1 and die
counts near the paper's fitted ``P`` values; the HDD configs reproduce the
``(s, t)`` pairs of Table 2 (the square-root seek curve and rotation period
are chosen so the *mean* setup cost equals the paper's ``s``).

These are simulations, not the real devices; names carry a ``-sim`` suffix
to keep that visible in every table.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.models.affine import AffineModel
from repro.storage.device import BlockDevice
from repro.storage.hdd import HDDGeometry, SimulatedHDD
from repro.storage.ideal import AffineDevice
from repro.storage.ssd import SSDGeometry, SimulatedSSD


def hdd_geometry_for(
    setup_seconds: float,
    seconds_per_4k: float,
    *,
    capacity_bytes: int = 64 * 2**30,
    rotation_seconds: float = 1.0 / 120.0,
    track_to_track: float = 0.001,
) -> HDDGeometry:
    """Geometry whose *mean* setup cost equals ``setup_seconds``.

    Inverts :attr:`HDDGeometry.mean_setup_seconds`: with the square-root
    seek curve, mean seek = ``t2t + (full - t2t) * 8/15``, plus half a
    rotation.
    """
    if setup_seconds <= track_to_track + rotation_seconds / 2:
        raise ConfigurationError(
            f"setup {setup_seconds}s is below track-to-track + half rotation"
        )
    full = track_to_track + (setup_seconds - track_to_track - rotation_seconds / 2) * 15.0 / 8.0
    return HDDGeometry(
        capacity_bytes=capacity_bytes,
        track_to_track_seek_seconds=track_to_track,
        full_stroke_seek_seconds=full,
        rotation_seconds=rotation_seconds,
        bandwidth_bytes_per_second=4096.0 / seconds_per_4k,
    )


#: Table 2 rows: name -> (year, s seconds, t seconds per 4 KiB).
HDD_ZOO: dict[str, tuple[int, float, float]] = {
    "seagate-2tb-2002-sim": (2002, 0.018, 0.000021),
    "seagate-250gb-2006-sim": (2006, 0.015, 0.000033),
    "hitachi-1tb-2009-sim": (2009, 0.013, 0.000041),
    "wd-black-1tb-2011-sim": (2011, 0.012, 0.000035),
    "wd-red-6tb-2018-sim": (2018, 0.016, 0.000026),
}


def make_hdd(name: str, *, seed: int = 0, trace: bool = False) -> SimulatedHDD:
    """Instantiate one of the Table 2 stand-in disks."""
    try:
        _, s, t4k = HDD_ZOO[name]
    except KeyError:
        raise ConfigurationError(f"unknown HDD {name!r}; choose from {sorted(HDD_ZOO)}") from None
    return SimulatedHDD(hdd_geometry_for(s, t4k), seed=seed, trace=trace)


def default_hdd(*, seed: int = 0, trace: bool = False) -> SimulatedHDD:
    """The disk the node-size experiments run on (WD Black 2011 stand-in)."""
    return make_hdd("wd-black-1tb-2011-sim", seed=seed, trace=trace)


#: Table 1 rows: name -> SSDGeometry targeting that device's P and PB.
#:
#: Design rule: the channel buses are the saturation bottleneck and there
#: are many more dies than the effective parallelism, so concurrent clients
#: rarely collide on a die below the knee (real SSDs behave this way; with
#: one-die-per-request striping the effective P is ``channels * t_read /
#: t_transfer`` and the saturation throughput ``channels * page / t_xfer``).
SSD_ZOO: dict[str, SSDGeometry] = {
    # Samsung 860 pro: fitted P=3.3, saturation ~530 MB/s (SATA).
    "samsung-860-pro-sim": SSDGeometry(
        capacity_bytes=64 * 2**30,
        channels=2,
        dies_per_channel=8,
        page_read_seconds=25.6e-6,
        channel_transfer_seconds=15.5e-6,
    ),
    # Samsung 970 pro: fitted P=5.5, saturation ~2500 MB/s (NVMe).
    "samsung-970-pro-sim": SSDGeometry(
        capacity_bytes=64 * 2**30,
        channels=4,
        dies_per_channel=8,
        page_read_seconds=9e-6,
        channel_transfer_seconds=6.55e-6,
    ),
    # Silicon Power S55: fitted P=2.9, saturation ~260 MB/s.
    "silicon-power-s55-sim": SSDGeometry(
        capacity_bytes=64 * 2**30,
        channels=1,
        dies_per_channel=8,
        page_read_seconds=45.7e-6,
        channel_transfer_seconds=15.75e-6,
    ),
    # SanDisk Ultra II: fitted P=4.6, saturation ~520 MB/s.
    "sandisk-ultra-ii-sim": SSDGeometry(
        capacity_bytes=64 * 2**30,
        channels=2,
        dies_per_channel=8,
        page_read_seconds=36.2e-6,
        channel_transfer_seconds=15.75e-6,
    ),
}


def make_ssd(name: str) -> SimulatedSSD:
    """Instantiate one of the Table 1 stand-in SSDs."""
    try:
        geometry = SSD_ZOO[name]
    except KeyError:
        raise ConfigurationError(f"unknown SSD {name!r}; choose from {sorted(SSD_ZOO)}") from None
    return SimulatedSSD(geometry)


def default_ssd() -> SimulatedSSD:
    """The SSD used by PDAM-flavoured tree experiments."""
    return make_ssd("samsung-860-pro-sim")


#: Noise-free affine devices at the extremes of the alpha range the tuner
#: must cover: name -> (s seconds, t seconds per byte).  The low-alpha end
#: behaves like a floppy-era device (huge optimal nodes), the high-alpha
#: end like NVM (tiny optimal nodes); no single static node size is close
#: to optimal on both (Figure 2's point, stretched to its ends).
AFFINE_ZOO: dict[str, tuple[float, float]] = {
    "affine-lowalpha-sim": (0.05, 9.26e-10),  # alpha ~ 1.9e-8 /byte
    "affine-highalpha-sim": (2e-5, 9.26e-9),  # alpha ~ 4.6e-4 /byte
}


def make_affine(name: str, *, trace: bool = False) -> AffineDevice:
    """Instantiate one of the extreme-alpha affine devices."""
    try:
        s, t = AFFINE_ZOO[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown affine device {name!r}; choose from {sorted(AFFINE_ZOO)}"
        ) from None
    return AffineDevice(AffineModel.from_hardware(s, t), trace=trace)


def tuning_zoo(*, seed: int = 0) -> dict[str, BlockDevice]:
    """Every device the autotuner is exercised against (experiment E17).

    Spans both model families and three decades of alpha: all Table 2
    disks, a SATA and an NVMe SSD, and the two affine extremes — a range
    wide enough that no static node size can be near-optimal everywhere.
    """
    zoo: dict[str, BlockDevice] = {}
    for name in HDD_ZOO:
        zoo[name] = make_hdd(name, seed=seed)
    for name in ("samsung-860-pro-sim", "samsung-970-pro-sim"):
        zoo[name] = make_ssd(name)
    for name in AFFINE_ZOO:
        zoo[name] = make_affine(name)
    return zoo
