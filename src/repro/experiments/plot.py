"""ASCII line plots for terminal rendering of the paper's figures.

``python -m repro.experiments <fig> --plot`` appends one of these under
the data table, so the flat-then-linear knee of Figure 1 or the V of
Figure 2 is visible at a glance without leaving the terminal.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ConfigurationError

_MARKERS = "ox+*#@%&"


def _transform(values: Sequence[float], log: bool) -> list[float]:
    if not log:
        return [float(v) for v in values]
    if any(v <= 0 for v in values):
        raise ConfigurationError("log scale requires positive values")
    return [math.log10(float(v)) for v in values]


def ascii_plot(
    title: str,
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    log_y: bool = False,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more (x, y) series as an ASCII scatter/line chart.

    Each series gets a marker from ``o x + * ...``; overlapping points show
    the later series' marker.  Axes are annotated with the data ranges (in
    original, pre-log units).
    """
    if not series:
        raise ConfigurationError("need at least one series")
    if len(series) > len(_MARKERS):
        raise ConfigurationError(f"at most {len(_MARKERS)} series supported")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ConfigurationError(f"series {name!r} length does not match x")
    if len(xs) < 2:
        raise ConfigurationError("need at least 2 points")
    if width < 16 or height < 4:
        raise ConfigurationError("plot too small to be legible")

    tx = _transform(xs, log_x)
    all_y = [v for ys in series.values() for v in ys]
    ty_min_raw, ty_max_raw = min(all_y), max(all_y)
    ty_all = _transform([ty_min_raw, ty_max_raw], log_y)
    x_min, x_max = min(tx), max(tx)
    y_min, y_max = ty_all[0], ty_all[1]
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[si]
        tys = _transform(ys, log_y)
        for xv, yv in zip(tx, tys):
            col = round((xv - x_min) / x_span * (width - 1))
            row = round((yv - y_min) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = [title]
    legend = "   ".join(
        f"{_MARKERS[i]} = {name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    top_label = f"{ty_max_raw:.4g}"
    bottom_label = f"{ty_min_raw:.4g}"
    pad = max(len(top_label), len(bottom_label))
    for r, row in enumerate(grid):
        if r == 0:
            prefix = top_label.rjust(pad)
        elif r == height - 1:
            prefix = bottom_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * pad + " +" + "-" * width)
    x_lo, x_hi = f"{min(xs):.4g}", f"{max(xs):.4g}"
    gap = width - len(x_lo) - len(x_hi)
    lines.append(" " * (pad + 2) + x_lo + " " * max(1, gap) + x_hi)
    scale = []
    if log_x:
        scale.append("log x")
    if log_y:
        scale.append("log y")
    suffix = f"  [{', '.join(scale)}]" if scale else ""
    lines.append(" " * (pad + 2) + f"{x_label} vs {y_label}{suffix}")
    return "\n".join(lines)
