"""E10 — Corollaries 6, 7, 11, 12: optimal node sizes across alpha.

For a grid of hardware parameters ``alpha``:

* the numeric optimum of the B-tree per-op cost (Corollary 7) against its
  closed form ``1/(alpha * ln(1/alpha))`` and against the half-bandwidth
  point ``1/alpha`` (Corollary 6) — the optimum sits well *below* the
  half-bandwidth point, which is the paper's first explanation for small
  B-tree nodes;
* the Corollary 12 Bε-tree parameters ``F = 1/(alpha ln(1/alpha))``,
  ``B = F^2``, with the per-node query IO overhead of Corollary 11 and the
  insert speedup ``Theta(log(1/alpha))`` over the optimal B-tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import report
from repro.models.analysis import (
    betree_speedup_over_btree,
    btree_node_size_closed_form,
    corollary11_io_overhead,
    optimal_betree_params,
    optimal_btree_node_size,
)

DEFAULT_ALPHAS = (1e-2, 3e-3, 1e-3, 3e-4, 1e-4, 3e-5, 1e-5)


@dataclass
class OptimaResult:
    """Closed-form vs numeric optima across the alpha grid."""

    alphas: tuple[float, ...]
    N: float
    M: float
    numeric_btree: list[float] = field(default_factory=list)
    closed_btree: list[float] = field(default_factory=list)
    betree_F: list[float] = field(default_factory=list)
    betree_B: list[float] = field(default_factory=list)
    query_overhead: list[float] = field(default_factory=list)
    insert_speedup: list[float] = field(default_factory=list)

    def render(self) -> str:
        rows = []
        for i, a in enumerate(self.alphas):
            rows.append(
                [
                    f"{a:g}",
                    f"{1/a:.3g}",
                    f"{self.numeric_btree[i]:.3g}",
                    f"{self.closed_btree[i]:.3g}",
                    f"{self.numeric_btree[i] * a:.3f}",
                    f"{self.betree_F[i]:.3g}",
                    f"{self.betree_B[i]:.3g}",
                    f"{self.query_overhead[i]:.3f}",
                    f"{self.insert_speedup[i]:.2f}",
                ]
            )
        return report.render_table(
            f"Corollaries 6/7/11/12: optima vs alpha (N={self.N:g}, M={self.M:g}; "
            "sizes in entries)",
            [
                "alpha",
                "1/a (half-bw)",
                "B* numeric",
                "B* closed",
                "B*/half-bw",
                "Bε F*",
                "Bε B*=F^2",
                "q overhead",
                "ins speedup",
            ],
            rows,
            note=(
                "B*/half-bw << 1: the optimal B-tree node is far below the "
                "half-bandwidth point (Cor. 7).  Bε B* ~ (B-tree B*)^2 in "
                "entries (Cor. 12); q overhead is Cor. 11's alpha*B/F+alpha*F "
                "per-level slack; ins speedup ~ ln(1/alpha)."
            ),
        )


def run(
    *,
    alphas: tuple[float, ...] = DEFAULT_ALPHAS,
    N: float = 1e9,
    M: float = 1e6,
) -> OptimaResult:
    """Evaluate the corollaries over the alpha grid."""
    result = OptimaResult(alphas=tuple(alphas), N=N, M=M)
    for a in alphas:
        x = optimal_btree_node_size(a)
        result.numeric_btree.append(x)
        result.closed_btree.append(btree_node_size_closed_form(a))
        F, B = optimal_betree_params(a)
        result.betree_F.append(F)
        result.betree_B.append(B)
        result.query_overhead.append(corollary11_io_overhead(B, F, a))
        result.insert_speedup.append(betree_speedup_over_btree(a, N, M))
    return result


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
