"""E16 (extension) — predictability: affine vs DAM error on real workloads.

The paper's headline: the refined models "yield a surprisingly large
improvement in predictability without sacrificing ease of use", while the
DAM with half-bandwidth blocks "approximates the IO cost on any hardware
to within a factor of 2" (Lemma 1) — and is *blind* to node-size tuning.

This experiment quantifies both statements at once.  For a B-tree
point-query workload on the simulated HDD, at each node size we count the
IOs actually issued and compare the measured simulated time against:

* the **affine** prediction ``IOs * (s + t*B)`` — should track within a
  few percent at every node size;
* the **DAM** prediction ``IOs * 2s`` (every IO priced as one
  half-bandwidth block, the Lemma 1 transform) — within a factor of 2, but
  systematically off: over-predicting small nodes (which cost barely more
  than ``s``) and under-predicting nodes beyond the half-bandwidth point.

The DAM's error *changes sign across the sweep* — which is exactly why it
cannot rank node sizes, the paper's Section 2 argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import report
from repro.experiments.common import build_load
from repro.experiments.devices import default_hdd
from repro.storage.stack import StorageStack
from repro.trees.btree import BTree, BTreeConfig
from repro.workloads.generators import point_query_stream

DEFAULT_NODE_SIZES = (4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20)


@dataclass
class ModelErrorResult:
    """Per-node-size measured time and per-model predictions."""

    node_sizes: tuple[int, ...]
    n_entries: int
    setup_seconds: float
    seconds_per_byte: float
    measured_ms: list[float] = field(default_factory=list)
    affine_ms: list[float] = field(default_factory=list)
    dam_ms: list[float] = field(default_factory=list)

    @staticmethod
    def _err(measured: float, predicted: float) -> float:
        return (predicted - measured) / measured

    @property
    def affine_errors(self) -> list[float]:
        """Signed relative error of the affine prediction per node size."""
        return [self._err(m, p) for m, p in zip(self.measured_ms, self.affine_ms)]

    @property
    def dam_errors(self) -> list[float]:
        """Signed relative error of the DAM prediction per node size."""
        return [self._err(m, p) for m, p in zip(self.measured_ms, self.dam_ms)]

    def render(self) -> str:
        rows = []
        for i, b in enumerate(self.node_sizes):
            rows.append(
                [
                    report.format_bytes(b),
                    f"{self.measured_ms[i]:.3f}",
                    f"{self.affine_ms[i]:.3f}",
                    f"{self.affine_errors[i]:+.1%}",
                    f"{self.dam_ms[i]:.3f}",
                    f"{self.dam_errors[i]:+.1%}",
                ]
            )
        return report.render_table(
            f"Model predictability on a B-tree query workload "
            f"(N={self.n_entries}, simulated HDD)",
            ["node size", "measured ms/op", "affine ms/op", "err", "DAM ms/op", "err"],
            rows,
            note=(
                "Predictions price the same measured IO count: affine at "
                "s + t*B per IO, DAM at 2s per IO (Lemma 1's half-bandwidth "
                "transform).  The affine error stays small and stable; the "
                "DAM's swings from over- to under-prediction across the "
                "sweep — it cannot rank node sizes."
            ),
        )


def run(
    *,
    node_sizes: tuple[int, ...] = DEFAULT_NODE_SIZES,
    n_entries: int = 200_000,
    cache_bytes: int = 4 << 20,
    universe: int = 1 << 31,
    n_queries: int = 300,
    seed: int = 0,
) -> ModelErrorResult:
    """Measure, then predict with both models from the same IO counts."""
    pairs, keys = build_load(n_entries, universe, seed=seed)
    geometry = default_hdd().geometry
    s = geometry.mean_setup_seconds
    t = geometry.seconds_per_byte
    result = ModelErrorResult(
        node_sizes=tuple(node_sizes),
        n_entries=n_entries,
        setup_seconds=s,
        seconds_per_byte=t,
    )
    for node_bytes in node_sizes:
        device = default_hdd(seed=seed + 1)
        # Random extent placement spreads nodes over the whole disk, so the
        # workload's seek-distance distribution matches the one the model
        # parameter ``s`` (mean full-range setup) describes.  A fresh
        # short-stroked tree would need a locally-fitted ``s`` instead.
        stack = StorageStack(device, cache_bytes, allocator_policy="random")
        tree = BTree(stack, BTreeConfig(node_bytes=node_bytes))
        tree.bulk_load(pairs)
        stack.drop_cache()
        for k in point_query_stream(keys, 150, seed=seed + 2):  # warm internals
            tree.get(k)
        io0 = device.stats.ios
        t0 = stack.io_seconds
        for k in point_query_stream(keys, n_queries, seed=seed + 3):
            tree.get(k)
        ios = device.stats.ios - io0
        measured = (stack.io_seconds - t0) / n_queries
        result.measured_ms.append(measured * 1e3)
        result.affine_ms.append(ios * (s + t * node_bytes) / n_queries * 1e3)
        result.dam_ms.append(ios * 2 * s / n_queries * 1e3)
    return result


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
