"""Shared measurement harness for the node-size experiments (Figures 2-3).

Protocol per tree instance:

1. **Load**: bulk-load ``n_entries`` random distinct keys (scaled down from
   the paper's 16 GB; see DESIGN.md section 5).
2. **Cool down**: write back and drop the cache so measurement starts from
   a defined state.
3. **Warm up**: run some unmeasured queries so the hot internal levels
   re-enter the cache (the paper's runs are warm: ops follow the load).
4. **Measure**: random point queries, then random inserts; report
   *simulated device seconds per operation*.  The insert phase ends with a
   cache flush so dirty write-backs are charged inside the phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.workloads.generators import (
    insert_stream,
    point_query_stream,
    random_load_pairs,
)


@dataclass(frozen=True)
class OpTimes:
    """Per-operation simulated times of one measured tree instance."""

    query_seconds_per_op: float
    insert_seconds_per_op: float
    n_queries: int
    n_inserts: int


def measure_tree_ops(
    tree,
    loaded_keys: list[int],
    universe: int,
    *,
    n_queries: int,
    n_inserts: int,
    warmup_queries: int = 200,
    seed: int = 0,
) -> OpTimes:
    """Measure per-op simulated time for random queries then random inserts.

    ``tree`` must expose ``get``/``insert`` and a ``storage`` stack (both
    :class:`~repro.trees.btree.tree.BTree` and Bε variants do).

    Every phase derives its stream from ``seed`` with a fixed offset
    (warm-up: ``seed+1``, queries: ``seed+2``, inserts: ``seed+3``), so the
    measurement is a pure function of ``(tree state, universe, n_queries,
    n_inserts, warmup_queries, seed)`` — exactly the fields a
    :class:`~repro.runner.spec.SweepPoint` fingerprints.
    """
    if n_queries <= 0 or n_inserts <= 0:
        raise ConfigurationError("need positive op counts")
    if warmup_queries < 0:
        raise ConfigurationError("warmup_queries must be non-negative")
    storage = tree.storage
    storage.drop_cache()

    for key in point_query_stream(loaded_keys, warmup_queries, seed=seed + 1):
        tree.get(key)
    # Hit rates reported after this call should describe the measured ops,
    # not the warm-up traffic that primed the cache.
    storage.cache.stats.reset()

    t0 = storage.io_seconds
    for key in point_query_stream(loaded_keys, n_queries, seed=seed + 2):
        tree.get(key)
    query_per_op = (storage.io_seconds - t0) / n_queries

    t0 = storage.io_seconds
    put_many = getattr(tree, "put_many", None)
    if put_many is not None:
        # Batched entry point: accounting-identical to the serial loop
        # (see the trees' put_many contracts), minus per-call overhead.
        put_many(insert_stream(universe, n_inserts, seed=seed + 3))
    else:
        for key, value in insert_stream(universe, n_inserts, seed=seed + 3):
            tree.insert(key, value)
    storage.flush()
    insert_per_op = (storage.io_seconds - t0) / n_inserts

    return OpTimes(
        query_seconds_per_op=query_per_op,
        insert_seconds_per_op=insert_per_op,
        n_queries=n_queries,
        n_inserts=n_inserts,
    )


_load_memo: dict[tuple[int, int, int], tuple[list, list]] = {}


def build_load(n_entries: int, universe: int, seed: int = 0):
    """Load pairs plus the key list used to draw queries.

    The load is a pure function of its arguments, and every point of a
    node-size sweep asks for the same one — so the last result is memoized
    (per process; parallel sweeps fork fresh ones).  Callers get shallow
    copies: the tuples are shared but the lists are theirs to mutate.
    """
    memo_key = (n_entries, universe, seed)
    cached = _load_memo.get(memo_key)
    if cached is None:
        pairs = random_load_pairs(n_entries, universe, seed=seed)
        cached = (pairs, [k for k, _ in pairs])
        _load_memo.clear()  # one sweep's load at a time; no unbounded growth
        _load_memo[memo_key] = cached
    return list(cached[0]), list(cached[1])
