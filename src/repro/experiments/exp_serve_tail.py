"""E19 — tail latency vs offered load in the sharded serving layer.

The serving question the refined models ultimately feed: a small cluster
(hash-sharded trees, replicated per shard) takes open-loop Zipf traffic
from two tenants and the tail latency is mostly *queueing* — so the two
QoS levers attack it from opposite ends:

* **admission control** (``admit``) bounds the queues by dropping the
  over-limit tenant's excess at the front door;
* **hedging** (``hedge``) cuts the service tail by duplicating a round
  that runs past its deadline onto a spare replica — the serving-layer
  analogue of E18's device-level hedges, spending otherwise-idle replica
  slots the way Definition 1 spends idle PDAM channels.

Swept over offered load x policy x tree type.  At low load neither lever
matters; at moderate load hedging wins (the tail is spiked service, and
spares are usually free); past saturation only admission helps (there are
no spare slots left to hedge onto, but dropping restores bounded queues).

Every point is a registered pure kernel (``serve_tail_point``), so the
sweep runs through :mod:`repro.runner` bit-identically at any job count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments import report
from repro.faults import FaultPlan, ResiliencePolicy
from repro.runner import ResultCache, SweepPoint, SweepSpec, run_sweep

DEFAULT_RATES = (300.0, 500.0, 700.0)
DEFAULT_POLICIES = ("none", "admit", "hedge", "admit+hedge")
DEFAULT_TREES = ("btree", "betree", "lsm")
SERVE_POLICIES = ("none", "retry", "admit", "hedge", "admit+hedge")

#: The stock serving fault plan: rare (2%) latency spikes of >= 80ms with
#: a Pareto tail — the slow-replica phenomenon hedging exists for.  No
#: transient errors: the serving layer studies queueing, not recovery.
DEFAULT_PLAN = FaultPlan(
    seed=1907,
    spike_prob=0.02,
    spike_seconds=80e-3,
    spike_alpha=1.6,
)

#: Replica-level hedge deadline: ~2x a typical batched round, so only
#: genuinely spiked rounds hedge.
ROUND_HEDGE_DEADLINE = 20e-3


def make_tenants(total_rate: float) -> tuple[Any, ...]:
    """The stock two-tenant mix at one offered load.

    ``alpha`` gets 60% of the offered rate, double weight and no limit;
    ``beta`` gets 40%, single weight, and a rate limit at 75% of its own
    offered rate — so under ``admit`` policies beta sheds ~25% of its
    traffic and everyone's queues shrink.
    """
    from repro.serve import TenantSpec

    if total_rate <= 0:
        raise ConfigurationError(f"total_rate must be positive, got {total_rate}")
    return (
        TenantSpec("alpha", rate=0.6 * total_rate, weight=2.0, theta=1.2),
        TenantSpec(
            "beta",
            rate=0.4 * total_rate,
            weight=1.0,
            theta=1.4,
            rate_limit=0.3 * total_rate,
            burst=32.0,
        ),
    )


def split_policy(policy: str) -> tuple[bool, ResiliencePolicy, ResiliencePolicy | None]:
    """Decompose one ``--policy`` spelling into the engine's three knobs.

    Returns ``(admission_enabled, replica_hedge_policy, device_policy)``.
    ``retry`` is the odd one out: it is a *device*-level policy (each
    replica's own IOs retry), with no serve-level mechanism.
    """
    if policy not in SERVE_POLICIES:
        raise ConfigurationError(
            f"unknown serve policy {policy!r}; expected one of {SERVE_POLICIES}"
        )
    admit = "admit" in policy
    hedge = (
        ResiliencePolicy.hedged(ROUND_HEDGE_DEADLINE)
        if "hedge" in policy
        else ResiliencePolicy.none()
    )
    device = ResiliencePolicy.retry() if policy == "retry" else None
    return admit, hedge, device


# -- kernel body (called via repro.runner.kernels) ---------------------------


def measure_serve(
    *,
    tree: str,
    policy: str,
    total_rate: float,
    duration_seconds: float,
    plan_json: str,
    n_entries: int,
    universe: int,
    n_shards: int,
    shard_policy: str,
    replicas: int,
    batch: int,
    node_bytes: int,
    cache_bytes: int,
    warm_queries: int,
    seed: int,
) -> dict[str, Any]:
    """One cluster, one policy, one offered load: build, serve, account.

    The cluster is rebuilt from scratch for every point (pure kernel);
    the fault plan arms only after load and warm-up, so faults perturb
    measured traffic, never construction.
    """
    from repro.experiments.common import build_load
    from repro.serve import (
        AdmissionController,
        RequestEngine,
        ShardConfig,
        ShardMap,
        build_shards,
    )

    admit, hedge_policy, device_policy = split_policy(policy)
    plan = FaultPlan.from_json(plan_json)
    tenants = make_tenants(total_rate)

    pairs, _ = build_load(n_entries, universe, seed=seed)
    keys = np.asarray(sorted(k for k, _ in pairs), dtype=np.int64)
    shard_map = ShardMap(n_shards, universe, policy=shard_policy)
    pair_map = dict(pairs)
    partitions = [
        [(int(k), pair_map[int(k)]) for k in part]
        for part in shard_map.partition(keys)
    ]
    config = ShardConfig(
        tree=tree,
        node_bytes=node_bytes,
        cache_bytes=cache_bytes,
        replicas=replicas,
        batch=batch,
        warm_queries=warm_queries,
    )
    shards = build_shards(
        n_shards,
        partitions,
        config,
        seed=seed,
        plan=plan,
        device_policy=device_policy,
    )
    engine = RequestEngine(
        shards,
        shard_map,
        tenants,
        keys,
        batch=batch,
        admission=AdmissionController(tenants, enabled=admit),
        policy=hedge_policy,
    )
    result = engine.run(duration_seconds, seed=seed)

    all_lat = np.concatenate(
        [result.latency_array(t.name) for t in tenants]
        or [np.zeros(1)]
    )
    if all_lat.size == 0:
        all_lat = np.zeros(1)
    p50, p99, p999 = np.percentile(all_lat, (50.0, 99.0, 99.9))
    n_replicas = n_shards * replicas
    return {
        "tree": tree,
        "policy": policy,
        "total_rate": total_rate,
        "served": result.served,
        "dropped": result.dropped,
        "hedges_issued": result.hedges_issued,
        "hedges_won": result.hedges_won,
        "max_queue_depth": result.max_queue_depth,
        "utilization": result.io_seconds / (duration_seconds * n_replicas),
        "p50_ms": float(p50) * 1e3,
        "p99_ms": float(p99) * 1e3,
        "p999_ms": float(p999) * 1e3,
        "tenants": {name: s.describe() for name, s in result.tenants.items()},
    }


# -- sweep + result ----------------------------------------------------------


@dataclass
class ServeTailResult:
    """One row per (tree, offered load, policy)."""

    rates: tuple[float, ...]
    policies: tuple[str, ...]
    trees: tuple[str, ...]
    plan: dict[str, Any]
    rows: list[dict[str, Any]] = field(default_factory=list)

    def render(self) -> str:
        return report.render_table(
            "E19: serving tail latency vs offered load (sharded, multi-tenant)",
            ["tree", "rate/s", "policy", "util", "served", "drop",
             "hedges", "p50 ms", "p99 ms", "p999 ms",
             "alpha p99", "beta p99"],
            [
                [r["tree"], f"{r['total_rate']:.0f}", r["policy"],
                 f"{r['utilization']:.2f}", r["served"], r["dropped"],
                 f"{r['hedges_issued']}/{r['hedges_won']}",
                 f"{r['p50_ms']:.1f}", f"{r['p99_ms']:.1f}",
                 f"{r['p999_ms']:.1f}",
                 f"{r['tenants']['alpha']['p99'] * 1e3:.1f}",
                 f"{r['tenants']['beta']['p99'] * 1e3:.1f}"]
                for r in self.rows
            ],
            note=(
                "Open-loop Zipf traffic, 2 tenants, hash-sharded replicated "
                "trees on spiking HDDs.  'hedge' duplicates rounds that run "
                "past the deadline onto a spare replica (cuts p99 at moderate "
                "load); 'admit' rate-limits tenant beta at the front door "
                "(bounds queues past saturation; 'drop' is the price)."
            ),
        )


def sweep_spec(
    *,
    plan: FaultPlan = DEFAULT_PLAN,
    rates: tuple[float, ...] = DEFAULT_RATES,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    trees: tuple[str, ...] = DEFAULT_TREES,
    duration_seconds: float = 4.0,
    n_entries: int = 6000,
    universe: int = 1 << 20,
    n_shards: int = 2,
    shard_policy: str = "hash",
    replicas: int = 3,
    batch: int = 8,
    node_bytes: int = 4096,
    cache_bytes: int = 64 << 10,
    warm_queries: int = 128,
    seed: int = 0,
) -> SweepSpec:
    """The E19 sweep: one kernel point per (tree, rate, policy)."""
    plan_json = plan.to_json()
    points = [
        SweepPoint.make(
            "serve_tail_point",
            tree=tree,
            policy=policy,
            total_rate=float(rate),
            duration_seconds=duration_seconds,
            plan_json=plan_json,
            n_entries=n_entries,
            universe=universe,
            n_shards=n_shards,
            shard_policy=shard_policy,
            replicas=replicas,
            batch=batch,
            node_bytes=node_bytes,
            cache_bytes=cache_bytes,
            warm_queries=warm_queries,
            seed=seed,
        )
        for tree in trees
        for rate in rates
        for policy in policies
    ]
    return SweepSpec.make("serve_tail", points)


def run(
    *,
    plan: FaultPlan | None = None,
    rates: tuple[float, ...] = DEFAULT_RATES,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    trees: tuple[str, ...] = DEFAULT_TREES,
    quick: bool = False,
    seed: int = 0,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> ServeTailResult:
    """Sweep offered load x policy x tree through the serving layer.

    ``quick`` shrinks to CI-smoke size: B-tree only, two load points,
    shorter horizon — same code paths, ~seconds of wall clock.
    """
    plan = plan if plan is not None else DEFAULT_PLAN
    sizes: dict[str, Any] = {}
    if quick:
        # Narrow the sweep axes only when the caller left them at the
        # defaults — an explicit rates/trees choice survives --quick.
        if tuple(trees) == DEFAULT_TREES:
            trees = ("btree",)
        if tuple(rates) == DEFAULT_RATES:
            rates = (300.0, 600.0)
        sizes = dict(
            duration_seconds=2.0,
            n_entries=3000,
            warm_queries=64,
        )
    spec = sweep_spec(
        plan=plan,
        rates=tuple(rates),
        policies=tuple(policies),
        trees=tuple(trees),
        seed=seed,
        **sizes,
    )
    result = ServeTailResult(
        rates=tuple(rates),
        policies=tuple(policies),
        trees=tuple(trees),
        plan=plan.describe(),
    )
    result.rows.extend(run_sweep(spec, jobs=jobs, cache=cache))
    return result


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
