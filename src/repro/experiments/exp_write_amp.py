"""E8 — Lemma 3 / Theorem 4(4): write amplification of B-trees vs Bε-trees.

Under random inserts with a cache much smaller than the data, a B-tree
writes back a whole ``B``-byte leaf after ``O(1)`` entry modifications —
write amplification ``Theta(B / entry)`` (Lemma 3), *linear in the node
size*.  A Bε-tree rewrites a node only when a flush moves ``~B/F`` entries
through it, so its amplification is ``O(F * height)`` (Theorem 4(4)) —
*independent of the node size* to first order.

This is the paper's second explanation for small B-tree nodes: "Since the
B-tree write amplification is linear in the node size, there is downward
pressure towards small B-tree nodes."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import report
from repro.storage.ram import NullDevice
from repro.storage.stack import StorageStack
from repro.trees.betree import BeTree, BeTreeConfig
from repro.trees.btree import BTree, BTreeConfig
from repro.workloads.generators import insert_stream, random_load_pairs

# Starts at 16 KiB: a 4 KiB node cannot hold a fanout-16 buffer at all.
DEFAULT_NODE_SIZES = (16 << 10, 64 << 10, 256 << 10, 1 << 20)


@dataclass
class WriteAmpResult:
    """Measured write amplification per structure and node size."""

    node_sizes: tuple[int, ...]
    n_loaded: int
    n_inserts: int
    fanout: int
    btree: list[float] = field(default_factory=list)
    betree: list[float] = field(default_factory=list)

    def render(self) -> str:
        labels = [report.format_bytes(b) for b in self.node_sizes]
        return report.render_series(
            f"Write amplification under random inserts "
            f"(N={self.n_loaded} loaded, {self.n_inserts} measured inserts, "
            f"Bε fanout {self.fanout})",
            "node size",
            labels,
            {"B-tree": self.btree, "Bε-tree": self.betree},
            note=(
                "Device bytes written / user bytes modified (Definition 3).  "
                "B-tree amplification grows ~linearly with B (Lemma 3); the "
                "Bε-tree's stays ~flat at ~F*height (Theorem 4(4))."
            ),
        )


def _measure(tree, storage: StorageStack, universe: int, n_inserts: int, seed: int) -> float:
    storage.drop_cache()
    fmt = tree.config.fmt
    base = storage.device.stats.snapshot()
    tree.user_bytes_modified = 0
    for key, value in insert_stream(universe, n_inserts, seed=seed):
        tree.insert(key, value)
    storage.flush()
    delta = storage.device.stats.delta(base)
    return delta.write_amplification(n_inserts * fmt.entry_bytes)


def run(
    *,
    node_sizes: tuple[int, ...] = DEFAULT_NODE_SIZES,
    n_loaded: int = 150_000,
    n_inserts: int = 8_000,
    cache_bytes: int = 1 << 20,
    fanout: int = 16,
    universe: int = 1 << 31,
    seed: int = 0,
) -> WriteAmpResult:
    """Measure write amplification for both trees across node sizes.

    The cache is deliberately tiny (1 MiB against ~16 MiB of data) so
    every dirtied B-tree leaf is written back before it absorbs a second
    insert — the Lemma 3 worst case.
    """
    pairs = random_load_pairs(n_loaded, universe, seed=seed)
    result = WriteAmpResult(
        node_sizes=tuple(node_sizes),
        n_loaded=n_loaded,
        n_inserts=n_inserts,
        fanout=fanout,
    )
    for node_bytes in node_sizes:
        storage = StorageStack(NullDevice(), cache_bytes)
        btree = BTree(storage, BTreeConfig(node_bytes=node_bytes))
        btree.bulk_load(pairs)
        result.btree.append(_measure(btree, storage, universe, n_inserts, seed + 1))

        storage = StorageStack(NullDevice(), cache_bytes)
        betree = BeTree(storage, BeTreeConfig(node_bytes=node_bytes, fanout=fanout))
        betree.bulk_load(pairs)
        result.betree.append(_measure(betree, storage, universe, n_inserts, seed + 1))
    return result


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
