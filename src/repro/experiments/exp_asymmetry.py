"""E14 (extension) — read/write asymmetry and the optimal fanout.

Paper Section 3, motivating write amplification as a first-class metric:

    "with some storage technologies (e.g., NVMe) writes are more expensive
    than reads, and this has algorithmic consequences [7, 18, 19, 40]."

This experiment makes one such consequence concrete in the affine model:
for a mixed query/insert workload on a device whose writes cost ``w``
times its reads, the Bε-tree fanout that minimizes total cost *decreases*
as ``w`` grows — expensive writes push the design toward more aggressive
write-optimization (smaller ε).  Both the closed-form optimum and a
measured sweep on an asymmetric :class:`~repro.storage.ideal.AffineDevice`
are reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import report
from repro.experiments.common import build_load
from repro.models.affine import AffineModel
from repro.models.analysis import optimal_fanout_asymmetric
from repro.storage.ideal import AffineDevice
from repro.storage.stack import StorageStack
from repro.trees.betree import BeTreeConfig, OptimizedBeTree
from repro.workloads.generators import insert_stream, point_query_stream

DEFAULT_MULTIPLIERS = (1.0, 2.0, 5.0, 10.0)
DEFAULT_FANOUTS = (2, 4, 8, 16, 32, 64)


@dataclass
class AsymmetryResult:
    """Model-optimal and measured-best fanout per write multiplier."""

    write_multipliers: tuple[float, ...]
    fanouts: tuple[int, ...]
    node_bytes: int
    model_optimal_fanout: list[float] = field(default_factory=list)
    measured_best_fanout: list[int] = field(default_factory=list)
    measured_cost_ms: list[dict[int, float]] = field(default_factory=list)

    def render(self) -> str:
        rows = []
        for i, w in enumerate(self.write_multipliers):
            costs = self.measured_cost_ms[i]
            rows.append(
                [
                    f"{w:g}x",
                    f"{self.model_optimal_fanout[i]:.1f}",
                    self.measured_best_fanout[i],
                    "  ".join(f"F{f}:{costs[f]:.2f}" for f in self.fanouts),
                ]
            )
        return report.render_table(
            f"Read/write asymmetry vs optimal fanout "
            f"(B={report.format_bytes(self.node_bytes)}, 50/50 query/insert mix)",
            ["write cost", "F* (model)", "F* (measured)", "measured ms/op by fanout"],
            rows,
            note=(
                "As writes get more expensive the optimal fanout falls: "
                "flush write traffic scales with F, query reads only "
                "improve logarithmically in it."
            ),
        )


def run(
    *,
    write_multipliers: tuple[float, ...] = DEFAULT_MULTIPLIERS,
    fanouts: tuple[int, ...] = DEFAULT_FANOUTS,
    node_bytes: int = 256 << 10,
    alpha_per_byte: float = 2e-6,
    setup_seconds: float = 0.01,
    n_entries: int = 100_000,
    cache_bytes: int = 2 << 20,
    universe: int = 1 << 31,
    n_queries: int = 150,
    seed: int = 0,
) -> AsymmetryResult:
    """Sweep write multipliers x fanouts; report model and measured optima."""
    pairs, keys = build_load(n_entries, universe, seed=seed)
    result = AsymmetryResult(
        write_multipliers=tuple(write_multipliers),
        fanouts=tuple(fanouts),
        node_bytes=node_bytes,
    )
    fmt = BeTreeConfig().fmt
    alpha_entry = alpha_per_byte * fmt.entry_bytes
    b_entries = fmt.leaf_capacity(node_bytes)
    m_entries = cache_bytes // fmt.entry_bytes

    for w in write_multipliers:
        result.model_optimal_fanout.append(
            optimal_fanout_asymmetric(
                b_entries, alpha_entry, n_entries, m_entries,
                write_cost_multiplier=w,
            )
        )
        costs: dict[int, float] = {}
        for fanout in fanouts:
            device = AffineDevice(
                AffineModel(alpha=alpha_per_byte, setup_seconds=setup_seconds),
                capacity_bytes=1 << 31,
                write_multiplier=w,
            )
            storage = StorageStack(device, cache_bytes)
            config = BeTreeConfig(node_bytes=node_bytes, fanout=fanout)
            tree = OptimizedBeTree(storage, config)
            tree.bulk_load(pairs)
            buffer_msgs = max(1, config.buffer_budget_bytes // config.fmt.message_bytes)
            for k, v in insert_stream(universe, buffer_msgs, seed=seed + 7):
                tree.insert(k, v)
            storage.drop_cache()
            n_inserts = min(30_000, max(3000, 2 * buffer_msgs))
            t0 = storage.io_seconds
            for k in point_query_stream(keys, n_queries, seed=seed + 2):
                tree.get(k)
            q = (storage.io_seconds - t0) / n_queries
            t0 = storage.io_seconds
            for k, v in insert_stream(universe, n_inserts, seed=seed + 3):
                tree.insert(k, v)
            storage.flush()
            i = (storage.io_seconds - t0) / n_inserts
            costs[fanout] = (0.5 * q + 0.5 * i) * 1e3
        result.measured_cost_ms.append(costs)
        result.measured_best_fanout.append(min(costs, key=costs.__getitem__))
    return result


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
