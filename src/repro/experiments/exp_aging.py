"""E13 (extension) — file-system aging and range-query bandwidth.

Section 5 of the paper, on why small B-tree nodes are costly for scans:

    "the optimal node size x is not large enough to amortize the setup
    cost.  This means that as B-trees age, their nodes get spread out
    across disk, and range-query performance degrades.  This is borne out
    in practice [28, 29, 31, 59]."

This experiment quantifies it on the simulated HDD: identical B-trees,
one allocated first-fit on an empty disk (fresh — nearly sequential
layout) and one with uniformly random extent placement (aged), measuring
effective range-scan bandwidth across node sizes.  The affine model
predicts the aged/fresh slowdown directly: a scan of ``L`` bytes over
``n = L/B`` nodes costs ``~s_local + L*t`` when laid out sequentially
(one short seek to the scan start) but ``~n*s + L*t`` when every node
pays a full random seek.  The slowdown ``(n*s + L*t)/(s_local + L*t)``
is large exactly when ``B`` is below the half-bandwidth point, i.e. for
point-query-optimal node sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import report
from repro.experiments.common import build_load
from repro.experiments.devices import default_hdd
from repro.storage.stack import StorageStack
from repro.trees.btree import BTree, BTreeConfig
from repro.workloads.generators import range_query_stream

DEFAULT_NODE_SIZES = (16 << 10, 64 << 10, 256 << 10, 1 << 20)


@dataclass
class AgingResult:
    """Fresh vs aged scan bandwidth per node size."""

    node_sizes: tuple[int, ...]
    n_entries: int
    fresh_mibps: list[float] = field(default_factory=list)
    aged_mibps: list[float] = field(default_factory=list)
    predicted_slowdown: list[float] = field(default_factory=list)

    @property
    def measured_slowdown(self) -> list[float]:
        """Aged-layout slowdown factor per node size."""
        return [f / a for f, a in zip(self.fresh_mibps, self.aged_mibps)]

    def render(self) -> str:
        labels = [report.format_bytes(b) for b in self.node_sizes]
        return report.render_series(
            f"File-system aging: range-scan bandwidth (N={self.n_entries})",
            "node size",
            labels,
            {
                "fresh (MiB/s)": self.fresh_mibps,
                "aged (MiB/s)": self.aged_mibps,
                "slowdown": self.measured_slowdown,
                "affine predicted": self.predicted_slowdown,
            },
            note=(
                "Aged = random extent placement.  Affine prediction: "
                "(n*s + L*t)/(s_local + L*t) for an L-byte scan over n "
                "nodes — severe at small (point-query-optimal) nodes, mild "
                "at large (scan-optimal) nodes."
            ),
        )


def _scan_bandwidth(tree: BTree, stack: StorageStack, keys, span, n_scans, seed) -> float:
    stack.drop_cache()
    t0 = stack.io_seconds
    rows = 0
    for lo, hi in range_query_stream(keys, n_scans, span_keys=span, seed=seed):
        rows += len(tree.range(lo, hi))
    elapsed = stack.io_seconds - t0
    return rows * tree.config.fmt.entry_bytes / 2**20 / elapsed


def run(
    *,
    node_sizes: tuple[int, ...] = DEFAULT_NODE_SIZES,
    n_entries: int = 200_000,
    cache_bytes: int = 4 << 20,
    universe: int = 1 << 31,
    span_keys: int = 2000,
    n_scans: int = 20,
    seed: int = 0,
) -> AgingResult:
    """Measure fresh vs aged scan bandwidth across node sizes."""
    pairs, keys = build_load(n_entries, universe, seed=seed)
    result = AgingResult(node_sizes=tuple(node_sizes), n_entries=n_entries)
    geometry = default_hdd().geometry
    s = geometry.mean_setup_seconds
    # A fresh tree occupies a tiny disk region, so its scan-start seek is
    # nearly track-to-track plus half a rotation.
    s_local = geometry.track_to_track_seek_seconds + geometry.rotation_seconds / 2
    t = geometry.seconds_per_byte
    fmt = BTreeConfig().fmt
    span_bytes = span_keys * fmt.entry_bytes
    for node_bytes in node_sizes:
        for policy, out in (("first_fit", result.fresh_mibps), ("random", result.aged_mibps)):
            device = default_hdd(seed=seed + 1)
            stack = StorageStack(
                device, cache_bytes, allocator_policy=policy, allocator_seed=13
            )
            tree = BTree(stack, BTreeConfig(node_bytes=node_bytes))
            tree.bulk_load(pairs)
            stack.flush()
            out.append(_scan_bandwidth(tree, stack, keys, span_keys, n_scans, seed + 2))
        # Expected leaves touched: span over ~90%-full nodes, plus one for
        # boundary straddle.
        n_nodes = span_bytes / (0.9 * node_bytes) + 1.0
        result.predicted_slowdown.append(
            (n_nodes * s + span_bytes * t) / (s_local + span_bytes * t)
        )
    return result


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
