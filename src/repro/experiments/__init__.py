"""Experiment harness: one module per paper table/figure.

Every experiment module exposes ``run(...)`` returning a result object
with a ``render()`` method (ASCII tables/series) and sensible scaled-down
defaults.  ``python -m repro.experiments <name>`` runs one (or ``all``).

Experiment index (see DESIGN.md section 4):

========  =====================  ======================================
ID        Paper artifact         Module
========  =====================  ======================================
fig1      Figure 1               exp_pdam_validation
table1    Table 1                exp_pdam_validation
table2    Table 2                exp_affine_validation
table3    Table 3                exp_sensitivity
fig2      Figure 2               exp_btree_nodesize
fig3      Figure 3               exp_betree_nodesize
lemma13   Section 8 / Lemma 13   exp_pdam_concurrency
writeamp  Lemma 3 / Thm 4(4)     exp_write_amp
theorem9  Theorem 9 ablation     exp_optimizations
optima    Corollaries 6/7/11/12  exp_optima
lsm       extension (E11)        exp_lsm_nodesize
epsilon   extension (E12)        exp_epsilon_tradeoff
aging     extension (E13)        exp_aging
asymmetry extension (E14)        exp_asymmetry
ycsb      extension (E15)        exp_ycsb
modelerr  extension (E16)        exp_model_error
autotune  extension (E17)        exp_autotune
tailres   extension (E18)        exp_tail_resilience
========  =====================  ======================================

Pass ``--plot`` to append an ASCII rendering for the figure experiments,
``--list`` to print the experiment names.
"""

from repro.experiments import report

__all__ = ["report"]
